#!/usr/bin/env python
"""Docs guard: every relative link resolves, every doctest example runs.

Two checks, both run by the CI ``docs`` job (and by ``tests/test_docs.py``
so the tier-1 suite catches breakage locally):

1. **Link check** — every inline markdown link ``[text](target)`` in
   ``README.md`` and ``docs/*.md`` whose target is *relative* (no URL
   scheme, not a pure ``#fragment``) must point at an existing file or
   directory, resolved against the linking file's location.  Absolute
   URLs are deliberately not fetched: CI must not depend on the network,
   and the repo's own cross-references are what silently rot.
2. **Doctests** — fenced ``>>>`` examples in ``docs/architecture.md``,
   ``docs/live-graphs.md`` and ``docs/paths.md`` are executed with
   ``doctest`` (the CI job runs the equivalent
   ``python -m doctest <doc>``), so the walkthroughs can never drift
   from the real API.
3. **Perf floors** — every benchmark name the perf-guard checks
   (``REPORTS`` in ``benchmarks/check_perf_floors.py``) must appear in
   ``docs/ci.md``'s guarded-measurements table, so a new guarded
   measurement cannot land undocumented (and a renamed one cannot leave
   a stale row behind: every backtick-quoted name in the table must be
   guarded).
4. **Serving ops** — the op tables (header cell ``op``) in
   ``docs/serving.md`` and ``docs/live-graphs.md`` must match the wire
   registry (``OPS`` in ``repro/serve/wire.py``) in both directions: a
   new op cannot ship undocumented, and a table row cannot outlive its
   op.

Usage::

    PYTHONPATH=src python tools/check_docs.py            # all checks
    PYTHONPATH=src python tools/check_docs.py --links    # links only
"""

from __future__ import annotations

import argparse
import doctest
import os
import re
import sys
from typing import List, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Files whose relative links are checked.
LINKED_DOCS = ("README.md", "docs")

#: Files whose ``>>>`` examples are executed.
DOCTEST_DOCS = (
    os.path.join("docs", "architecture.md"),
    os.path.join("docs", "live-graphs.md"),
    os.path.join("docs", "paths.md"),
)

#: Files whose op tables are audited against ``repro.serve.wire.OPS``.
SERVING_OP_DOCS = (
    os.path.join("docs", "serving.md"),
    os.path.join("docs", "live-graphs.md"),
)

# Inline markdown links: [text](target).  Images (![alt](target)) match
# too via the optional bang.  Reference-style definitions are rare here
# and intentionally out of scope.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

_SCHEME = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


def _markdown_files() -> List[str]:
    files: List[str] = []
    for entry in LINKED_DOCS:
        path = os.path.join(REPO_ROOT, entry)
        if os.path.isdir(path):
            files.extend(
                os.path.join(path, name)
                for name in sorted(os.listdir(path))
                if name.endswith(".md")
            )
        elif os.path.exists(path):
            files.append(path)
    return files


def check_links() -> List[str]:
    """Return one failure message per dangling relative link."""
    failures: List[str] = []
    for path in _markdown_files():
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
        for target in _LINK.findall(text):
            if _SCHEME.match(target) or target.startswith("#"):
                continue  # absolute URL or in-page anchor
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), target.split("#", 1)[0])
            )
            if not os.path.exists(resolved):
                failures.append(
                    f"{os.path.relpath(path, REPO_ROOT)}: dangling link "
                    f"({target!r} -> {os.path.relpath(resolved, REPO_ROOT)})"
                )
    return failures


def check_doctests() -> List[str]:
    """Return one failure message per failing doc example."""
    failures: List[str] = []
    for relative in DOCTEST_DOCS:
        path = os.path.join(REPO_ROOT, relative)
        if not os.path.exists(path):
            failures.append(f"{relative}: missing (doctest target)")
            continue
        result = doctest.testfile(
            path, module_relative=False, verbose=False, report=True
        )
        if result.failed:
            failures.append(
                f"{relative}: {result.failed}/{result.attempted} doc examples failed"
            )
        elif result.attempted == 0:
            failures.append(f"{relative}: contains no doctest examples to run")
    return failures


def check_perf_floor_docs() -> List[str]:
    """Return one failure message per floor/docs drift.

    Both directions are audited against ``docs/ci.md``'s
    guarded-measurements table: a benchmark the perf-guard checks but the
    docs never mention (undocumented guard), and — within the table — a
    backtick-quoted ``serving_*``/``artifact_*``/kernel row naming a
    benchmark the guard no longer checks (stale row).
    """
    sys.path.insert(0, os.path.join(REPO_ROOT, "benchmarks"))
    try:
        from check_perf_floors import REPORTS
    finally:
        sys.path.pop(0)
    guarded = {name for names in REPORTS.values() for name in names}

    ci_doc = os.path.join("docs", "ci.md")
    path = os.path.join(REPO_ROOT, ci_doc)
    if not os.path.exists(path):
        return [f"{ci_doc}: missing (perf-floor documentation target)"]
    with open(path, encoding="utf-8") as handle:
        text = handle.read()

    failures = [
        f"{ci_doc}: guarded benchmark {name!r} (check_perf_floors.py) "
        f"is not documented in the guarded-measurements table"
        for name in sorted(guarded)
        if f"`{name}`" not in text
    ]
    # Stale rows: backticked first-column names in the table that the
    # guard no longer knows.  Only table rows are audited — prose may
    # mention retired names when explaining history.
    documented = {
        match.group(1)
        for match in re.finditer(r"^\|\s*`([a-z0-9_]+)`\s*\|", text, re.MULTILINE)
    }
    failures.extend(
        f"{ci_doc}: table documents {name!r} but check_perf_floors.py "
        f"no longer guards it"
        for name in sorted(documented - guarded)
    )
    return failures


def _op_table_rows(text: str) -> set:
    """Backticked first-column names from markdown tables headed ``op``."""
    rows: set = set()
    in_table = False
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped.startswith("|"):
            in_table = False
            continue
        cells = [cell.strip() for cell in stripped.strip("|").split("|")]
        first = cells[0] if cells else ""
        if first.lower() == "op":
            in_table = True
            continue
        if not in_table or set(first) <= set("-: "):
            continue  # outside an op table, or the header separator row
        match = re.match(r"^`([a-z_]+)`$", first)
        if match:
            rows.add(match.group(1))
    return rows


def check_serving_ops() -> List[str]:
    """Return one failure message per op-table/wire-registry drift.

    Audited both directions against ``repro.serve.wire.OPS`` for each doc
    in ``SERVING_OP_DOCS``: an op the wire serves but the doc's op table
    omits (undocumented op), and a table row naming an op the wire no
    longer serves (stale row).
    """
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    try:
        from repro.serve.wire import OPS
    finally:
        sys.path.pop(0)
    served = set(OPS)

    failures: List[str] = []
    for relative in SERVING_OP_DOCS:
        path = os.path.join(REPO_ROOT, relative)
        if not os.path.exists(path):
            failures.append(f"{relative}: missing (serving-op documentation target)")
            continue
        with open(path, encoding="utf-8") as handle:
            documented = _op_table_rows(handle.read())
        if not documented:
            failures.append(f"{relative}: contains no op table (header cell 'op')")
            continue
        failures.extend(
            f"{relative}: wire op {name!r} (repro/serve/wire.py OPS) "
            f"is not documented in the op table"
            for name in sorted(served - documented)
        )
        failures.extend(
            f"{relative}: op table documents {name!r} but the wire "
            f"registry no longer serves it"
            for name in sorted(documented - served)
        )
    return failures


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--links", action="store_true", help="run only the link check")
    parser.add_argument("--doctests", action="store_true", help="run only the doctests")
    parser.add_argument("--floors", action="store_true",
                        help="run only the perf-floor documentation check")
    parser.add_argument("--serving-ops", action="store_true",
                        help="run only the serving-op table cross-check")
    args = parser.parse_args(argv)
    selected = args.links or args.doctests or args.floors or args.serving_ops

    checks: List[Tuple[str, List[str]]] = []
    if args.links or not selected:
        checks.append(("links", check_links()))
    if args.doctests or not selected:
        checks.append(("doctests", check_doctests()))
    if args.floors or not selected:
        checks.append(("floors", check_perf_floor_docs()))
    if args.serving_ops or not selected:
        checks.append(("serving-ops", check_serving_ops()))

    exit_code = 0
    for name, failures in checks:
        if failures:
            exit_code = 1
            for failure in failures:
                print(f"docs-guard [{name}]: {failure}")
        else:
            print(f"docs-guard [{name}]: ok")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
