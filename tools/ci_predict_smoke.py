#!/usr/bin/env python
"""CI inference-tier smoke: serve a checkpoint and query ``/predict`` over HTTP.

Boots ``repro serve --protocol http --checkpoint CKPT`` exactly as an
operator would — once in-process and once on a 2-worker pool — and checks
the full path over a real socket: a node-classification answer comes back,
a repeated request is answered from the result cache without changing the
payload, and ``/metrics`` exposes the predict cache + model registry
counters.  The second argument, when given, receives the ``/metrics``
snapshot as JSON (uploaded as the ``serving_metrics.json`` CI artifact).

Usage::

    python -m repro train --dataset mag --scale tiny --task PV --model RGCN \
        --epochs 3 --save-checkpoint ckpt/mag-pv.ckpt
    python tools/ci_predict_smoke.py ckpt/mag-pv.ckpt serving_metrics.json
"""

import http.client
import json
import os
import re
import subprocess
import sys


def smoke(checkpoint: str, workers: int, metrics_out: str = None) -> None:
    """One serve → predict → metrics round over a real HTTP socket."""
    argv = [
        sys.executable, "-m", "repro", "serve",
        "--dataset", "mag", "--scale", "tiny",
        "--protocol", "http", "--checkpoint", checkpoint,
        "--port", "0", "--duration", "120",
    ]
    if workers:
        argv += ["--workers", str(workers)]
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(argv, stdout=subprocess.PIPE, text=True, env=env)
    try:
        banner = process.stdout.readline()
        match = re.search(r"on 127\.0\.0\.1:(\d+) via http", banner)
        assert match, f"unexpected banner: {banner!r}"
        port = int(match.group(1))

        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
        conn.request("GET", "/predict?graph=mag&task=PV&node=0&k=4")
        response = conn.getresponse()
        payload = json.loads(response.read())
        assert response.status == 200, payload
        assert payload["task_type"] == "NC", payload
        assert isinstance(payload["label"], int), payload

        # The same request again must hit the result cache — and the cache
        # must never change an answer.
        conn.request("GET", "/predict?graph=mag&task=PV&node=0&k=4")
        repeat = json.loads(conn.getresponse().read())
        assert repeat == payload, "result cache changed the /predict payload"

        # Malformed request: NC tasks take a node, not nothing.
        conn.request("GET", "/predict?graph=mag&task=PV")
        response = conn.getresponse()
        assert response.status == 400, response.status
        response.read()

        conn.request("GET", "/metrics")
        metrics = json.loads(conn.getresponse().read())
        predict = metrics["predict"]
        assert predict["cache"]["hits"] >= 1, predict
        assert predict["registry"]["checkpoints"], predict
        if metrics_out:
            with open(metrics_out, "w", encoding="utf-8") as handle:
                json.dump(metrics, handle, indent=2)
        conn.close()

        mode = f"{workers}-worker pool" if workers else "in-process"
        print(
            f"predict-smoke [{mode}]: ok on port {port} "
            f"(cache hits {predict['cache']['hits']}, "
            f"checkpoints {len(predict['registry']['checkpoints'])})"
        )
    finally:
        process.terminate()
        process.wait(timeout=10)


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    checkpoint = argv[0] if argv else "ckpt/mag-pv.ckpt"
    metrics_out = argv[1] if len(argv) > 1 else None
    if not os.path.exists(checkpoint):
        print(f"predict-smoke: no checkpoint at {checkpoint}; "
              f"create one with `repro train --save-checkpoint`")
        return 2
    smoke(checkpoint, workers=0, metrics_out=metrics_out)
    smoke(checkpoint, workers=2)
    return 0


if __name__ == "__main__":
    sys.exit(main())
