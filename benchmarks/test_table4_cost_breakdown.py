"""Table IV — per-task cost breakdown, FG vs KG′ (GraphSAINT pipeline).

Paper shape: extraction + transformation overhead is small relative to the
training savings; models trained on KG′ are smaller and infer faster.
"""

from repro.bench import experiments
from repro.bench.harness import render_table

import pytest

pytestmark = pytest.mark.slow

HEADERS = [
    "task", "graph", "extract(s)", "transform(s)", "train(s)",
    "accuracy", "#params", "infer(ms)", "mem(MB)",
]


def test_table4_cost_breakdown(benchmark, report):
    result = benchmark.pedantic(
        experiments.table4_cost_breakdown, kwargs={"scale": "small"}, rounds=1, iterations=1
    )
    rows = result.tables["table4"]
    report("table4_cost_breakdown", render_table(HEADERS, rows, title="Table IV"))

    for label, runs in result.sections.items():
        fg, tosa = runs
        assert fg.graph_label == "FG" and tosa.graph_label == "KG'"
        # Total pipeline (extract + train) is cheaper on KG'.
        assert tosa.total_seconds < fg.total_seconds, label
        # Smaller models, less memory.
        assert tosa.num_parameters < fg.num_parameters, label
        assert tosa.memory_mb < fg.memory_mb, label
        # Preprocessing is a small fraction of the FG training it replaces.
        assert tosa.preprocess_seconds < fg.train_seconds, label
