"""Artifact-store benchmark: mmap worker startup vs pickled-graph shipping.

Two guarantees of the zero-copy serving path (``repro/kg/store.py``) are
measured on the ``mag`` *large* catalog graph and recorded — with their
regression floors/ceilings — in ``reports/BENCH_artifacts.json``, which
``check_perf_floors.py`` re-checks in the CI ``perf-guard`` and ``serve``
jobs:

* **artifact_warm_time** — how fast a pool worker becomes ready to serve.
  The baseline is what plain registration costs per worker: pickle the
  graph, unpickle it worker-side, and warm the CSR projection.  The mmap
  path is one ``open_artifacts`` call: parse the header and wrap read-only
  views (vocabularies decode lazily; array pages fault in on demand).
  The recorded speedup must stay above ``WARM_FLOOR``.

* **artifact_resident_memory** — what a worker *keeps resident* per graph.
  A pickled-graph worker owns private copies of every array; an mmap
  worker owns only file-backed pages shared with every other mapper, so
  its private (heap) artifact bytes must stay under ``RESIDENT_CEILING``
  regardless of graph size.  Measured through a live 2-worker pool via
  the piggybacked worker stats (the same gauge ``/metrics`` exports),
  so the guard covers the real serving path, not a model.
"""

import json
import os
import pickle
import statistics
import time

from repro.datasets import catalog
from repro.kg.cache import artifacts_for
from repro.kg.store import open_artifacts, save_artifacts
from repro.serve import WorkerPool

SCALE = "large"
WARM_ROUNDS = 5

# Observed ~10-15x on mag "large" (pickle round-trip + CSR build vs one
# header parse).  The floor sits far below per the docs/ci.md policy —
# but still guarantees the startup win the zero-copy path exists for.
WARM_FLOOR = 3.0

# An mmap worker's private artifact bytes are O(1) in graph size: the
# ceiling is absolute, not relative.  mag "large" maps ~19 MB of shared
# sections; a worker keeping >1 MiB of them privately resident means the
# zero-copy path regressed into copying.
RESIDENT_CEILING = 1 << 20

_REPORT_NAME = "BENCH_artifacts.json"


def _merge_benchmark(report_dir, name, entry):
    """Insert one benchmark entry into the shared artifacts report."""
    path = os.path.join(report_dir, _REPORT_NAME)
    payload = {"benchmarks": {}}
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    payload.setdefault("benchmarks", {})[name] = entry
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)


def _median_seconds(callable_, rounds=WARM_ROUNDS):
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        callable_()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def test_perf_artifact_warm_time(benchmark, report, report_dir, tmp_path):
    bundle = catalog.mag(SCALE, 7)
    kg = bundle.kg
    store_dir = str(tmp_path / "store")
    save_artifacts(kg, store_dir)  # also pre-builds the baseline's CSR inputs

    def pickled_worker_startup():
        # What `WorkerPool.register` costs per worker without --mmap-dir:
        # the parent pickles the graph, the worker unpickles and warms the
        # CSR projection before it can serve.
        clone = pickle.loads(pickle.dumps(kg))
        artifacts_for(clone).warm(("csr",))

    def mmap_worker_startup():
        open_artifacts(store_dir)

    def measure():
        baseline = _median_seconds(pickled_worker_startup)
        mapped = _median_seconds(mmap_worker_startup)
        return baseline, mapped, baseline / mapped

    baseline, mapped, speedup = benchmark.pedantic(measure, rounds=1, iterations=1)

    report(
        "perf_artifact_warm_time",
        (
            f"worker warm time on {kg.name} ({kg.num_nodes} nodes, "
            f"{kg.num_edges} edges):\n"
            f"  pickled registration  {baseline * 1e3:8.2f} ms\n"
            f"  mmap open_artifacts   {mapped * 1e3:8.2f} ms\n"
            f"  -> {speedup:.1f}x (floor {WARM_FLOOR}x)"
        ),
    )

    assert speedup >= WARM_FLOOR, (
        f"mmap worker startup only {speedup:.2f}x faster than pickled "
        f"registration (floor {WARM_FLOOR}x)"
    )

    _merge_benchmark(
        report_dir,
        "artifact_warm_time",
        {
            "graph": kg.name,
            "scale": SCALE,
            "nodes": kg.num_nodes,
            "edges": kg.num_edges,
            "rounds": WARM_ROUNDS,
            "baseline_ms": baseline * 1e3,
            "mmap_ms": mapped * 1e3,
            "speedup": speedup,
            "floor": WARM_FLOOR,
        },
    )


def test_perf_artifact_resident_memory(benchmark, report, report_dir, tmp_path):
    bundle = catalog.mag(SCALE, 7)
    kg = bundle.kg
    store_dir = str(tmp_path / "store")
    save_artifacts(kg, store_dir)

    # What one pickled-graph worker would keep privately resident: the
    # warmed artifact arrays plus its copy of the raw graph columns.
    baseline_clone = pickle.loads(pickle.dumps(kg))
    baseline_artifacts = artifacts_for(baseline_clone)
    baseline_artifacts.warm(("csr",))
    baseline_clone.hexastore.materialize()
    baseline_resident = baseline_artifacts.nbytes() + baseline_clone.nbytes()

    def measure():
        with WorkerPool(workers=2) as pool:
            pool.register("mag", open_artifacts(store_dir).kg, mmap_dir=store_dir)
            pool.call("ppr", {"graph": "mag", "targets": [0], "k": 8,
                              "alpha": 0.25, "eps": 2e-4})
            stats = pool.graph_stats("mag")["artifact_cache"]
        # nbytes sums the live workers' private artifact bytes: per-worker
        # resident is that sum over the worker count.
        return stats["nbytes"] / 2, stats["mapped_nbytes"]

    per_worker_resident, mapped_nbytes = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )

    report(
        "perf_artifact_resident_memory",
        (
            f"per-worker resident artifact bytes on {kg.name}:\n"
            f"  mmap worker (private)     {per_worker_resident / 1e6:8.2f} MB "
            f"(ceiling {RESIDENT_CEILING / 1e6:.2f} MB)\n"
            f"  shared mapped sections    {mapped_nbytes / 1e6:8.2f} MB\n"
            f"  pickled worker would hold {baseline_resident / 1e6:8.2f} MB privately"
        ),
    )

    assert mapped_nbytes > 0, "workers did not serve off the mapping"
    assert per_worker_resident <= RESIDENT_CEILING, (
        f"mmap worker keeps {per_worker_resident / 1e6:.2f} MB of artifact "
        f"bytes privately resident (ceiling {RESIDENT_CEILING / 1e6:.2f} MB)"
    )

    _merge_benchmark(
        report_dir,
        "artifact_resident_memory",
        {
            "graph": kg.name,
            "scale": SCALE,
            "workers": 2,
            "value": per_worker_resident,
            "ceiling": RESIDENT_CEILING,
            "mapped_nbytes": mapped_nbytes,
            "pickled_resident_nbytes": baseline_resident,
        },
    )
