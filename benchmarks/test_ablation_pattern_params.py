"""Ablation — sensitivity of the TOSG to the (d, h) pattern parameters.

DESIGN.md calls this out: larger d/h extract supersets, so subgraph size
must grow monotonically along d1h1 → d2h1 → d2h2 and d1h1 → d1h2 → d2h2,
and every variant keeps all target vertices.
"""


from repro.bench.harness import render_table
from repro.core import extract_tosg
from repro.datasets import mag

VARIANTS = [(1, 1), (2, 1), (1, 2), (2, 2)]


def _sweep(scale="small", seed=7):
    bundle = mag(scale, seed)
    task = bundle.task("PV")
    results = {}
    for direction, hops in VARIANTS:
        results[(direction, hops)] = extract_tosg(
            bundle.kg, task, method="sparql", direction=direction, hops=hops
        )
    return bundle, task, results


def test_pattern_parameter_sweep(benchmark, report):
    bundle, task, results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rows = [
        [
            f"d{d}h{h}",
            str(r.subgraph.num_nodes),
            str(r.subgraph.num_edges),
            str(r.subgraph.num_node_types),
            str(r.subgraph.num_edge_types),
            f"{r.extraction_seconds:.3f}",
        ]
        for (d, h), r in results.items()
    ]
    report(
        "ablation_pattern_params",
        render_table(["pattern", "|V'|", "|T'|", "|C'|", "|R'|", "extract(s)"], rows,
                     title="Ablation: (d, h) sweep on PV/MAG"),
    )

    d1h1, d2h1 = results[(1, 1)], results[(2, 1)]
    d1h2, d2h2 = results[(1, 2)], results[(2, 2)]
    # Supersets along both axes.
    assert d1h1.subgraph.num_edges <= d2h1.subgraph.num_edges <= d2h2.subgraph.num_edges
    assert d1h1.subgraph.num_edges <= d1h2.subgraph.num_edges <= d2h2.subgraph.num_edges
    # All variants keep every target vertex.
    for result in results.values():
        assert result.task.num_targets == task.num_targets
    # Even the largest variant stays a strict subgraph of FG.
    assert d2h2.subgraph.num_edges < bundle.kg.num_edges
