"""Table III — subgraph quality: URW vs BRW vs IBS vs KG-TOSA d1h1.

Paper shape: the three task-oriented methods (BRW/IBS/d1h1) raise the
target-vertex ratio, eliminate target-disconnected vertices, shorten the
average distance to targets, and beat URW-trained accuracy; URW keeps
irrelevant types.
"""

from repro.bench import experiments
from repro.bench.harness import RUN_HEADERS, render_table
from benchmarks.test_fig2_urw_pathology import QUALITY_HEADERS

import pytest

pytestmark = pytest.mark.slow


def test_table3_subgraph_quality(benchmark, report):
    result = benchmark.pedantic(
        experiments.table3_subgraph_quality, kwargs={"scale": "small"}, rounds=1, iterations=1
    )
    lines = []
    for label in result.quality:
        quality_rows = [r.as_row() for r in result.quality[label]]
        run_rows = [r.cells() for r in result.sections[label]]
        lines.append(
            render_table(QUALITY_HEADERS, quality_rows, title=f"Table III {label} (quality)")
        )
        lines.append(render_table(RUN_HEADERS, run_rows, title=f"Table III {label} (GraphSAINT)"))
    report("table3_subgraph_quality", "\n\n".join(lines))

    for label, reports in result.quality.items():
        by_sampler = {r.sampler: r for r in reports}
        urw = by_sampler["URW"]
        for name in ("BRW", "IBS", "KG-TOSAd1h1"):
            oriented = by_sampler[name]
            assert oriented.disconnected_pct == 0.0, f"{label}/{name}"
            assert oriented.target_ratio_pct > urw.target_ratio_pct, f"{label}/{name}"
        # Task-oriented subgraphs keep fewer (or equal) node types.
        assert by_sampler["KG-TOSAd1h1"].num_node_types <= urw.num_node_types

    # Accuracy: task-oriented subgraphs dominate URW on the noisy YAGO CG
    # task (the paper's 15% -> 37% case).
    runs = {r.graph_label: r for r in result.sections["CG/YAGO"]}
    best = max(runs["BRW"].metric, runs["IBS"].metric, runs["KG-TOSAd1h1"].metric)
    assert best >= runs["URW"].metric
