"""Live-graph benchmark: incremental epoch artifacts vs cold rebuild.

Two guarantees of the epochal-snapshot path (``repro/kg/epoch.py``) are
measured on the ``mag`` *large* catalog graph and recorded — with their
regression floors — in ``reports/BENCH_live.json``, which
``check_perf_floors.py`` re-checks in the CI ``perf-guard`` job:

* **live_epoch_extend** — what one ``POST /triples`` ingest costs.  The
  baseline is what serving the new epoch would cost without the delta
  log: rebuild the merged graph's CSR projection and hexastore orderings
  from scratch.  The incremental path merges the parent epoch's
  already-built artifacts with the (small) delta — ``base + delta`` CSR
  addition, sorted-merge hexastore permutations — and must stay above
  ``EXTEND_FLOOR`` while producing **bit-identical** artifacts (asserted
  here before timing is trusted).

* **live_ppr_refresh** — what re-answering a warm ``/ppr`` working set
  costs after an ingest.  The baseline recomputes every target on the
  new epoch; the delta-aware cache recomputes only the targets whose
  retained support set intersects the dirty nodes and serves the rest
  from cache — bit-identically, because an untouched support set means
  the push schedule replays exactly.  Measured in the regime the cache
  exists for: a *localized* ingest (one entity's edges — a few rows
  among a few nodes), the common case in live KGs.  Scattering the same
  rows uniformly over the graph instead would dirty nearly every
  retained support set and degenerate the cache to full recomputation —
  which the invalidation rule handles correctly, just without a win to
  guard.  Must stay above ``REFRESH_FLOOR``.
"""

import json
import os
import statistics
import time

import numpy as np

from repro.datasets import catalog
from repro.kg.cache import artifacts_for
from repro.kg.epoch import GraphEpoch, LiveGraph
from repro.kg.triples import TripleStore
from repro.sampling.ppr import batch_ppr_top_k

SCALE = "large"
ROUNDS = 5

#: Triples per ingest — small against the base (the live-ingest regime the
#: delta log exists for; compaction handles the delta growing large).
DELTA_ROWS = 256

#: Warm /ppr working set re-answered after each ingest.
PPR_TARGETS = 256
PPR_K = 16

#: A localized ingest: this many rows among this many (low-degree) nodes.
LOCAL_ROWS = 8
LOCAL_NODES = 4

# Observed ~3-4x on mag "large" (sorted-merge + CSR addition vs full
# lexsorts and a from-scratch CSR build).  Floor well below, per the
# docs/ci.md policy — but still guarantees the incremental win the
# epochal path exists for.
EXTEND_FLOOR = 1.5

# Observed ~3-4x (a localized delta dirties a handful of the 256 retained
# targets; the batch kernel's fixed per-call setup bounds the rest).
REFRESH_FLOOR = 1.5

_REPORT_NAME = "BENCH_live.json"


def _merge_benchmark(report_dir, name, entry):
    """Insert one benchmark entry into the shared live report."""
    path = os.path.join(report_dir, _REPORT_NAME)
    payload = {"benchmarks": {}}
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    payload.setdefault("benchmarks", {})[name] = entry
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)


def _median_seconds(callable_, rounds=ROUNDS):
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        callable_()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def _delta(kg, rows, seed):
    rng = np.random.default_rng(seed)
    rels = np.unique(kg.triples.p)
    return np.stack(
        [
            rng.integers(0, kg.num_nodes, rows),
            rng.choice(rels, rows),
            rng.integers(0, kg.num_nodes, rows),
        ],
        axis=1,
    ).astype(np.int64)


def _warm(kg):
    """Build the serving artifacts an epoch carries forward incrementally."""
    artifacts_for(kg).csr("both")
    kg.hexastore.materialize()


def _assert_bit_exact(merged_kg, cold_kg):
    left = artifacts_for(merged_kg).csr("both")
    right = artifacts_for(cold_kg).csr("both")
    assert np.array_equal(left.indptr, right.indptr)
    assert np.array_equal(left.indices, right.indices)
    assert np.array_equal(left.data, right.data)
    for name, index in merged_kg.hexastore._indices.items():
        reference = cold_kg.hexastore._indices[name]
        assert np.array_equal(index.perm, reference.perm), name


def test_perf_live_epoch_extend(benchmark, report, report_dir):
    bundle = catalog.mag(SCALE, 7)
    base = bundle.kg
    _warm(base)
    epoch = GraphEpoch.initial(base)
    arr = _delta(base, DELTA_ROWS, seed=11)
    delta = TripleStore(arr[:, 0], arr[:, 1], arr[:, 2])

    # Bit-exactness first: the merged epoch's artifacts must equal a
    # from-scratch rebuild before any timing is worth recording.
    merged = epoch.extend(delta)
    cold = merged.cold_rebuild()
    _warm(cold)
    _assert_bit_exact(merged.kg, cold)

    def incremental_extend():
        epoch.extend(delta)

    def cold_rebuild():
        rebuilt = merged.cold_rebuild()
        _warm(rebuilt)

    def measure():
        baseline = _median_seconds(cold_rebuild)
        extend = _median_seconds(incremental_extend)
        return baseline, extend, baseline / extend

    baseline, extend, speedup = benchmark.pedantic(measure, rounds=1, iterations=1)

    report(
        "perf_live_epoch_extend",
        (
            f"epoch extend on {base.name} ({base.num_nodes} nodes, "
            f"{base.num_edges} edges, {DELTA_ROWS}-row delta):\n"
            f"  cold artifact rebuild  {baseline * 1e3:8.2f} ms\n"
            f"  incremental merge      {extend * 1e3:8.2f} ms\n"
            f"  -> {speedup:.1f}x (floor {EXTEND_FLOOR}x)"
        ),
    )

    assert speedup >= EXTEND_FLOOR, (
        f"incremental epoch extend only {speedup:.2f}x faster than a cold "
        f"artifact rebuild (floor {EXTEND_FLOOR}x)"
    )

    _merge_benchmark(
        report_dir,
        "live_epoch_extend",
        {
            "graph": base.name,
            "scale": SCALE,
            "nodes": base.num_nodes,
            "edges": base.num_edges,
            "delta_rows": DELTA_ROWS,
            "rounds": ROUNDS,
            "baseline_ms": baseline * 1e3,
            "incremental_ms": extend * 1e3,
            "speedup": speedup,
            "floor": EXTEND_FLOOR,
        },
    )


def _local_delta(kg, seed):
    """A localized ingest: LOCAL_ROWS edges among LOCAL_NODES quiet nodes."""
    rng = np.random.default_rng(seed)
    degrees = np.asarray(
        artifacts_for(kg).csr("both").sum(axis=1)
    ).ravel()
    quiet = np.argsort(degrees)[: max(kg.num_nodes // 10, LOCAL_NODES)]
    nodes = rng.choice(quiet, LOCAL_NODES, replace=False)
    rels = np.unique(kg.triples.p)
    return np.stack(
        [
            rng.choice(nodes, LOCAL_ROWS),
            rng.choice(rels, LOCAL_ROWS),
            rng.choice(nodes, LOCAL_ROWS),
        ],
        axis=1,
    ).astype(np.int64)


def test_perf_live_ppr_refresh(benchmark, report, report_dir):
    bundle = catalog.mag(SCALE, 7)
    kg = bundle.kg
    _warm(kg)
    live = LiveGraph(kg)
    rng = np.random.default_rng(23)
    targets = rng.choice(kg.num_nodes, PPR_TARGETS, replace=False).tolist()

    live.ppr_top_k(targets, PPR_K)  # retain the warm working set
    live.ingest(_local_delta(kg, seed=29))

    # Bit-exactness first: cache + recomputed misses must equal a full
    # recomputation on the new epoch.
    refreshed = live.ppr_top_k(targets, PPR_K)
    adjacency = artifacts_for(live.kg).csr("both")
    recomputed = batch_ppr_top_k(adjacency, targets, PPR_K)
    assert refreshed == recomputed

    deltas = [_local_delta(kg, seed=31 + i) for i in range(ROUNDS + 1)]

    def measure():
        baseline = _median_seconds(
            lambda: batch_ppr_top_k(
                artifacts_for(live.kg).csr("both"), targets, PPR_K
            )
        )
        samples = []
        for arr in deltas:
            live.ingest(arr)
            start = time.perf_counter()
            live.ppr_top_k(targets, PPR_K)
            samples.append(time.perf_counter() - start)
        refresh = statistics.median(samples)
        return baseline, refresh, baseline / refresh

    baseline, refresh, speedup = benchmark.pedantic(measure, rounds=1, iterations=1)
    stats = live.stats()["ppr_cache"]

    report(
        "perf_live_ppr_refresh",
        (
            f"warm /ppr refresh after a {LOCAL_ROWS}-row localized ingest on "
            f"{kg.name} ({PPR_TARGETS} targets, k={PPR_K}):\n"
            f"  recompute every target  {baseline * 1e3:8.2f} ms\n"
            f"  delta-aware cache       {refresh * 1e3:8.2f} ms "
            f"(invalidated {stats['invalidated']} entries total)\n"
            f"  -> {speedup:.1f}x (floor {REFRESH_FLOOR}x)"
        ),
    )

    assert speedup >= REFRESH_FLOOR, (
        f"delta-aware PPR refresh only {speedup:.2f}x faster than full "
        f"recomputation (floor {REFRESH_FLOOR}x)"
    )

    _merge_benchmark(
        report_dir,
        "live_ppr_refresh",
        {
            "graph": kg.name,
            "scale": SCALE,
            "targets": PPR_TARGETS,
            "k": PPR_K,
            "delta_rows": LOCAL_ROWS,
            "rounds": ROUNDS,
            "baseline_ms": baseline * 1e3,
            "refresh_ms": refresh * 1e3,
            "speedup": speedup,
            "floor": REFRESH_FLOOR,
        },
    )
