"""Micro-benchmarks: the batch kernels vs their scalar reference loops.

Four hot paths, each timed two ways — the seed's per-item Python loop and
the vectorized batch kernel that replaced it:

* *ibs_influence_scoring* — ``getInfluenceScore`` + ``SelectTopK-Nodes``
  over every target of the NC catalog graphs: per-target scalar push vs
  :func:`repro.sampling.ppr.batch_ppr_top_k` (dense lock-step kernel).
* *ppr_sparse_frontier* — the same workload forced through the
  sparse-frontier kernel (the regime past ``DENSE_NODE_LIMIT`` where dense
  state is unaffordable) vs the scalar push it replaced as fallback.
* *shadow_ego_bfs* — ShaDowSAINT ego extraction for every target:
  per-root Python BFS vs the multi-root lock-step kernel.
* *sparql_multi_bound_join* — a triangle BGP whose third pattern has two
  bound variables: per-key index-lookup loop vs the composite-key batched
  ``searchsorted`` join.
* *path_enum_batch* — KagNet-style k-hop simple-path enumeration (the
  ``/paths`` unit) for many ``(src, dst)`` pairs: per-pair
  iterative-deepening DFS vs the frontier-lock-step batch kernel.

Every benchmark asserts the batch result is *identical* to the scalar
reference before timing is trusted, and appends its measurement to
``reports/BENCH_sampling.json`` together with its regression floor.  The
floors are deliberately far below the observed speedups so machine noise
cannot flake tier-1; ``benchmarks/check_perf_floors.py`` re-checks them as
the CI perf-guard step.
"""

import json
import os
import time

import numpy as np

from repro.bench.harness import render_table
from repro.datasets import catalog
from repro.kg.cache import artifacts_for
from repro.kg.graph import KnowledgeGraph
from repro.kg.triples import TripleStore
from repro.kg.vocabulary import Vocabulary
from repro.models.shadowsaint import extract_ego, extract_ego_batch
from repro.sampling.paths import enumerate_paths_batch, enumerate_paths_scalar
from repro.sampling.ppr import batch_ppr_top_k, ppr_top_k
from repro.sparql.executor import QueryExecutor
from repro.sparql.parser import parse_query

# Paper settings for IBS training (Section V-A3).
TOP_K = 16
ALPHA = 0.25
EPS = 2e-4

# Regression floors, recorded into BENCH_sampling.json next to the
# measured speedups (observed: dense ~6-9x, ego ~6-8x, join ~2-6x, sparse
# ~1.5-2.5x on its worst case — eps so loose every push touches most of
# the graph).  Floors sit far below so single-round timings cannot flake.
FLOORS = {
    "ibs_influence_scoring": 2.0,
    "ppr_sparse_frontier": 1.1,
    "shadow_ego_bfs": 2.0,
    "sparql_multi_bound_join": 1.2,
    "path_enum_batch": 3.0,
}
# Per-measurement no-regress guard (noise margin for single-round timings).
NOISE_MARGIN = 1.5

_WORKLOADS = [("MAG", "mag", "PV"), ("DBLP", "dblp", "PV"), ("YAGO", "yago4", "PC")]

_REPORT_NAME = "BENCH_sampling.json"

# The first _record of a pytest run discards any pre-existing report so the
# perf-guard (`check_perf_floors.py`) sees only *this* run's measurements —
# a deselected or renamed benchmark must surface as MISSING, not keep a
# stale committed entry green.
_fresh_report_started = False


def _record(report_dir, name, payload):
    """Merge one benchmark's payload (plus its floor) into the report JSON."""
    global _fresh_report_started
    path = os.path.join(report_dir, _REPORT_NAME)
    data = {"benchmarks": {}}
    if _fresh_report_started and os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                loaded = json.load(handle)
            if isinstance(loaded.get("benchmarks"), dict):
                data = loaded
        except (json.JSONDecodeError, OSError):
            pass
    _fresh_report_started = True
    payload = dict(payload)
    payload["floor"] = FLOORS[name]
    data["benchmarks"][name] = payload
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2)


def _speedup_rows(measurements):
    return [
        [
            m["graph"],
            str(m["num_nodes"]),
            str(m["num_edges"]),
            str(m["num_items"]),
            f"{m['scalar_seconds']:.3f}",
            f"{m['batch_seconds']:.3f}",
            f"{m['speedup']:.1f}x",
        ]
        for m in measurements
    ]


def _assert_floors(measurements, floor):
    largest = max(measurements, key=lambda m: m["num_edges"])
    assert largest["speedup"] >= floor, (
        f"batch kernel only {largest['speedup']:.1f}x faster than the scalar "
        f"loop on {largest['graph']} (floor {floor}x)"
    )
    for m in measurements:
        assert m["batch_seconds"] <= m["scalar_seconds"] * NOISE_MARGIN, m["graph"]
    return largest


def _measurement(graph, kg, num_items, scalar_seconds, batch_seconds):
    return {
        "graph": graph,
        "num_nodes": kg.num_nodes,
        "num_edges": kg.num_edges,
        "num_items": int(num_items),
        "scalar_seconds": scalar_seconds,
        "batch_seconds": batch_seconds,
        "speedup": scalar_seconds / max(batch_seconds, 1e-12),
    }


# -- 1. dense batch-PPR kernel (the IBS hot path) --


def _measure_ibs(scale="small", seed=7):
    measurements = []
    for label, dataset, task_name in _WORKLOADS:
        bundle = getattr(catalog, dataset)(scale, seed)
        kg = bundle.kg
        targets = np.asarray(bundle.task(task_name).target_nodes, dtype=np.int64)
        adjacency = artifacts_for(kg).csr("both")

        start = time.perf_counter()
        scalar = {
            int(target): ppr_top_k(adjacency, int(target), TOP_K, alpha=ALPHA, eps=EPS)
            for target in targets
        }
        scalar_seconds = time.perf_counter() - start

        start = time.perf_counter()
        batch = batch_ppr_top_k(adjacency, targets, TOP_K, alpha=ALPHA, eps=EPS)
        batch_seconds = time.perf_counter() - start

        assert batch == scalar, f"batch kernel diverged from the scalar oracle on {label}"
        measurements.append(
            _measurement(label, kg, len(targets), scalar_seconds, batch_seconds)
        )
    return measurements


def test_perf_ibs_batch_kernel(benchmark, report, report_dir):
    measurements = benchmark.pedantic(_measure_ibs, rounds=1, iterations=1)
    report(
        "perf_sampling",
        render_table(
            ["graph", "|V|", "|T|", "targets", "scalar(s)", "batch(s)", "speedup"],
            _speedup_rows(measurements),
            title=f"IBS influence scoring: scalar loop vs dense batch kernel (eps={EPS})",
        ),
    )
    largest = _assert_floors(measurements, FLOORS["ibs_influence_scoring"])
    _record(
        report_dir,
        "ibs_influence_scoring",
        {
            "top_k": TOP_K,
            "alpha": ALPHA,
            "eps": EPS,
            "speedup": largest["speedup"],
            "measurements": measurements,
        },
    )


# -- 2. sparse-frontier batch-PPR kernel (the past-DENSE_NODE_LIMIT regime) --


def _measure_sparse(scale="small", seed=7):
    bundle = catalog.mag(scale, seed)
    kg = bundle.kg
    targets = np.asarray(bundle.task("PV").target_nodes, dtype=np.int64)
    adjacency = artifacts_for(kg).csr("both")

    start = time.perf_counter()
    scalar = {
        int(target): ppr_top_k(adjacency, int(target), TOP_K, alpha=ALPHA, eps=EPS)
        for target in targets
    }
    scalar_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batch = batch_ppr_top_k(adjacency, targets, TOP_K, alpha=ALPHA, eps=EPS, kernel="sparse")
    batch_seconds = time.perf_counter() - start

    assert batch == scalar, "sparse-frontier kernel diverged from the scalar oracle"
    return [_measurement("MAG", kg, len(targets), scalar_seconds, batch_seconds)]


def test_perf_sparse_frontier_kernel(benchmark, report, report_dir):
    measurements = benchmark.pedantic(_measure_sparse, rounds=1, iterations=1)
    report(
        "perf_ppr_sparse",
        render_table(
            ["graph", "|V|", "|T|", "targets", "scalar(s)", "batch(s)", "speedup"],
            _speedup_rows(measurements),
            title="PPR past DENSE_NODE_LIMIT: scalar fallback vs sparse-frontier kernel",
        ),
    )
    largest = _assert_floors(measurements, FLOORS["ppr_sparse_frontier"])
    _record(
        report_dir,
        "ppr_sparse_frontier",
        {
            "top_k": TOP_K,
            "alpha": ALPHA,
            "eps": EPS,
            "speedup": largest["speedup"],
            "measurements": measurements,
        },
    )


# -- 3. multi-root lock-step ego BFS (ShaDowSAINT scopes) --


def _measure_ego(scale="small", seed=7, depth=2, fanout=8, salt=11):
    measurements = []
    for label, dataset, task_name in _WORKLOADS[:2]:
        bundle = getattr(catalog, dataset)(scale, seed)
        kg = bundle.kg
        targets = np.asarray(bundle.task(task_name).target_nodes, dtype=np.int64)
        artifacts_for(kg).csr("both")  # warm the shared CSR outside timing

        start = time.perf_counter()
        scalar = [
            extract_ego(kg, int(target), depth=depth, fanout=fanout, salt=salt)
            for target in targets
        ]
        scalar_seconds = time.perf_counter() - start

        start = time.perf_counter()
        batch = extract_ego_batch(kg, targets, depth=depth, fanout=fanout, salt=salt)
        batch_seconds = time.perf_counter() - start

        for expected, got in zip(scalar, batch):
            assert np.array_equal(expected.nodes, got.nodes), label
            assert np.array_equal(expected.src, got.src), label
            assert np.array_equal(expected.dst, got.dst), label
            assert np.array_equal(expected.rel, got.rel), label
        measurements.append(
            _measurement(label, kg, len(targets), scalar_seconds, batch_seconds)
        )
    return measurements


def test_perf_shadow_ego_bfs(benchmark, report, report_dir):
    measurements = benchmark.pedantic(_measure_ego, rounds=1, iterations=1)
    report(
        "perf_shadow_ego",
        render_table(
            ["graph", "|V|", "|T|", "roots", "scalar(s)", "batch(s)", "speedup"],
            _speedup_rows(measurements),
            title="ShaDowSAINT ego extraction: per-root BFS vs lock-step kernel",
        ),
    )
    largest = _assert_floors(measurements, FLOORS["shadow_ego_bfs"])
    _record(
        report_dir,
        "shadow_ego_bfs",
        {
            "depth": 2,
            "fanout": 8,
            "speedup": largest["speedup"],
            "measurements": measurements,
        },
    )


# -- 4. k-hop path enumeration (the KagNet /paths unit) --

PATH_MAX_HOPS = 3
PATH_MAX_PATHS = 64


def _measure_paths(scale="small", seed=7, num_pairs=250):
    measurements = []
    for label, dataset, task_name in _WORKLOADS[:2]:
        bundle = getattr(catalog, dataset)(scale, seed)
        kg = bundle.kg
        targets = np.asarray(bundle.task(task_name).target_nodes, dtype=np.int64)
        rng = np.random.default_rng(seed)
        pairs = np.stack(
            [rng.choice(targets, size=num_pairs),
             rng.choice(targets, size=num_pairs)],
            axis=1,
        )
        # Warm the shared hexastore and both code paths outside timing.
        enumerate_paths_scalar(
            kg, int(pairs[0, 0]), int(pairs[0, 1]), PATH_MAX_HOPS, PATH_MAX_PATHS
        )
        enumerate_paths_batch(kg, pairs[:2], PATH_MAX_HOPS, PATH_MAX_PATHS)

        start = time.perf_counter()
        scalar = [
            enumerate_paths_scalar(
                kg, int(src), int(dst), PATH_MAX_HOPS, PATH_MAX_PATHS
            )
            for src, dst in pairs
        ]
        scalar_seconds = time.perf_counter() - start

        start = time.perf_counter()
        batch = enumerate_paths_batch(kg, pairs, PATH_MAX_HOPS, PATH_MAX_PATHS)
        batch_seconds = time.perf_counter() - start

        assert batch == scalar, f"path batch kernel diverged from the DFS oracle on {label}"
        measurements.append(
            _measurement(label, kg, len(pairs), scalar_seconds, batch_seconds)
        )
    return measurements


def test_perf_path_enumeration(benchmark, report, report_dir):
    measurements = benchmark.pedantic(_measure_paths, rounds=1, iterations=1)
    report(
        "perf_path_enum",
        render_table(
            ["graph", "|V|", "|T|", "pairs", "scalar(s)", "batch(s)", "speedup"],
            _speedup_rows(measurements),
            title=(
                f"k-hop path enumeration: per-pair DFS vs batch kernel "
                f"(max_hops={PATH_MAX_HOPS}, max_paths={PATH_MAX_PATHS})"
            ),
        ),
    )
    largest = _assert_floors(measurements, FLOORS["path_enum_batch"])
    _record(
        report_dir,
        "path_enum_batch",
        {
            "max_hops": PATH_MAX_HOPS,
            "max_paths": PATH_MAX_PATHS,
            "speedup": largest["speedup"],
            "measurements": measurements,
        },
    )


# -- 5. composite-key multi-bound SPARQL join --

_TRIANGLE = "select ?a ?b ?c where { ?a <r0> ?b . ?b <r1> ?c . ?a <r2> ?c . }"


def _join_kg(num_nodes=1500, num_relations=3, num_triples=9000, seed=23):
    rng = np.random.default_rng(seed)
    triples = list(
        {
            (
                int(rng.integers(num_nodes)),
                int(rng.integers(num_relations)),
                int(rng.integers(num_nodes)),
            )
            for _ in range(num_triples)
        }
    )
    return KnowledgeGraph(
        node_vocab=Vocabulary([f"n{i}" for i in range(num_nodes)]),
        class_vocab=Vocabulary(["C0"]),
        relation_vocab=Vocabulary([f"r{i}" for i in range(num_relations)]),
        node_types=np.zeros(num_nodes, dtype=np.int64),
        triples=TripleStore.from_triples(triples),
    )


def _measure_join():
    kg = _join_kg()
    query = parse_query(_TRIANGLE)
    kg.hexastore.materialize()  # index build is shared; time the joins only

    start = time.perf_counter()
    scalar = QueryExecutor(kg, join_kernel="scalar").evaluate(query)
    scalar_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batch = QueryExecutor(kg, join_kernel="batch").evaluate(query)
    batch_seconds = time.perf_counter() - start

    assert batch.variables == scalar.variables
    for variable in batch.variables:
        assert np.array_equal(batch.columns[variable], scalar.columns[variable])
    return [_measurement("triangle-BGP", kg, batch.num_rows, scalar_seconds, batch_seconds)]


def test_perf_multi_bound_join(benchmark, report, report_dir):
    measurements = benchmark.pedantic(_measure_join, rounds=1, iterations=1)
    report(
        "perf_multi_bound_join",
        render_table(
            ["query", "|V|", "|T|", "rows", "scalar(s)", "batch(s)", "speedup"],
            _speedup_rows(measurements),
            title="Multi-bound-variable join: per-key loop vs composite batch_ranges",
        ),
    )
    largest = _assert_floors(measurements, FLOORS["sparql_multi_bound_join"])
    _record(
        report_dir,
        "sparql_multi_bound_join",
        {
            "query": _TRIANGLE,
            "speedup": largest["speedup"],
            "measurements": measurements,
        },
    )
