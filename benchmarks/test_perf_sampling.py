"""Micro-benchmark: the vectorized IBS hot path vs the seed implementation.

Times ``getInfluenceScore`` + ``SelectTopK-Nodes`` over every target of the
three NC catalog graphs two ways:

* *legacy* — the seed's per-target scalar push (one ``ppr_top_k`` call per
  target, the loop the ``ThreadPoolExecutor`` used to wrap), and
* *batch*  — :func:`repro.sampling.ppr.batch_ppr_top_k`, the lock-step
  vectorized kernel IBS now runs on.

Both must select identical influence pairs (the kernel replays the scalar
push schedule), and the batch kernel must be faster.  The asserted floor is
deliberately far below the observed ~6-9x so machine noise cannot flake
tier-1; the measured numbers land in ``reports/BENCH_sampling.json``.
"""

import json
import os
import time

import numpy as np

from repro.bench.harness import render_table
from repro.datasets import catalog
from repro.kg.cache import artifacts_for
from repro.sampling.ppr import batch_ppr_top_k, ppr_top_k

# Paper settings for IBS training (Section V-A3).
TOP_K = 16
ALPHA = 0.25
EPS = 2e-4

# Generous floor on the largest graph (observed ~6-9x on the catalog).
MIN_SPEEDUP = 2.0

_WORKLOADS = [("MAG", "mag", "PV"), ("DBLP", "dblp", "PV"), ("YAGO", "yago4", "PC")]


def _measure(scale="small", seed=7):
    measurements = []
    for label, dataset, task_name in _WORKLOADS:
        bundle = getattr(catalog, dataset)(scale, seed)
        kg = bundle.kg
        targets = np.asarray(bundle.task(task_name).target_nodes, dtype=np.int64)
        adjacency = artifacts_for(kg).csr("both")

        start = time.perf_counter()
        legacy = {
            int(target): ppr_top_k(adjacency, int(target), TOP_K, alpha=ALPHA, eps=EPS)
            for target in targets
        }
        legacy_seconds = time.perf_counter() - start

        start = time.perf_counter()
        batch = batch_ppr_top_k(adjacency, targets, TOP_K, alpha=ALPHA, eps=EPS)
        batch_seconds = time.perf_counter() - start

        assert batch == legacy, f"batch kernel diverged from the scalar oracle on {label}"
        measurements.append(
            {
                "graph": label,
                "num_nodes": kg.num_nodes,
                "num_edges": kg.num_edges,
                "num_targets": int(len(targets)),
                "legacy_seconds": legacy_seconds,
                "batch_seconds": batch_seconds,
                "speedup": legacy_seconds / max(batch_seconds, 1e-12),
            }
        )
    return measurements


def test_perf_ibs_batch_kernel(benchmark, report, report_dir):
    measurements = benchmark.pedantic(_measure, rounds=1, iterations=1)

    rows = [
        [
            m["graph"],
            str(m["num_nodes"]),
            str(m["num_edges"]),
            str(m["num_targets"]),
            f"{m['legacy_seconds']:.3f}",
            f"{m['batch_seconds']:.3f}",
            f"{m['speedup']:.1f}x",
        ]
        for m in measurements
    ]
    report(
        "perf_sampling",
        render_table(
            ["graph", "|V|", "|T|", "targets", "legacy(s)", "batch(s)", "speedup"],
            rows,
            title=f"IBS influence scoring: scalar loop vs batch kernel (eps={EPS})",
        ),
    )
    payload = {
        "benchmark": "ibs_influence_scoring",
        "top_k": TOP_K,
        "alpha": ALPHA,
        "eps": EPS,
        "measurements": measurements,
    }
    with open(os.path.join(report_dir, "BENCH_sampling.json"), "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)

    largest = max(measurements, key=lambda m: m["num_edges"])
    assert largest["speedup"] >= MIN_SPEEDUP, (
        f"batch kernel only {largest['speedup']:.1f}x faster than the scalar loop "
        f"on {largest['graph']} (floor {MIN_SPEEDUP}x)"
    )
    # Every graph must at least not regress (1.5x noise margin: timings are
    # single-round, so scheduler hiccups must not flake tier-1).
    for m in measurements:
        assert m["batch_seconds"] <= m["legacy_seconds"] * 1.5, m["graph"]
