"""Figure 1 — motivation: FG vs handcrafted OGBN-MAG vs KG-TOSA d1h1.

Paper shape (PV on MAG-42M, ShaDowSAINT & SeHGNN):
* the handcrafted subset reduces time and memory but *trades accuracy*;
* KG-TOSA d1h1 reduces time and memory while *matching or improving*
  accuracy relative to the handcrafted subset.
"""

from repro.bench import experiments
from repro.bench.harness import RUN_HEADERS, render_table

import pytest

pytestmark = pytest.mark.slow


def test_fig1_motivation(benchmark, report):
    result = benchmark.pedantic(
        experiments.fig1_motivation, kwargs={"scale": "tiny"}, rounds=1, iterations=1
    )
    lines = []
    for method, runs in result.sections.items():
        lines.append(
            render_table(RUN_HEADERS, [r.cells() for r in runs], title=f"Fig.1 {method} (PV/MAG)")
        )
    report("fig1_motivation", "\n\n".join(lines))

    for method, runs in result.sections.items():
        by_graph = {run.graph_label: run for run in runs}
        fg = by_graph["FG"]
        ogbn = by_graph["OGBN-MAG"]
        tosa = by_graph["KG-TOSAd1h1"]
        # Both subsets beat FG on time and memory.
        assert ogbn.train_seconds < fg.train_seconds
        assert tosa.total_seconds < fg.train_seconds
        assert ogbn.memory_mb < fg.memory_mb
        assert tosa.memory_mb < fg.memory_mb
        # The handcrafted subset trades accuracy; KG-TOSA does not.
        assert tosa.metric >= ogbn.metric - 0.02
