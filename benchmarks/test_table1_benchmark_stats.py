"""Table I — benchmark KG statistics.

Paper shape: five KGs; the general-purpose KGs carry far more node/edge
types than the academic ones (wikikg2 > YAGO > MAG > DBLP > YAGO3-10).
"""

from repro.bench import experiments
from repro.bench.harness import render_table


def test_table1_benchmark_stats(benchmark, report):
    result = benchmark.pedantic(
        experiments.table1_benchmark_stats, kwargs={"scale": "small"}, rounds=1, iterations=1
    )
    rows = result.tables["table1"]
    report(
        "table1_benchmark_stats",
        render_table(["KG", "#nodes", "#edges", "#n-type", "#e-type"], rows, title="Table I"),
    )
    assert len(rows) == 5
    types = {row[0].split("-")[0]: int(row[3]) for row in rows}
    assert types["wikikg2"] > types["YAGO"] > types["MAG"] > types["DBLP"]
