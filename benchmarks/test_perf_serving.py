"""Serving benchmark: coalescing scheduler vs serial one-at-a-time baseline.

A closed-loop load generator (``repro.serve.loadgen``) keeps ``CONCURRENCY``
extraction requests in flight against one registered catalog graph and
drains ``REQUESTS`` PPR-influence requests through two service
configurations:

* **serial** — ``coalesce=False``: every request runs the scalar oracle
  kernel alone, one request at a time (the no-serving-layer baseline).
* **coalesced** — the micro-batching scheduler merges concurrent requests
  into ``batch_ppr_top_k`` calls within a 64-request / 2 ms window.

Results must be *bit-identical* between the two modes (enforced inside
``compare_serving_modes``; the batch kernels are bit-exact against their
scalar oracles, so coalescing is a pure throughput win).  A second
benchmark drives the same request sequence through the **HTTP front end**
(``serve/http.py``) over real sockets and checks the coalescing win
survives the wire; a third runs the coalesced batches on the
**multi-process worker pool** (``serve/pool.py``) and checks the win
survives the process boundary (pickled parameters out, numpy result
buffers back).  All three ratios share the same serial single-process
baseline, so they are directly comparable.  A ``/predict`` benchmark
guards batched model inference against its scalar oracle, and a scaling
benchmark measures the **distributed tier's efficiency**: the same coalesced load
on a width-2 worker pool vs a width-1 pool (bit-identical answers
enforced; skipped on single-core hosts, where a second worker has no
core to run on — the CI ``distributed`` job enforces its floor on
multi-core runners).  The measured throughput ratios and their
regression floors are recorded in ``reports/BENCH_serving.json`` and
re-checked by ``check_perf_floors.py`` in the CI ``serve`` and
``distributed`` jobs; the full metrics
snapshot (queue depth, batch occupancy, tail latency, cache hits) is
dumped to ``reports/serving_metrics.json`` as a CI artifact.
"""

import json
import os

import numpy as np
import pytest

from repro.bench.harness import render_table
from repro.datasets import catalog
from repro.serve import (
    compare_distributed_scaling,
    compare_http_serving,
    compare_paths_serving,
    compare_pool_serving,
    compare_predict_serving,
    compare_serving_modes,
    run_load,
    run_paths_load,
)
from repro.serve.loadgen import ROW_HEADERS

# Acceptance regime: >= 64 requests in flight on a catalog graph.
CONCURRENCY = 64
REQUESTS = 512
TOP_K = 16
MAX_BATCH = 64
MAX_DELAY = 0.002

# Regression floor for the coalesced/serial throughput ratio, recorded into
# BENCH_serving.json next to the measurement.  Observed ~4-5x on the mag
# "small" catalog graph; the floor sits at half per the docs/ci.md policy so
# a noisy single-round CI timing cannot flake, while still guaranteeing the
# scheduler beats serial dispatch by a wide margin.
FLOOR = 2.0

# Floor for the HTTP front end vs the in-process serial baseline: the
# coalescing win must survive crossing a real socket (HTTP parsing + JSON
# serialization per request).  Observed ~3-3.5x on mag "small"; half per
# the same policy.
HTTP_FLOOR = 1.5

# Floor for the multi-process worker pool vs the same in-process serial
# baseline: the coalescing win must survive the process boundary (request
# parameters pickled out, numpy result buffers pickled back).  Observed
# ~4x on a single-core host — where the pool can only preserve the
# batching win, not add parallelism; multi-core hosts scale further with
# POOL_WORKERS.  Half-ish per the docs/ci.md policy, aligned with the
# HTTP floor so the three serving ratios stay comparable.
POOL_FLOOR = 1.5
POOL_WORKERS = 2

# Scaling-efficiency floor for the distributed tier: the same coalesced
# load on a width-2 pool vs a width-1 pool (both zero-copy off the mmap
# store, both bit-identical — enforced inside compare_distributed_scaling).
# Perfect scaling would be 2.0; the floor asks for 1.2 — enough to prove
# the second worker genuinely absorbs load (placement fans the coalesced
# batches across both shards) while tolerating CI hosts with few cores.
SCALING_FLOOR = 1.2
SCALING_WORKERS = 2

# Floor for batched /predict inference vs the scalar one-request oracle:
# the coalescer's extraction→inference pipeline answers micro-batched
# model queries (one vectorized forward/gather per window) while the
# baseline recomputes a full forward pass per request.  Observed ~180x
# on mag "small"; the floor sits an order of magnitude below that —
# further than the docs/ci.md half-the-observed policy — because the
# ratio scales with the model size the checkpoint happens to carry.
# 10x still proves the batching + logits-cache mechanism works.
PREDICT_FLOOR = 10.0

# Floor for coalesced /paths serving vs the serial scalar-DFS baseline:
# the micro-batched path-enumeration kernel (plus the live graph's
# per-pair cache) must beat one-request-at-a-time DFS even though each
# answer is a variable-length list of paths.  Observed ~4-8x on mag
# "small" random target pairs; 1.5x per the half-the-observed policy,
# aligned with the other front-end floors.
PATHS_FLOOR = 1.5
PATHS_REQUESTS = 256
PATHS_MAX_HOPS = 3
PATHS_MAX_PATHS = 64

_REPORT_NAME = "BENCH_serving.json"
_METRICS_NAME = "serving_metrics.json"


def _merge_benchmark(report_dir, name, entry):
    """Insert one benchmark entry into the shared serving report."""
    path = os.path.join(report_dir, _REPORT_NAME)
    payload = {"benchmarks": {}}
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    payload.setdefault("benchmarks", {})[name] = entry
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)


def test_perf_serving_coalesced_vs_serial(benchmark, report, report_dir):
    bundle = catalog.mag("small", 7)
    task = bundle.task("PV")
    rng = np.random.default_rng(7)
    targets = rng.choice(task.target_nodes, size=REQUESTS, replace=True)

    # Warm the shared artifacts and code paths outside the measured runs
    # (the first service otherwise pays one-off numpy/import costs).
    run_load(bundle.kg, targets[:CONCURRENCY], k=TOP_K, concurrency=CONCURRENCY)

    def measure():
        return compare_serving_modes(
            bundle.kg,
            targets,
            k=TOP_K,
            concurrency=CONCURRENCY,
            max_batch=MAX_BATCH,
            max_delay=MAX_DELAY,
        )

    serial, coalesced, speedup = benchmark.pedantic(measure, rounds=1, iterations=1)

    report(
        "perf_serving",
        render_table(
            ROW_HEADERS,
            [serial.as_row(), coalesced.as_row()],
            title=(
                f"closed-loop serving on {bundle.kg.name}: "
                f"{CONCURRENCY} in flight, window {MAX_BATCH}x{MAX_DELAY * 1e3:.0f}ms "
                f"-> {speedup:.1f}x"
            ),
        ),
    )

    # The closed loop really ran at the acceptance concurrency, coalescing
    # really formed multi-request batches, and nothing was shed.
    assert coalesced.batch_occupancy > 1.0
    assert serial.rejected == 0 and coalesced.rejected == 0
    assert speedup >= FLOOR, (
        f"coalescing scheduler only {speedup:.2f}x over the serial baseline "
        f"(floor {FLOOR}x)"
    )

    _merge_benchmark(
        report_dir,
        "serving_coalesced_throughput",
        {
            "graph": bundle.kg.name,
            "task": "PV",
            "top_k": TOP_K,
            "concurrency": CONCURRENCY,
            "requests": REQUESTS,
            "max_batch": MAX_BATCH,
            "max_delay_ms": MAX_DELAY * 1e3,
            "speedup": speedup,
            "floor": FLOOR,
            "serial": serial.as_json(),
            "coalesced": coalesced.as_json(),
        },
    )
    with open(os.path.join(report_dir, _METRICS_NAME), "w", encoding="utf-8") as handle:
        json.dump(coalesced.metrics, handle, indent=2)


def test_perf_serving_http_front_end(benchmark, report, report_dir):
    """The HTTP/SPARQL front end must retain the coalescing win on the wire."""
    bundle = catalog.mag("small", 7)
    task = bundle.task("PV")
    rng = np.random.default_rng(7)
    targets = rng.choice(task.target_nodes, size=REQUESTS, replace=True)

    # Warm artifacts and code paths outside the measured runs.
    run_load(bundle.kg, targets[:CONCURRENCY], k=TOP_K, concurrency=CONCURRENCY)

    def measure():
        return compare_http_serving(
            bundle.kg,
            targets,
            k=TOP_K,
            concurrency=CONCURRENCY,
            max_batch=MAX_BATCH,
            max_delay=MAX_DELAY,
        )

    serial, over_http, speedup = benchmark.pedantic(measure, rounds=1, iterations=1)

    report(
        "perf_serving_http",
        render_table(
            ROW_HEADERS,
            [serial.as_row(), over_http.as_row()],
            title=(
                f"closed-loop HTTP serving on {bundle.kg.name}: "
                f"{CONCURRENCY} connections -> {speedup:.1f}x over in-process serial"
            ),
        ),
    )

    # The wire loop really coalesced and nothing was shed.
    assert over_http.batch_occupancy > 1.0
    assert over_http.rejected == 0
    assert speedup >= HTTP_FLOOR, (
        f"HTTP front end only {speedup:.2f}x over the serial baseline "
        f"(floor {HTTP_FLOOR}x)"
    )

    _merge_benchmark(
        report_dir,
        "serving_http_throughput",
        {
            "graph": bundle.kg.name,
            "task": "PV",
            "top_k": TOP_K,
            "concurrency": CONCURRENCY,
            "requests": REQUESTS,
            "max_batch": MAX_BATCH,
            "max_delay_ms": MAX_DELAY * 1e3,
            "speedup": speedup,
            "floor": HTTP_FLOOR,
            "serial": serial.as_json(),
            "http": over_http.as_json(),
        },
    )


def test_perf_serving_worker_pool(benchmark, report, report_dir):
    """The sharded worker pool must retain the coalescing win across processes.

    The serial baseline is the same single-process scalar-oracle service
    the other two serving benchmarks use, so `serving_pool_throughput`
    is directly comparable with `serving_coalesced_throughput` and
    `serving_http_throughput`.  Pool startup and the one-time graph
    shipment happen outside the timed windows (see compare_pool_serving).
    """
    bundle = catalog.mag("small", 7)
    task = bundle.task("PV")
    rng = np.random.default_rng(7)
    targets = rng.choice(task.target_nodes, size=REQUESTS, replace=True)

    # Warm the in-process paths outside the measured runs (the pooled
    # path warms inside compare_pool_serving, before its timed window).
    run_load(bundle.kg, targets[:CONCURRENCY], k=TOP_K, concurrency=CONCURRENCY)

    def measure():
        return compare_pool_serving(
            bundle.kg,
            targets,
            k=TOP_K,
            concurrency=CONCURRENCY,
            workers=POOL_WORKERS,
            max_batch=MAX_BATCH,
            max_delay=MAX_DELAY,
        )

    serial, pooled, speedup = benchmark.pedantic(measure, rounds=1, iterations=1)

    report(
        "perf_serving_pool",
        render_table(
            ROW_HEADERS,
            [serial.as_row(), pooled.as_row()],
            title=(
                f"closed-loop pooled serving on {bundle.kg.name}: "
                f"{POOL_WORKERS} workers, {CONCURRENCY} in flight "
                f"-> {speedup:.1f}x over single-process serial"
            ),
        ),
    )

    # The pooled loop really coalesced across the process boundary and
    # nothing was shed.
    assert pooled.batch_occupancy > 1.0
    assert serial.rejected == 0 and pooled.rejected == 0
    assert speedup >= POOL_FLOOR, (
        f"worker pool only {speedup:.2f}x over the single-process serial "
        f"baseline (floor {POOL_FLOOR}x)"
    )

    _merge_benchmark(
        report_dir,
        "serving_pool_throughput",
        {
            "graph": bundle.kg.name,
            "task": "PV",
            "top_k": TOP_K,
            "concurrency": CONCURRENCY,
            "requests": REQUESTS,
            "workers": POOL_WORKERS,
            "max_batch": MAX_BATCH,
            "max_delay_ms": MAX_DELAY * 1e3,
            "speedup": speedup,
            "floor": POOL_FLOOR,
            "serial": serial.as_json(),
            "pooled": pooled.as_json(),
        },
    )


def test_perf_serving_paths_throughput(benchmark, report, report_dir):
    """Coalesced /paths serving vs the serial scalar-DFS baseline.

    A closed loop keeps CONCURRENCY path-enumeration requests in flight
    over random ``(src, dst)`` target pairs; the serial service answers
    each with the retained per-request DFS oracle, the coalesced service
    micro-batches compatible requests into single
    ``LiveGraph.paths_batch`` calls.  Answers are bit-identical at every
    request position (asserted inside ``compare_paths_serving``) — the
    recorded ratio is the pure scheduling + batch-kernel win the
    ``serving_paths_throughput`` floor guards.
    """
    bundle = catalog.mag("small", 7)
    task = bundle.task("PV")
    rng = np.random.default_rng(7)
    targets = np.asarray(task.target_nodes, dtype=np.int64)
    pairs = [
        (int(src), int(dst))
        for src, dst in zip(
            rng.choice(targets, size=PATHS_REQUESTS, replace=True),
            rng.choice(targets, size=PATHS_REQUESTS, replace=True),
        )
    ]

    # Warm the shared artifacts and both code paths outside the measured
    # runs (fresh services inside the comparison start with cold caches).
    run_paths_load(
        bundle.kg, pairs[:CONCURRENCY], max_hops=PATHS_MAX_HOPS,
        max_paths=PATHS_MAX_PATHS, concurrency=CONCURRENCY,
    )

    def measure():
        return compare_paths_serving(
            bundle.kg,
            pairs,
            max_hops=PATHS_MAX_HOPS,
            max_paths=PATHS_MAX_PATHS,
            concurrency=CONCURRENCY,
            max_batch=MAX_BATCH,
            max_delay=MAX_DELAY,
        )

    serial, coalesced, speedup = benchmark.pedantic(measure, rounds=1, iterations=1)

    report(
        "perf_serving_paths",
        render_table(
            ROW_HEADERS,
            [serial.as_row(), coalesced.as_row()],
            title=(
                f"closed-loop /paths serving on {bundle.kg.name}: "
                f"{CONCURRENCY} in flight, max_hops={PATHS_MAX_HOPS} "
                f"-> {speedup:.1f}x over the scalar-DFS serial baseline"
            ),
        ),
    )

    assert coalesced.batch_occupancy > 1.0
    assert serial.rejected == 0 and coalesced.rejected == 0
    assert speedup >= PATHS_FLOOR, (
        f"coalesced /paths only {speedup:.2f}x over the serial baseline "
        f"(floor {PATHS_FLOOR}x)"
    )

    _merge_benchmark(
        report_dir,
        "serving_paths_throughput",
        {
            "graph": bundle.kg.name,
            "task": "PV",
            "max_hops": PATHS_MAX_HOPS,
            "max_paths": PATHS_MAX_PATHS,
            "concurrency": CONCURRENCY,
            "requests": PATHS_REQUESTS,
            "max_batch": MAX_BATCH,
            "max_delay_ms": MAX_DELAY * 1e3,
            "speedup": speedup,
            "floor": PATHS_FLOOR,
            "serial": serial.as_json(),
            "paths-coalesced": coalesced.as_json(),
        },
    )


def test_perf_serving_distributed_scaling(benchmark, report, report_dir, tmp_path):
    """Scaling efficiency of widening the worker tier from 1 to 2.

    Both pools serve the same coalesced closed-loop load off the same
    memory-mapped artifact store; with no replica cap every worker owns
    the graph, so routing fans the coalesced batches round-robin across
    the tier.  Answers are bit-identical by construction (asserted inside
    ``compare_distributed_scaling``); the recorded ratio is pure scaling.
    """
    from repro.kg.store import save_artifacts

    cores = len(os.sched_getaffinity(0))
    if cores < SCALING_WORKERS:
        # A second worker cannot absorb load without a second core; the
        # ratio would measure the scheduler, not scaling.  The CI
        # `distributed` job runs on multi-core hosts and enforces the floor.
        pytest.skip(f"scaling needs >= {SCALING_WORKERS} cores, host has {cores}")

    bundle = catalog.mag("small", 7)
    task = bundle.task("PV")
    rng = np.random.default_rng(7)
    targets = rng.choice(task.target_nodes, size=REQUESTS, replace=True)
    store = str(tmp_path / "store")
    save_artifacts(bundle.kg, store)

    # Warm the in-process paths (artifact build, kernels) outside the
    # timed windows; each pool additionally warms inside the comparison.
    run_load(bundle.kg, targets[:CONCURRENCY], k=TOP_K, concurrency=CONCURRENCY)

    def measure():
        return compare_distributed_scaling(
            bundle.kg,
            targets,
            k=TOP_K,
            concurrency=CONCURRENCY,
            workers=SCALING_WORKERS,
            max_batch=MAX_BATCH,
            max_delay=MAX_DELAY,
            mmap_dir=store,
        )

    single, scaled, efficiency = benchmark.pedantic(measure, rounds=1, iterations=1)

    report(
        "perf_serving_scaling",
        render_table(
            ROW_HEADERS,
            [single.as_row(), scaled.as_row()],
            title=(
                f"closed-loop scaling on {bundle.kg.name}: "
                f"1 -> {SCALING_WORKERS} workers, {CONCURRENCY} in flight "
                f"-> {efficiency:.2f}x"
            ),
        ),
    )

    assert single.rejected == 0 and scaled.rejected == 0
    assert efficiency >= SCALING_FLOOR, (
        f"widening the pool 1 -> {SCALING_WORKERS} only scaled "
        f"{efficiency:.2f}x (floor {SCALING_FLOOR}x)"
    )

    _merge_benchmark(
        report_dir,
        "serving_distributed_scaling",
        {
            "graph": bundle.kg.name,
            "task": "PV",
            "top_k": TOP_K,
            "concurrency": CONCURRENCY,
            "requests": REQUESTS,
            "workers": SCALING_WORKERS,
            "max_batch": MAX_BATCH,
            "max_delay_ms": MAX_DELAY * 1e3,
            "speedup": efficiency,
            "floor": SCALING_FLOOR,
            "single": single.as_json(),
            "scaled": scaled.as_json(),
        },
    )


def test_perf_serving_predict_throughput(benchmark, report, report_dir, tmp_path):
    """Batched /predict inference vs the scalar one-request oracle.

    A checkpoint trained on the catalog graph answers PV classification
    queries through the coalescer's extraction→inference pipeline; the
    baseline runs the retained scalar oracle one request at a time.  Both
    modes must return bit-identical payloads at every request position
    (asserted inside ``compare_predict_serving``) — the speedup comes
    from micro-batching the model forward, the registry's logits cache
    and the bounded result cache, never from changing an answer.
    """
    from repro.models import ModelConfig, RGCNNodeClassifier
    from repro.nn.checkpoint import save_checkpoint
    from repro.training import TrainConfig, train_node_classifier

    bundle = catalog.mag("small", 7)
    task = bundle.task("PV")
    rng = np.random.default_rng(7)
    requests = [
        ("PV", int(node))
        for node in rng.choice(task.target_nodes, size=REQUESTS, replace=True)
    ]

    model = RGCNNodeClassifier(
        bundle.kg, task, ModelConfig(hidden_dim=16, num_layers=2, dropout=0.0, seed=7)
    )
    result = train_node_classifier(model, task, TrainConfig(epochs=3, eval_every=1))
    ckpt = str(tmp_path / "pv.ckpt")
    save_checkpoint(model, ckpt, metrics={"test_metric": result.test_metric})

    # Warm the shared artifacts and code paths outside the measured runs.
    run_load(bundle.kg, [item for _, item in requests[:CONCURRENCY]],
             k=TOP_K, concurrency=CONCURRENCY)

    def measure():
        return compare_predict_serving(
            bundle.kg,
            [ckpt],
            requests,
            k=TOP_K,
            concurrency=CONCURRENCY,
            max_batch=MAX_BATCH,
            max_delay=MAX_DELAY,
        )

    serial, coalesced, speedup = benchmark.pedantic(measure, rounds=1, iterations=1)

    report(
        "perf_serving_predict",
        render_table(
            ROW_HEADERS,
            [serial.as_row(), coalesced.as_row()],
            title=(
                f"closed-loop /predict serving on {bundle.kg.name}: "
                f"{CONCURRENCY} in flight -> {speedup:.1f}x over the scalar oracle"
            ),
        ),
    )

    assert serial.rejected == 0 and coalesced.rejected == 0
    assert speedup >= PREDICT_FLOOR, (
        f"batched /predict only {speedup:.2f}x over the scalar oracle "
        f"baseline (floor {PREDICT_FLOOR}x)"
    )

    _merge_benchmark(
        report_dir,
        "serving_predict_throughput",
        {
            "graph": bundle.kg.name,
            "task": "PV",
            "top_k": TOP_K,
            "concurrency": CONCURRENCY,
            "requests": REQUESTS,
            "max_batch": MAX_BATCH,
            "max_delay_ms": MAX_DELAY * 1e3,
            "speedup": speedup,
            "floor": PREDICT_FLOOR,
            "serial": serial.as_json(),
            "predict-coalesced": coalesced.as_json(),
        },
    )
