"""Figure 5 — biased random-walk sample quality.

Paper shape vs Figure 2: BRW lifts the target-vertex ratio and guarantees
every non-target vertex reaches a target (no disconnection).
"""

from repro.bench import experiments
from repro.bench.harness import render_table
from benchmarks.test_fig2_urw_pathology import QUALITY_HEADERS


def test_fig5_brw_quality(benchmark, report):
    result = benchmark.pedantic(
        experiments.fig5_brw_quality, kwargs={"scale": "small"}, rounds=1, iterations=1
    )
    rows = [r.as_row() for reports in result.quality.values() for r in reports]
    report("fig5_brw_quality", render_table(QUALITY_HEADERS, rows, title="Fig.5 BRW vs URW"))

    for label, reports in result.quality.items():
        brw, urw = reports
        assert brw.sampler == "BRW" and urw.sampler == "URW"
        # BRW fixes both Figure 2 pathologies.
        assert brw.target_ratio_pct > urw.target_ratio_pct
        assert brw.disconnected_pct == 0.0
