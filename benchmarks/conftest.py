"""Benchmark-suite plumbing.

Every benchmark regenerates one of the paper's tables/figures, prints it,
and persists it under ``benchmarks/reports/`` so the regenerated artifacts
survive pytest's output capture.  ``benchmark.pedantic(..., rounds=1)`` is
used throughout: experiments train models, so one measured round is the
meaningful unit.
"""

from __future__ import annotations

import os

import pytest

REPORT_DIR = os.path.join(os.path.dirname(__file__), "reports")


@pytest.fixture(scope="session")
def report_dir() -> str:
    os.makedirs(REPORT_DIR, exist_ok=True)
    return REPORT_DIR


@pytest.fixture
def report(report_dir):
    """Persist + print a regenerated table/figure."""

    def _write(name: str, text: str) -> None:
        path = os.path.join(report_dir, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"\n{text}\n[report saved to {path}]")

    return _write
