"""Table II — GNN task summary: six NC tasks, three LP tasks."""

from repro.bench import experiments
from repro.bench.harness import render_table


def test_table2_task_summary(benchmark, report):
    result = benchmark.pedantic(
        experiments.table2_task_summary, kwargs={"scale": "small"}, rounds=1, iterations=1
    )
    rows = result.tables["table2"]
    report(
        "table2_task_summary",
        render_table(["TT", "Name", "KG", "Split", "Ratio", "Metric"], rows, title="Table II"),
    )
    assert len(rows) == 9
    assert sum(1 for row in rows if row[0] == "NC") == 6
    assert sum(1 for row in rows if row[0] == "LP") == 3
    for row in rows:
        assert row[5] == ("accuracy" if row[0] == "NC" else "hits@10")
        assert row[3] in ("time", "random")
