"""Ablation — Algorithm 3's pagination: page size vs requests vs result.

The extraction result must be invariant to (batch size × workers), while
the number of endpoint requests scales inversely with the page size —
the trade-off the paper's compression/pagination optimisations manage.
"""

from repro.bench.harness import render_table
from repro.core.pattern import GraphPattern
from repro.core.sparql_method import SparqlTOSGExtractor
from repro.datasets import mag
from repro.sparql.endpoint import SparqlEndpoint


def _sweep(scale="small", seed=7):
    bundle = mag(scale, seed)
    task = bundle.task("PV")
    outcomes = []
    for batch_size, workers in [(100, 1), (100, 4), (1000, 1), (1000, 4), (100000, 1)]:
        endpoint = SparqlEndpoint(bundle.kg)
        extractor = SparqlTOSGExtractor(endpoint, batch_size=batch_size, workers=workers)
        subgraph, _mapping, stats = extractor.extract(task, GraphPattern(1, 1))
        outcomes.append((batch_size, workers, endpoint.stats.requests, stats, subgraph))
    return outcomes


def test_pagination_sweep(benchmark, report):
    outcomes = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rows = [
        [str(bs), str(w), str(requests), str(stats.pages), f"{stats.fetch_seconds:.3f}",
         str(sub.num_edges)]
        for bs, w, requests, stats, sub in outcomes
    ]
    report(
        "ablation_pagination",
        render_table(["batch", "workers", "requests", "pages", "fetch(s)", "|T'|"], rows,
                     title="Ablation: Alg.3 pagination"),
    )

    edges = {sub.num_edges for _bs, _w, _req, _stats, sub in outcomes}
    assert len(edges) == 1, "extraction must be invariant to pagination"
    small_pages = outcomes[0][3].pages
    large_pages = outcomes[-1][3].pages
    assert small_pages > large_pages
