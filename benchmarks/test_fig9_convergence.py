"""Figure 9 — convergence: accuracy vs time, FG vs KG′, six NC tasks.

Paper shape: with KG′ the epochs are much shorter, so GraphSAINT reaches
its achievable accuracy in a fraction of the FG wall-clock.
"""

from repro.bench import experiments
from repro.bench.harness import render_series

import pytest

pytestmark = pytest.mark.slow


def _time_to_reach(trace, target):
    for point in trace:
        if point.valid_metric >= target:
            return point.seconds
    return float("inf")


def test_fig9_convergence(benchmark, report):
    result = benchmark.pedantic(
        experiments.fig9_convergence, kwargs={"scale": "small"}, rounds=1, iterations=1
    )
    lines = []
    for label, runs in result.sections.items():
        series = {
            f"{label} {run.graph_label}": [(p.seconds, p.valid_metric) for p in run.trace]
            for run in runs
        }
        lines.append(render_series(series, title=f"Fig.9 {label}"))
    report("fig9_convergence", "\n\n".join(lines))

    faster = 0
    for label, runs in result.sections.items():
        fg, tosa = runs
        assert fg.graph_label == "FG"
        # Time per epoch is lower on KG' (the mechanism behind Figure 9).
        fg_epoch = fg.train_seconds / max(fg.epochs, 1)
        tosa_epoch = tosa.train_seconds / max(tosa.epochs, 1)
        assert tosa_epoch < fg_epoch, label
        # Time to reach 60% of FG's final accuracy.
        target = 0.6 * max(point.valid_metric for point in fg.trace)
        if _time_to_reach(tosa.trace, target) <= _time_to_reach(fg.trace, target):
            faster += 1
    # KG' converges at least as fast on the large majority of tasks.
    assert faster >= len(result.sections) - 1
