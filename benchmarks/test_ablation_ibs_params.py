"""Ablation — IBS parameters: top-k and PPR tolerance vs subgraph size.

Section IV-B: "The large k and bs lead to a large subgraph size that
requires larger training memory and time."
"""

import numpy as np

from repro.bench.harness import render_table
from repro.core.ibs import InfluenceBasedSampler
from repro.datasets import mag


def _sweep(scale="tiny", seed=7):
    bundle = mag(scale, seed)
    task = bundle.task("PV")
    outcomes = []
    for top_k in (2, 8, 24):
        sampler = InfluenceBasedSampler(bundle.kg, top_k=top_k, eps=2e-3)
        sampled = sampler.sample(task, np.random.default_rng(seed))
        outcomes.append((top_k, sampled))
    return outcomes


def test_ibs_topk_sweep(benchmark, report):
    outcomes = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rows = [
        [str(top_k), str(s.subgraph.num_nodes), str(s.subgraph.num_edges)]
        for top_k, s in outcomes
    ]
    report(
        "ablation_ibs_params",
        render_table(["top-k", "|V'|", "|T'|"], rows, title="Ablation: IBS top-k"),
    )
    sizes = [s.subgraph.num_nodes for _k, s in outcomes]
    assert sizes == sorted(sizes), "larger top-k must grow the partition"
    assert sizes[-1] > sizes[0]
