"""Ablation — KG completion vs per-predicate TOSG training (Section V-B2).

The paper: "performing KG completion using MorsE on DBLP-15M consumed
330 GB memory and 124 training hours compared with 11 GB and 9.8 hours
using the KG′ of KG-TOSA for the affiliatedWith edge type only ... we can
efficiently train LP tasks on a set of individual predicates in parallel."

Shape to reproduce: training one predicate on its TOSG costs a small
fraction of full-graph training, and even summing over several predicates
of interest the TOSG route wins on memory per task.
"""

import numpy as np

from repro.bench.harness import render_table, run_lp_method
from repro.core import extract_tosg
from repro.core.tasks import lp_task_from_predicate
from repro.datasets import dblp
from repro.models import ModelConfig
from repro.training import TrainConfig

import pytest

pytestmark = pytest.mark.slow

CONFIG = ModelConfig(hidden_dim=24, num_layers=1, lr=0.03, batch_size=256, margin=2.0)
TRAIN = TrainConfig(epochs=15, eval_every=5, num_eval_negatives=30, max_eval_examples=40)


def _completion_sweep(scale="small", seed=13, num_predicates=3):
    bundle = dblp(scale, seed)
    kg = bundle.kg
    # The most frequent predicates stand in for "predicates of interest".
    frequencies = np.bincount(kg.triples.p, minlength=kg.num_edge_types)
    top = np.argsort(frequencies)[::-1][:num_predicates]
    rows = []
    for predicate in top:
        task = lp_task_from_predicate(kg, int(predicate), rng=np.random.default_rng(seed))
        full = run_lp_method("MorsE", kg, task, CONFIG, TRAIN, graph_label="FG")
        tosa = extract_tosg(kg, task, method="sparql", direction=2, hops=1)
        oriented = run_lp_method(
            "MorsE", tosa.subgraph, tosa.task, CONFIG, TRAIN,
            graph_label="KG-TOSAd2h1", preprocess_seconds=tosa.extraction_seconds,
        )
        rows.append((kg.relation_vocab.term(int(predicate)), full, oriented))
    return rows


def test_kg_completion_ablation(benchmark, report):
    rows = benchmark.pedantic(_completion_sweep, rounds=1, iterations=1)
    table_rows = []
    for predicate, full, oriented in rows:
        table_rows.append([predicate, "FG", f"{full.total_seconds:.1f}s",
                           f"{full.memory_mb:.1f}", f"{full.metric:.2f}"])
        table_rows.append([predicate, "KG'", f"{oriented.total_seconds:.1f}s",
                           f"{oriented.memory_mb:.1f}", f"{oriented.metric:.2f}"])
    report(
        "ablation_kg_completion",
        render_table(["predicate", "graph", "time", "mem(MB)", "hits@10"], table_rows,
                     title="Ablation: per-predicate TOSG vs full-graph completion (MorsE)"),
    )

    # Memory: the per-predicate TOSG strictly shrinks every task's
    # working set — the 330 GB → 11 GB component of the paper's claim.
    for predicate, full, oriented in rows:
        assert oriented.memory_mb < full.memory_mb, predicate
        # Time: at synthetic scale the FG epoch is already sub-second, so
        # extraction overhead cannot amortise; assert no blow-up here (the
        # wall-clock win is a large-scale effect, see EXPERIMENTS.md).
        assert oriented.total_seconds < full.total_seconds * 3.0, predicate
