"""Figure 7 — LP tasks × {RGCN, MorsE, LHGNN} × {FG, KG-TOSA d2h1}.

Paper shape:
* on the DBLP task, full-batch RGCN exceeds the memory budget on FG (the
  3 TB OOM) but trains comfortably on KG′;
* LHGNN, the heaviest method, does not finish on the two larger KGs' FG;
* methods that run reduce time and memory on KG′ with comparable or
  better Hits@10.
"""

from repro.bench import experiments
from repro.bench.harness import RUN_HEADERS, render_table

import pytest

pytestmark = pytest.mark.slow


def test_fig7_lp_tasks(benchmark, report):
    result = benchmark.pedantic(
        experiments.fig7_lp_tasks, kwargs={"scale": "small"}, rounds=1, iterations=1
    )
    lines = [
        render_table(RUN_HEADERS, [r.cells() for r in runs], title=f"Fig.7 {label}")
        for label, runs in result.sections.items()
    ]
    report("fig7_lp_tasks", "\n\n".join(lines))

    by_key = {
        (label, run.method, run.graph_label): run
        for label, runs in result.sections.items()
        for run in runs
    }

    # The paper's RGCN-OOM event on DBLP FG — and its rescue by KG′.
    assert by_key[("AA/DBLP", "RGCN", "FG")].oom
    assert not by_key[("AA/DBLP", "RGCN", "KG-TOSAd2h1")].oom

    # LHGNN does not finish on the larger KGs' full graphs.
    assert by_key[("PO/wikikg2", "LHGNN", "FG")].oom
    assert by_key[("AA/DBLP", "LHGNN", "FG")].oom
    # ...but completes the small CA task on both graphs.
    assert not by_key[("CA/YAGO3-10", "LHGNN", "FG")].oom

    # MorsE survives everywhere and KG′ cuts its footprint.
    for label in ("CA/YAGO3-10", "PO/wikikg2", "AA/DBLP"):
        fg = by_key[(label, "MorsE", "FG")]
        tosa = by_key[(label, "MorsE", "KG-TOSAd2h1")]
        assert not fg.oom and not tosa.oom
        assert tosa.memory_mb < fg.memory_mb
        assert tosa.train_seconds < fg.train_seconds
        assert tosa.metric >= fg.metric - 0.2
