"""Figure 6 — NC tasks × four methods × {FG, KG-TOSA d1h1}.

Paper shape: with KG′ every method reduces training memory and the
sampling-based methods reduce training time, at comparable-or-better
accuracy (the paper reports improvements up to 11 %; we accept a small
tolerance band since the substrate differs).
"""

from repro.bench import experiments
from repro.bench.harness import RUN_HEADERS, render_table

import pytest

pytestmark = pytest.mark.slow

# Two test-set examples at tiny scale (~0.077 each) plus margin: accuracy
# differences below this are quantisation noise, not signal.
ACCURACY_TOLERANCE = 0.2


def test_fig6_nc_tasks(benchmark, report):
    result = benchmark.pedantic(
        experiments.fig6_nc_tasks, kwargs={"scale": "tiny"}, rounds=1, iterations=1
    )
    lines = [
        render_table(RUN_HEADERS, [r.cells() for r in runs], title=f"Fig.6 {label}")
        for label, runs in result.sections.items()
    ]
    report("fig6_nc_tasks", "\n\n".join(lines))

    for label, runs in result.sections.items():
        by_key = {(run.method, run.graph_label): run for run in runs}
        for method in ("RGCN", "GraphSAINT", "ShaDowSAINT", "SeHGNN"):
            fg = by_key[(method, "FG")]
            tosa = by_key[(method, "KG-TOSAd1h1")]
            assert tosa.memory_mb < fg.memory_mb, f"{label}/{method} memory"
            assert tosa.num_parameters < fg.num_parameters, f"{label}/{method} params"
            assert tosa.metric >= fg.metric - ACCURACY_TOLERANCE, f"{label}/{method} accuracy"
            if method != "RGCN":
                # Sampling methods gain the most; RGCN "benefits the least
                # from KG-TOSA in terms of training time" (Section V-B1).
                assert tosa.total_seconds < fg.train_seconds, f"{label}/{method} time"
