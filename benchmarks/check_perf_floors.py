#!/usr/bin/env python
"""CI perf-guard: verify recorded measurements against their floors/ceilings.

Reads the benchmark reports written under ``benchmarks/reports/`` — each
benchmark records its measurement *and* its regression bound — and exits
non-zero if any bound is violated or a report is missing/incomplete.
Entries carry either a ``speedup``/``floor`` pair (ratios that must stay
high) or a ``value``/``ceiling`` pair (gauges that must stay low, e.g.
resident bytes).  Guarded reports:

* ``BENCH_sampling.json`` (``test_perf_sampling.py``): the batch kernels
  vs their scalar reference loops (PPR dense + sparse, ego BFS, the
  multi-bound SPARQL join, and k-hop path enumeration vs its DFS oracle).
* ``BENCH_serving.json`` (``test_perf_serving.py``): the coalescing
  scheduler vs the serial one-request-at-a-time serving baseline, the
  HTTP/SPARQL front end vs the same serial baseline (the coalescing win
  must survive the wire), the multi-process sharded worker pool vs
  the same serial baseline (the win must survive the process boundary),
  batched ``/predict`` model inference vs its scalar one-request
  oracle, coalesced ``/paths`` enumeration vs its serial scalar-DFS
  baseline, and the distributed tier's scaling efficiency (the same
  coalesced load on a width-2 pool vs a width-1 pool, bit-identical
  answers enforced).
* ``BENCH_artifacts.json`` (``test_perf_artifacts.py``): worker warm time
  off the memory-mapped artifact store vs pickled-graph registration,
  and the per-worker resident-memory ceiling of the zero-copy path.
* ``BENCH_live.json`` (``test_perf_live.py``): one live-graph epoch
  extension (incremental CSR/hexastore merges) vs a cold artifact
  rebuild at the same epoch, and the delta-aware warm-``/ppr`` refresh
  after a localized ingest vs recomputing every retained target.

Run after the perf benchmarks::

    PYTHONPATH=src python -m pytest -q benchmarks/test_perf_sampling.py \
        benchmarks/test_perf_serving.py benchmarks/test_perf_artifacts.py
    python benchmarks/check_perf_floors.py            # all reports
    python benchmarks/check_perf_floors.py BENCH_serving.json   # one report
    # one benchmark out of a report (CI jobs that only run a slice):
    python benchmarks/check_perf_floors.py BENCH_serving.json:serving_distributed_scaling

Bounds are maintained next to each benchmark (``FLOORS`` in
``test_perf_sampling.py``, ``FLOOR`` in ``test_perf_serving.py``,
``WARM_FLOOR``/``RESIDENT_CEILING`` in ``test_perf_artifacts.py``,
``EXTEND_FLOOR``/``REFRESH_FLOOR`` in ``test_perf_live.py``) — see
``docs/ci.md`` for the update policy.
"""

import json
import os
import sys

REPORTS = {
    "BENCH_sampling.json": (
        "ibs_influence_scoring",
        "ppr_sparse_frontier",
        "shadow_ego_bfs",
        "sparql_multi_bound_join",
        "path_enum_batch",
    ),
    "BENCH_serving.json": (
        "serving_coalesced_throughput",
        "serving_http_throughput",
        "serving_pool_throughput",
        "serving_predict_throughput",
        "serving_paths_throughput",
        "serving_distributed_scaling",
    ),
    "BENCH_artifacts.json": (
        "artifact_warm_time",
        "artifact_resident_memory",
    ),
    "BENCH_live.json": (
        "live_epoch_extend",
        "live_ppr_refresh",
    ),
}

REPORT_DIR = os.path.join(os.path.dirname(__file__), "reports")


def check_report(path: str, expected) -> list:
    """Print one report's floor checks; return the failing benchmark names."""
    if not os.path.exists(path):
        print(f"perf-guard: {path} not found — run the perf benchmarks first")
        return [f"{os.path.basename(path)} (missing)"]
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    benchmarks = data.get("benchmarks", {})
    failures = []
    for name in expected:
        entry = benchmarks.get(name)
        if entry is None:
            print(f"{name:30s} MISSING from report")
            failures.append(name)
            continue
        if "ceiling" in entry:
            value, ceiling = entry["value"], entry["ceiling"]
            ok = value <= ceiling
            status = "ok" if ok else "ABOVE CEILING"
            print(
                f"{name:30s} value {value / 1e6:8.2f} MB"
                f"  ceiling {ceiling / 1e6:.2f} MB  {status}"
            )
        else:
            speedup, floor = entry["speedup"], entry["floor"]
            ok = speedup >= floor
            status = "ok" if ok else "BELOW FLOOR"
            print(f"{name:30s} speedup {speedup:6.2f}x  floor {floor:.2f}x  {status}")
        if not ok:
            failures.append(name)
    return failures


def main(argv=None) -> int:
    selected = argv if argv else sorted(REPORTS)
    failures = []
    for report_name in selected:
        # `REPORT.json:benchmark` narrows the check to one entry, for CI
        # jobs that only run a slice of a report's benchmarks.
        report_name, _, only = report_name.partition(":")
        expected = REPORTS.get(report_name)
        if expected is None:
            print(f"perf-guard: unknown report {report_name!r}; know {sorted(REPORTS)}")
            return 2
        if only:
            if only not in expected:
                print(
                    f"perf-guard: unknown benchmark {only!r} in {report_name}; "
                    f"know {sorted(expected)}"
                )
                return 2
            expected = (only,)
        failures.extend(check_report(os.path.join(REPORT_DIR, report_name), expected))
    if failures:
        print(f"perf-guard: {len(failures)} benchmark(s) regressed: {', '.join(failures)}")
        return 1
    print("perf-guard: all recorded measurements within their bounds")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
