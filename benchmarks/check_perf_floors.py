#!/usr/bin/env python
"""CI perf-guard: verify recorded batch-kernel speedups against their floors.

Reads ``benchmarks/reports/BENCH_sampling.json`` (written by
``benchmarks/test_perf_sampling.py``, which records each benchmark's
measured speedup *and* its regression floor) and exits non-zero if any
speedup fell below its floor or the report is missing/incomplete.  Run it
after the perf benchmarks:

    PYTHONPATH=src python -m pytest -q benchmarks/test_perf_sampling.py
    python benchmarks/check_perf_floors.py

Floors are maintained in ``FLOORS`` in ``test_perf_sampling.py`` — see
``docs/ci.md`` for the update policy.
"""

import json
import os
import sys

EXPECTED = (
    "ibs_influence_scoring",
    "ppr_sparse_frontier",
    "shadow_ego_bfs",
    "sparql_multi_bound_join",
)

REPORT = os.path.join(os.path.dirname(__file__), "reports", "BENCH_sampling.json")


def main() -> int:
    if not os.path.exists(REPORT):
        print(f"perf-guard: {REPORT} not found — run the perf benchmarks first")
        return 1
    with open(REPORT, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    benchmarks = data.get("benchmarks", {})
    failures = []
    for name in EXPECTED:
        entry = benchmarks.get(name)
        if entry is None:
            print(f"{name:26s} MISSING from report")
            failures.append(name)
            continue
        speedup, floor = entry["speedup"], entry["floor"]
        ok = speedup >= floor
        status = "ok" if ok else "BELOW FLOOR"
        print(f"{name:26s} speedup {speedup:6.2f}x  floor {floor:.2f}x  {status}")
        if not ok:
            failures.append(name)
    if failures:
        print(f"perf-guard: {len(failures)} benchmark(s) regressed: {', '.join(failures)}")
        return 1
    print("perf-guard: all batch-kernel speedups at or above their floors")
    return 0


if __name__ == "__main__":
    sys.exit(main())
