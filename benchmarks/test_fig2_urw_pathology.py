"""Figure 2 — uniform random-walk sample pathology.

Paper shape: URW samples (h=2, 20 roots) contain a low ratio of target
vertices and include vertices disconnected from every target.
"""

from repro.bench import experiments
from repro.bench.harness import render_table

QUALITY_HEADERS = [
    "sampler", "task", "|V'|", "VT%", "|C'|", "|R'|", "discon%", "avg.dist", "entropy",
]


def test_fig2_urw_pathology(benchmark, report):
    result = benchmark.pedantic(
        experiments.fig2_urw_pathology, kwargs={"scale": "small"}, rounds=1, iterations=1
    )
    rows = [r.as_row() for reports in result.quality.values() for r in reports]
    report("fig2_urw_pathology", render_table(QUALITY_HEADERS, rows, title="Fig.2 URW samples"))

    for label, reports in result.quality.items():
        urw = reports[0]
        # Type-blind roots leave targets underrepresented...
        assert urw.target_ratio_pct < 60.0
    # ...and the noise-dominated YAGO sample is the most pathological.
    yago = result.quality["CG/YAGO"][0]
    assert yago.target_ratio_pct < 30.0
    assert yago.disconnected_pct > 0.0
