"""Figure 8 — BRW vs IBS vs the four SPARQL (d, h) variations.

Paper shape: the SPARQL-based variations achieve comparable accuracy to
BRW/IBS while the sampling baselines pay a much larger extraction
(preprocessing) cost; KG-TOSA d1h1 gives the best cost/quality balance.
"""

from repro.bench import experiments
from repro.bench.harness import RUN_HEADERS, render_table

import pytest

pytestmark = pytest.mark.slow


def test_fig8_extraction_methods(benchmark, report):
    result = benchmark.pedantic(
        experiments.fig8_extraction_methods, kwargs={"scale": "small"}, rounds=1, iterations=1
    )
    lines = [
        render_table(RUN_HEADERS, [r.cells() for r in runs], title=f"Fig.8 {label}")
        for label, runs in result.sections.items()
    ]
    report("fig8_extraction_methods", "\n\n".join(lines))

    for label, runs in result.sections.items():
        by_graph = {run.graph_label: run for run in runs}
        ibs = by_graph["IBS"]
        d1h1 = by_graph["KG-TOSAd1h1"]
        # The headline claim of Section IV-C: index-backed extraction costs
        # far less preprocessing than influence-based sampling.
        assert d1h1.preprocess_seconds < ibs.preprocess_seconds, label
        # Quality stays comparable: accuracy within a small band of the
        # best extraction method for the task.
        best = max(run.metric for run in runs)
        assert d1h1.metric >= best - 0.2, label
        # Larger patterns extract supersets: d2h2 subgraph time >= d1h1.
        assert by_graph["KG-TOSAd2h2"].preprocess_seconds >= 0.0
