"""Full-batch RGCN (Schlichtkrull et al., ESWC 2018).

The paper's full-batch baseline: no sampling, every node participates in
every epoch (Section V-B1: "RGCN is a full-batch GNN method without
performing any sampling ... RGCN has the shortest training time, but it
consumes excessive memory").  The modeled-memory registration reflects
that: activations scale with ``|V| × hidden × |R|`` because the reference
implementation materialises one message matrix per relation.

Two heads are provided, matching the paper's usage: a node classifier
(``RGCN+`` in the paper's NC experiments) and a DistMult-decoded link
predictor (``RGCN-PYG`` in the LP experiments).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.core.tasks import LinkPredictionTask, NodeClassificationTask
from repro.models.base import ModelConfig, RGCNStack
from repro.nn.functional import cross_entropy, margin_ranking_loss
from repro.nn.layers import Embedding, Module
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, no_grad
from repro.training.resources import ResourceMeter, activation_bytes
from repro.kg.cache import artifacts_for


class RGCNNodeClassifier(Module):
    """Full-batch RGCN for single-label node classification."""

    name = "RGCN"

    def __init__(
        self,
        kg: KnowledgeGraph,
        task: NodeClassificationTask,
        config: ModelConfig,
        meter: Optional[ResourceMeter] = None,
    ):
        super().__init__()
        self.kg = kg
        self.task = task
        self.config = config
        rng = config.rng()
        self.adjacency = artifacts_for(kg).hetero(add_reverse=True, normalize=True)
        num_relations = self.adjacency.num_relations
        self.embedding = Embedding(kg.num_nodes, config.hidden_dim, rng)
        dims = [config.hidden_dim] * config.num_layers + [task.num_labels]
        self.stack = RGCNStack(num_relations, dims, rng, dropout=config.dropout)
        self.optimizer = Adam(self.parameters(), lr=config.lr, weight_decay=config.weight_decay)
        if meter is not None:
            meter.register("graph", self.adjacency.nbytes())
            meter.register("parameters", self.parameter_nbytes())
            meter.register("optimizer", 2 * self.parameter_nbytes())
            meter.register(
                "activations",
                activation_bytes(
                    kg.num_nodes,
                    config.hidden_dim,
                    config.num_layers,
                    num_relations=num_relations,
                ),
            )

    def _forward_all(self) -> Tensor:
        """Full-graph logits for every node."""
        return self.stack(self.embedding.all(), self.adjacency.matrices)

    def train_epoch(self, rng: np.random.Generator) -> float:
        """One full-batch gradient step over the training targets."""
        self.train()
        logits = self._forward_all().gather_rows(
            self.task.target_nodes[self.task.split.train]
        )
        loss = cross_entropy(logits, self.task.labels[self.task.split.train])
        self.optimizer.zero_grad()
        loss.backward()
        self.optimizer.step()
        return loss.item()

    def predict_logits(self) -> np.ndarray:
        """Logits for every task target position (inference mode)."""
        self.eval()
        with no_grad():
            logits = self._forward_all().gather_rows(self.task.target_nodes)
        self.train()
        return logits.numpy()


class RGCNLinkPredictor(Module):
    """Full-batch RGCN encoder with a DistMult decoder (the RGCN LP setup)."""

    name = "RGCN"

    def __init__(
        self,
        kg: KnowledgeGraph,
        task: LinkPredictionTask,
        config: ModelConfig,
        meter: Optional[ResourceMeter] = None,
    ):
        super().__init__()
        self.kg = kg
        self.task = task
        self.config = config
        rng = config.rng()
        self.adjacency = artifacts_for(kg).hetero(add_reverse=True, normalize=True)
        num_relations = self.adjacency.num_relations
        self.embedding = Embedding(kg.num_nodes, config.hidden_dim, rng)
        dims = [config.hidden_dim] * (config.num_layers + 1)
        self.stack = RGCNStack(num_relations, dims, rng, dropout=config.dropout)
        # DistMult relation diagonal for the task predicate.
        self.relation_embedding = Embedding(max(kg.num_edge_types, 1), config.hidden_dim, rng)
        self.optimizer = Adam(self.parameters(), lr=config.lr, weight_decay=config.weight_decay)
        self._cached: Optional[np.ndarray] = None
        if meter is not None:
            meter.register("graph", self.adjacency.nbytes())
            meter.register("parameters", self.parameter_nbytes())
            meter.register("optimizer", 2 * self.parameter_nbytes())
            meter.register(
                "activations",
                activation_bytes(
                    kg.num_nodes,
                    config.hidden_dim,
                    config.num_layers,
                    num_relations=num_relations,
                ),
            )

    def _encode(self) -> Tensor:
        return self.stack(self.embedding.all(), self.adjacency.matrices)

    def _distmult(self, h: Tensor, t: Tensor) -> Tensor:
        relation = self.relation_embedding.weight.gather_rows(
            np.full(h.shape[0], self.task.predicate, dtype=np.int64)
        )
        return (h * relation * t).sum(axis=1)

    def train_epoch(self, rng: np.random.Generator) -> float:
        """One full-graph encode + margin step over sampled train edges."""
        self.train()
        self._cached = None
        train_edges = self.task.edges[self.task.split.train]
        if len(train_edges) == 0:
            return 0.0
        batch = min(self.config.batch_size, len(train_edges))
        chosen = train_edges[rng.choice(len(train_edges), size=batch, replace=False)]
        pool = self.candidate_pool()
        negatives = rng.choice(pool, size=batch)
        embeddings = self._encode()
        heads = embeddings.gather_rows(chosen[:, 0])
        tails = embeddings.gather_rows(chosen[:, 1])
        corrupt = embeddings.gather_rows(negatives)
        positive = self._distmult(heads, tails)
        negative = self._distmult(heads, corrupt)
        loss = margin_ranking_loss(positive, negative, margin=self.config.margin)
        self.optimizer.zero_grad()
        loss.backward()
        self.optimizer.step()
        return loss.item()

    def candidate_pool(self) -> np.ndarray:
        """Tail candidates: every node of the task's tail class."""
        pool = self.kg.nodes_of_type(int(self.task.tail_class))
        return pool if len(pool) else np.arange(self.kg.num_nodes, dtype=np.int64)

    def _node_embeddings(self) -> np.ndarray:
        if self._cached is None:
            self.eval()
            with no_grad():
                self._cached = self._encode().numpy()
            self.train()
        return self._cached

    def score_pairs(self, heads: np.ndarray, tails: np.ndarray) -> np.ndarray:
        """DistMult scores (higher = more plausible)."""
        embeddings = self._node_embeddings()
        relation = self.relation_embedding.weight.data[int(self.task.predicate)]
        return (embeddings[heads] * relation * embeddings[tails]).sum(axis=1)
