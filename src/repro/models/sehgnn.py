"""SeHGNN (Yang et al., AAAI 2023): simple and efficient heterogeneous GNN.

SeHGNN's signature optimisation — the one the paper highlights in Section
II-B — is that neighbour aggregation happens **once, in preprocessing**:
for every metapath, mean-aggregated neighbour features of the target nodes
are precomputed, and training reduces to a per-target MLP with a semantic
attention over the metapath channels.  Training cost is therefore
independent of graph size after preprocessing, but the preprocessing and
the model width scale with the number of metapaths, i.e. with |R| — which
is exactly the dependency KG-TOSA shrinks.

Metapaths used: every relation in both orientations (length 1) plus the
``num_two_hop`` most frequent length-2 compositions around the targets.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.kg.graph import KnowledgeGraph
from repro.core.tasks import NodeClassificationTask
from repro.models.base import ModelConfig
from repro.nn.functional import cross_entropy
from repro.nn.layers import Linear, Module, Parameter
from repro.nn.init import xavier_uniform
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, no_grad, stack
from repro.training.resources import ResourceMeter
from repro.kg.cache import artifacts_for
from repro.transform.features import xavier_features


class SeHGNNClassifier(Module):
    """Pre-aggregated metapath features + semantic attention + MLP."""

    name = "SeHGNN"

    def __init__(
        self,
        kg: KnowledgeGraph,
        task: NodeClassificationTask,
        config: ModelConfig,
        meter: Optional[ResourceMeter] = None,
        feature_dim: int = 32,
        num_two_hop: int = 4,
    ):
        super().__init__()
        self.kg = kg
        self.task = task
        self.config = config
        rng = config.rng()
        self.feature_dim = feature_dim

        adjacency = artifacts_for(kg).hetero(add_reverse=True, normalize=True)
        features = xavier_features(kg.num_nodes, feature_dim, rng)
        self.metapath_names, metapath_feats = self._preaggregate(
            adjacency.matrices, adjacency.relation_names, features, num_two_hop
        )
        # (num_targets, num_metapaths, feature_dim) — frozen after preproc.
        self.metapath_features = np.stack(metapath_feats, axis=1)
        self.num_metapaths = len(self.metapath_names)

        hidden = config.hidden_dim
        self.projections = [
            Linear(feature_dim, hidden, rng) for _ in range(self.num_metapaths)
        ]
        for index, projection in enumerate(self.projections):
            setattr(self, f"proj_{index}", projection)
        self.attention_query = Parameter(xavier_uniform((hidden, 1), rng), name="attn_q")
        self.classifier = Linear(hidden, task.num_labels, rng)
        self.optimizer = Adam(self.parameters(), lr=config.lr, weight_decay=config.weight_decay)

        if meter is not None:
            meter.register("graph", adjacency.nbytes())
            meter.register("features", int(features.nbytes))
            meter.register("metapath-features", int(self.metapath_features.nbytes))
            meter.register("parameters", self.parameter_nbytes())
            meter.register("optimizer", 2 * self.parameter_nbytes())

    def _preaggregate(
        self,
        matrices: List[sp.csr_matrix],
        names: List[str],
        features: np.ndarray,
        num_two_hop: int,
    ) -> Tuple[List[str], List[np.ndarray]]:
        """One-shot neighbour aggregation per metapath (rows = targets)."""
        targets = self.task.target_nodes
        target_rows = [m[targets] for m in matrices]
        metapath_names: List[str] = ["self"]
        aggregated: List[np.ndarray] = [features[targets]]
        for name, rows in zip(names, target_rows):
            metapath_names.append(name)
            aggregated.append(np.asarray(rows @ features))
        # Two-hop compositions: rank first hops by how many target rows they
        # reach, compose the best with every relation's full matrix.
        coverage = [int((rows.getnnz(axis=1) > 0).sum()) for rows in target_rows]
        first_hops = np.argsort(coverage)[::-1][:num_two_hop]
        for first in first_hops:
            if coverage[first] == 0:
                continue
            second = int(np.argmax(coverage))
            composed = target_rows[first] @ matrices[second]
            metapath_names.append(f"{names[first]}->{names[second]}")
            aggregated.append(np.asarray(composed @ features))
        return metapath_names, aggregated

    def _forward_positions(self, positions: np.ndarray) -> Tensor:
        """Logits for given target positions (semantic attention fusion)."""
        channels = []
        for index in range(self.num_metapaths):
            raw = Tensor(self.metapath_features[positions, index, :])
            channels.append(self.projections[index](raw).tanh())
        stacked = stack(channels, axis=1)  # (batch, M, hidden)
        batch, m, hidden = stacked.shape
        scores = stacked.reshape(batch * m, hidden) @ self.attention_query
        weights = scores.reshape(batch, m).softmax(axis=1)
        fused = (stacked * weights.reshape(batch, m, 1)).sum(axis=1)
        return self.classifier(fused)

    def train_epoch(self, rng: np.random.Generator) -> float:
        self.train()
        train_positions = rng.permutation(self.task.split.train)
        batch_size = self.config.batch_size
        losses = []
        for start in range(0, len(train_positions), batch_size):
            batch = train_positions[start : start + batch_size]
            logits = self._forward_positions(batch)
            loss = cross_entropy(logits, self.task.labels[batch])
            self.optimizer.zero_grad()
            loss.backward()
            self.optimizer.step()
            losses.append(loss.item())
        return float(np.mean(losses)) if losses else 0.0

    def predict_logits(self) -> np.ndarray:
        self.eval()
        with no_grad():
            logits = self._forward_positions(np.arange(self.task.num_targets))
        self.train()
        return logits.numpy()
