"""Full-batch RGCN for multi-label node classification.

Sigmoid-decoded variant of :class:`repro.models.rgcn.RGCNNodeClassifier`
for the multi-label half of Definition 2.2 (e.g. predicting a paper's
keywords): one logit per label, binary cross-entropy training, 0.5
threshold at inference.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.core.multilabel import MultiLabelNodeClassificationTask
from repro.models.base import ModelConfig, RGCNStack
from repro.nn.functional import bce_with_logits
from repro.nn.layers import Embedding, Module
from repro.nn.optim import Adam
from repro.nn.tensor import no_grad
from repro.training.resources import ResourceMeter, activation_bytes
from repro.kg.cache import artifacts_for


class RGCNMultiLabelClassifier(Module):
    """Full-batch RGCN with an independent sigmoid head per label."""

    name = "RGCN-ML"

    def __init__(
        self,
        kg: KnowledgeGraph,
        task: MultiLabelNodeClassificationTask,
        config: ModelConfig,
        meter: Optional[ResourceMeter] = None,
    ):
        super().__init__()
        self.kg = kg
        self.task = task
        self.config = config
        rng = config.rng()
        self.adjacency = artifacts_for(kg).hetero(add_reverse=True, normalize=True)
        num_relations = self.adjacency.num_relations
        self.embedding = Embedding(kg.num_nodes, config.hidden_dim, rng)
        dims = [config.hidden_dim] * config.num_layers + [task.num_labels]
        self.stack = RGCNStack(num_relations, dims, rng, dropout=config.dropout)
        self.optimizer = Adam(self.parameters(), lr=config.lr, weight_decay=config.weight_decay)
        if meter is not None:
            meter.register("graph", self.adjacency.nbytes())
            meter.register("parameters", self.parameter_nbytes())
            meter.register("optimizer", 2 * self.parameter_nbytes())
            meter.register(
                "activations",
                activation_bytes(
                    kg.num_nodes, config.hidden_dim, config.num_layers,
                    num_relations=num_relations,
                ),
            )

    def _logits_all_targets(self):
        logits = self.stack(self.embedding.all(), self.adjacency.matrices)
        return logits.gather_rows(self.task.target_nodes)

    def train_epoch(self, rng: np.random.Generator) -> float:
        self.train()
        train = self.task.split.train
        logits = self.stack(self.embedding.all(), self.adjacency.matrices).gather_rows(
            self.task.target_nodes[train]
        )
        loss = bce_with_logits(logits, self.task.labels[train].astype(np.float64))
        self.optimizer.zero_grad()
        loss.backward()
        self.optimizer.step()
        return loss.item()

    def predict_labels(self, threshold: float = 0.5) -> np.ndarray:
        """0/1 predictions for every target (sigmoid ≥ threshold)."""
        self.eval()
        with no_grad():
            logits = self._logits_all_targets().numpy()
        self.train()
        probabilities = 1.0 / (1.0 + np.exp(-logits))
        return (probabilities >= threshold).astype(np.int64)
