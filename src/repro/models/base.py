"""Shared model building blocks.

:class:`RGCNLayer` implements Equation 1 of the paper:

    h_i^(l+1) = σ( Σ_{r∈R} Σ_{j∈N_i^r} (1/c_{i,r}) W_r^(l) h_j^(l)
                 + W_0^(l) h_i^(l) )

The ``1/c_{i,r}`` normalisation is baked into the row-normalised CSR
matrices produced by :func:`repro.transform.build_hetero_adjacency`; the
per-relation transforms are separate parameters so model size scales with
|R| — the effect KG-TOSA exploits (Table IV's model-size reduction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np
import scipy.sparse as sp

from repro.nn.init import xavier_uniform
from repro.nn.layers import Module, Parameter
from repro.nn.tensor import Tensor, spmm
from repro.transform.adjacency import HeteroAdjacency


@dataclass
class ModelConfig:
    """Hyper-parameters shared across the HGNN methods.

    Defaults follow the paper's reported settings scaled to synthetic-size
    graphs (embedding dim 128 in the paper; 32 here keeps CI-speed runs).
    """

    hidden_dim: int = 32
    num_layers: int = 2
    dropout: float = 0.2
    lr: float = 0.01
    weight_decay: float = 0.0
    batch_size: int = 256
    num_negatives: int = 8
    margin: float = 1.0
    seed: int = 0

    def rng(self) -> np.random.Generator:
        return np.random.default_rng(self.seed)


class RGCNLayer(Module):
    """One relational graph convolution (Eq. 1) over a matrix stack."""

    def __init__(
        self,
        num_relations: int,
        in_dim: int,
        out_dim: int,
        rng: np.random.Generator,
        activation: bool = True,
    ):
        super().__init__()
        self.num_relations = num_relations
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.activation = activation
        self.self_weight = Parameter(xavier_uniform((in_dim, out_dim), rng), name="W0")
        self.bias = Parameter(np.zeros(out_dim), name="bias")
        # One W_r per relation, registered individually so gradients touch
        # only the relations present in the current (sub)graph.
        for relation in range(num_relations):
            setattr(
                self,
                f"rel_{relation}",
                Parameter(xavier_uniform((in_dim, out_dim), rng), name=f"W_r{relation}"),
            )

    def relation_weight(self, relation: int) -> Parameter:
        return getattr(self, f"rel_{relation}")

    def forward(self, x: Tensor, matrices: Sequence[sp.csr_matrix]) -> Tensor:
        if len(matrices) != self.num_relations:
            raise ValueError(
                f"layer built for {self.num_relations} relations, got {len(matrices)}"
            )
        out = x @ self.self_weight + self.bias
        for relation, matrix in enumerate(matrices):
            if matrix.nnz == 0:
                continue
            out = out + spmm(matrix, x) @ self.relation_weight(relation)
        if self.activation:
            out = out.relu()
        return out


class RGCNStack(Module):
    """A stack of RGCN layers with inter-layer dropout."""

    def __init__(
        self,
        num_relations: int,
        dims: List[int],
        rng: np.random.Generator,
        dropout: float = 0.0,
        final_activation: bool = False,
    ):
        super().__init__()
        if len(dims) < 2:
            raise ValueError("dims must contain at least input and output sizes")
        self.dropout_rate = dropout
        self._rng = rng
        layers: List[RGCNLayer] = []
        for index in range(len(dims) - 1):
            is_last = index == len(dims) - 2
            layers.append(
                RGCNLayer(
                    num_relations,
                    dims[index],
                    dims[index + 1],
                    rng,
                    activation=final_activation or not is_last,
                )
            )
        for index, layer in enumerate(layers):
            setattr(self, f"layer_{index}", layer)
        self.num_layers = len(layers)

    def layer(self, index: int) -> RGCNLayer:
        return getattr(self, f"layer_{index}")

    def forward(self, x: Tensor, matrices: Sequence[sp.csr_matrix]) -> Tensor:
        hidden = x
        for index in range(self.num_layers):
            hidden = self.layer(index)(hidden, matrices)
            if self.dropout_rate > 0 and index < self.num_layers - 1:
                hidden = hidden.dropout(self.dropout_rate, self._rng, training=self.training)
        return hidden


def restrict_matrices(
    adjacency: HeteroAdjacency, nodes: np.ndarray
) -> tuple[List[sp.csr_matrix], np.ndarray]:
    """Slice every relation matrix to the induced subgraph over ``nodes``.

    Returns the sliced stack plus the (sorted, unique) node id array that
    defines the subgraph's local id space.
    """
    nodes = np.unique(np.asarray(nodes, dtype=np.int64))
    sliced = [matrix[nodes][:, nodes].tocsr() for matrix in adjacency.matrices]
    return sliced, nodes


def adjacency_nbytes(matrices: Sequence[sp.csr_matrix]) -> int:
    """Bytes held by a CSR stack (for modeled-memory registration)."""
    total = 0
    for matrix in matrices:
        total += matrix.data.nbytes + matrix.indices.nbytes + matrix.indptr.nbytes
    return int(total)
