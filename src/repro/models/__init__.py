"""HGNN methods evaluated in the paper (Section V-A3).

Re-implementations of the six state-of-the-art methods' *mechanisms* on the
:mod:`repro.nn` substrate:

* :class:`~repro.models.rgcn.RGCNNodeClassifier` /
  :class:`~repro.models.rgcn.RGCNLinkPredictor` — full-batch RGCN (Eq. 1);
* :class:`~repro.models.graphsaint.GraphSAINTClassifier` — subgraph-sampled
  minibatch training (URW by default; BRW pluggable, as in Figure 8);
* :class:`~repro.models.shadowsaint.ShaDowSAINTClassifier` — decoupled
  depth/scope ego-subgraphs with root readout;
* :class:`~repro.models.sehgnn.SeHGNNClassifier` — one-shot pre-aggregated
  metapath features + semantic attention + MLP;
* :class:`~repro.models.morse.MorsEPredictor` — entity-independent meta
  initialisation with TransE scoring;
* :class:`~repro.models.lhgnn.LHGNNPredictor` — latent-channel
  heterogeneous GNN with DistMult scoring.

Beyond the paper's six, :class:`~repro.models.pathscore.PathScorePredictor`
is the KagNet-style path-reasoning LP scorer built on the ``/paths``
extraction kernel (relation-sequence embedding + pooling).
"""

from repro.models.base import ModelConfig, RGCNLayer, RGCNStack
from repro.models.rgcn import RGCNNodeClassifier, RGCNLinkPredictor
from repro.models.rgcn_multilabel import RGCNMultiLabelClassifier
from repro.models.graphsaint import GraphSAINTClassifier
from repro.models.shadowsaint import ShaDowSAINTClassifier
from repro.models.sehgnn import SeHGNNClassifier
from repro.models.morse import MorsEPredictor
from repro.models.lhgnn import LHGNNPredictor
from repro.models.pathscore import PathScorePredictor

__all__ = [
    "ModelConfig",
    "RGCNLayer",
    "RGCNStack",
    "RGCNNodeClassifier",
    "RGCNLinkPredictor",
    "RGCNMultiLabelClassifier",
    "GraphSAINTClassifier",
    "ShaDowSAINTClassifier",
    "SeHGNNClassifier",
    "MorsEPredictor",
    "LHGNNPredictor",
    "PathScorePredictor",
]
