"""LHGNN (Nguyen et al., WWW 2023): link prediction on latent heterogeneous graphs.

LHGNN does not trust the observed type system; it learns **latent
channels** — soft mixtures over the observed relations — and aggregates
messages per channel before fusing them.  That makes it the strongest and
by far the most expensive LP method in the paper's evaluation (Figure 7:
highest Hits@10, "consumed excessive time and memory", did not finish on
the larger KGs).

The cost is intrinsic: every layer computes ``K × |R|`` sparse message
matrices.  The modeled memory registration reflects exactly that product,
which is why LHGNN hits the memory budget on full graphs where MorsE and
RGCN-on-KG′ survive.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.core.tasks import LinkPredictionTask
from repro.models.base import ModelConfig
from repro.nn.functional import margin_ranking_loss
from repro.nn.init import xavier_uniform
from repro.nn.layers import Embedding, Module, Parameter
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, no_grad, spmm, stack
from repro.training.resources import ResourceMeter, activation_bytes
from repro.kg.cache import artifacts_for


class _LatentLayer(Module):
    """One latent-channel aggregation layer.

    Channel ``c`` mixes relations with softmax weights ``β_c``, aggregates
    ``Σ_r β_{c,r} A_r X W_c`` and channels are fused by a learned attention
    vector — a faithful miniature of LHGNN's latent metapath attention.
    """

    def __init__(self, num_relations: int, num_channels: int, in_dim: int, out_dim: int, rng):
        super().__init__()
        self.num_relations = num_relations
        self.num_channels = num_channels
        self.mixing = Parameter(
            xavier_uniform((num_channels, num_relations), rng), name="mixing"
        )
        for channel in range(num_channels):
            setattr(
                self,
                f"channel_{channel}",
                Parameter(xavier_uniform((in_dim, out_dim), rng), name=f"W_c{channel}"),
            )
        self.self_weight = Parameter(xavier_uniform((in_dim, out_dim), rng), name="W_self")
        self.fuse = Parameter(xavier_uniform((out_dim, 1), rng), name="fuse")

    def forward(self, x: Tensor, matrices) -> Tensor:
        weights = self.mixing.softmax(axis=1)  # (K, R)
        channel_outputs: List[Tensor] = []
        for channel in range(self.num_channels):
            aggregated: Optional[Tensor] = None
            for relation, matrix in enumerate(matrices):
                if matrix.nnz == 0:
                    continue
                message = spmm(matrix, x) * weights[channel, relation]
                aggregated = message if aggregated is None else aggregated + message
            if aggregated is None:
                aggregated = x * 0.0
            channel_outputs.append(
                (aggregated @ getattr(self, f"channel_{channel}")).tanh()
            )
        stacked = stack(channel_outputs, axis=1)  # (N, K, out)
        n, k, out_dim = stacked.shape
        scores = stacked.reshape(n * k, out_dim) @ self.fuse
        attention = scores.reshape(n, k).softmax(axis=1)
        fused = (stacked * attention.reshape(n, k, 1)).sum(axis=1)
        return fused + x @ self.self_weight


class LHGNNPredictor(Module):
    """Latent-channel GNN encoder with a DistMult decoder."""

    name = "LHGNN"

    def __init__(
        self,
        kg: KnowledgeGraph,
        task: LinkPredictionTask,
        config: ModelConfig,
        meter: Optional[ResourceMeter] = None,
        num_channels: int = 3,
    ):
        super().__init__()
        self.kg = kg
        self.task = task
        self.config = config
        self.num_channels = num_channels
        rng = config.rng()
        hidden = config.hidden_dim
        self.adjacency = artifacts_for(kg).hetero(add_reverse=True, normalize=True)
        num_relations = self.adjacency.num_relations
        self.embedding = Embedding(kg.num_nodes, hidden, rng)
        self.layer_one = _LatentLayer(num_relations, num_channels, hidden, hidden, rng)
        self.layer_two = _LatentLayer(num_relations, num_channels, hidden, hidden, rng)
        self.score_relation = Embedding(max(kg.num_edge_types, 1), hidden, rng)
        self.optimizer = Adam(self.parameters(), lr=config.lr, weight_decay=config.weight_decay)
        self._cached: Optional[np.ndarray] = None

        if meter is not None:
            meter.register("graph", self.adjacency.nbytes())
            meter.register("parameters", self.parameter_nbytes())
            meter.register("optimizer", 2 * self.parameter_nbytes())
            # K channels × |R| relations of materialised messages per layer:
            # the product that makes LHGNN the heaviest method in Figure 7.
            meter.register(
                "activations",
                activation_bytes(
                    kg.num_nodes,
                    hidden,
                    2,
                    num_relations=num_channels * num_relations,
                ),
            )

    def _encode(self) -> Tensor:
        hidden = self.layer_one(self.embedding.all(), self.adjacency.matrices)
        return self.layer_two(hidden, self.adjacency.matrices)

    def _distmult(self, embeddings: Tensor, heads: np.ndarray, tails: np.ndarray) -> Tensor:
        relation = self.score_relation.weight.gather_rows(
            np.full(len(heads), self.task.predicate, dtype=np.int64)
        )
        h = embeddings.gather_rows(heads)
        t = embeddings.gather_rows(tails)
        return (h * relation * t).sum(axis=1)

    def train_epoch(self, rng: np.random.Generator) -> float:
        self.train()
        self._cached = None
        train_edges = self.task.edges[self.task.split.train]
        if len(train_edges) == 0:
            return 0.0
        batch = min(self.config.batch_size, len(train_edges))
        chosen = train_edges[rng.choice(len(train_edges), size=batch, replace=False)]
        pool = self.candidate_pool()
        negatives = rng.choice(pool, size=batch)
        embeddings = self._encode()
        positive = self._distmult(embeddings, chosen[:, 0], chosen[:, 1])
        negative = self._distmult(embeddings, chosen[:, 0], negatives)
        loss = margin_ranking_loss(positive, negative, margin=self.config.margin)
        self.optimizer.zero_grad()
        loss.backward()
        self.optimizer.step()
        return loss.item()

    def candidate_pool(self) -> np.ndarray:
        pool = self.kg.nodes_of_type(int(self.task.tail_class))
        return pool if len(pool) else np.arange(self.kg.num_nodes, dtype=np.int64)

    def _node_embeddings(self) -> np.ndarray:
        if self._cached is None:
            self.eval()
            with no_grad():
                self._cached = self._encode().numpy()
            self.train()
        return self._cached

    def score_pairs(self, heads: np.ndarray, tails: np.ndarray) -> np.ndarray:
        embeddings = self._node_embeddings()
        relation = self.score_relation.weight.data[int(self.task.predicate)]
        return (embeddings[heads] * relation * embeddings[tails]).sum(axis=1)
