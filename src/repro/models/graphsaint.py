"""GraphSAINT (Zeng et al., ICLR 2020) adapted to heterogeneous KGs.

Subgraph-sampled minibatch training: each step draws a subgraph with a
walk-based sampler, trains an RGCN stack on it, and (at inference) runs the
full graph.  The sampler is pluggable:

* default — the uniform random-walk (URW) sampler whose type-blind roots
  produce the Figure 2 pathologies;
* ``GraphSAINTClassifier.with_brw`` — the paper's "GraphSAINT+BRW"
  configuration (Figure 8) that roots walks at task targets.

Training memory is dominated by the sampled subgraph, which the meter
reflects by registering per-step activation working sets at subgraph scale.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.core.brw import BiasedRandomWalkSampler
from repro.core.tasks import NodeClassificationTask
from repro.models.base import ModelConfig, RGCNStack, adjacency_nbytes, restrict_matrices
from repro.nn.functional import cross_entropy
from repro.nn.layers import Embedding, Module
from repro.nn.optim import Adam
from repro.nn.tensor import no_grad
from repro.sampling.urw import UniformRandomWalkSampler
from repro.training.resources import ResourceMeter, activation_bytes
from repro.kg.cache import artifacts_for

# A node sampler: rng -> global node ids forming this step's subgraph.
NodeSampler = Callable[[np.random.Generator], np.ndarray]


class GraphSAINTClassifier(Module):
    """Subgraph-sampled RGCN node classifier (GraphSAINT regime)."""

    name = "GraphSAINT"

    def __init__(
        self,
        kg: KnowledgeGraph,
        task: NodeClassificationTask,
        config: ModelConfig,
        meter: Optional[ResourceMeter] = None,
        node_sampler: Optional[NodeSampler] = None,
        walk_length: int = 2,
        num_roots: int = 512,
        steps_per_epoch: int = 4,
    ):
        super().__init__()
        self.kg = kg
        self.task = task
        self.config = config
        self.steps_per_epoch = steps_per_epoch
        self.meter = meter
        rng = config.rng()
        self.adjacency = artifacts_for(kg).hetero(add_reverse=True, normalize=True)
        num_relations = self.adjacency.num_relations
        self.embedding = Embedding(kg.num_nodes, config.hidden_dim, rng)
        dims = [config.hidden_dim] * config.num_layers + [task.num_labels]
        self.stack = RGCNStack(num_relations, dims, rng, dropout=config.dropout)
        self.optimizer = Adam(self.parameters(), lr=config.lr, weight_decay=config.weight_decay)

        if node_sampler is None:
            urw = UniformRandomWalkSampler(
                kg, walk_length=walk_length, num_roots=min(num_roots, kg.num_nodes)
            )
            node_sampler = lambda sampler_rng: urw.engine.walk(  # noqa: E731
                sampler_rng.choice(kg.num_nodes, size=urw.num_roots, replace=False),
                urw.walk_length,
                sampler_rng,
            )
        self.node_sampler = node_sampler

        # Position of each graph node in the task's target list (-1 = none).
        self._target_position = np.full(kg.num_nodes, -1, dtype=np.int64)
        self._target_position[task.target_nodes] = np.arange(task.num_targets)
        self._is_train = np.zeros(task.num_targets, dtype=bool)
        self._is_train[task.split.train] = True

        if meter is not None:
            meter.register("graph", self.adjacency.nbytes())
            meter.register("parameters", self.parameter_nbytes())
            meter.register("optimizer", 2 * self.parameter_nbytes())

    @classmethod
    def with_brw(
        cls,
        kg: KnowledgeGraph,
        task: NodeClassificationTask,
        config: ModelConfig,
        meter: Optional[ResourceMeter] = None,
        walk_length: int = 3,
        batch_size: int = 20000,
        **kwargs,
    ) -> "GraphSAINTClassifier":
        """The paper's GraphSAINT+BRW configuration (Figure 8 baseline)."""
        brw = BiasedRandomWalkSampler(kg, walk_length=walk_length, batch_size=batch_size)

        def sampler(rng: np.random.Generator) -> np.ndarray:
            initial = brw._initial_vertices(task, rng)
            visited = brw.engine.walk(initial, brw.walk_length, rng)
            return np.unique(np.concatenate([initial, visited]))

        return cls(kg, task, config, meter=meter, node_sampler=sampler, **kwargs)

    def train_epoch(self, rng: np.random.Generator) -> float:
        """``steps_per_epoch`` sampled-subgraph gradient steps."""
        self.train()
        losses = []
        for _step in range(self.steps_per_epoch):
            nodes = np.asarray(self.node_sampler(rng), dtype=np.int64)
            matrices, nodes = restrict_matrices(self.adjacency, nodes)
            positions = self._target_position[nodes]
            has_target = positions >= 0
            train_mask = np.zeros(len(nodes), dtype=bool)
            train_mask[has_target] = self._is_train[positions[has_target]]
            if not train_mask.any():
                continue
            if self.meter is not None:
                self.meter.register(
                    "activations",
                    activation_bytes(
                        len(nodes),
                        self.config.hidden_dim,
                        self.config.num_layers,
                        num_relations=self.adjacency.num_relations,
                    ),
                )
                self.meter.register("subgraph", adjacency_nbytes(matrices))
            local_x = self.embedding(nodes)
            logits = self.stack(local_x, matrices)
            local_targets = np.flatnonzero(train_mask)
            loss = cross_entropy(
                logits.gather_rows(local_targets),
                self.task.labels[positions[local_targets]],
            )
            self.optimizer.zero_grad()
            loss.backward()
            self.optimizer.step()
            losses.append(loss.item())
        return float(np.mean(losses)) if losses else 0.0

    def predict_logits(self) -> np.ndarray:
        """Full-graph inference (GraphSAINT evaluates without sampling)."""
        self.eval()
        with no_grad():
            logits = self.stack(self.embedding.all(), self.adjacency.matrices)
            out = logits.gather_rows(self.task.target_nodes).numpy()
        self.train()
        return out
