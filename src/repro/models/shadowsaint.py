"""ShaDow-GNN / ShaDowSAINT (Zeng et al., 2022): decoupled depth and scope.

Instead of sampling one big subgraph per step, ShaDow extracts a bounded
**ego-subgraph** (the *scope*) around every target node and runs an
arbitrarily deep GNN (the *depth*) inside it, reading out the root's
embedding.  Ego-graphs are materialised once at construction, then
minibatches assemble block-diagonal unions — each ego keeps its own copy of
shared nodes, as in the reference implementation.

Extraction runs through :func:`extract_ego_batch`, a multi-root lock-step
frontier expansion over the cached CSR: all roots advance one hop per numpy
step, fanout subsampling included.  Randomness is *content-addressed* —
each candidate edge gets a :func:`repro.nputil.splitmix64` key derived from
``(salt, root, hop, source, neighbour)`` and each over-fanout node keeps
the ``fanout`` smallest keys — so the batched kernel and the per-root
scalar oracle (:func:`extract_ego`) select bit-identical scopes no matter
the evaluation order, while every (salt, node) still draws a fresh uniform
subsample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.kg.cache import artifacts_for
from repro.kg.graph import KnowledgeGraph
from repro.core.tasks import NodeClassificationTask
from repro.models.base import ModelConfig, RGCNStack
from repro.nn.functional import cross_entropy
from repro.nn.layers import Embedding, Linear, Module
from repro.nn.optim import Adam
from repro.nn.tensor import no_grad
from repro.nputil import expand_ranges, rank_within_sorted_groups, splitmix64
from repro.training.resources import ResourceMeter, activation_bytes


@dataclass
class _EgoGraph:
    """One target's scope: global node ids (root first) + local edges."""

    nodes: np.ndarray  # global ids, nodes[0] == root
    src: np.ndarray  # local indices
    dst: np.ndarray  # local indices
    rel: np.ndarray  # global relation ids (forward only)


def _fanout_keys(
    salt: int,
    roots: np.ndarray,
    hop: int,
    sources: np.ndarray,
    neighbors: np.ndarray,
) -> np.ndarray:
    """Deterministic uniform key per (salt, root, hop, source, neighbour).

    Chained SplitMix64 finalizers: every stage feeds the next so keys are
    decorrelated across all four coordinates, and both the batched kernel
    and the scalar oracle can evaluate them in any order.
    """
    keys = splitmix64(np.uint64(salt) + np.asarray(roots).astype(np.uint64))
    keys = splitmix64(keys + np.uint64(hop))
    keys = splitmix64(keys + np.asarray(sources).astype(np.uint64))
    return splitmix64(keys + np.asarray(neighbors).astype(np.uint64))


def extract_ego(
    kg: KnowledgeGraph, root: int, depth: int = 2, fanout: int = 8, salt: int = 0
) -> _EgoGraph:
    """Fanout-capped BFS scope of one ``root`` plus its internal edges.

    The scalar reference oracle: per-node Python BFS over the cached CSR.
    :func:`extract_ego_batch` must reproduce its node order, edge order and
    fanout selections bit-for-bit.
    """
    adjacency = artifacts_for(kg).csr("both")
    indptr, indices = adjacency.indptr, adjacency.indices
    root = int(root)
    chosen: List[int] = [root]
    seen = {root}
    frontier: List[int] = [root]
    for hop in range(depth):
        next_frontier: List[int] = []
        for node in frontier:
            row = indices[indptr[node] : indptr[node + 1]].astype(np.int64)
            if len(row) > fanout:
                keys = _fanout_keys(
                    salt,
                    np.full(len(row), root, dtype=np.int64),
                    hop,
                    np.full(len(row), node, dtype=np.int64),
                    row,
                )
                winners = np.lexsort((row, keys))[:fanout]
                keep = np.zeros(len(row), dtype=bool)
                keep[winners] = True
                row = row[keep]
            for neighbor in row:
                neighbor = int(neighbor)
                if neighbor not in seen:
                    seen.add(neighbor)
                    chosen.append(neighbor)
                    next_frontier.append(neighbor)
        frontier = next_frontier
    nodes = np.asarray(chosen, dtype=np.int64)
    local_of = {int(node): i for i, node in enumerate(nodes)}
    src: List[int] = []
    dst: List[int] = []
    rel: List[int] = []
    store = kg.triples
    hexastore = kg.hexastore
    for node in chosen:
        for position in hexastore.match(subject=node):
            obj = int(store.o[position])
            if obj in local_of:
                src.append(local_of[node])
                dst.append(local_of[obj])
                rel.append(int(store.p[position]))
    return _EgoGraph(
        nodes=nodes,
        src=np.asarray(src, dtype=np.int64),
        dst=np.asarray(dst, dtype=np.int64),
        rel=np.asarray(rel, dtype=np.int64),
    )


def _ego_chunk_size(num_nodes: int) -> int:
    # Bound the per-chunk (chunk, n) visited/local-id state to ~8M cells.
    return max(int(8e6 // max(num_nodes, 1)), 1)


def extract_ego_batch(
    kg: KnowledgeGraph,
    roots: np.ndarray,
    depth: int = 2,
    fanout: int = 8,
    salt: int = 0,
    chunk_size: Optional[int] = None,
) -> List[_EgoGraph]:
    """Multi-root lock-step ego extraction (the batched BFS kernel).

    All roots advance one hop per numpy super-step over the cached CSR:
    neighbour gathering, fanout subsampling (smallest
    :func:`_fanout_keys`), per-root first-visit dedup and edge collection
    are whole-batch array operations.  Scopes are bit-identical to
    :func:`extract_ego` per root; roots are processed in memory-bounded
    chunks so ``(chunk, n)`` visited/local-id state stays small.
    """
    if depth < 0:
        raise ValueError(f"depth must be >= 0, got {depth}")
    if fanout < 1:
        raise ValueError(f"fanout must be >= 1, got {fanout}")
    adjacency = artifacts_for(kg).csr("both")
    roots = np.asarray(roots, dtype=np.int64)
    if chunk_size is None:
        chunk_size = _ego_chunk_size(kg.num_nodes)
    egos: List[_EgoGraph] = []
    for start in range(0, len(roots), chunk_size):
        egos.extend(
            _extract_ego_chunk(
                kg, adjacency, roots[start : start + chunk_size], depth, fanout, salt
            )
        )
    return egos


def _extract_ego_chunk(
    kg: KnowledgeGraph,
    adjacency: sp.csr_matrix,
    roots: np.ndarray,
    depth: int,
    fanout: int,
    salt: int,
) -> List[_EgoGraph]:
    indptr, indices = adjacency.indptr, adjacency.indices
    degrees = np.diff(indptr).astype(np.int64)
    n = kg.num_nodes
    chunk = len(roots)
    row_base = np.arange(chunk, dtype=np.int64) * n
    visited = np.zeros(chunk * n, dtype=bool)
    visited[row_base + roots] = True

    # Per-hop (rows, nodes) blocks; concatenated later they give each row's
    # scope in exactly the scalar oracle's insertion order (root first).
    part_rows: List[np.ndarray] = [np.arange(chunk, dtype=np.int64)]
    part_nodes: List[np.ndarray] = [roots.copy()]
    frontier_rows, frontier_nodes = part_rows[0], roots
    for hop in range(depth):
        counts = degrees[frontier_nodes]
        neighbor = indices[expand_ranges(indptr[frontier_nodes], counts)].astype(np.int64)
        entry = np.repeat(np.arange(len(frontier_nodes), dtype=np.int64), counts)
        rows_rep = frontier_rows[entry]
        over = counts > fanout
        if over.any():
            # Subsample over-fanout nodes: keep the `fanout` smallest keys
            # per frontier entry (ties broken by neighbour id), preserving
            # CSR order among the survivors — same rule as the oracle.
            over_elements = over[entry]
            group = entry[over_elements]
            candidates = neighbor[over_elements]
            keys = _fanout_keys(
                salt,
                roots[rows_rep[over_elements]],
                hop,
                frontier_nodes[group],
                candidates,
            )
            order = np.lexsort((candidates, keys, group))
            ranks = rank_within_sorted_groups(group[order])
            keep_over = np.zeros(len(candidates), dtype=bool)
            keep_over[order[ranks < fanout]] = True
            keep = np.ones(len(neighbor), dtype=bool)
            keep[over_elements] = keep_over
            neighbor, rows_rep = neighbor[keep], rows_rep[keep]
        flat = row_base[rows_rep] + neighbor
        fresh = ~visited[flat]
        flat, rows_rep, neighbor = flat[fresh], rows_rep[fresh], neighbor[fresh]
        # First-occurrence dedup in frontier order == the oracle's
        # add-on-first-sight semantics (np.unique returns first indices).
        _unique, first = np.unique(flat, return_index=True)
        first.sort()
        visited[flat[first]] = True
        frontier_rows, frontier_nodes = rows_rep[first], neighbor[first]
        part_rows.append(frontier_rows)
        part_nodes.append(frontier_nodes)

    all_rows = np.concatenate(part_rows)
    all_nodes = np.concatenate(part_nodes)
    order = np.argsort(all_rows, kind="stable")
    grouped_rows, grouped_nodes = all_rows[order], all_nodes[order]
    node_counts = np.bincount(grouped_rows, minlength=chunk)
    node_starts = np.concatenate([[0], np.cumsum(node_counts)])
    local_ids = rank_within_sorted_groups(grouped_rows)
    local_of = np.zeros(chunk * n, dtype=np.int64)
    local_of[row_base[grouped_rows] + grouped_nodes] = local_ids

    # Internal edges of every ego with one batched subject lookup: the
    # "spo" index run of each (row, node), filtered to in-scope objects.
    store = kg.triples
    los, his, perm = kg.hexastore.batch_ranges({}, "s", grouped_nodes)
    edge_counts = his - los
    positions = perm[expand_ranges(los, edge_counts)]
    edge_rows = np.repeat(grouped_rows, edge_counts)
    edge_src = np.repeat(grouped_nodes, edge_counts)
    objects = store.o[positions].astype(np.int64)
    member = visited[row_base[edge_rows] + objects]
    edge_rows, edge_src = edge_rows[member], edge_src[member]
    objects, positions = objects[member], positions[member]
    src_local = local_of[row_base[edge_rows] + edge_src]
    dst_local = local_of[row_base[edge_rows] + objects]
    relations = store.p[positions].astype(np.int64)
    per_row_edges = np.bincount(edge_rows, minlength=chunk)
    edge_starts = np.concatenate([[0], np.cumsum(per_row_edges)])

    egos: List[_EgoGraph] = []
    for row in range(chunk):
        node_lo, node_hi = node_starts[row], node_starts[row + 1]
        edge_lo, edge_hi = edge_starts[row], edge_starts[row + 1]
        egos.append(
            _EgoGraph(
                nodes=grouped_nodes[node_lo:node_hi].copy(),
                src=src_local[edge_lo:edge_hi].copy(),
                dst=dst_local[edge_lo:edge_hi].copy(),
                rel=relations[edge_lo:edge_hi].copy(),
            )
        )
    return egos


class ShaDowSAINTClassifier(Module):
    """Ego-subgraph RGCN with root readout (the ShaDowSAINT regime)."""

    name = "ShaDowSAINT"

    def __init__(
        self,
        kg: KnowledgeGraph,
        task: NodeClassificationTask,
        config: ModelConfig,
        meter: Optional[ResourceMeter] = None,
        depth: int = 2,
        fanout: int = 8,
    ):
        super().__init__()
        self.kg = kg
        self.task = task
        self.config = config
        self.meter = meter
        self.depth = depth
        self.fanout = fanout
        rng = config.rng()
        self.num_base_relations = kg.num_edge_types
        num_relations = 2 * max(self.num_base_relations, 1)
        self.embedding = Embedding(kg.num_nodes, config.hidden_dim, rng)
        dims = [config.hidden_dim] * (config.num_layers + 1)
        self.stack = RGCNStack(num_relations, dims, rng, dropout=config.dropout)
        self.readout = Linear(config.hidden_dim, task.num_labels, rng)
        self.optimizer = Adam(self.parameters(), lr=config.lr, weight_decay=config.weight_decay)

        # Content-addressed sampling salt: per-config-seed determinism with
        # fresh subsamples per seed, evaluated identically by the batched
        # kernel and the scalar oracle.
        self._ego_salt = int(rng.integers(0, 2**63))
        self._egos: List[_EgoGraph] = extract_ego_batch(
            kg, task.target_nodes, depth=depth, fanout=fanout, salt=self._ego_salt
        )
        # Flat views over the ego set: one concatenation at construction
        # replaces the per-ego concatenations every minibatch assembly
        # used to do.  Slices stay in ego order, so gathers out of these
        # arrays are bit-identical to concatenating the per-ego arrays.
        empty = np.empty(0, np.int64)
        self._node_sizes = np.asarray([len(e.nodes) for e in self._egos], dtype=np.int64)
        self._edge_sizes = np.asarray([len(e.src) for e in self._egos], dtype=np.int64)
        self._node_starts = np.concatenate([[0], np.cumsum(self._node_sizes)])
        self._edge_starts = np.concatenate([[0], np.cumsum(self._edge_sizes)])
        self._flat_nodes = (
            np.concatenate([e.nodes for e in self._egos]) if self._egos else empty
        )
        self._flat_src = (
            np.concatenate([e.src for e in self._egos]) if self._egos else empty
        )
        self._flat_dst = (
            np.concatenate([e.dst for e in self._egos]) if self._egos else empty
        )
        self._flat_rel = (
            np.concatenate([e.rel for e in self._egos]) if self._egos else empty
        )

        max_ego = max((len(e.nodes) for e in self._egos), default=1)
        if meter is not None:
            graph_bytes = sum(
                e.nodes.nbytes + e.src.nbytes + e.dst.nbytes + e.rel.nbytes for e in self._egos
            )
            meter.register("ego-graphs", graph_bytes)
            meter.register("parameters", self.parameter_nbytes())
            meter.register("optimizer", 2 * self.parameter_nbytes())
            meter.register(
                "activations",
                activation_bytes(
                    max_ego * min(config.batch_size, max(task.num_targets, 1)),
                    config.hidden_dim,
                    config.num_layers,
                    num_relations=num_relations,
                ),
            )

    # -- batch assembly --

    def _assemble(
        self, ego_indices: np.ndarray
    ) -> Tuple[np.ndarray, List[sp.csr_matrix], np.ndarray]:
        """Block-diagonal union of the selected egos.

        Returns (global node ids with duplicates, per-relation normalised
        CSR stack over local ids, root local positions).  Bit-identical to
        :meth:`_assemble_scalar` (kept below as the regression oracle):
        slice gathers out of the flat ego arrays preserve per-ego order,
        and the stable relation sort preserves edge order within each
        relation, so every CSR sees the same (rows, cols) sequence the
        per-relation boolean masks produced.
        """
        ego_indices = np.asarray(ego_indices, dtype=np.int64)
        sizes = self._node_sizes[ego_indices]
        offsets = np.concatenate([[0], np.cumsum(sizes)[:-1]])
        total = int(sizes.sum())
        nodes = _gather_slices(
            self._flat_nodes, self._node_starts[ego_indices], sizes, offsets, total
        )
        roots = offsets.copy()

        edge_sizes = self._edge_sizes[ego_indices]
        edge_offsets = np.concatenate([[0], np.cumsum(edge_sizes)[:-1]])
        num_edges = int(edge_sizes.sum())
        edge_starts = self._edge_starts[ego_indices]
        shift = np.repeat(offsets, edge_sizes)  # lift local ids per ego
        src = _gather_slices(self._flat_src, edge_starts, edge_sizes, edge_offsets, num_edges) + shift
        dst = _gather_slices(self._flat_dst, edge_starts, edge_sizes, edge_offsets, num_edges) + shift
        rel = _gather_slices(self._flat_rel, edge_starts, edge_sizes, edge_offsets, num_edges)

        num_rel = max(self.num_base_relations, 1)
        order = np.argsort(rel, kind="stable")
        bounds = np.searchsorted(rel[order], np.arange(num_rel + 1))
        matrices: List[sp.csr_matrix] = []
        # Forward direction: message object -> subject (rows are subjects).
        for relation in range(num_rel):
            sel = order[bounds[relation] : bounds[relation + 1]]
            matrices.append(_normalized_csr(src[sel], dst[sel], total))
        for relation in range(num_rel):
            sel = order[bounds[relation] : bounds[relation + 1]]
            matrices.append(_normalized_csr(dst[sel], src[sel], total))
        return nodes, matrices, roots

    def _assemble_scalar(
        self, ego_indices: np.ndarray
    ) -> Tuple[np.ndarray, List[sp.csr_matrix], np.ndarray]:
        """Reference per-ego assembly (oracle for :meth:`_assemble`).

        Kept verbatim so the regression suite can assert the flat-gather
        path reproduces it bit-for-bit.
        """
        egos = [self._egos[i] for i in ego_indices]
        sizes = np.asarray([len(e.nodes) for e in egos], dtype=np.int64)
        offsets = np.concatenate([[0], np.cumsum(sizes)[:-1]])
        total = int(sizes.sum())
        nodes = np.concatenate([e.nodes for e in egos])
        roots = offsets.copy()

        empty = np.empty(0, np.int64)
        src = np.concatenate([e.src + off for e, off in zip(egos, offsets)]) if total else empty
        dst = np.concatenate([e.dst + off for e, off in zip(egos, offsets)]) if total else empty
        rel = np.concatenate([e.rel for e in egos]) if total else np.empty(0, np.int64)

        num_rel = max(self.num_base_relations, 1)
        matrices: List[sp.csr_matrix] = []
        for relation in range(num_rel):
            mask = rel == relation
            matrices.append(_normalized_csr(src[mask], dst[mask], total))
        for relation in range(num_rel):
            mask = rel == relation
            matrices.append(_normalized_csr(dst[mask], src[mask], total))
        return nodes, matrices, roots

    # -- training / inference --

    def _forward_batch(self, ego_indices: np.ndarray):
        nodes, matrices, roots = self._assemble(ego_indices)
        x = self.embedding(nodes)
        hidden = self.stack(x, matrices)
        return self.readout(hidden.gather_rows(roots))

    def train_epoch(self, rng: np.random.Generator) -> float:
        self.train()
        train_positions = rng.permutation(self.task.split.train)
        batch_size = self.config.batch_size
        losses = []
        for start in range(0, len(train_positions), batch_size):
            batch = train_positions[start : start + batch_size]
            logits = self._forward_batch(batch)
            loss = cross_entropy(logits, self.task.labels[batch])
            self.optimizer.zero_grad()
            loss.backward()
            self.optimizer.step()
            losses.append(loss.item())
        return float(np.mean(losses)) if losses else 0.0

    def predict_logits(self) -> np.ndarray:
        self.eval()
        outputs = []
        batch_size = self.config.batch_size
        with no_grad():
            for start in range(0, self.task.num_targets, batch_size):
                batch = np.arange(start, min(start + batch_size, self.task.num_targets))
                outputs.append(self._forward_batch(batch).numpy())
        self.train()
        return (
            np.concatenate(outputs, axis=0)
            if outputs
            else np.empty((0, self.task.num_labels))
        )


def _gather_slices(
    flat: np.ndarray,
    starts: np.ndarray,
    sizes: np.ndarray,
    out_offsets: np.ndarray,
    total: int,
) -> np.ndarray:
    """Concatenate ``flat[starts[i] : starts[i] + sizes[i]]`` slices.

    One fancy-index gather instead of a per-slice concatenation loop:
    position ``j`` of the output lies inside slice ``i`` (the one whose
    ``out_offsets[i]`` it falls after), at within-slice offset
    ``j - out_offsets[i]``, i.e. flat index ``starts[i] + j - out_offsets[i]``.
    """
    return flat[np.repeat(starts - out_offsets, sizes) + np.arange(total)]


def _normalized_csr(rows: np.ndarray, cols: np.ndarray, size: int) -> sp.csr_matrix:
    """Row-normalised 0/1 CSR from an edge list."""
    if len(rows) == 0:
        return sp.csr_matrix((size, size))
    data = np.ones(len(rows), dtype=np.float64)
    matrix = sp.csr_matrix((data, (rows, cols)), shape=(size, size))
    row_sums = np.asarray(matrix.sum(axis=1)).ravel()
    scale = np.divide(1.0, row_sums, out=np.zeros_like(row_sums), where=row_sums > 0)
    return (sp.diags(scale) @ matrix).tocsr()
