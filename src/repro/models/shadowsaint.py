"""ShaDow-GNN / ShaDowSAINT (Zeng et al., 2022): decoupled depth and scope.

Instead of sampling one big subgraph per step, ShaDow extracts a bounded
**ego-subgraph** (the *scope*) around every target node and runs an
arbitrarily deep GNN (the *depth*) inside it, reading out the root's
embedding.  Ego-graphs are materialised once at construction (fanout-capped
BFS), then minibatches assemble block-diagonal unions — each ego keeps its
own copy of shared nodes, as in the reference implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.kg.graph import KnowledgeGraph
from repro.core.tasks import NodeClassificationTask
from repro.models.base import ModelConfig, RGCNStack
from repro.nn.functional import cross_entropy
from repro.nn.layers import Embedding, Linear, Module
from repro.nn.optim import Adam
from repro.nn.tensor import no_grad
from repro.training.resources import ResourceMeter, activation_bytes


@dataclass
class _EgoGraph:
    """One target's scope: global node ids (root first) + local edges."""

    nodes: np.ndarray  # global ids, nodes[0] == root
    src: np.ndarray  # local indices
    dst: np.ndarray  # local indices
    rel: np.ndarray  # global relation ids (forward only)


class ShaDowSAINTClassifier(Module):
    """Ego-subgraph RGCN with root readout (the ShaDowSAINT regime)."""

    name = "ShaDowSAINT"

    def __init__(
        self,
        kg: KnowledgeGraph,
        task: NodeClassificationTask,
        config: ModelConfig,
        meter: Optional[ResourceMeter] = None,
        depth: int = 2,
        fanout: int = 8,
    ):
        super().__init__()
        self.kg = kg
        self.task = task
        self.config = config
        self.meter = meter
        self.depth = depth
        self.fanout = fanout
        rng = config.rng()
        self.num_base_relations = kg.num_edge_types
        num_relations = 2 * max(self.num_base_relations, 1)
        self.embedding = Embedding(kg.num_nodes, config.hidden_dim, rng)
        dims = [config.hidden_dim] * (config.num_layers + 1)
        self.stack = RGCNStack(num_relations, dims, rng, dropout=config.dropout)
        self.readout = Linear(config.hidden_dim, task.num_labels, rng)
        self.optimizer = Adam(self.parameters(), lr=config.lr, weight_decay=config.weight_decay)

        self._egos: List[_EgoGraph] = [
            self._extract_ego(int(target), rng) for target in task.target_nodes
        ]
        max_ego = max((len(e.nodes) for e in self._egos), default=1)
        if meter is not None:
            graph_bytes = sum(
                e.nodes.nbytes + e.src.nbytes + e.dst.nbytes + e.rel.nbytes for e in self._egos
            )
            meter.register("ego-graphs", graph_bytes)
            meter.register("parameters", self.parameter_nbytes())
            meter.register("optimizer", 2 * self.parameter_nbytes())
            meter.register(
                "activations",
                activation_bytes(
                    max_ego * min(config.batch_size, max(task.num_targets, 1)),
                    config.hidden_dim,
                    config.num_layers,
                    num_relations=num_relations,
                ),
            )

    # -- ego-graph extraction --

    def _extract_ego(self, root: int, rng: np.random.Generator) -> _EgoGraph:
        """Fanout-capped BFS scope of ``root`` plus its internal edges."""
        hexastore = self.kg.hexastore
        chosen: List[int] = [root]
        chosen_set = {root}
        frontier = [root]
        for _hop in range(self.depth):
            next_frontier: List[int] = []
            for node in frontier:
                # unique=False skips the dedup sort; `chosen_set` dedupes
                # below.  Frontier order shifts, so fanout rng draws may
                # land differently than pre-optimization revisions — still
                # the same sampling distribution.
                neighbors = hexastore.neighbors(node, unique=False)
                if len(neighbors) > self.fanout:
                    neighbors = np.unique(neighbors)
                    if len(neighbors) > self.fanout:
                        neighbors = rng.choice(neighbors, size=self.fanout, replace=False)
                for neighbor in neighbors:
                    neighbor = int(neighbor)
                    if neighbor not in chosen_set:
                        chosen_set.add(neighbor)
                        chosen.append(neighbor)
                        next_frontier.append(neighbor)
            frontier = next_frontier
        nodes = np.asarray(chosen, dtype=np.int64)
        local_of = {int(node): i for i, node in enumerate(nodes)}
        src: List[int] = []
        dst: List[int] = []
        rel: List[int] = []
        store = self.kg.triples
        for node in chosen:
            for position in hexastore.match(subject=node):
                obj = int(store.o[position])
                if obj in local_of:
                    src.append(local_of[node])
                    dst.append(local_of[obj])
                    rel.append(int(store.p[position]))
        return _EgoGraph(
            nodes=nodes,
            src=np.asarray(src, dtype=np.int64),
            dst=np.asarray(dst, dtype=np.int64),
            rel=np.asarray(rel, dtype=np.int64),
        )

    # -- batch assembly --

    def _assemble(self, ego_indices: np.ndarray) -> Tuple[np.ndarray, List[sp.csr_matrix], np.ndarray]:
        """Block-diagonal union of the selected egos.

        Returns (global node ids with duplicates, per-relation normalised
        CSR stack over local ids, root local positions).
        """
        egos = [self._egos[i] for i in ego_indices]
        sizes = np.asarray([len(e.nodes) for e in egos], dtype=np.int64)
        offsets = np.concatenate([[0], np.cumsum(sizes)[:-1]])
        total = int(sizes.sum())
        nodes = np.concatenate([e.nodes for e in egos])
        roots = offsets.copy()

        src = np.concatenate([e.src + off for e, off in zip(egos, offsets)]) if total else np.empty(0, np.int64)
        dst = np.concatenate([e.dst + off for e, off in zip(egos, offsets)]) if total else np.empty(0, np.int64)
        rel = np.concatenate([e.rel for e in egos]) if total else np.empty(0, np.int64)

        num_rel = max(self.num_base_relations, 1)
        matrices: List[sp.csr_matrix] = []
        # Forward direction: message object -> subject (rows are subjects).
        for relation in range(num_rel):
            mask = rel == relation
            matrices.append(_normalized_csr(src[mask], dst[mask], total))
        for relation in range(num_rel):
            mask = rel == relation
            matrices.append(_normalized_csr(dst[mask], src[mask], total))
        return nodes, matrices, roots

    # -- training / inference --

    def _forward_batch(self, ego_indices: np.ndarray):
        nodes, matrices, roots = self._assemble(ego_indices)
        x = self.embedding(nodes)
        hidden = self.stack(x, matrices)
        return self.readout(hidden.gather_rows(roots))

    def train_epoch(self, rng: np.random.Generator) -> float:
        self.train()
        train_positions = rng.permutation(self.task.split.train)
        batch_size = self.config.batch_size
        losses = []
        for start in range(0, len(train_positions), batch_size):
            batch = train_positions[start : start + batch_size]
            logits = self._forward_batch(batch)
            loss = cross_entropy(logits, self.task.labels[batch])
            self.optimizer.zero_grad()
            loss.backward()
            self.optimizer.step()
            losses.append(loss.item())
        return float(np.mean(losses)) if losses else 0.0

    def predict_logits(self) -> np.ndarray:
        self.eval()
        outputs = []
        batch_size = self.config.batch_size
        with no_grad():
            for start in range(0, self.task.num_targets, batch_size):
                batch = np.arange(start, min(start + batch_size, self.task.num_targets))
                outputs.append(self._forward_batch(batch).numpy())
        self.train()
        return (
            np.concatenate(outputs, axis=0)
            if outputs
            else np.empty((0, self.task.num_labels))
        )


def _normalized_csr(rows: np.ndarray, cols: np.ndarray, size: int) -> sp.csr_matrix:
    """Row-normalised 0/1 CSR from an edge list."""
    if len(rows) == 0:
        return sp.csr_matrix((size, size))
    data = np.ones(len(rows), dtype=np.float64)
    matrix = sp.csr_matrix((data, (rows, cols)), shape=(size, size))
    row_sums = np.asarray(matrix.sum(axis=1)).ravel()
    scale = np.divide(1.0, row_sums, out=np.zeros_like(row_sums), where=row_sums > 0)
    return (sp.diags(scale) @ matrix).tocsr()
