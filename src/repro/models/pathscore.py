"""PathScore: KagNet-style relation-path scoring for link prediction.

KagNet (Lin et al., EMNLP 2019) scores a candidate fact by the *relation
paths* connecting its endpoints rather than by node embeddings alone.
This model brings that idea onto the repo's path-extraction substrate:
the simple directed paths between ``(head, tail)`` come from the same
hop-major :func:`~repro.sampling.paths.enumerate_paths_batch` kernel the
``/paths`` serving op uses, and the scorer is built on :mod:`repro.nn` so
it trains through :func:`~repro.training.trainer.train_link_predictor`
and checkpoints through :mod:`repro.nn.checkpoint` like every other LP
architecture.

Scoring pipeline, per ``(head, tail)`` pair:

1. **Relation-sequence embedding** — each enumerated path contributes its
   relation sequence ``(r_1 .. r_k)``; every relation id is embedded and
   gated by a learned per-hop-position vector, then mean-pooled over the
   sequence (the path vector).
2. **Path pooling** — path vectors mean-pool into one pair vector; a
   disconnected pair falls back to a learned *no-path* vector, so absence
   of evidence is itself a trainable signal.
3. **Decoding** — the pair vector maps through a ``tanh`` projection to a
   relation operator, scored DistMult-style against the endpoint node
   embeddings: ``score = Σ h ⊙ op(paths) ⊙ t``.

Path enumeration is structural (parameter-free), so enumerations are
memoized per pair across epochs and scoring calls; only the embeddings
and gates train.  ``score_pairs`` recomputes the same pipeline in plain
numpy from the trained parameters, which is what makes a checkpoint
round-trip reproduce predictions bit for bit.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.tasks import LinkPredictionTask
from repro.kg.graph import KnowledgeGraph
from repro.models.base import ModelConfig
from repro.nn.functional import margin_ranking_loss
from repro.nn.init import xavier_uniform
from repro.nn.layers import Embedding, Module, Parameter
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.sampling.paths import enumerate_paths_batch
from repro.training.resources import ResourceMeter


class PathScorePredictor(Module):
    """Relation-path encoder with a path-conditioned DistMult decoder."""

    name = "PathScore"

    def __init__(
        self,
        kg: KnowledgeGraph,
        task: LinkPredictionTask,
        config: ModelConfig,
        meter: Optional[ResourceMeter] = None,
        max_hops: int = 3,
        max_paths: int = 16,
    ):
        super().__init__()
        self.kg = kg
        self.task = task
        self.config = config
        self.max_hops = int(max_hops)
        self.max_paths = int(max_paths)
        if self.max_hops < 1:
            raise ValueError(f"max_hops must be >= 1, got {max_hops}")
        if self.max_paths < 1:
            raise ValueError(f"max_paths must be >= 1, got {max_paths}")
        rng = config.rng()
        hidden = config.hidden_dim
        # One extra embedding row is the padding id for unused hop slots;
        # its contribution is always masked to zero, it just keeps the
        # gather dense.
        self._pad = max(kg.num_edge_types, 1)
        self.embedding = Embedding(kg.num_nodes, hidden, rng)
        self.relation_embedding = Embedding(self._pad + 1, hidden, rng)
        self.hop_gate = Parameter(
            np.ones((self.max_hops, hidden)), name="hop_gate"
        )
        self.no_path = Parameter(
            xavier_uniform((1, hidden), rng), name="no_path"
        )
        self.decode = Parameter(xavier_uniform((hidden, hidden), rng), name="decode")
        self.optimizer = Adam(
            self.parameters(), lr=config.lr, weight_decay=config.weight_decay
        )
        #: (head, tail) -> list of relation sequences (one per path).
        self._path_cache: Dict[Tuple[int, int], List[List[int]]] = {}

        if meter is not None:
            meter.register("parameters", self.parameter_nbytes())
            meter.register("optimizer", 2 * self.parameter_nbytes())
            # The padded (pairs × paths × hops) relation block one training
            # batch materializes.
            meter.register(
                "activations",
                8 * config.batch_size * self.max_paths * self.max_hops * hidden,
            )

    # -- path featurization (structural, cached) --

    def _relation_sequences(
        self, heads: np.ndarray, tails: np.ndarray
    ) -> List[List[List[int]]]:
        pairs = [(int(h), int(t)) for h, t in zip(heads, tails)]
        missing = sorted({pair for pair in pairs if pair not in self._path_cache})
        if missing:
            enumerated = enumerate_paths_batch(
                self.kg, missing, max_hops=self.max_hops, max_paths=self.max_paths
            )
            for pair, paths in zip(missing, enumerated):
                self._path_cache[pair] = [path[1::2] for path in paths]
        return [self._path_cache[pair] for pair in pairs]

    def _padded_batch(
        self, heads: np.ndarray, tails: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Dense ``(B, max_paths, max_hops)`` relation ids + hop weights.

        ``weights[b, p, j]`` is ``1/len(path)`` on real hops and ``0`` on
        padding, so a masked sum over the hop axis is the per-path mean.
        ``counts[b]`` is the number of enumerated paths for pair ``b``.
        """
        sequences = self._relation_sequences(heads, tails)
        batch = len(sequences)
        relations = np.full(
            (batch, self.max_paths, self.max_hops), self._pad, dtype=np.int64
        )
        weights = np.zeros((batch, self.max_paths, self.max_hops))
        counts = np.zeros(batch)
        for b, paths in enumerate(sequences):
            counts[b] = len(paths)
            for p, rels in enumerate(paths):
                relations[b, p, : len(rels)] = rels
                weights[b, p, : len(rels)] = 1.0 / len(rels)
        return relations, weights, counts

    # -- training forward (autograd tensors) --

    def _pair_vectors(self, heads: np.ndarray, tails: np.ndarray) -> Tensor:
        relations, weights, counts = self._padded_batch(heads, tails)
        batch = len(counts)
        gathered = self.relation_embedding.weight.gather_rows(
            relations.reshape(-1)
        ).reshape(batch * self.max_paths, self.max_hops, -1)
        gated = gathered * self.hop_gate
        path_vectors = (
            gated * Tensor(weights.reshape(batch * self.max_paths, self.max_hops, 1))
        ).sum(axis=1)
        pooled = path_vectors.reshape(batch, self.max_paths, -1).sum(axis=1) * Tensor(
            1.0 / np.maximum(counts, 1.0).reshape(batch, 1)
        )
        connected = Tensor((counts > 0).astype(np.float64).reshape(batch, 1))
        return pooled * connected + self.no_path * (1.0 - connected)

    def _score(self, heads: np.ndarray, tails: np.ndarray) -> Tensor:
        operator = (self._pair_vectors(heads, tails) @ self.decode).tanh()
        h = self.embedding.weight.gather_rows(heads)
        t = self.embedding.weight.gather_rows(tails)
        return (h * operator * t).sum(axis=1)

    def train_epoch(self, rng: np.random.Generator) -> float:
        self.train()
        train_edges = self.task.edges[self.task.split.train]
        if len(train_edges) == 0:
            return 0.0
        batch = min(self.config.batch_size, len(train_edges))
        chosen = train_edges[rng.choice(len(train_edges), size=batch, replace=False)]
        negatives = rng.choice(self.candidate_pool(), size=batch)
        positive = self._score(chosen[:, 0], chosen[:, 1])
        negative = self._score(chosen[:, 0], negatives)
        loss = margin_ranking_loss(positive, negative, margin=self.config.margin)
        self.optimizer.zero_grad()
        loss.backward()
        self.optimizer.step()
        return loss.item()

    def candidate_pool(self) -> np.ndarray:
        pool = self.kg.nodes_of_type(int(self.task.tail_class))
        return pool if len(pool) else np.arange(self.kg.num_nodes, dtype=np.int64)

    # -- inference (plain numpy over the trained parameters) --

    def score_pairs(self, heads: np.ndarray, tails: np.ndarray) -> np.ndarray:
        heads = np.asarray(heads, dtype=np.int64)
        tails = np.asarray(tails, dtype=np.int64)
        relations, weights, counts = self._padded_batch(heads, tails)
        rel_table = self.relation_embedding.weight.data
        path_vectors = (
            rel_table[relations] * self.hop_gate.data * weights[..., None]
        ).sum(axis=2)
        pooled = path_vectors.sum(axis=1) / np.maximum(counts, 1.0)[:, None]
        connected = (counts > 0)[:, None]
        pair_vectors = np.where(connected, pooled, self.no_path.data)
        operator = np.tanh(pair_vectors @ self.decode.data)
        node_table = self.embedding.weight.data
        return (node_table[heads] * operator * node_table[tails]).sum(axis=1)
