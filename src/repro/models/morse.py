"""MorsE (Chen et al., SIGIR 2022): entity-independent meta knowledge.

MorsE learns **entity-independent** knowledge: an entity's initial
embedding is composed from meta information — its class and the relations
it participates in — rather than from a per-entity table.  A light GNN
refines the initialisation, and a TransE decoder scores triples
(the paper evaluates "MorsE-TransE").

The construction here mirrors that recipe: type embeddings plus a
degree-normalised relation-incidence aggregation (a constant sparse
``|V| × 2|R|`` matrix times the relation embedding table), one RGCN-style
refinement layer, TransE margin training with corrupted tails.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.kg.graph import KnowledgeGraph
from repro.core.tasks import LinkPredictionTask
from repro.models.base import ModelConfig, RGCNStack
from repro.nn.functional import margin_ranking_loss
from repro.nn.layers import Embedding, Module
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, no_grad, spmm
from repro.training.resources import ResourceMeter, activation_bytes
from repro.kg.cache import artifacts_for
from repro.transform.features import xavier_features


def _relation_incidence(kg: KnowledgeGraph) -> sp.csr_matrix:
    """Normalised ``|V| × 2|R|`` incidence: out-relations then in-relations."""
    num_rel = max(kg.num_edge_types, 1)
    rows = np.concatenate([kg.triples.s, kg.triples.o])
    cols = np.concatenate([kg.triples.p, kg.triples.p + num_rel])
    data = np.ones(len(rows), dtype=np.float64)
    matrix = sp.csr_matrix((data, (rows, cols)), shape=(kg.num_nodes, 2 * num_rel))
    row_sums = np.asarray(matrix.sum(axis=1)).ravel()
    scale = np.divide(1.0, row_sums, out=np.zeros_like(row_sums), where=row_sums > 0)
    return (sp.diags(scale) @ matrix).tocsr()


class MorsEPredictor(Module):
    """Entity-independent initialisation + RGCN refinement + TransE."""

    name = "MorsE"

    def __init__(
        self,
        kg: KnowledgeGraph,
        task: LinkPredictionTask,
        config: ModelConfig,
        meter: Optional[ResourceMeter] = None,
    ):
        super().__init__()
        self.kg = kg
        self.task = task
        self.config = config
        rng = config.rng()
        num_rel = max(kg.num_edge_types, 1)
        hidden = config.hidden_dim

        self.type_embedding = Embedding(max(kg.num_node_types, 1), hidden, rng)
        self.relation_embedding = Embedding(2 * num_rel, hidden, rng)
        self.score_relation = Embedding(num_rel, hidden, rng)
        self.incidence = _relation_incidence(kg)
        # Fixed (non-trainable) node features: MorsE keeps its *parameters*
        # entity-independent but consumes node features as input data when
        # the KG provides them; without any per-node signal, same-type
        # entities are provably indistinguishable under row-normalised
        # aggregation.  Xavier features play the role of the paper's
        # randomly initialised node embeddings (Section V-A3).
        self.node_features = xavier_features(kg.num_nodes, hidden, rng)
        self.adjacency = artifacts_for(kg).hetero(add_reverse=True, normalize=True)
        self.refine = RGCNStack(
            self.adjacency.num_relations, [hidden, hidden], rng, dropout=config.dropout
        )
        self.optimizer = Adam(self.parameters(), lr=config.lr, weight_decay=config.weight_decay)
        self._cached: Optional[np.ndarray] = None

        if meter is not None:
            incidence_bytes = (
                self.incidence.data.nbytes
                + self.incidence.indices.nbytes
                + self.incidence.indptr.nbytes
            )
            meter.register("graph", self.adjacency.nbytes() + incidence_bytes)
            meter.register("parameters", self.parameter_nbytes())
            meter.register("optimizer", 2 * self.parameter_nbytes())
            # MorsE's memory profile is far lighter than full-batch RGCN:
            # entity-independent init means no |V|-sized embedding table and
            # the single refinement layer does not materialise per-relation
            # messages (the reference implementation fuses them).
            meter.register(
                "activations",
                activation_bytes(
                    kg.num_nodes, hidden, 1, num_relations=1, relation_materialized=False
                ),
            )

    def _encode(self) -> Tensor:
        """Entity embeddings from meta information + fixed node features."""
        initial = (
            self.type_embedding(self.kg.node_types)
            + spmm(self.incidence, self.relation_embedding.all())
            + Tensor(self.node_features)
        )
        return self.refine(initial, self.adjacency.matrices)

    def _transe_score(self, embeddings: Tensor, heads: np.ndarray, tails: np.ndarray) -> Tensor:
        """Negated L1 TransE distance (higher = more plausible)."""
        relation = self.score_relation.weight.gather_rows(
            np.full(len(heads), self.task.predicate, dtype=np.int64)
        )
        h = embeddings.gather_rows(heads)
        t = embeddings.gather_rows(tails)
        return -(h + relation - t).abs().sum(axis=1)

    def train_epoch(self, rng: np.random.Generator) -> float:
        self.train()
        self._cached = None
        train_edges = self.task.edges[self.task.split.train]
        if len(train_edges) == 0:
            return 0.0
        batch = min(self.config.batch_size, len(train_edges))
        chosen = train_edges[rng.choice(len(train_edges), size=batch, replace=False)]
        pool = self.candidate_pool()
        negatives = rng.choice(pool, size=batch)
        embeddings = self._encode()
        positive = self._transe_score(embeddings, chosen[:, 0], chosen[:, 1])
        negative = self._transe_score(embeddings, chosen[:, 0], negatives)
        loss = margin_ranking_loss(positive, negative, margin=self.config.margin)
        self.optimizer.zero_grad()
        loss.backward()
        self.optimizer.step()
        return loss.item()

    def candidate_pool(self) -> np.ndarray:
        pool = self.kg.nodes_of_type(int(self.task.tail_class))
        return pool if len(pool) else np.arange(self.kg.num_nodes, dtype=np.int64)

    def _node_embeddings(self) -> np.ndarray:
        if self._cached is None:
            self.eval()
            with no_grad():
                self._cached = self._encode().numpy()
            self.train()
        return self._cached

    def score_pairs(self, heads: np.ndarray, tails: np.ndarray) -> np.ndarray:
        embeddings = self._node_embeddings()
        relation = self.score_relation.weight.data[int(self.task.predicate)]
        distance = np.abs(embeddings[heads] + relation - embeddings[tails]).sum(axis=1)
        return -distance
