"""Building blocks for synthetic KG generation.

:class:`KGBuilder` accumulates typed nodes and triples and assembles a
:class:`~repro.kg.graph.KnowledgeGraph`; :func:`wire_affine` creates the
community-correlated edges that make tasks learnable; and
:func:`add_noise_domains` plants the task-irrelevant structure whose
removal is KG-TOSA's whole point.

Generators are scale-free: every population count arrives pre-multiplied
by a :data:`~repro.datasets.catalog.SCALES` preset (``tiny`` through
``large``), so the same wiring code produces unit-test graphs and the
out-of-core graphs that exercise ``repro build-artifacts``/``--mmap-dir``.
All randomness flows through the caller's generator, so for a fixed
(scale, seed) pair the draw order — and therefore every downstream
artifact — is bit-reproducible.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.kg.triples import TripleStore
from repro.kg.vocabulary import Vocabulary


class KGBuilder:
    """Incrementally assembles a knowledge graph.

    Node ids are assigned densely in insertion order, so generator code can
    keep the returned id arrays and wire edges directly.
    """

    def __init__(self, name: str):
        self.name = name
        self.node_vocab = Vocabulary(name="nodes")
        self.class_vocab = Vocabulary(name="classes")
        self.relation_vocab = Vocabulary(name="relations")
        self._types: List[int] = []
        self._src: List[np.ndarray] = []
        self._rel: List[np.ndarray] = []
        self._dst: List[np.ndarray] = []

    @property
    def num_nodes(self) -> int:
        return len(self.node_vocab)

    def add_node(self, iri: str, class_name: str) -> int:
        """Add a single typed node; returns its id."""
        node_id = self.node_vocab.add(iri)
        class_id = self.class_vocab.add(class_name)
        if node_id == len(self._types):
            self._types.append(class_id)
        return node_id

    def add_nodes(self, prefix: str, class_name: str, count: int) -> np.ndarray:
        """Add ``count`` nodes named ``{prefix}{i}`` of one class."""
        ids = np.empty(count, dtype=np.int64)
        for i in range(count):
            ids[i] = self.add_node(f"{prefix}{i}", class_name)
        return ids

    def add_triples(self, src: Sequence[int], relation: str, dst: Sequence[int]) -> None:
        """Add edges ``src[i] --relation--> dst[i]``."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if len(src) != len(dst):
            raise ValueError(f"src/dst length mismatch: {len(src)} vs {len(dst)}")
        if len(src) == 0:
            return
        relation_id = self.relation_vocab.add(relation)
        self._src.append(src)
        self._rel.append(np.full(len(src), relation_id, dtype=np.int64))
        self._dst.append(dst)

    def build(self) -> KnowledgeGraph:
        """Materialise the accumulated graph (deduplicating triples)."""
        if self._src:
            triples = TripleStore(
                np.concatenate(self._src),
                np.concatenate(self._rel),
                np.concatenate(self._dst),
            ).deduplicated()
        else:
            triples = TripleStore()
        return KnowledgeGraph(
            node_vocab=self.node_vocab,
            class_vocab=self.class_vocab,
            relation_vocab=self.relation_vocab,
            node_types=np.asarray(self._types, dtype=np.int64),
            triples=triples,
            name=self.name,
        )


def wire_affine(
    builder: KGBuilder,
    rng: np.random.Generator,
    src_ids: np.ndarray,
    dst_ids: np.ndarray,
    src_communities: np.ndarray,
    dst_communities: np.ndarray,
    relation: str,
    p_same: float = 0.8,
    out_degree: float = 2.0,
) -> None:
    """Community-affine wiring: the label-predictive structure.

    Each source draws ~``out_degree`` targets; with probability ``p_same``
    the target is drawn from destinations sharing the source's community,
    otherwise uniformly.  This is the synthetic analogue of venue-coherent
    co-authorship / citations / located-in edges: a GNN can recover a
    source's community from its neighbourhood, so tasks are learnable —
    and remain learnable inside any subgraph that keeps this wiring.
    """
    src_ids = np.asarray(src_ids, dtype=np.int64)
    dst_ids = np.asarray(dst_ids, dtype=np.int64)
    if len(src_ids) == 0 or len(dst_ids) == 0:
        return
    by_community: Dict[int, np.ndarray] = {}
    dst_communities = np.asarray(dst_communities)
    for community in np.unique(dst_communities):
        by_community[int(community)] = dst_ids[dst_communities == community]
    all_src: List[int] = []
    all_dst: List[int] = []
    degrees = rng.poisson(out_degree, size=len(src_ids))
    for index, src in enumerate(src_ids):
        community = int(src_communities[index])
        same_pool = by_community.get(community)
        for _ in range(max(int(degrees[index]), 1)):
            if same_pool is not None and len(same_pool) and rng.random() < p_same:
                dst = int(same_pool[rng.integers(len(same_pool))])
            else:
                dst = int(dst_ids[rng.integers(len(dst_ids))])
            all_src.append(int(src))
            all_dst.append(dst)
    builder.add_triples(all_src, relation, all_dst)


def add_noise_domains(
    builder: KGBuilder,
    rng: np.random.Generator,
    num_domains: int,
    nodes_per_domain: int,
    prefix: str = "Noise",
    attach_ids: Optional[np.ndarray] = None,
    attach_probability: float = 0.0,
    intra_degree: float = 2.0,
) -> List[np.ndarray]:
    """Plant task-irrelevant domains (Figure 2's pathology source).

    Each domain gets its own node class and edge type plus random internal
    wiring.  With ``attach_probability`` > 0 a few nodes link to
    ``attach_ids`` (weakly-attached noise — reachable but distant);
    otherwise the domain is fully disconnected from the core.
    """
    domains: List[np.ndarray] = []
    for domain in range(num_domains):
        ids = builder.add_nodes(
            f"{prefix.lower()}{domain}_", f"{prefix}Type{domain}", nodes_per_domain
        )
        num_internal = max(int(nodes_per_domain * intra_degree), 1)
        src = ids[rng.integers(len(ids), size=num_internal)]
        dst = ids[rng.integers(len(ids), size=num_internal)]
        builder.add_triples(src, f"{prefix.lower()}Rel{domain}", dst)
        if attach_ids is not None and attach_probability > 0:
            num_attach = rng.binomial(nodes_per_domain, attach_probability)
            if num_attach > 0:
                src = ids[rng.integers(len(ids), size=num_attach)]
                dst = np.asarray(attach_ids)[rng.integers(len(attach_ids), size=num_attach)]
                builder.add_triples(src, f"{prefix.lower()}Link{domain}", dst)
        domains.append(ids)
    return domains
