"""Synthetic benchmark KGs and tasks (Tables I and II).

The paper benchmarks on MAG-42M, DBLP-15M, YAGO-30M, ogbl-wikikg2 and
YAGO3-10 — public KGs of 10⁶–10⁸ triples that cannot ship with a test
suite.  This package generates **schema-faithful synthetic stand-ins** at
10³–10⁵ scale that preserve what the paper's phenomena depend on:

* a task-relevant core whose wiring is label-predictive (community-affine
  co-authorship, citations, located-in hierarchies, flight networks …);
* task-irrelevant noise domains — extra node/edge types that are weakly
  attached or fully disconnected from the targets (Figure 2's pathology);
* the relative type-richness ordering of Table I (YAGO ≫ MAG > DBLP).

``catalog`` exposes one constructor per KG plus the nine Table II tasks.
"""

from repro.datasets.generators import KGBuilder, wire_affine, add_noise_domains
from repro.datasets.catalog import (
    DatasetBundle,
    mag,
    dblp,
    yago4,
    yago3_10,
    wikikg2,
    ogbn_mag_subset,
    benchmark_kgs,
    SCALES,
)

__all__ = [
    "KGBuilder",
    "wire_affine",
    "add_noise_domains",
    "DatasetBundle",
    "mag",
    "dblp",
    "yago4",
    "yago3_10",
    "wikikg2",
    "ogbn_mag_subset",
    "benchmark_kgs",
    "SCALES",
]
