"""The benchmark catalog: five KGs, nine tasks (Tables I and II).

Each constructor returns a :class:`DatasetBundle` whose ``tasks`` dict is
keyed by the paper's task names:

========  ===========  ====================================  ======
KG        tasks        semantics                              metric
========  ===========  ====================================  ======
mag       PV, PD       paper → venue / domain labels          acc
dblp      PV, AC, AA   paper → venue, author → community,     acc /
                       author —affiliatedWith→ university     hits
yago4     PC, CG       place → country, work → genre          acc
wikikg2   PO           person —hasOccupation→ occupation      hits
yago3_10  CA           airport —connectsTo→ airport           hits
========  ===========  ====================================  ======

Link-prediction valid/test edges are **held out of the graph structure**
(the paper splits by KG version/time); only training edges are wired in.

Scale presets (:data:`SCALES`) multiply the base population counts:
``tiny`` for unit tests, ``small`` for examples/benchmarks, ``medium`` for
heavier sweeps, and ``large`` for out-of-core exercises — big enough that
pickling the graph into every pool worker is measurably worse than
memory-mapping a saved artifact store (``repro build-artifacts`` +
``--mmap-dir``).  Type-richness ordering follows Table I
(wikikg2 > YAGO-4 > MAG > DBLP > YAGO3-10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.core.tasks import GNNTask, LinkPredictionTask, NodeClassificationTask
from repro.datasets.generators import KGBuilder, add_noise_domains, wire_affine
from repro.training.splits import stratified_random_split, time_split

SCALES: Dict[str, float] = {"tiny": 0.3, "small": 1.0, "medium": 3.0, "large": 10.0}


@dataclass
class DatasetBundle:
    """A generated KG together with its ready-made tasks."""

    kg: KnowledgeGraph
    tasks: Dict[str, GNNTask]
    meta: Dict[str, object] = field(default_factory=dict)

    def task(self, name: str) -> GNNTask:
        if name not in self.tasks:
            raise KeyError(f"{self.kg.name} has tasks {sorted(self.tasks)}, not {name!r}")
        return self.tasks[name]


def _count(base: int, scale: float, minimum: int = 2) -> int:
    return max(int(round(base * scale)), minimum)


def _resolve_scale(scale) -> float:
    if isinstance(scale, str):
        if scale not in SCALES:
            raise KeyError(f"unknown scale {scale!r}; choose from {sorted(SCALES)}")
        return SCALES[scale]
    return float(scale)


# ---------------------------------------------------------------------------
# MAG — academic KG, tasks PV (paper→venue) and PD (paper→domain)
# ---------------------------------------------------------------------------


def mag(scale="small", seed: int = 7) -> DatasetBundle:
    """MAG-42M stand-in: papers/authors/institutions/fields + noise domains."""
    s = _resolve_scale(scale)
    rng = np.random.default_rng(seed)
    builder = KGBuilder(f"MAG-{scale}")

    num_venues = 8
    num_domains = 4
    papers = builder.add_nodes("paper", "Paper", _count(900, s))
    authors = builder.add_nodes("author", "Author", _count(600, s))
    institutions = builder.add_nodes("inst", "Institution", _count(40, s))
    fields = builder.add_nodes("field", "FieldOfStudy", _count(48, s, minimum=num_venues))

    paper_venue = rng.integers(num_venues, size=len(papers))
    venue_to_domain = rng.integers(num_domains, size=num_venues)
    paper_domain = venue_to_domain[paper_venue]
    # A little label noise keeps PD from being a deterministic copy of PV.
    flip = rng.random(len(papers)) < 0.1
    paper_domain = np.where(flip, rng.integers(num_domains, size=len(papers)), paper_domain)
    paper_year = rng.integers(2010, 2022, size=len(papers))

    author_venue = rng.integers(num_venues, size=len(authors))
    institution_venue = rng.integers(num_venues, size=len(institutions))
    field_venue = np.arange(len(fields)) % num_venues

    # Papers carry their relevant context on *outgoing* predicates (the MAG
    # dump orients hasAuthor/cites/hasField this way), so the paper's d1h1
    # pattern captures it; noise attaches via incoming edges only.
    wire_affine(builder, rng, papers, authors, paper_venue, author_venue,
                "hasAuthor", p_same=0.8, out_degree=2.0)
    wire_affine(builder, rng, papers, papers, paper_venue, paper_venue,
                "cites", p_same=0.65, out_degree=2.0)
    wire_affine(builder, rng, papers, fields, paper_venue, field_venue,
                "hasField", p_same=0.85, out_degree=1.5)
    wire_affine(builder, rng, authors, institutions, author_venue, institution_venue,
                "affiliatedWith", p_same=0.75, out_degree=1.0)

    add_noise_domains(builder, rng, num_domains=12, nodes_per_domain=_count(30, s),
                      prefix="MagNoise", attach_ids=papers, attach_probability=0.06)
    add_noise_domains(builder, rng, num_domains=8, nodes_per_domain=_count(20, s),
                      prefix="MagIsland")

    # PK: multi-label keyword prediction (the multi-label case the paper's
    # Definition 2.2 describes but never evaluates).  Each venue has three
    # affine keywords; papers mostly draw from their venue's pool.
    num_keywords = 10
    venue_keywords = np.stack(
        [rng.choice(num_keywords, size=3, replace=False) for _ in range(num_venues)]
    )
    keyword_labels = np.zeros((len(papers), num_keywords), dtype=np.int64)
    for index, venue in enumerate(paper_venue):
        count = rng.integers(1, 4)
        if rng.random() < 0.85:
            chosen = rng.choice(venue_keywords[venue], size=min(count, 3), replace=False)
        else:
            chosen = rng.choice(num_keywords, size=count, replace=False)
        keyword_labels[index, chosen] = 1

    kg = builder.build()
    from repro.core.multilabel import MultiLabelNodeClassificationTask

    tasks: Dict[str, GNNTask] = {
        "PV": NodeClassificationTask(
            name="PV", target_class=kg.class_vocab.id("Paper"), target_nodes=papers,
            labels=paper_venue, num_labels=num_venues,
            split=time_split(paper_year, ratios=(0.84, 0.09, 0.07)), kg_name=kg.name,
        ),
        "PD": NodeClassificationTask(
            name="PD", target_class=kg.class_vocab.id("Paper"), target_nodes=papers,
            labels=paper_domain, num_labels=num_domains,
            split=time_split(paper_year, ratios=(0.87, 0.08, 0.05)), kg_name=kg.name,
        ),
        "PK": MultiLabelNodeClassificationTask(
            name="PK", target_class=kg.class_vocab.id("Paper"), target_nodes=papers,
            labels=keyword_labels,
            split=time_split(paper_year, ratios=(0.8, 0.1, 0.1)), kg_name=kg.name,
        ),
    }
    return DatasetBundle(kg=kg, tasks=tasks, meta={"paper_year": paper_year, "scale": s})


def ogbn_mag_subset(
    bundle: DatasetBundle,
    seed: int = 11,
    keep_edge_fraction: float = 0.5,
) -> DatasetBundle:
    """The handcrafted OGBN-MAG-style TOSG used in Figure 1.

    OGBN-MAG keeps only four node types out of MAG's 58 and ~0.2 % of the
    triples — a curated subset that "trades the accuracy to reduce time and
    memory".  We model curation loss by (i) restricting to the four core
    types and (ii) dropping a fraction of the remaining edges.
    """
    rng = np.random.default_rng(seed)
    kg = bundle.kg
    core = {"Paper", "Author", "Institution", "FieldOfStudy"}
    core_ids = [kg.class_vocab.id(c) for c in core if c in kg.class_vocab]
    keep_mask = np.isin(kg.node_types, core_ids)
    nodes = np.flatnonzero(keep_mask)
    subgraph, mapping = kg.induced_subgraph(nodes, name=f"{kg.name}-ogbn")

    num_keep = int(round(subgraph.num_edges * keep_edge_fraction))
    chosen = rng.choice(subgraph.num_edges, size=num_keep, replace=False)
    pruned = KnowledgeGraph(
        node_vocab=subgraph.node_vocab,
        class_vocab=subgraph.class_vocab,
        relation_vocab=subgraph.relation_vocab,
        node_types=subgraph.node_types,
        triples=subgraph.triples.select(np.sort(chosen)),
        name=subgraph.name,
    )
    from repro.core.tasks import remap_task  # local import avoids a cycle

    tasks = {name: remap_task(task, pruned, mapping) for name, task in bundle.tasks.items()}
    return DatasetBundle(kg=pruned, tasks=tasks, meta={"parent": kg.name})


# ---------------------------------------------------------------------------
# DBLP — tasks PV (paper→venue), AC (author→community), AA (affiliatedWith LP)
# ---------------------------------------------------------------------------


def dblp(scale="small", seed: int = 13) -> DatasetBundle:
    """DBLP-15M stand-in: bibliography core + universities for the AA task."""
    s = _resolve_scale(scale)
    rng = np.random.default_rng(seed)
    builder = KGBuilder(f"DBLP-{scale}")

    num_venues = 6
    num_communities = 5
    papers = builder.add_nodes("paper", "Publication", _count(800, s))
    authors = builder.add_nodes("author", "Person", _count(550, s))
    universities = builder.add_nodes("univ", "University", _count(30, s))
    streams = builder.add_nodes("stream", "Stream", _count(24, s, minimum=num_venues))

    paper_venue = rng.integers(num_venues, size=len(papers))
    author_community = rng.integers(num_communities, size=len(authors))
    # Venues map onto communities so co-authorship carries both signals.
    venue_of_community = rng.integers(num_venues, size=num_communities)
    author_venue = venue_of_community[author_community]
    university_community = rng.integers(num_communities, size=len(universities))
    stream_venue = np.arange(len(streams)) % num_venues
    paper_year = rng.integers(2008, 2023, size=len(papers))

    wire_affine(builder, rng, papers, authors, paper_venue, author_venue,
                "hasAuthor", p_same=0.8, out_degree=2.0)
    wire_affine(builder, rng, papers, papers, paper_venue, paper_venue,
                "cites", p_same=0.65, out_degree=1.8)
    wire_affine(builder, rng, papers, streams, paper_venue, stream_venue,
                "partOfStream", p_same=0.85, out_degree=1.2)
    wire_affine(builder, rng, authors, authors, author_community, author_community,
                "coAuthorWith", p_same=0.85, out_degree=1.5)

    # affiliatedWith edges double as the AA link-prediction ground truth:
    # generate all pairs, time-split, and wire ONLY the training portion.
    affiliations = []
    for index, author in enumerate(authors):
        community = author_community[index]
        pool = universities[university_community == community]
        if len(pool) == 0 or rng.random() < 0.1:
            pool = universities
        affiliations.append((int(author), int(pool[rng.integers(len(pool))])))
    aa_edges = np.asarray(affiliations, dtype=np.int64)
    aa_times = rng.integers(2008, 2023, size=len(aa_edges))
    # Paper ratio is 99/0.7/0.3 (Table II); at synthetic scale that leaves
    # single-digit eval edges, so the held-out fractions are enlarged while
    # keeping the time-split schema.
    aa_split = time_split(aa_times, ratios=(0.90, 0.05, 0.05))
    train_aa = aa_edges[aa_split.train]
    builder.add_triples(train_aa[:, 0], "affiliatedWith", train_aa[:, 1])

    add_noise_domains(builder, rng, num_domains=6, nodes_per_domain=_count(24, s),
                      prefix="DblpNoise", attach_ids=papers, attach_probability=0.02)
    add_noise_domains(builder, rng, num_domains=4, nodes_per_domain=_count(16, s),
                      prefix="DblpIsland")

    kg = builder.build()
    tasks: Dict[str, GNNTask] = {
        "PV": NodeClassificationTask(
            name="PV", target_class=kg.class_vocab.id("Publication"), target_nodes=papers,
            labels=paper_venue, num_labels=num_venues,
            split=time_split(paper_year, ratios=(0.79, 0.10, 0.11)), kg_name=kg.name,
        ),
        "AC": NodeClassificationTask(
            name="AC", target_class=kg.class_vocab.id("Person"), target_nodes=authors,
            labels=author_community, num_labels=num_communities,
            split=time_split(rng.integers(2008, 2023, size=len(authors)),
                             ratios=(0.80, 0.10, 0.10)), kg_name=kg.name,
        ),
        "AA": LinkPredictionTask(
            name="AA", predicate=kg.relation_vocab.id("affiliatedWith"),
            head_class=kg.class_vocab.id("Person"),
            tail_class=kg.class_vocab.id("University"),
            edges=aa_edges, split=aa_split, kg_name=kg.name,
        ),
    }
    return DatasetBundle(kg=kg, tasks=tasks, meta={"paper_year": paper_year, "scale": s})


# ---------------------------------------------------------------------------
# YAGO-4 — tasks PC (place→country) and CG (creative work→genre)
# ---------------------------------------------------------------------------


def yago4(scale="small", seed: int = 17) -> DatasetBundle:
    """YAGO-30M stand-in: the most type-diverse KG, noise-dominated.

    The CreativeWork core is a small fraction of the graph so a uniform
    random walk rarely reaches CG targets — reproducing Figure 2(a)'s
    15 % target ratio pathology.
    """
    s = _resolve_scale(scale)
    rng = np.random.default_rng(seed)
    builder = KGBuilder(f"YAGO-{scale}")

    num_countries = 6
    num_genres = 5
    places = builder.add_nodes("place", "Place", _count(420, s))
    persons = builder.add_nodes("person", "Person", _count(500, s))
    works = builder.add_nodes("work", "CreativeWork", _count(320, s))
    artists = builder.add_nodes("artist", "Artist", _count(180, s))
    organizations = builder.add_nodes("org", "Organization", _count(80, s))

    place_country = rng.integers(num_countries, size=len(places))
    person_country = rng.integers(num_countries, size=len(persons))
    work_genre = rng.integers(num_genres, size=len(works))
    artist_genre = rng.integers(num_genres, size=len(artists))
    org_country = rng.integers(num_countries, size=len(organizations))

    wire_affine(builder, rng, places, places, place_country, place_country,
                "locatedIn", p_same=0.85, out_degree=2.0)
    wire_affine(builder, rng, persons, places, person_country, place_country,
                "bornIn", p_same=0.8, out_degree=1.0)
    wire_affine(builder, rng, persons, persons, person_country, person_country,
                "knows", p_same=0.75, out_degree=1.5)
    wire_affine(builder, rng, organizations, places, org_country, place_country,
                "headquarteredIn", p_same=0.8, out_degree=1.0)
    wire_affine(builder, rng, artists, works, artist_genre, work_genre,
                "created", p_same=0.85, out_degree=2.5)
    wire_affine(builder, rng, works, works, work_genre, work_genre,
                "influencedBy", p_same=0.75, out_degree=1.5)
    wire_affine(builder, rng, artists, artists, artist_genre, artist_genre,
                "collaboratesWith", p_same=0.8, out_degree=1.2)

    # Heavy noise: the defining feature of the YAGO stand-in.
    add_noise_domains(builder, rng, num_domains=16, nodes_per_domain=_count(45, s),
                      prefix="YagoNoise", attach_ids=persons, attach_probability=0.01)
    add_noise_domains(builder, rng, num_domains=12, nodes_per_domain=_count(35, s),
                      prefix="YagoIsland")

    kg = builder.build()
    tasks: Dict[str, GNNTask] = {
        "PC": NodeClassificationTask(
            name="PC", target_class=kg.class_vocab.id("Place"), target_nodes=places,
            labels=place_country, num_labels=num_countries,
            split=stratified_random_split(place_country, (0.8, 0.1, 0.1),
                                          rng=np.random.default_rng(seed + 1)),
            kg_name=kg.name,
        ),
        "CG": NodeClassificationTask(
            name="CG", target_class=kg.class_vocab.id("CreativeWork"), target_nodes=works,
            labels=work_genre, num_labels=num_genres,
            split=stratified_random_split(work_genre, (0.8, 0.1, 0.1),
                                          rng=np.random.default_rng(seed + 2)),
            kg_name=kg.name,
        ),
    }
    return DatasetBundle(kg=kg, tasks=tasks, meta={"scale": s})


# ---------------------------------------------------------------------------
# YAGO3-10 — task CA (airport connectsTo airport, LP)
# ---------------------------------------------------------------------------


def yago3_10(scale="small", seed: int = 19) -> DatasetBundle:
    """YAGO3-10 stand-in: a flight network with regional communities."""
    s = _resolve_scale(scale)
    rng = np.random.default_rng(seed)
    builder = KGBuilder(f"YAGO3-10-{scale}")

    num_regions = 8
    airports = builder.add_nodes("airport", "Airport", _count(260, s))
    cities = builder.add_nodes("city", "City", _count(120, s))
    persons = builder.add_nodes("person", "Person", _count(150, s))
    airlines = builder.add_nodes("airline", "Airline", _count(24, s))

    airport_region = rng.integers(num_regions, size=len(airports))
    city_region = rng.integers(num_regions, size=len(cities))
    airline_region = rng.integers(num_regions, size=len(airlines))
    person_region = rng.integers(num_regions, size=len(persons))

    wire_affine(builder, rng, airports, cities, airport_region, city_region,
                "serves", p_same=0.85, out_degree=1.0)
    wire_affine(builder, rng, airlines, airports, airline_region, airport_region,
                "operatesAt", p_same=0.8, out_degree=3.0)
    wire_affine(builder, rng, persons, cities, person_region, city_region,
                "livesIn", p_same=0.8, out_degree=1.0)

    # connectsTo ground truth: region-affine flight pairs; train edges wired.
    pairs = []
    for index, airport in enumerate(airports):
        region = airport_region[index]
        same = airports[airport_region == region]
        degree = max(int(rng.poisson(4.0)), 1)
        for _ in range(degree):
            if len(same) > 1 and rng.random() < 0.8:
                other = int(same[rng.integers(len(same))])
            else:
                other = int(airports[rng.integers(len(airports))])
            if other != int(airport):
                pairs.append((int(airport), other))
    ca_edges = np.unique(np.asarray(pairs, dtype=np.int64), axis=0)
    # Paper ratio is 99/0.5/0.5 (Table II); enlarged for synthetic scale.
    ca_split = stratified_random_split(
        np.zeros(len(ca_edges), dtype=np.int64), (0.90, 0.05, 0.05),
        rng=np.random.default_rng(seed + 1),
    )
    train_ca = ca_edges[ca_split.train]
    builder.add_triples(train_ca[:, 0], "connectsTo", train_ca[:, 1])

    add_noise_domains(builder, rng, num_domains=4, nodes_per_domain=_count(20, s),
                      prefix="Y3Noise", attach_ids=cities, attach_probability=0.05)

    kg = builder.build()
    tasks: Dict[str, GNNTask] = {
        "CA": LinkPredictionTask(
            name="CA", predicate=kg.relation_vocab.id("connectsTo"),
            head_class=kg.class_vocab.id("Airport"),
            tail_class=kg.class_vocab.id("Airport"),
            edges=ca_edges, split=ca_split, kg_name=kg.name,
        ),
    }
    return DatasetBundle(kg=kg, tasks=tasks, meta={"scale": s})


# ---------------------------------------------------------------------------
# ogbl-wikikg2 — task PO (person hasOccupation occupation, LP)
# ---------------------------------------------------------------------------


def wikikg2(scale="small", seed: int = 23) -> DatasetBundle:
    """ogbl-wikikg2 stand-in: the most type-rich KG (Table I's 9.3K classes).

    Dozens of micro-domains model Wikidata's enormous class vocabulary.
    """
    s = _resolve_scale(scale)
    rng = np.random.default_rng(seed)
    builder = KGBuilder(f"wikikg2-{scale}")

    num_occupations = 40
    persons = builder.add_nodes("person", "Human", _count(520, s))
    occupations = builder.add_nodes("occ", "Occupation", num_occupations)
    employers = builder.add_nodes("employer", "Organization", _count(48, s))
    cities = builder.add_nodes("city", "City", _count(36, s))
    awards = builder.add_nodes("award", "Award", _count(24, s))

    person_occupation = rng.integers(num_occupations, size=len(persons))
    employer_occupation = rng.integers(num_occupations, size=len(employers))
    award_occupation = rng.integers(num_occupations, size=len(awards))
    city_of = rng.integers(len(cities), size=len(persons))

    wire_affine(builder, rng, persons, employers, person_occupation, employer_occupation,
                "worksFor", p_same=0.85, out_degree=1.2)
    wire_affine(builder, rng, persons, persons, person_occupation, person_occupation,
                "collaboratedWith", p_same=0.8, out_degree=1.5)
    wire_affine(builder, rng, persons, awards, person_occupation, award_occupation,
                "receivedAward", p_same=0.8, out_degree=0.6)
    builder.add_triples(persons, "residesIn", cities[city_of])

    # hasOccupation ground truth (the PO task); train edges wired.
    po_edges = np.stack([persons, occupations[person_occupation]], axis=1)
    po_times = rng.integers(2001, 2021, size=len(po_edges))
    # Paper ratio is 94/2.5/3.5 (Table II); enlarged for synthetic scale.
    po_split = time_split(po_times, ratios=(0.88, 0.05, 0.07))
    train_po = po_edges[po_split.train]
    builder.add_triples(train_po[:, 0], "hasOccupation", train_po[:, 1])

    # Wikidata-style class explosion: many tiny domains.
    add_noise_domains(builder, rng, num_domains=28, nodes_per_domain=_count(10, s),
                      prefix="WikiNoise", attach_ids=persons, attach_probability=0.04)
    add_noise_domains(builder, rng, num_domains=14, nodes_per_domain=_count(8, s),
                      prefix="WikiIsland")

    kg = builder.build()
    tasks: Dict[str, GNNTask] = {
        "PO": LinkPredictionTask(
            name="PO", predicate=kg.relation_vocab.id("hasOccupation"),
            head_class=kg.class_vocab.id("Human"),
            tail_class=kg.class_vocab.id("Occupation"),
            edges=po_edges, split=po_split, kg_name=kg.name,
        ),
    }
    return DatasetBundle(kg=kg, tasks=tasks, meta={"scale": s})


def benchmark_kgs(scale="small", seed: int = 7) -> Dict[str, DatasetBundle]:
    """All five benchmark KGs (Table I rows)."""
    return {
        "MAG": mag(scale, seed),
        "YAGO": yago4(scale, seed + 10),
        "DBLP": dblp(scale, seed + 20),
        "wikikg2": wikikg2(scale, seed + 30),
        "YAGO3-10": yago3_10(scale, seed + 40),
    }
