"""KG-TOSA reproduction.

A from-scratch Python implementation of *Task-Oriented GNNs Training on
Large Knowledge Graphs for Accurate and Efficient Modeling* (ICDE 2024),
including every substrate the paper depends on: an RDF-style triple store
with hexastore indices, a SPARQL-subset engine, task-oriented samplers
(BRW / IBS / SPARQL-based), a numpy autograd + sparse message-passing NN
stack, six HGNN methods, synthetic benchmark KGs, and the full experiment
harness for the paper's tables and figures.

Quickstart
----------
>>> from repro.datasets import catalog
>>> from repro.core import extract_tosg
>>> kg = catalog.mag(scale="tiny", seed=7)
>>> task = catalog.task_pv_mag(kg)
>>> tosg = extract_tosg(kg, task, method="sparql", direction=1, hops=1)
>>> tosg.subgraph.num_nodes < kg.num_nodes
True
"""

__version__ = "1.0.0"
