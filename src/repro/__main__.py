"""``python -m repro`` dispatches to the CLI.

The ``__main__`` guard is load-bearing: multiprocessing's spawn and
forkserver start methods re-import the main module in every child (under
``__mp_main__``), so an unguarded ``main()`` here would recursively
re-run the CLI inside each serving-pool worker.
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
