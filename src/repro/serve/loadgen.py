"""Closed-loop load generator for the extraction service.

A fixed population of ``concurrency`` workers each keeps exactly one
request in flight: issue, await, record latency, issue the next (the
classic closed-loop model, which measures service capacity rather than
open-loop queueing collapse).  Workers pull target nodes round-robin from
the task's target set — the live-traffic version of the IBS benchmark
loop.

:func:`run_load` drives one :class:`ExtractionService` configuration
(in-process, or multi-process via ``pool=``) and returns a
:class:`LoadReport`; the ``compare_*`` entry points each run the serial
one-request-at-a-time baseline and one serving configuration over the
*same* request sequence, verify the results are bit-identical, and
report the throughput ratio — the numbers guarded by
``benchmarks/check_perf_floors.py``: :func:`compare_serving_modes` (the
in-process coalescing scheduler), :func:`compare_http_serving` (the HTTP
front end over real sockets) and :func:`compare_pool_serving` (the
multi-process sharded worker pool).  :func:`compare_distributed_scaling`
is pool-vs-pool instead: one worker vs a wider (optionally remote TCP)
tier, guarding that adding workers actually adds capacity.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.serve.http import serve_http
from repro.serve.metrics import percentile
from repro.serve.pool import WorkerPool
from repro.serve.service import ExtractionService, ServiceOverloaded
from repro.serve.wire import bound_port

GRAPH_NAME = "load"


ROW_HEADERS = [
    "mode", "reqs", "conc", "wall(s)", "req/s", "p50(ms)", "p95(ms)", "occupancy",
]


@dataclass
class LoadReport:
    """One load run: configuration, wall-clock numbers, tail latency."""

    mode: str
    requests: int
    concurrency: int
    wall_seconds: float
    throughput_rps: float
    p50_ms: float
    p95_ms: float
    rejected: int
    batch_occupancy: float
    results: Dict[int, List[Tuple[int, float]]] = field(repr=False, default_factory=dict)
    metrics: dict = field(repr=False, default_factory=dict)

    def as_row(self) -> List[str]:
        """Rendered cells matching :data:`ROW_HEADERS` (for render_table)."""
        return [
            self.mode,
            str(self.requests),
            str(self.concurrency),
            f"{self.wall_seconds:.3f}",
            f"{self.throughput_rps:.0f}",
            f"{self.p50_ms:.2f}",
            f"{self.p95_ms:.2f}",
            f"{self.batch_occupancy:.1f}",
        ]

    def as_json(self) -> dict:
        """The report minus the raw per-target results (for persistence)."""
        return {
            "mode": self.mode,
            "requests": self.requests,
            "concurrency": self.concurrency,
            "wall_seconds": self.wall_seconds,
            "throughput_rps": self.throughput_rps,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "rejected": self.rejected,
            "batch_occupancy": self.batch_occupancy,
        }


async def _closed_loop(
    service: ExtractionService,
    targets: Sequence[int],
    k: int,
    concurrency: int,
) -> Tuple[Dict[int, List[Tuple[int, float]]], List[float], int]:
    """Run the request sequence with ``concurrency`` in-flight workers."""
    next_index = 0
    latencies: List[float] = []
    rejected = 0
    results: Dict[int, List[Tuple[int, float]]] = {}

    async def worker() -> None:
        nonlocal next_index, rejected
        while True:
            index = next_index
            if index >= len(targets):
                return
            next_index = index + 1
            target = int(targets[index])
            start = time.perf_counter()
            while True:
                try:
                    result = await service.ppr_top_k(GRAPH_NAME, target, k=k)
                    break
                except ServiceOverloaded as exc:
                    # Closed-loop clients honour the backpressure contract:
                    # back off for the hinted interval, then retry.
                    rejected += 1
                    await asyncio.sleep(exc.retry_after)
            latencies.append(time.perf_counter() - start)
            results[target] = result

    await asyncio.gather(*(worker() for _ in range(concurrency)))
    await service.drain()
    return results, latencies, rejected


def run_load(
    kg: KnowledgeGraph,
    targets: Sequence[int],
    k: int = 16,
    concurrency: int = 64,
    coalesce: bool = True,
    max_batch: int = 64,
    max_delay: float = 0.002,
    max_pending: Optional[int] = None,
    pool: Optional[WorkerPool] = None,
    mmap_dir: Optional[str] = None,
) -> LoadReport:
    """Drive one service configuration with the closed-loop generator.

    ``max_pending`` defaults to ``2 * concurrency`` so a healthy run is
    never admission-limited; pass something smaller to exercise shedding.
    ``pool`` switches kernel dispatch to the multi-process worker pool
    (the caller owns the pool's lifecycle; registration of the load graph
    on the pool is idempotent, so one pool can back several runs).
    ``mmap_dir`` (pool mode) registers the graph by artifact-store path so
    workers memory-map their state instead of receiving a pickled graph.
    """
    service = ExtractionService(
        max_pending=max_pending if max_pending is not None else 2 * concurrency,
        max_batch=max_batch,
        max_delay=max_delay,
        coalesce=coalesce,
        pool=pool,
    )
    service.register(GRAPH_NAME, kg, mmap_dir=mmap_dir)

    async def run():
        start = time.perf_counter()
        results, latencies, rejected = await _closed_loop(
            service, targets, k, concurrency
        )
        return results, latencies, rejected, time.perf_counter() - start

    results, latencies, rejected, wall = asyncio.run(run())
    return LoadReport(
        mode="pooled" if pool is not None else ("coalesced" if coalesce else "serial"),
        requests=len(targets),
        concurrency=concurrency,
        wall_seconds=wall,
        throughput_rps=len(targets) / max(wall, 1e-12),
        p50_ms=percentile(latencies, 0.50) * 1e3,
        p95_ms=percentile(latencies, 0.95) * 1e3,
        rejected=rejected,
        batch_occupancy=service.metrics.batch_occupancy(),
        results=results,
        metrics=service.metrics_snapshot(),
    )


# -- HTTP closed loop ---------------------------------------------------------


async def read_http_response(
    reader: asyncio.StreamReader,
) -> Tuple[int, Dict[str, str], bytes, int]:
    """Parse one HTTP/1.1 response: (status, headers, body, chunk count).

    Decodes both Content-Length and chunked-transfer-encoded bodies; the
    chunk count lets callers assert streaming actually happened.  This is
    the one minimal client parser in the repo — the protocol tests import
    it too, so the load generator and the tests can never disagree about
    what the server sent.
    """
    status_line = await reader.readline()
    if not status_line:
        raise ConnectionError("server closed the connection")
    status = int(status_line.split()[1])
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    chunks = 0
    if headers.get("transfer-encoding", "").lower() == "chunked":
        body = bytearray()
        while True:
            size = int((await reader.readline()).strip(), 16)
            if size == 0:
                await reader.readline()  # trailing CRLF
                break
            body += await reader.readexactly(size)
            await reader.readexactly(2)  # chunk CRLF
            chunks += 1
        return status, headers, bytes(body), chunks
    body = await reader.readexactly(int(headers.get("content-length", "0")))
    return status, headers, body, chunks


async def _http_request(
    reader: asyncio.StreamReader, writer: asyncio.StreamWriter, path: str
) -> Tuple[int, object]:
    """One keep-alive GET on an open connection; returns (status, JSON body)."""
    writer.write(f"GET {path} HTTP/1.1\r\nHost: loadgen\r\n\r\n".encode("latin-1"))
    await writer.drain()
    status, _headers, body, _chunks = await read_http_response(reader)
    return status, json.loads(body) if body else None


async def _http_closed_loop(
    port: int,
    targets: Sequence[int],
    k: int,
    concurrency: int,
) -> Tuple[Dict[int, List[Tuple[int, float]]], List[float], int]:
    """The closed loop over the wire: one keep-alive connection per worker."""
    next_index = 0
    latencies: List[float] = []
    rejected = 0
    results: Dict[int, List[Tuple[int, float]]] = {}

    async def worker() -> None:
        nonlocal next_index, rejected
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        try:
            while True:
                index = next_index
                if index >= len(targets):
                    return
                next_index = index + 1
                target = int(targets[index])
                path = f"/ppr?graph={GRAPH_NAME}&target={target}&k={k}"
                start = time.perf_counter()
                while True:
                    status, payload = await _http_request(reader, writer, path)
                    if status == 200:
                        break
                    if status == 503:
                        # 503 + retry_after is the HTTP face of the
                        # backpressure contract; honour the hint.
                        rejected += 1
                        await asyncio.sleep(float(payload["retry_after"]))
                        continue
                    raise RuntimeError(f"unexpected HTTP {status}: {payload!r}")
                latencies.append(time.perf_counter() - start)
                results[target] = [(int(node), float(score)) for node, score in payload]
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - peer already gone
                pass

    await asyncio.gather(*(worker() for _ in range(concurrency)))
    return results, latencies, rejected


def run_http_load(
    kg: KnowledgeGraph,
    targets: Sequence[int],
    k: int = 16,
    concurrency: int = 64,
    coalesce: bool = True,
    max_batch: int = 64,
    max_delay: float = 0.002,
    max_pending: Optional[int] = None,
) -> LoadReport:
    """Drive the **HTTP front end** with the closed-loop generator.

    Same request sequence and worker model as :func:`run_load`, but every
    request crosses a real socket through ``serve/http.py`` — the number
    this produces is the wire-level serving capacity, parsing and
    serialization included.
    """
    service = ExtractionService(
        max_pending=max_pending if max_pending is not None else 2 * concurrency,
        max_batch=max_batch,
        max_delay=max_delay,
        coalesce=coalesce,
    )
    service.register(GRAPH_NAME, kg)

    async def run():
        server = await serve_http(service, port=0)
        async with server:
            start = time.perf_counter()
            results, latencies, rejected = await _http_closed_loop(
                bound_port(server), targets, k, concurrency
            )
            wall = time.perf_counter() - start
            await service.drain()
        return results, latencies, rejected, wall

    results, latencies, rejected, wall = asyncio.run(run())
    return LoadReport(
        mode="http",
        requests=len(targets),
        concurrency=concurrency,
        wall_seconds=wall,
        throughput_rps=len(targets) / max(wall, 1e-12),
        p50_ms=percentile(latencies, 0.50) * 1e3,
        p95_ms=percentile(latencies, 0.95) * 1e3,
        rejected=rejected,
        batch_occupancy=service.metrics.batch_occupancy(),
        results=results,
        metrics=service.metrics_snapshot(),
    )


def compare_http_serving(
    kg: KnowledgeGraph,
    targets: Sequence[int],
    k: int = 16,
    concurrency: int = 64,
    max_batch: int = 64,
    max_delay: float = 0.002,
) -> Tuple[LoadReport, LoadReport, float]:
    """In-process serial baseline vs the HTTP front end, same sequence.

    Returns ``(serial, http, speedup)`` after asserting the HTTP path
    produced bit-identical results — crossing the wire (HTTP parsing,
    JSON round-trip) must never change an answer, and the coalescing win
    must survive the protocol overhead.
    """
    targets = np.asarray(targets, dtype=np.int64)
    serial = run_load(
        kg, targets, k=k, concurrency=concurrency, coalesce=False,
        max_batch=max_batch, max_delay=max_delay,
    )
    over_http = run_http_load(
        kg, targets, k=k, concurrency=concurrency, coalesce=True,
        max_batch=max_batch, max_delay=max_delay,
    )
    if serial.results != over_http.results:
        raise AssertionError(
            "HTTP serving diverged from the serial scalar baseline"
        )
    speedup = over_http.throughput_rps / max(serial.throughput_rps, 1e-12)
    return serial, over_http, speedup


def compare_pool_serving(
    kg: KnowledgeGraph,
    targets: Sequence[int],
    k: int = 16,
    concurrency: int = 64,
    workers: int = 2,
    max_batch: int = 64,
    max_delay: float = 0.002,
    pool: Optional[WorkerPool] = None,
    mmap_dir: Optional[str] = None,
) -> Tuple[LoadReport, LoadReport, float]:
    """Single-process serial baseline vs the multi-process worker pool.

    Returns ``(serial, pooled, speedup)`` after asserting the pooled path
    produced bit-identical results — crossing a process boundary (pickled
    parameters out, numpy result buffers back) must never change an
    answer.  The serial baseline is the same single-process scalar-oracle
    service the other two serving ratios use, so all three recorded
    numbers (`serving_coalesced_throughput`, `serving_http_throughput`,
    `serving_pool_throughput`) are directly comparable; on multi-core
    hosts the pool additionally scales with worker count.

    A caller-provided ``pool`` is reused (and left running); otherwise a
    ``workers``-wide pool is created for the comparison and closed before
    returning.  Pool startup and graph shipment happen outside the timed
    windows — they are one-time costs, not serving throughput.
    ``mmap_dir`` registers the pooled graph by artifact-store path
    (zero-copy worker startup); the serial baseline still serves ``kg``
    in-process, so bit-identity also covers the mmap read path.
    """
    targets = np.asarray(targets, dtype=np.int64)
    owned = pool is None
    if pool is None:
        pool = WorkerPool(workers=workers)
    try:
        # Warm the pooled path outside the timed run: first-touch costs
        # (worker-side artifact builds, pickle code paths) are startup,
        # not capacity.
        run_load(
            kg, targets[: min(len(targets), concurrency)], k=k,
            concurrency=concurrency, pool=pool, mmap_dir=mmap_dir,
            max_batch=max_batch, max_delay=max_delay,
        )
        serial = run_load(
            kg, targets, k=k, concurrency=concurrency, coalesce=False,
            max_batch=max_batch, max_delay=max_delay,
        )
        pooled = run_load(
            kg, targets, k=k, concurrency=concurrency, pool=pool, mmap_dir=mmap_dir,
            max_batch=max_batch, max_delay=max_delay,
        )
    finally:
        if owned:
            pool.close()
    if serial.results != pooled.results:
        raise AssertionError(
            "pooled serving diverged from the serial scalar baseline"
        )
    speedup = pooled.throughput_rps / max(serial.throughput_rps, 1e-12)
    return serial, pooled, speedup


def compare_distributed_scaling(
    kg: KnowledgeGraph,
    targets: Sequence[int],
    k: int = 16,
    concurrency: int = 64,
    workers: int = 2,
    max_batch: int = 64,
    max_delay: float = 0.002,
    mmap_dir: Optional[str] = None,
    remote_workers: Optional[Sequence[str]] = None,
) -> Tuple[LoadReport, LoadReport, float]:
    """One-worker pool vs a ``workers``-wide (optionally remote) tier.

    The distributed-tier scaling check: both runs cross the same
    transport machinery (framing, shipping, stats piggyback), so the
    ratio isolates what adding workers buys — placement fanning requests
    over more slots — from what the pool itself buys over in-process
    serving (that ratio is ``compare_pool_serving``'s job).  Returns
    ``(single, scaled, speedup)`` after asserting the scaled tier
    produced bit-identical results; placement must never change an
    answer, only who computes it.

    ``remote_workers`` (``HOST:PORT`` strings of already-running
    ``repro serve-worker`` processes) makes the scaled tier a genuinely
    cross-machine one: the pool runs zero local workers and routes every
    request over TCP.  Remote registration ships artifact paths, so
    ``mmap_dir`` is required in that mode.
    """
    targets = np.asarray(targets, dtype=np.int64)
    remote_workers = list(remote_workers or ())
    if remote_workers and not mmap_dir:
        raise ValueError(
            "remote scaling needs mmap_dir: remote workers register graphs "
            "by artifact-store path, never a pickled graph"
        )

    def _timed(pool: WorkerPool) -> LoadReport:
        # Warm outside the timed run: worker-side artifact opens and
        # first-touch page faults are startup, not scaling.
        run_load(
            kg, targets[: min(len(targets), concurrency)], k=k,
            concurrency=concurrency, pool=pool, mmap_dir=mmap_dir,
            max_batch=max_batch, max_delay=max_delay,
        )
        return run_load(
            kg, targets, k=k, concurrency=concurrency, pool=pool,
            mmap_dir=mmap_dir, max_batch=max_batch, max_delay=max_delay,
        )

    single_pool = WorkerPool(workers=1)
    try:
        single = _timed(single_pool)
    finally:
        single_pool.close()
    scaled_pool = WorkerPool(
        workers=0 if remote_workers else workers,
        remote_workers=remote_workers or None,
    )
    try:
        scaled = _timed(scaled_pool)
        scaled_width = scaled_pool.num_workers
    finally:
        scaled_pool.close()
    if single.results != scaled.results:
        raise AssertionError(
            "scaled worker tier diverged from the single-worker baseline"
        )
    single.mode = "pooled-1w"
    scaled.mode = f"pooled-{scaled_width}w" + ("-remote" if remote_workers else "")
    speedup = scaled.throughput_rps / max(single.throughput_rps, 1e-12)
    return single, scaled, speedup


async def _paths_closed_loop(
    service: ExtractionService,
    pairs: Sequence[Tuple[int, int]],
    max_hops: int,
    max_paths: int,
    concurrency: int,
) -> Tuple[Dict[int, list], List[float], int]:
    """The closed loop over ``/paths``: results keyed by request *index*.

    Pair sequences legitimately repeat (hot endpoint pairs), so answers
    are recorded per position — a coalescing window may answer repeats
    from one kernel call, and the bit-exactness comparison must still see
    every position.
    """
    next_index = 0
    latencies: List[float] = []
    rejected = 0
    results: Dict[int, list] = {}

    async def worker() -> None:
        nonlocal next_index, rejected
        while True:
            index = next_index
            if index >= len(pairs):
                return
            next_index = index + 1
            src, dst = pairs[index]
            start = time.perf_counter()
            while True:
                try:
                    result = await service.paths(
                        GRAPH_NAME, int(src), int(dst),
                        max_hops=max_hops, max_paths=max_paths,
                    )
                    break
                except ServiceOverloaded as exc:
                    rejected += 1
                    await asyncio.sleep(exc.retry_after)
            latencies.append(time.perf_counter() - start)
            results[index] = result

    await asyncio.gather(*(worker() for _ in range(concurrency)))
    await service.drain()
    return results, latencies, rejected


def run_paths_load(
    kg: KnowledgeGraph,
    pairs: Sequence[Tuple[int, int]],
    max_hops: int = 3,
    max_paths: int = 64,
    concurrency: int = 64,
    coalesce: bool = True,
    max_batch: int = 64,
    max_delay: float = 0.002,
    max_pending: Optional[int] = None,
    pool: Optional[WorkerPool] = None,
) -> LoadReport:
    """Drive ``/paths`` with the closed-loop generator.

    ``pairs`` is a sequence of ``(src, dst)`` node pairs.  The serial
    mode (``coalesce=False``) answers through the scalar
    iterative-deepening DFS oracle one request at a time; the coalesced
    mode batches compatible ``(max_hops, max_paths)`` windows into single
    ``enumerate_paths_batch`` calls (pooled when ``pool`` is given).
    """
    service = ExtractionService(
        max_pending=max_pending if max_pending is not None else 2 * concurrency,
        max_batch=max_batch,
        max_delay=max_delay,
        coalesce=coalesce,
        pool=pool,
    )
    service.register(GRAPH_NAME, kg)

    async def run():
        start = time.perf_counter()
        results, latencies, rejected = await _paths_closed_loop(
            service, pairs, max_hops, max_paths, concurrency
        )
        return results, latencies, rejected, time.perf_counter() - start

    results, latencies, rejected, wall = asyncio.run(run())
    mode = "pooled" if pool is not None else ("coalesced" if coalesce else "serial")
    return LoadReport(
        mode=f"paths-{mode}",
        requests=len(pairs),
        concurrency=concurrency,
        wall_seconds=wall,
        throughput_rps=len(pairs) / max(wall, 1e-12),
        p50_ms=percentile(latencies, 0.50) * 1e3,
        p95_ms=percentile(latencies, 0.95) * 1e3,
        rejected=rejected,
        batch_occupancy=service.metrics.batch_occupancy(),
        results=results,
        metrics=service.metrics_snapshot(),
    )


def compare_paths_serving(
    kg: KnowledgeGraph,
    pairs: Sequence[Tuple[int, int]],
    max_hops: int = 3,
    max_paths: int = 64,
    concurrency: int = 64,
    max_batch: int = 64,
    max_delay: float = 0.002,
    pool: Optional[WorkerPool] = None,
) -> Tuple[LoadReport, LoadReport, float]:
    """Scalar-oracle ``/paths`` baseline vs the coalesced batch kernel.

    Returns ``(serial, fast, speedup)`` after asserting both modes
    produced bit-identical path lists at every request position —
    micro-batching, the epoch-keyed path cache and (with ``pool``)
    process boundaries must never change an answer.  This is the ratio
    the ``serving_paths_throughput`` perf floor guards.
    """
    serial = run_paths_load(
        kg, pairs, max_hops=max_hops, max_paths=max_paths,
        concurrency=concurrency, coalesce=False,
        max_batch=max_batch, max_delay=max_delay,
    )
    fast = run_paths_load(
        kg, pairs, max_hops=max_hops, max_paths=max_paths,
        concurrency=concurrency, coalesce=True, pool=pool,
        max_batch=max_batch, max_delay=max_delay,
    )
    if serial.results != fast.results:
        raise AssertionError(
            "coalesced /paths serving diverged from the scalar oracle baseline"
        )
    speedup = fast.throughput_rps / max(serial.throughput_rps, 1e-12)
    return serial, fast, speedup


def _predict_task_types(checkpoints: Sequence[str]) -> Dict[str, str]:
    """``task name -> task type`` read from checkpoint headers (O(header))."""
    from repro.nn.checkpoint import read_checkpoint_meta

    return {
        meta["task_name"]: meta["task_type"]
        for meta in (read_checkpoint_meta(path) for path in checkpoints)
    }


async def _predict_closed_loop(
    service: ExtractionService,
    requests: Sequence[Tuple[str, int]],
    task_types: Dict[str, str],
    k: int,
    candidates: int,
    concurrency: int,
) -> Tuple[Dict[int, dict], List[float], int]:
    """The closed loop over ``/predict``: results keyed by request *index*.

    Prediction requests legitimately repeat (hot nodes), so answers are
    recorded per position in the sequence, not per item — the result
    cache may answer a repeat, and the bit-exactness comparison must
    still see every position.
    """
    next_index = 0
    latencies: List[float] = []
    rejected = 0
    results: Dict[int, dict] = {}

    async def worker() -> None:
        nonlocal next_index, rejected
        while True:
            index = next_index
            if index >= len(requests):
                return
            next_index = index + 1
            task, item = requests[index]
            field_name = "node" if task_types[task] == "NC" else "head"
            start = time.perf_counter()
            while True:
                try:
                    result = await service.predict(
                        GRAPH_NAME, task, k=k, candidates=candidates,
                        **{field_name: int(item)},
                    )
                    break
                except ServiceOverloaded as exc:
                    rejected += 1
                    await asyncio.sleep(exc.retry_after)
            latencies.append(time.perf_counter() - start)
            results[index] = result

    await asyncio.gather(*(worker() for _ in range(concurrency)))
    await service.drain()
    return results, latencies, rejected


def run_predict_load(
    kg: KnowledgeGraph,
    checkpoints: Sequence[str],
    requests: Sequence[Tuple[str, int]],
    k: int = 10,
    candidates: int = 0,
    concurrency: int = 64,
    coalesce: bool = True,
    max_batch: int = 64,
    max_delay: float = 0.002,
    max_pending: Optional[int] = None,
    pool: Optional[WorkerPool] = None,
) -> LoadReport:
    """Drive ``/predict`` with the closed-loop generator.

    ``requests`` is a sequence of ``(task name, item id)`` pairs —
    ``item`` is a target node for NC tasks and a head node for LP tasks
    (the kind is read from the checkpoint headers).  No latency budget is
    passed, so routing picks the same (most accurate) checkpoint per task
    in every mode and the bit-exactness comparisons are apples to apples.
    """
    task_types = _predict_task_types(checkpoints)
    service = ExtractionService(
        max_pending=max_pending if max_pending is not None else 2 * concurrency,
        max_batch=max_batch,
        max_delay=max_delay,
        coalesce=coalesce,
        pool=pool,
    )
    service.register(GRAPH_NAME, kg)
    for path in checkpoints:
        service.register_checkpoint(GRAPH_NAME, path)

    async def run():
        start = time.perf_counter()
        results, latencies, rejected = await _predict_closed_loop(
            service, requests, task_types, k, candidates, concurrency
        )
        return results, latencies, rejected, time.perf_counter() - start

    results, latencies, rejected, wall = asyncio.run(run())
    mode = "pooled" if pool is not None else ("coalesced" if coalesce else "serial")
    return LoadReport(
        mode=f"predict-{mode}",
        requests=len(requests),
        concurrency=concurrency,
        wall_seconds=wall,
        throughput_rps=len(requests) / max(wall, 1e-12),
        p50_ms=percentile(latencies, 0.50) * 1e3,
        p95_ms=percentile(latencies, 0.95) * 1e3,
        rejected=rejected,
        batch_occupancy=service.metrics.batch_occupancy(),
        results=results,
        metrics=service.metrics_snapshot(),
    )


def compare_predict_serving(
    kg: KnowledgeGraph,
    checkpoints: Sequence[str],
    requests: Sequence[Tuple[str, int]],
    k: int = 10,
    candidates: int = 0,
    concurrency: int = 64,
    max_batch: int = 64,
    max_delay: float = 0.002,
    pool: Optional[WorkerPool] = None,
) -> Tuple[LoadReport, LoadReport, float]:
    """Scalar-oracle ``/predict`` baseline vs the batched inference path.

    The baseline answers one request at a time through
    :func:`~repro.serve.kernels.run_predict_oracle` (no result cache, no
    registry-level logits cache); the fast path is the coalescer's
    batched extraction→inference pipeline — in-process, or pooled when
    ``pool`` is given (reused and left running).  Returns
    ``(serial, fast, speedup)`` after asserting both produced
    bit-identical payloads at every request position — micro-batching,
    the result cache and process boundaries must never change an answer.
    """
    if pool is not None:
        # Warm the pooled path outside the timed run: worker-side
        # checkpoint loads and full-target logits passes are startup
        # costs, not serving capacity.
        run_predict_load(
            kg, checkpoints, requests[: min(len(requests), concurrency)],
            k=k, candidates=candidates, concurrency=concurrency, pool=pool,
            max_batch=max_batch, max_delay=max_delay,
        )
    serial = run_predict_load(
        kg, checkpoints, requests, k=k, candidates=candidates,
        concurrency=concurrency, coalesce=False,
        max_batch=max_batch, max_delay=max_delay,
    )
    fast = run_predict_load(
        kg, checkpoints, requests, k=k, candidates=candidates,
        concurrency=concurrency, coalesce=True, pool=pool,
        max_batch=max_batch, max_delay=max_delay,
    )
    if serial.results != fast.results:
        raise AssertionError(
            "batched /predict serving diverged from the scalar oracle baseline"
        )
    speedup = fast.throughput_rps / max(serial.throughput_rps, 1e-12)
    return serial, fast, speedup


def compare_serving_modes(
    kg: KnowledgeGraph,
    targets: Sequence[int],
    k: int = 16,
    concurrency: int = 64,
    max_batch: int = 64,
    max_delay: float = 0.002,
) -> Tuple[LoadReport, LoadReport, float]:
    """Serial baseline vs coalescing scheduler over one request sequence.

    Returns ``(serial, coalesced, speedup)`` after asserting both modes
    produced bit-identical results for every target — the coalesced path
    must be a pure throughput win, never a different answer.
    """
    targets = np.asarray(targets, dtype=np.int64)
    serial = run_load(
        kg, targets, k=k, concurrency=concurrency, coalesce=False,
        max_batch=max_batch, max_delay=max_delay,
    )
    coalesced = run_load(
        kg, targets, k=k, concurrency=concurrency, coalesce=True,
        max_batch=max_batch, max_delay=max_delay,
    )
    if serial.results != coalesced.results:
        raise AssertionError(
            "coalesced serving diverged from the serial scalar baseline"
        )
    speedup = coalesced.throughput_rps / max(serial.throughput_rps, 1e-12)
    return serial, coalesced, speedup
