"""Serving-side observability: latency, queue depth, batch occupancy.

:class:`ServiceMetrics` is the single sink every serving component reports
into — the admission gate (accepted/rejected, queue depth), the coalescing
scheduler (batch sizes and service times) and the per-request completion
path (end-to-end latency per request kind).  All methods are thread-safe:
they are called both from the event loop and from the dispatch worker
threads.

The whole state exports as one JSON-serializable dict via
:meth:`snapshot`, which is what ``repro bench-serve`` prints, the serving
benchmark persists next to ``BENCH_serving.json``, and the CI ``serve``
job uploads as an artifact.

Bounded and process-local by contract: every window is a fixed-size ring
(:data:`LATENCY_WINDOW`), so a long-running service reports recent state
at constant memory; and one :class:`ServiceMetrics` lives in the serving
(parent) process — under pool mode the worker-side artifact-cache and
endpoint counters are *not* recorded here but piggybacked on pool
responses and merged into the snapshot by
:meth:`ExtractionService.metrics_snapshot`.

Memory is reported in two separate gauges per graph: ``nbytes`` (heap
bytes resident in one process, summed across workers) and
``mapped_nbytes`` (file-backed ``--mmap-dir`` artifact pages, physically
shared by all mappers and therefore merged with **max**, never summed —
``/metrics`` must not bill the same clean pages once per worker).
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional

# Latency samples retained per request kind.  Percentiles are computed over
# this sliding window, so a long-running service reports *recent* tail
# latency at O(window) memory instead of accumulating every sample.
LATENCY_WINDOW = 4096


def percentile(samples: Iterable[float], q: float) -> float:
    """Nearest-rank percentile of ``samples`` (0 when empty).

    Nearest-rank keeps the result an actually observed latency, which is
    the convention load-testing tools use for p50/p95.
    """
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    # Nearest-rank: the ceil(q*n)-th smallest sample (1-indexed), clamped.
    rank = min(max(math.ceil(q * len(ordered)), 1), len(ordered)) - 1
    return float(ordered[rank])


class _KindStats:
    """Per-request-kind counters plus sliding latency windows.

    Success and error latencies are tracked in *separate* windows: error
    completions are typically fast-fails (rejected shapes, unknown graphs,
    parse errors), and folding them into the success window would skew
    p50/p95 — and the EWMA that feeds the ``retry_after`` backpressure
    hint — downward during error bursts.
    """

    __slots__ = ("completed", "errors", "latencies", "error_latencies", "ewma")

    def __init__(self, window: int):
        self.completed = 0
        self.errors = 0
        self.latencies: Deque[float] = deque(maxlen=window)
        self.error_latencies: Deque[float] = deque(maxlen=window)
        # Smoothed per-request service time of *successful* completions of
        # this kind; the per-kind basis of the retry_after estimate.
        self.ewma: Optional[float] = None


class ServiceMetrics:
    """Thread-safe counters for one :class:`ExtractionService` instance."""

    def __init__(self, latency_window: int = LATENCY_WINDOW):
        self._lock = threading.Lock()
        self._window = latency_window
        self._kinds: Dict[str, _KindStats] = {}
        # Admission gate.
        self.accepted = 0
        self.rejected = 0
        self.queue_depth = 0
        self.queue_depth_peak = 0
        # Coalescing scheduler.
        self.batches = 0
        self.batched_items = 0
        self.batch_size_peak = 0
        self._batch_seconds: Deque[float] = deque(maxlen=latency_window)
        # Exponentially weighted per-request service time estimate; feeds
        # the ``retry_after`` hint of the backpressure contract.
        self._ewma_request_seconds: Optional[float] = None
        # Smoothed Retry-After hint (seconds) over recent rejections: how
        # hard admission is currently pushing clients away.  The pool's
        # elastic controller reads the same signal via note_pressure.
        self._retry_after_ewma: Optional[float] = None

    # -- admission --

    def record_admitted(self) -> None:
        with self._lock:
            self.accepted += 1
            self.queue_depth += 1
            self.queue_depth_peak = max(self.queue_depth_peak, self.queue_depth)

    def record_rejected(self, retry_after: Optional[float] = None) -> None:
        with self._lock:
            self.rejected += 1
            if retry_after is not None:
                if self._retry_after_ewma is None:
                    self._retry_after_ewma = retry_after
                else:
                    self._retry_after_ewma += 0.2 * (
                        retry_after - self._retry_after_ewma
                    )

    def record_departed(self) -> None:
        with self._lock:
            self.queue_depth -= 1

    # -- completions --

    def record_completed(self, kind: str, seconds: float, error: bool = False) -> None:
        with self._lock:
            stats = self._kinds.get(kind)
            if stats is None:
                stats = self._kinds[kind] = _KindStats(self._window)
            if error:
                # Error completions (typically fast-fails) stay out of the
                # success window and both EWMAs so they cannot drag the
                # p50/p95 readings or the retry_after hint downward.
                stats.errors += 1
                stats.error_latencies.append(seconds)
                return
            stats.completed += 1
            stats.latencies.append(seconds)
            if stats.ewma is None:
                stats.ewma = seconds
            else:
                stats.ewma += 0.05 * (seconds - stats.ewma)
            if self._ewma_request_seconds is None:
                self._ewma_request_seconds = seconds
            else:
                self._ewma_request_seconds += 0.05 * (seconds - self._ewma_request_seconds)

    # -- coalescing --

    def record_batch(self, size: int, seconds: float) -> None:
        with self._lock:
            self.batches += 1
            self.batched_items += size
            self.batch_size_peak = max(self.batch_size_peak, size)
            self._batch_seconds.append(seconds)

    # -- derived readings --

    def ewma_request_seconds(
        self, default: float = 0.0, kind: Optional[str] = None
    ) -> float:
        """Smoothed recent per-request service time (the retry-after basis).

        With ``kind`` the estimate is specific to that request kind's
        successful completions — the right basis when the backpressure
        hint must answer "when will capacity free for *this* request".
        Without it, the aggregate EWMA across all kinds is returned.
        """
        with self._lock:
            if kind is not None:
                stats = self._kinds.get(kind)
                value = stats.ewma if stats is not None else None
            else:
                value = self._ewma_request_seconds
        return default if value is None else value

    def batch_occupancy(self) -> float:
        """Mean requests per dispatched batch (1.0 means no coalescing won)."""
        with self._lock:
            if self.batches == 0:
                return 0.0
            return self.batched_items / self.batches

    def snapshot(self) -> dict:
        """One JSON-serializable dict of everything recorded so far."""
        with self._lock:
            kinds = {}
            for kind, stats in self._kinds.items():
                window: List[float] = list(stats.latencies)
                error_window: List[float] = list(stats.error_latencies)
                kinds[kind] = {
                    "completed": stats.completed,
                    "errors": stats.errors,
                    "p50_ms": percentile(window, 0.50) * 1e3,
                    "p95_ms": percentile(window, 0.95) * 1e3,
                    "window": len(window),
                    "error_p50_ms": percentile(error_window, 0.50) * 1e3,
                    "error_p95_ms": percentile(error_window, 0.95) * 1e3,
                    "error_window": len(error_window),
                }
            batch_window = list(self._batch_seconds)
            occupancy = self.batched_items / self.batches if self.batches else 0.0
            return {
                "admission": {
                    "accepted": self.accepted,
                    "rejected": self.rejected,
                    "queue_depth": self.queue_depth,
                    "queue_depth_peak": self.queue_depth_peak,
                    # Smoothed Retry-After (seconds) over recent rejections;
                    # 0.0 until the first rejection carries a hint.
                    "retry_after_ewma_s": self._retry_after_ewma or 0.0,
                },
                "requests": kinds,
                "coalescing": {
                    "batches": self.batches,
                    "batched_items": self.batched_items,
                    "batch_occupancy": occupancy,
                    "batch_size_peak": self.batch_size_peak,
                    "batch_p50_ms": percentile(batch_window, 0.50) * 1e3,
                    "batch_p95_ms": percentile(batch_window, 0.95) * 1e3,
                },
            }
