"""Shared wire-layer core for the serving front ends.

Both front ends — newline-delimited JSON over TCP (``serve/tcp.py``) and
the HTTP/SPARQL-protocol server (``serve/http.py``) — share three things
that used to live inside the TCP module:

* **Request validation + dispatch** (:func:`perform_op`): one place that
  checks request shape (required fields, castable types) and routes the
  op to :class:`~repro.serve.service.ExtractionService`.  A missing or
  malformed field raises :class:`BadRequest` (→ structured
  ``bad_request`` over ndjson, ``400`` over HTTP) instead of surfacing an
  opaque ``KeyError`` server error; an unregistered graph raises
  :class:`UnknownGraph` (→ ``unknown_graph`` / ``404``).
* **Result encoding** (:func:`result_payload`): kernel results
  (ResultSet / ego graph / PPR top-k) to JSON-serializable payloads.
* **The pipelined connection loop** (:func:`serve_pipelined`): the reader
  spawns one handler task per frame so pipelined requests are handled
  *concurrently* (and can share coalescing windows), while responses are
  written back strictly in request order.  The writer keeps consuming the
  queue even after the peer stops reading, so the reader's ``put()`` can
  never deadlock.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, List, Optional

from repro.serve.service import ExtractionService
from repro.sparql.executor import ResultSet

# One request frame is bounded (queries are short); a huge line/header is a
# client bug, not a reason to buffer without limit.
MAX_LINE_BYTES = 1 << 20

# Requests a single connection may have in flight at once.  Pipelined
# requests are handled concurrently — so they can share coalescing windows
# and a slow op does not stall the ones behind it — while responses are
# written back in request order.
PIPELINE_DEPTH = 256

#: Every op :func:`perform_op` dispatches, in documentation order.  This
#: tuple is the single source of truth the docs checker
#: (``tools/check_docs.py --serving-ops``) cross-checks the op tables in
#: ``docs/serving.md`` and ``docs/live-graphs.md`` against — adding an op
#: here without documenting it (or vice versa) fails the docs CI tier.
OPS = (
    "ping",
    "metrics",
    "graphs",
    "ppr",
    "ego",
    "paths",
    "predict",
    "sparql",
    "count",
    "triples",
)


class BadRequest(ValueError):
    """The request shape is invalid (missing/malformed field, unknown op)."""

    def __init__(self, detail: str):
        super().__init__(detail)
        self.detail = detail


class UnknownGraph(BadRequest):
    """The request names a graph that is not registered (HTTP: 404)."""


# -- request validation -------------------------------------------------------

_MISSING = object()


def text(value: Any) -> str:
    """Cast that accepts only actual strings (graph names, query text)."""
    if not isinstance(value, str):
        raise TypeError(f"expected a string, got {type(value).__name__}")
    return value


def _field(request: dict, name: str, op: str, cast, default=_MISSING):
    """Fetch + cast one request field, mapping failures to BadRequest."""
    value = request.get(name, _MISSING)
    if value is _MISSING:
        if default is not _MISSING:
            return default
        raise BadRequest(f"op {op!r} requires field {name!r}")
    try:
        if isinstance(value, bool):
            # JSON true/false would cast cleanly (int(True) == 1) and
            # return a silently wrong answer instead of an error.
            raise TypeError("booleans are not valid field values")
        return cast(value)
    except (TypeError, ValueError):
        raise BadRequest(
            f"field {name!r} of op {op!r} must be {cast.__name__}-compatible, "
            f"got {value!r}"
        ) from None


def _graph_field(service: ExtractionService, request: dict, op: str) -> str:
    graph = _field(request, "graph", op, text)
    if not service.has_graph(graph):
        raise UnknownGraph(
            f"unknown graph {graph!r}; registered: {service.graphs()}"
        )
    return graph


async def perform_op(service: ExtractionService, request: Any) -> Any:
    """Validate ``request`` and run it against ``service``.

    Returns the raw op result (pass through :func:`result_payload` before
    serializing).  Raises :class:`BadRequest` / :class:`UnknownGraph` for
    shape errors and lets service exceptions (e.g.
    :class:`~repro.serve.service.ServiceOverloaded`) propagate so each
    front end can map them to its own wire representation.
    """
    if not isinstance(request, dict):
        raise BadRequest("request must be a JSON object")
    op = request.get("op")
    if op == "ping":
        return "pong"
    if op == "metrics":
        return service.metrics_snapshot()
    if op == "graphs":
        return service.graphs()
    if op == "ppr":
        graph = _graph_field(service, request, op)
        return await service.ppr_top_k(
            graph,
            _field(request, "target", op, int),
            k=_field(request, "k", op, int, default=16),
            alpha=_field(request, "alpha", op, float, default=0.25),
            eps=_field(request, "eps", op, float, default=2e-4),
        )
    if op == "ego":
        graph = _graph_field(service, request, op)
        return await service.extract_ego(
            graph,
            _field(request, "root", op, int),
            depth=_field(request, "depth", op, int, default=2),
            fanout=_field(request, "fanout", op, int, default=8),
            salt=_field(request, "salt", op, int, default=0),
        )
    if op == "paths":
        graph = _graph_field(service, request, op)
        return await service.paths(
            graph,
            _field(request, "src", op, int),
            _field(request, "dst", op, int),
            max_hops=_field(request, "max_hops", op, int, default=3),
            max_paths=_field(request, "max_paths", op, int, default=64),
        )
    if op == "predict":
        graph = _graph_field(service, request, op)
        node = _field(request, "node", op, int, default=None)
        head = _field(request, "head", op, int, default=None)
        if (node is None) == (head is None):
            raise BadRequest(
                "op 'predict' requires exactly one of 'node' (node "
                "classification) or 'head' (link prediction)"
            )
        return await service.predict(
            graph,
            _field(request, "task", op, text),
            node=node,
            head=head,
            model=_field(request, "model", op, text, default=None),
            k=_field(request, "k", op, int, default=10),
            candidates=_field(request, "candidates", op, int, default=0),
            budget_ms=_field(request, "budget_ms", op, float, default=None),
        )
    if op == "sparql":
        graph = _graph_field(service, request, op)
        return await service.sparql(graph, _field(request, "query", op, text))
    if op == "triples":
        graph = _graph_field(service, request, op)
        triples = request.get("triples", _MISSING)
        if triples is _MISSING:
            raise BadRequest("op 'triples' requires field 'triples'")
        # Shape/range validation happens in the service (ValueError → 400
        # via each front end's existing mapping); only the container type
        # is checked here so a JSON scalar fails with a wire-shape error.
        if not isinstance(triples, (list, tuple)):
            raise BadRequest(
                "field 'triples' of op 'triples' must be a list of [s, p, o] rows"
            )
        return await service.ingest_triples(graph, triples)
    if op == "count":
        graph = _graph_field(service, request, op)
        return await service.count(graph, _field(request, "query", op, text))
    raise BadRequest(f"unknown op {op!r}")


# -- result encoding ----------------------------------------------------------


def result_payload(result: Any) -> Any:
    """JSON-encode one op's result."""
    if isinstance(result, ResultSet):
        return {
            "variables": list(result.variables),
            "columns": {
                variable: [int(v) for v in result.columns[variable]]
                for variable in result.variables
            },
            "num_rows": int(result.num_rows),
        }
    if hasattr(result, "nodes") and hasattr(result, "rel"):  # _EgoGraph
        return {
            "nodes": [int(v) for v in result.nodes],
            "src": [int(v) for v in result.src],
            "dst": [int(v) for v in result.dst],
            "rel": [int(v) for v in result.rel],
        }
    if isinstance(result, list) and result and isinstance(result[0], tuple):
        # ppr top-k [(node, score), ...]
        return [[int(node), float(score)] for node, score in result]
    return result


# -- pipelined connection loop ------------------------------------------------

#: ``read_frame(reader)`` returns the next request frame or ``None`` at EOF.
ReadFrame = Callable[[asyncio.StreamReader], Awaitable[Optional[Any]]]
#: ``respond(frame)`` computes one frame's response object; must not raise.
Respond = Callable[[Any], Awaitable[Any]]
#: ``write_response(writer, response)`` serializes one response; it may
#: write many chunks (streaming bodies) and must drain between them.
WriteResponse = Callable[[asyncio.StreamWriter, Any], Awaitable[None]]


async def serve_pipelined(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    read_frame: ReadFrame,
    respond: Respond,
    write_response: WriteResponse,
    depth: int = PIPELINE_DEPTH,
) -> None:
    """Run one connection: concurrent handling, in-order responses.

    The reader loop spawns one ``respond`` task per frame (bounded by
    ``depth``); the writer drains them in order.  A frame whose attribute
    ``last`` is true (e.g. HTTP ``Connection: close``) stops the read loop
    after its response is queued.
    """
    responses: asyncio.Queue = asyncio.Queue(maxsize=depth)

    async def write_responses() -> None:
        alive = True
        while True:
            task = await responses.get()
            if task is None:
                return
            response = await task
            if not alive:
                continue
            try:
                await write_response(writer, response)
            except ConnectionError:
                alive = False  # peer stopped reading; finish quietly

    writer_task = asyncio.ensure_future(write_responses())
    try:
        while True:
            try:
                frame = await read_frame(reader)
            except (ValueError, ConnectionError, asyncio.IncompleteReadError):
                break  # oversized frame or peer reset
            if frame is None:
                break
            await responses.put(asyncio.ensure_future(respond(frame)))
            if getattr(frame, "last", False):
                break
        await responses.put(None)
        await writer_task
    except asyncio.CancelledError:
        # Event-loop shutdown while this connection is open: finish the
        # close quietly instead of surfacing a cancelled handler task
        # (asyncio's stream protocol would log it as an error).
        pass
    finally:
        if not writer_task.done():
            writer_task.cancel()
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, asyncio.CancelledError):  # pragma: no cover
            pass


def bound_port(server: asyncio.AbstractServer) -> Optional[int]:
    """The port a server actually bound (after ``port=0``)."""
    for socket in server.sockets:
        return socket.getsockname()[1]
    return None


__all__: List[str] = [
    "BadRequest",
    "MAX_LINE_BYTES",
    "OPS",
    "PIPELINE_DEPTH",
    "UnknownGraph",
    "bound_port",
    "perform_op",
    "result_payload",
    "serve_pipelined",
]
