"""The concurrent TOSG-extraction service.

:class:`ExtractionService` is the asyncio front door over the batch-kernel
program: callers issue *single* PPR-influence, ego-scope or SPARQL requests
against registered graphs, and the service turns concurrent request
streams into batched kernel calls via the per-graph
:class:`~repro.serve.coalesce.Coalescer` router.

Three contracts, in order of the request path:

* **Admission** — at most ``max_pending`` requests are in flight at once.
  Beyond that the service *rejects* with :class:`ServiceOverloaded`
  carrying a ``retry_after`` hint (seconds), instead of queueing without
  bound: a loaded service must shed, not buffer, the paper's
  millions-of-users regime.
* **Coalescing** — requests whose kernel parameters match (same graph,
  same ``(k, alpha, eps)``, ``(depth, fanout, salt)`` or
  ``(max_hops, max_paths)``) share one batch kernel call per window.  Results are bit-identical to per-request scalar
  extraction because the kernels are bit-exact against their oracles.
* **Isolation** — kernel work runs off the event loop
  (``asyncio.to_thread``); the loop only routes, so slow extraction never
  blocks admission, metrics or other graphs.  With ``pool=`` the kernels
  additionally leave the *process*: coalesced batches are routed to the
  :class:`~repro.serve.pool.WorkerPool` worker that owns the graph's
  artifact shard, which removes the single-interpreter (GIL) throughput
  cap while keeping results bit-identical to the in-process path.

Admission, coalescing windows, per-kind retry-after hints and metrics
behave identically with and without a pool — the pool only changes where
a dispatched batch executes.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import OrderedDict
from typing import Dict, Hashable, List, Optional, Tuple, Union

from repro.kg.cache import artifacts_for
from repro.kg.epoch import LiveGraph
from repro.kg.graph import KnowledgeGraph
from repro.models.shadowsaint import _EgoGraph, extract_ego
from repro.sampling.paths import enumerate_paths_scalar
from repro.sampling.ppr import ppr_top_k
from repro.serve.coalesce import MAX_BATCH, MAX_DELAY_SECONDS, Coalescer
from repro.serve.kernels import (
    run_predict_batch,
    run_predict_oracle,
)
from repro.serve.metrics import ServiceMetrics
from repro.serve.pool import WorkerPool
from repro.serve.registry import ModelRegistry
from repro.sparql.ast import SelectQuery
from repro.sparql.endpoint import (
    EndpointStats,
    PageStream,
    SparqlEndpoint,
    account_page,
)
from repro.sparql.executor import ResultSet

# Default in-flight bound: enough to keep several full coalescing windows
# busy without letting latency grow without limit under overload.
MAX_PENDING = 256

# Default bound on the /predict result cache (entries, LRU eviction).
PREDICT_CACHE_SIZE = 1024

# Default /predict parameters: top-k tails returned per LP request, and 0
# PPR candidates (= score the full tail-class pool).
PREDICT_TOP_K = 10

Query = Union[str, SelectQuery]


class ServiceOverloaded(RuntimeError):
    """Admission rejected: the in-flight bound is reached.

    ``retry_after`` estimates (in seconds) when capacity is likely to free
    up — the current queue drained at the recent per-request service rate
    of the rejected request's *kind*.  HTTP front ends map this to
    ``503`` + ``Retry-After``.
    """

    def __init__(self, retry_after: float):
        super().__init__(
            f"service overloaded, retry in {retry_after:.3f}s"
        )
        self.retry_after = retry_after


class AsyncSparqlEndpoint:
    """Async façade over :class:`~repro.sparql.endpoint.SparqlEndpoint`.

    Every call runs the synchronous endpoint on a worker thread, so SPARQL
    requests coexist with extraction traffic on one event loop.  The
    wrapped endpoint's stats stay correct under this concurrency — its
    counters are guarded by the endpoint's own lock.
    """

    def __init__(self, endpoint: SparqlEndpoint):
        self.endpoint = endpoint

    @property
    def stats(self):
        return self.endpoint.stats

    async def query(self, query: Query) -> ResultSet:
        return await asyncio.to_thread(self.endpoint.query, query)

    async def count(self, query: Query) -> int:
        return await asyncio.to_thread(self.endpoint.count, query)

    async def fetch_all(
        self, query: Query, batch_size: int, workers: int = 1
    ) -> ResultSet:
        return await asyncio.to_thread(
            self.endpoint.fetch_all, query, batch_size, workers
        )


class _RegisteredGraph:
    """Per-graph routing state: the live epoch chain, endpoint, caches.

    ``live`` is the :class:`~repro.kg.epoch.LiveGraph` holding the chain
    of immutable epochs; ``kg`` and ``epoch`` read its *current* snapshot.
    The SPARQL endpoint is rebuilt on every ingest (:meth:`advance`)
    carrying its lifetime stats forward, so counters never step backwards
    while in-flight requests keep answering through the endpoint object
    they captured — on their original epoch.

    ``page_stats`` / ``page_lock`` account streamed-``/sparql`` pages cut
    *parent-side* in pool mode; ``metrics_snapshot`` merges them with the
    worker-side counters so pooled and in-process ``/metrics`` agree.
    """

    __slots__ = (
        "live", "endpoint", "async_endpoint", "ingest_lock",
        "page_stats", "page_lock",
    )

    def __init__(self, kg: KnowledgeGraph, compression: bool, compact_every: int = 0):
        self.live = LiveGraph(kg, compact_every=compact_every)
        self.endpoint = SparqlEndpoint(kg, compression=compression)
        self.async_endpoint = AsyncSparqlEndpoint(self.endpoint)
        self.ingest_lock = asyncio.Lock()
        self.page_stats = EndpointStats()
        self.page_lock = threading.Lock()

    @property
    def kg(self) -> KnowledgeGraph:
        """The current epoch's merged graph."""
        return self.live.kg

    @property
    def epoch(self) -> int:
        """The current epoch number (keys windows and result caches)."""
        return self.live.epoch.number

    def advance(self, compression: bool) -> None:
        """Swap in an endpoint on the new epoch, keeping lifetime stats."""
        endpoint = SparqlEndpoint(self.live.kg, compression=compression)
        endpoint.stats = self.endpoint.stats
        self.endpoint = endpoint
        self.async_endpoint = AsyncSparqlEndpoint(endpoint)


class ExtractionService:
    """Admission gate + per-graph request router over the batch kernels.

    Parameters
    ----------
    max_pending:
        In-flight request bound (the admission queue size).  Requests
        arriving beyond it raise :class:`ServiceOverloaded`.
    max_batch / max_delay:
        Coalescing window passed to both schedulers (PPR and ego); see
        :class:`~repro.serve.coalesce.Coalescer`.
    coalesce:
        ``False`` switches to the serial one-request-at-a-time baseline:
        every request runs the *scalar* kernel alone, serialized per
        service.  Exists for benchmarking the coalescing win and as the
        ground truth the batched path must match bit-for-bit.
    compression:
        Passed through to each graph's :class:`SparqlEndpoint`.
    pool:
        Optional :class:`~repro.serve.pool.WorkerPool`.  When given,
        every kernel dispatch (coalesced PPR/ego batches, SPARQL
        evaluation) is shipped to the worker process owning the graph's
        shard instead of running in this interpreter; the service keeps
        admission, coalescing and metrics exactly as in-process.  The
        caller owns the pool's lifecycle (``pool.close()``); pool mode
        requires ``coalesce=True`` — the serial baseline is by definition
        the in-process scalar oracle.
    compact_every:
        Delta-log compaction threshold applied to every registered graph:
        an ingest that would grow a graph's delta log to this many rows
        folds the whole delta into a fresh base epoch instead (``0``, the
        default, never auto-compacts).  See ``docs/live-graphs.md``.
    """

    def __init__(
        self,
        max_pending: int = MAX_PENDING,
        max_batch: int = MAX_BATCH,
        max_delay: float = MAX_DELAY_SECONDS,
        coalesce: bool = True,
        compression: bool = True,
        metrics: Optional[ServiceMetrics] = None,
        pool: Optional[WorkerPool] = None,
        predict_cache_size: int = PREDICT_CACHE_SIZE,
        compact_every: int = 0,
    ):
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if pool is not None and not coalesce:
            raise ValueError(
                "pool mode requires coalesce=True; the serial baseline is "
                "the in-process scalar oracle"
            )
        self.max_pending = max_pending
        self.coalesce = coalesce
        self.pool = pool
        self.compact_every = max(int(compact_every), 0)
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self._compression = compression
        self._graphs: Dict[str, _RegisteredGraph] = {}
        self._pending = 0
        self._serial_lock = asyncio.Lock()
        self._ppr = Coalescer(
            self._dispatch_ppr,
            max_batch=max_batch,
            max_delay=max_delay,
            metrics=self.metrics,
        )
        self._ego = Coalescer(
            self._dispatch_ego,
            max_batch=max_batch,
            max_delay=max_delay,
            metrics=self.metrics,
        )
        self._predict = Coalescer(
            self._dispatch_predict,
            max_batch=max_batch,
            max_delay=max_delay,
            metrics=self.metrics,
        )
        self._paths = Coalescer(
            self._dispatch_paths,
            max_batch=max_batch,
            max_delay=max_delay,
            metrics=self.metrics,
        )
        # Checkpointed models (lazy, identity-cached).  In pool mode the
        # parent registry holds *metadata only* (for routing); the models
        # themselves live in the owning workers' registries.
        self.registry = ModelRegistry()
        # Bounded LRU over finished /predict payloads, keyed on
        # (graph, epoch, task, architecture, item, k, candidates).  Active
        # only when coalescing — the serial baseline must measure the
        # uncached scalar path.  Event-loop-confined: no lock needed.
        self._predict_cache: "OrderedDict[tuple, dict]" = OrderedDict()
        self._predict_cache_size = max(int(predict_cache_size), 0)
        self._predict_cache_hits = 0
        self._predict_cache_misses = 0

    # -- registry --

    def register(
        self,
        name: str,
        kg: KnowledgeGraph,
        warm: bool = True,
        mmap_dir: Optional[str] = None,
    ) -> None:
        """Register ``kg`` under ``name``; ``warm`` prebuilds the CSR.

        Warming at registration keeps the first request's latency in line
        with steady state — artifact construction is the one cost that is
        *not* graph-size independent.  In pool mode the graph is also
        shipped (once per owning worker) to the pool, and warming happens
        worker-side — the parent never builds kernel artifacts.

        ``mmap_dir`` (pool mode) makes registration ship the saved
        artifact-store *path* instead of a pickled graph; owning workers
        memory-map the same file (see ``repro/kg/store.py``).  ``kg``
        should then be ``open_artifacts(mmap_dir).kg``.  Without a pool the
        argument is ignored — an ``open_artifacts`` graph already carries
        its mapped artifacts.
        """
        if name in self._graphs:
            raise ValueError(f"graph {name!r} already registered")
        self._graphs[name] = _RegisteredGraph(
            kg, self._compression, compact_every=self.compact_every
        )
        if self.pool is not None:
            self.pool.register(name, kg, warm=warm, mmap_dir=mmap_dir)
        elif warm:
            artifacts_for(kg).warm(("csr",))

    def register_checkpoint(self, graph: str, path: str) -> dict:
        """Attach the checkpoint at ``path`` to registered graph ``graph``.

        The parent registry reads the O(header) metadata (validating
        magic/version/CRC and that the checkpoint's graph matches the
        registered ``kg``); model parameters are loaded lazily by whoever
        executes predict windows — this process in-process, the owning
        workers in pool mode (the pool ships the *path*, replayed on
        respawn like graph registrations).  Returns the checkpoint meta.
        """
        entry = self._graph(graph)
        meta = self.registry.add(graph, path, expected_graph=entry.kg.name)
        if self.pool is not None:
            self.pool.register_checkpoint(graph, path)
        return meta

    async def ingest_triples(self, graph: str, triples) -> dict:
        """``POST /triples``: append triples to ``graph`` as a new epoch.

        The payload must be ``(n, 3)`` integer ``[s, p, o]`` rows among the
        graph's *existing* node/relation ids (ingest never grows the id
        spaces; a malformed payload raises ``ValueError`` → 400).  The
        parent decides whether this ingest triggers compaction and, in
        pool mode, ships the delta (with that decision) to every owning
        worker *first* — every process's epoch chain advances in lockstep
        and a respawned worker replays the same chain.  Then the parent's
        own :class:`~repro.kg.epoch.LiveGraph` ingests, the SPARQL
        endpoint swaps onto the new epoch (stats carried forward), and the
        model registry drops built state for the old epochs.  In-flight
        requests keep the epoch they were admitted under; requests
        arriving after the response see the new one.

        Returns ``{"graph", "added", "epoch", "delta_rows", "compacted"}``.
        """
        entry = self._graph(graph)
        arr = entry.live.validate_triples(triples)  # fail fast: ValueError → 400
        async with entry.ingest_lock:
            if len(arr) == 0:
                epoch = entry.live.epoch
                return {
                    "graph": graph,
                    "added": 0,
                    "epoch": epoch.number,
                    "delta_rows": epoch.delta_rows,
                    "compacted": False,
                }
            compact = entry.live.would_compact(len(arr))
            if self.pool is not None:
                # Owning workers first (all acks awaited): once the client
                # sees the new epoch number, every shard can serve it.
                await asyncio.to_thread(self.pool.ingest, graph, arr, compact)
            result = await asyncio.to_thread(
                entry.live.ingest, arr, compact
            )
            entry.advance(self._compression)
            self.registry.invalidate_graph(graph, keep_epoch=int(result["epoch"]))
            return {"graph": graph, **result}

    def graphs(self) -> List[str]:
        return sorted(self._graphs)

    def has_graph(self, name: str) -> bool:
        return name in self._graphs

    def _graph(self, name: str) -> _RegisteredGraph:
        entry = self._graphs.get(name)
        if entry is None:
            raise KeyError(
                f"unknown graph {name!r}; registered: {self.graphs()}"
            )
        return entry

    def kg_of(self, name: str) -> KnowledgeGraph:
        """Current-epoch merged graph of ``name`` (KeyError if unknown).

        Front ends use this for answer *decoration* that needs the vocab
        tables — e.g. IRI-decoding SPARQL bindings for the XML results
        format.  Vocabularies are append-only across epochs, so ids from
        any result decode consistently against the current snapshot.
        """
        return self._graph(name).kg

    # -- admission gate --

    #: Request kinds that route through a coalescing scheduler; only their
    #: drain estimates may be divided by a batch factor.  ``/predict``
    #: kinds are per-model (``predict:<architecture>``) so each model gets
    #: its own EWMA — the basis of latency-budget routing — and are
    #: coalesced too (see :meth:`_coalesced_kind`).
    COALESCED_KINDS = ("ppr", "ego", "paths")

    @classmethod
    def _coalesced_kind(cls, kind: str) -> bool:
        return kind in cls.COALESCED_KINDS or kind.startswith("predict:")

    def _admit(self, kind: str) -> None:
        if self._pending >= self.max_pending:
            retry_after = self._retry_after(kind)
            self.metrics.record_rejected(retry_after)
            if self.pool is not None:
                # Retry-After pressure feeds the pool's elastic controller:
                # rejected requests never reach a worker queue, so queue
                # depth alone under-reports saturation.
                self.pool.note_pressure(retry_after)
            raise ServiceOverloaded(retry_after=retry_after)
        self._pending += 1
        self.metrics.record_admitted()

    def _retry_after(self, kind: str) -> float:
        # Drain estimate: the whole queue served at the recent smoothed
        # per-request rate of *this request's kind* (an ego/sparql reject
        # must not inherit the PPR rate).  Only coalesced kinds divide by
        # a batch factor — and by the *observed* batch occupancy, not the
        # configured max_batch: under light coalescing, dividing by the
        # full window size would underestimate the drain time.
        per_request = self.metrics.ewma_request_seconds(kind=kind, default=0.0)
        if per_request == 0.0:
            # No completions of this kind yet: fall back to the aggregate
            # rate, then to one coalescing window.
            per_request = self.metrics.ewma_request_seconds(default=self._ppr.max_delay)
        drain = self._pending * per_request
        if self.coalesce and self._coalesced_kind(kind):
            occupancy = self.metrics.batch_occupancy()
            batch_factor = min(max(occupancy, 1.0), float(self._ppr.max_batch))
            drain /= batch_factor
            # Floored at one coalescing window: capacity cannot free up
            # before the currently open window closes.
            return max(drain, self._ppr.max_delay)
        # Non-coalesced kinds: capacity frees when one in-flight request
        # of this kind completes, so the floor is one service time.
        return max(drain, per_request)

    async def _serve(self, kind: str, start_request) -> object:
        """Admission + latency accounting around one request.

        ``start_request`` is a zero-argument callable returning the request
        coroutine; it is only invoked *after* admission succeeds, so a
        rejected request never touches the schedulers.
        """
        self._admit(kind)
        start = time.perf_counter()
        try:
            result = await start_request()
        except BaseException:
            self.metrics.record_completed(
                kind, time.perf_counter() - start, error=True
            )
            raise
        finally:
            self._pending -= 1
            self.metrics.record_departed()
        self.metrics.record_completed(kind, time.perf_counter() - start)
        return result

    # -- request kinds --

    async def ppr_top_k(
        self,
        graph: str,
        target: int,
        k: int = 16,
        alpha: float = 0.25,
        eps: float = 2e-4,
    ) -> List[Tuple[int, float]]:
        """Top-``k`` influence list of ``target`` (IBS's per-target unit)."""
        entry = self._graph(graph)  # fail fast before entering the queue
        # Validate here, not in the kernel: a bad parameter must reject
        # *this* request (ValueError → 400 on both front ends) instead of
        # failing the whole coalescing window on the dispatch thread.
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if eps <= 0.0:
            raise ValueError(f"eps must be positive, got {eps}")

        def start():
            if self.coalesce:
                # The window key carries the epoch at admission: requests
                # admitted under different epochs never share a batch, and
                # the dispatcher runs each batch on its own snapshot.
                return self._ppr.submit(
                    (graph, entry.epoch, k, alpha, eps), int(target)
                )
            return self._serial_ppr(graph, int(target), k, alpha, eps)

        return await self._serve("ppr", start)

    async def extract_ego(
        self,
        graph: str,
        root: int,
        depth: int = 2,
        fanout: int = 8,
        salt: int = 0,
    ) -> _EgoGraph:
        """One ShaDowSAINT ego scope around ``root``."""
        entry = self._graph(graph)
        # Same fail-fast rule as ppr_top_k: reject out-of-range parameters
        # before they can poison a shared coalescing window.
        if depth < 0:
            raise ValueError(f"depth must be >= 0, got {depth}")
        if fanout < 1:
            raise ValueError(f"fanout must be >= 1, got {fanout}")

        def start():
            if self.coalesce:
                return self._ego.submit(
                    (graph, entry.epoch, depth, fanout, salt), int(root)
                )
            return self._serial_ego(graph, int(root), depth, fanout, salt)

        return await self._serve("ego", start)

    async def paths(
        self,
        graph: str,
        src: int,
        dst: int,
        max_hops: int = 3,
        max_paths: int = 64,
    ) -> List[list]:
        """All simple relational paths ``src -> dst`` (the KagNet unit).

        Returns a list of interleaved ``[src, rel, node, ..., rel, dst]``
        int lists, hop-major and lexicographic within a hop, truncated at
        ``max_paths`` — exactly
        :func:`repro.sampling.paths.enumerate_paths_scalar` on the
        admission-epoch snapshot.  Coalesced requests with matching
        ``(max_hops, max_paths)`` share one batched enumeration (and the
        live graph's retained per-pair cache); the serial baseline runs
        the scalar DFS oracle per request.
        """
        entry = self._graph(graph)
        if max_hops < 1:
            raise ValueError(f"max_hops must be >= 1, got {max_hops}")
        if max_paths < 1:
            raise ValueError(f"max_paths must be >= 1, got {max_paths}")

        def start():
            if self.coalesce:
                return self._paths.submit(
                    (graph, entry.epoch, int(max_hops), int(max_paths)),
                    (int(src), int(dst)),
                )
            return self._serial_paths(graph, int(src), int(dst), max_hops, max_paths)

        return await self._serve("paths", start)

    async def predict(
        self,
        graph: str,
        task: str,
        node: Optional[int] = None,
        head: Optional[int] = None,
        model: Optional[str] = None,
        k: int = PREDICT_TOP_K,
        candidates: int = 0,
        budget_ms: Optional[float] = None,
    ) -> dict:
        """One model-inference request against a checkpointed model.

        ``node`` (node classification) or ``head`` (link prediction) names
        the query entity — pass exactly one.  ``model`` pins an
        architecture; otherwise :meth:`_route_predict` picks one
        query-aware: the most accurate checkpoint whose observed per-model
        latency (EWMA of ``predict:<arch>`` completions) fits
        ``budget_ms``, the fastest when none fits, the best recorded test
        metric when no budget is given.  ``k`` bounds the returned LP
        tails; ``candidates > 0`` localizes LP scoring to the PPR top-c
        neighbourhood of the head (extraction→inference pipelining)
        instead of the full tail-class pool.

        Coalesced mode answers through the micro-batched vectorized path
        plus a bounded LRU result cache (hits skip admission entirely);
        ``coalesce=False`` serves the scalar one-request-at-a-time oracle,
        which every batched answer must match bit for bit.
        """
        entry = self._graph(graph)
        if (node is None) == (head is None):
            raise ValueError(
                "op 'predict' takes exactly one of 'node' (node "
                "classification) or 'head' (link prediction)"
            )
        item = int(node if node is not None else head)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if candidates < 0:
            raise ValueError(f"candidates must be >= 0, got {candidates}")
        architecture = model if model is not None else self._route_predict(
            graph, task, budget_ms
        )
        try:
            self.registry.meta(graph, task, architecture)
        except KeyError as exc:
            raise ValueError(str(exc)) from None

        cache_key = (graph, entry.epoch, task, architecture, item, k, candidates)
        if self.coalesce:
            cached = self._predict_cache.get(cache_key)
            if cached is not None:
                self._predict_cache.move_to_end(cache_key)
                self._predict_cache_hits += 1
                return cached
            self._predict_cache_misses += 1

        def start():
            if self.coalesce:
                return self._predict.submit(
                    (graph, entry.epoch, task, architecture, int(k), int(candidates)),
                    item,
                )
            return self._serial_predict(graph, task, architecture, item, k, candidates)

        result = await self._serve(f"predict:{architecture}", start)
        if "error" in result:
            # Per-item failures ship inside the window payload so one bad
            # id cannot fail its whole batch; surface as a client error.
            raise ValueError(result["error"])
        if self.coalesce and self._predict_cache_size:
            self._predict_cache[cache_key] = result
            self._predict_cache.move_to_end(cache_key)
            while len(self._predict_cache) > self._predict_cache_size:
                self._predict_cache.popitem(last=False)
        return result

    def _route_predict(
        self, graph: str, task: str, budget_ms: Optional[float]
    ) -> str:
        """Pick the architecture answering ``task`` (query-aware routing).

        No budget: the checkpoint with the best recorded ``test_metric``
        (ties → fewer parameters, then architecture name — deterministic
        across serial/coalesced/pooled modes, so bit-exactness comparisons
        route identically).  With a budget: the best such checkpoint whose
        per-model latency EWMA fits the budget — a model with no traffic
        yet optimistically counts as fitting — falling back to the fastest
        observed model when none fits.
        """
        options = self.registry.candidates(graph, task)
        if not options:
            raise ValueError(
                f"no checkpoint serves task {task!r} on graph {graph!r}; "
                f"tasks with checkpoints: {self.registry.tasks(graph)}"
            )

        def quality(option: Tuple[str, dict]) -> Tuple[float, int]:
            architecture, meta = option
            metric = meta.get("metrics", {}).get("test_metric")
            best = float(metric) if metric is not None else float("-inf")
            return (best, -int(meta.get("num_parameters", 0)))

        if budget_ms is None:
            return max(options, key=quality)[0]
        budget = float(budget_ms) / 1e3
        timed = [
            (
                self.metrics.ewma_request_seconds(kind=f"predict:{arch}", default=0.0),
                (arch, meta),
            )
            for arch, meta in options
        ]
        fits = [option for ewma, option in timed if ewma <= budget]
        if fits:
            return max(fits, key=quality)[0]
        return min(timed, key=lambda pair: pair[0])[1][0]

    async def sparql(self, graph: str, query: Query) -> ResultSet:
        """One SPARQL request through the graph's async endpoint façade."""
        entry = self._graph(graph)
        if self.pool is not None:
            return await self._serve(
                "sparql", lambda: asyncio.to_thread(self._pool_sparql, graph, query)
            )
        return await self._serve("sparql", lambda: entry.async_endpoint.query(query))

    async def count(self, graph: str, query: Query) -> int:
        """``getGraphSize`` for ``query`` (Algorithm 3's cardinality probe)."""
        entry = self._graph(graph)
        if self.pool is not None:
            return await self._serve(
                "sparql",
                lambda: asyncio.to_thread(
                    self.pool.call, "count", {"graph": graph, "query": query}
                ),
            )
        return await self._serve("sparql", lambda: entry.async_endpoint.count(query))

    async def sparql_stream(self, graph: str, query: Query, page_rows: int = 4096):
        """Plan ``query`` as a stream of LIMIT/OFFSET pages.

        Returns a :class:`~repro.sparql.endpoint.PageStream`: the query is
        evaluated once under admission/latency accounting (it holds the
        expensive columnar work), and the pages are then cut lazily as the
        wire layer pulls them — the consumer-paced half of the HTTP front
        end's chunked streaming.  In pool mode the evaluation runs in the
        owning worker and the columnar result ships back whole; pages are
        cut parent-side, so the streamed bytes stay bit-exact while the
        worker-side endpoint accounts the query as one request (not per
        page).
        """
        entry = self._graph(graph)
        if self.pool is not None:
            return await self._serve(
                "sparql",
                lambda: asyncio.to_thread(self._pool_stream, graph, query, page_rows),
            )
        return await self._serve(
            "sparql",
            lambda: asyncio.to_thread(entry.endpoint.stream_pages, query, page_rows),
        )

    # -- batched dispatchers (worker-thread side) --

    def _dispatch_ppr(self, key: Hashable, targets: List[int]) -> List[list]:
        graph, epoch, k, alpha, eps = key
        if self.pool is not None:
            return self.pool.call(
                "ppr",
                {
                    "graph": graph,
                    "epoch": epoch,
                    "targets": [int(target) for target in targets],
                    "k": k,
                    "alpha": alpha,
                    "eps": eps,
                },
            )
        table = self._graphs[graph].live.ppr_top_k(
            targets, k, alpha=alpha, eps=eps, epoch=epoch
        )
        return [table[int(target)] for target in targets]

    def _dispatch_ego(self, key: Hashable, roots: List[int]) -> List[_EgoGraph]:
        graph, epoch, depth, fanout, salt = key
        if self.pool is not None:
            return self.pool.call(
                "ego",
                {
                    "graph": graph,
                    "epoch": epoch,
                    "roots": [int(root) for root in roots],
                    "depth": depth,
                    "fanout": fanout,
                    "salt": salt,
                },
            )
        return self._graphs[graph].live.ego_batch(
            roots, depth, fanout, salt, epoch=epoch
        )

    def _dispatch_paths(
        self, key: Hashable, pairs: List[Tuple[int, int]]
    ) -> List[list]:
        graph, epoch, max_hops, max_paths = key
        if self.pool is not None:
            return self.pool.call(
                "paths",
                {
                    "graph": graph,
                    "epoch": epoch,
                    "pairs": [[int(src), int(dst)] for src, dst in pairs],
                    "max_hops": max_hops,
                    "max_paths": max_paths,
                },
            )
        return self._graphs[graph].live.paths_batch(
            pairs, max_hops=max_hops, max_paths=max_paths, epoch=epoch
        )

    def _dispatch_predict(self, key: Hashable, items: List[int]) -> List[dict]:
        graph, epoch, task, architecture, k, candidates = key
        if self.pool is not None:
            return self.pool.call(
                "predict",
                {
                    "graph": graph,
                    "epoch": epoch,
                    "task": task,
                    "model": architecture,
                    "items": [int(item) for item in items],
                    "k": k,
                    "candidates": candidates,
                },
            )
        # Resolve the snapshot the window was admitted under; the registry
        # keys its built state with the same epoch, so the window can never
        # answer from another epoch's forward pass.
        snapshot = self._graphs[graph].live.resolve(epoch)
        return run_predict_batch(
            snapshot.kg, self.registry, graph, task, architecture,
            items, k, candidates, epoch=snapshot.number,
        )

    # -- pool-mode SPARQL plumbing (runs on asyncio.to_thread) --

    def _pool_sparql(self, graph: str, query: Query) -> ResultSet:
        payload = self.pool.call("sparql", {"graph": graph, "query": query})
        return ResultSet(payload["variables"], payload["columns"])

    def _pool_stream(self, graph: str, query: Query, page_rows: int) -> PageStream:
        if page_rows <= 0:
            raise ValueError(f"page_rows must be positive, got {page_rows}")
        # The worker evaluates and accounts the *request* only
        # (op "sparql_stream"); pages are cut here, parent-side, and
        # accounted into the entry's page_stats — merged with worker-side
        # counters in metrics_snapshot, so pooled /metrics counts streamed
        # traffic exactly like in-process serving.
        entry = self._graphs[graph]
        payload = self.pool.call("sparql_stream", {"graph": graph, "query": query})
        result = ResultSet(payload["variables"], payload["columns"])

        def pages():
            for page in result.iter_pages(page_rows):
                account_page(
                    entry.page_stats, page, self._compression, entry.page_lock
                )
                yield page

        return PageStream(
            variables=list(result.variables),
            total_rows=result.num_rows,
            page_rows=page_rows,
            pages=pages(),
        )

    # -- serial baseline (scalar oracle, one request at a time) --

    async def _serial_ppr(
        self, graph: str, target: int, k: int, alpha: float, eps: float
    ) -> List[Tuple[int, float]]:
        kg = self._graphs[graph].kg
        async with self._serial_lock:
            adjacency = artifacts_for(kg).csr("both")
            return await asyncio.to_thread(
                ppr_top_k, adjacency, target, k, alpha, eps
            )

    async def _serial_ego(
        self, graph: str, root: int, depth: int, fanout: int, salt: int
    ) -> _EgoGraph:
        kg = self._graphs[graph].kg
        async with self._serial_lock:
            return await asyncio.to_thread(
                extract_ego, kg, root, depth, fanout, salt
            )

    async def _serial_paths(
        self, graph: str, src: int, dst: int, max_hops: int, max_paths: int
    ) -> List[list]:
        kg = self._graphs[graph].kg
        async with self._serial_lock:
            return await asyncio.to_thread(
                enumerate_paths_scalar, kg, src, dst, max_hops, max_paths
            )

    async def _serial_predict(
        self, graph: str, task: str, architecture: str,
        item: int, k: int, candidates: int,
    ) -> dict:
        entry = self._graphs[graph]
        kg, epoch = entry.kg, entry.epoch
        async with self._serial_lock:
            return await asyncio.to_thread(
                run_predict_oracle, kg, self.registry, graph, task,
                architecture, item, k, candidates, epoch,
            )

    # -- lifecycle / observability --

    async def drain(self) -> None:
        """Flush open coalescing windows and wait for their batches."""
        await self._ppr.flush()
        await self._ego.flush()
        await self._predict.flush()
        await self._paths.flush()

    def metrics_snapshot(self) -> dict:
        """Service + per-graph metrics as one JSON-serializable dict.

        In pool mode the per-graph artifact-cache and endpoint counters
        come from the owning workers (piggybacked on responses, summed
        across replicas — eventually consistent), and the snapshot gains
        a ``config.pool`` section with worker health and placement.
        """
        snapshot = self.metrics.snapshot()
        graphs = {}
        for name, entry in self._graphs.items():
            graphs[name] = {
                "num_nodes": entry.kg.num_nodes,
                "num_edges": entry.kg.num_edges,
                # Epoch/delta gauges + retained-kernel cache counters of
                # the live epoch chain (docs/live-graphs.md walks these).
                "live": entry.live.stats(),
                **self._graph_cache_stats(name, entry),
            }
            if self.pool is not None:
                graphs[name]["shards"] = self.pool.shards_of(name)
        snapshot["graphs"] = graphs
        snapshot["predict"] = {
            "cache": {
                "hits": self._predict_cache_hits,
                "misses": self._predict_cache_misses,
                "size": len(self._predict_cache),
                "capacity": self._predict_cache_size,
            },
            "registry": self.registry.snapshot(),
        }
        snapshot["config"] = {
            "max_pending": self.max_pending,
            "max_batch": self._ppr.max_batch,
            "max_delay_ms": self._ppr.max_delay * 1e3,
            "coalesce": self.coalesce,
            "compact_every": self.compact_every,
        }
        if self.pool is not None:
            snapshot["config"]["pool"] = self.pool.describe()
        return snapshot

    def _graph_cache_stats(self, name: str, entry: _RegisteredGraph) -> dict:
        if self.pool is not None:
            stats = self.pool.graph_stats(name)
            if stats is None:
                # No graph-touching response yet: report empty worker-side
                # counters rather than the parent's (unused) caches.
                stats = {
                    "artifact_cache": {
                        "hits": 0, "builds": 0, "nbytes": 0, "mapped_nbytes": 0,
                    },
                    "endpoint": {
                        "requests": 0,
                        "rows_returned": 0,
                        "bytes_raw": 0,
                        "bytes_shipped": 0,
                    },
                }
            # Fold in the pages this parent cut from worker-evaluated
            # streamed results (invisible to worker-side EndpointStats),
            # then recompute the ratio over the merged byte counters —
            # pooled and in-process /metrics agree page for page.
            endpoint = stats["endpoint"]
            with entry.page_lock:
                endpoint["rows_returned"] += entry.page_stats.rows_returned
                raw = endpoint.pop("bytes_raw", 0) + entry.page_stats.bytes_raw
                endpoint["bytes_shipped"] += entry.page_stats.bytes_shipped
            shipped = endpoint["bytes_shipped"]
            endpoint["compression_ratio"] = (raw / shipped) if shipped else 1.0
            return stats
        artifacts = artifacts_for(entry.kg)
        stats = entry.endpoint.stats
        # nbytes is per-process resident memory; mapped_nbytes is the shared
        # file-backed footprint (counted once, never multiplied per worker).
        return {
            "artifact_cache": {
                "hits": artifacts.hits,
                "builds": artifacts.builds,
                "nbytes": artifacts.nbytes(),
                "mapped_nbytes": artifacts.mapped_nbytes(),
            },
            "endpoint": {
                "requests": stats.requests,
                "rows_returned": stats.rows_returned,
                "bytes_shipped": stats.bytes_shipped,
                "compression_ratio": stats.compression_ratio(),
            },
        }
