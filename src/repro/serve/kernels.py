"""The single definition of a dispatched extraction batch.

Both serving modes execute coalesced windows through these helpers: the
in-process service (``service.py``, on ``asyncio.to_thread``) and the
pool workers (``pool.py``, in their own processes).  The bit-exactness
contract — pooled answers identical to in-process answers — reduces to
these functions being the *only* place the batch kernels are invoked
with serving parameters, so a future signature or artifact change cannot
silently diverge the two modes.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.kg.cache import artifacts_for
from repro.kg.graph import KnowledgeGraph


def run_ppr_batch(
    kg: KnowledgeGraph,
    targets: Sequence[int],
    k: int,
    alpha: float,
    eps: float,
) -> List[List[Tuple[int, float]]]:
    """One coalesced PPR window: top-``k`` list per target, target order."""
    from repro.sampling.ppr import batch_ppr_top_k

    target_array = np.asarray(targets, dtype=np.int64)
    table = batch_ppr_top_k(
        artifacts_for(kg).csr("both"), target_array, k, alpha=alpha, eps=eps
    )
    return [table[int(target)] for target in target_array]


def run_ego_batch(
    kg: KnowledgeGraph,
    roots: Sequence[int],
    depth: int,
    fanout: int,
    salt: int,
) -> list:
    """One coalesced ego window: one ``_EgoGraph`` per root, root order."""
    from repro.models.shadowsaint import extract_ego_batch

    return extract_ego_batch(
        kg,
        np.asarray(roots, dtype=np.int64),
        depth=depth,
        fanout=fanout,
        salt=salt,
    )
