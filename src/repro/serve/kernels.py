"""The single definition of a dispatched extraction or inference batch.

Both serving modes execute coalesced windows through these helpers: the
in-process service (``service.py``, on ``asyncio.to_thread``) and the
pool workers (``pool.py``, in their own processes).  The bit-exactness
contract — pooled answers identical to in-process answers — reduces to
these functions being the *only* place the batch kernels are invoked
with serving parameters, so a future signature or artifact change cannot
silently diverge the two modes.

The ``/predict`` pair extends the contract to model inference:
:func:`run_predict_batch` serves one coalesced window of prediction
requests through the model registry (extraction→inference pipelining:
the batch PPR kernel generates link-prediction candidates, one
vectorized scoring pass covers the whole window), and
:func:`run_predict_oracle` is the retained scalar baseline that answers
one request at a time with no registry-level caches.  Both build their
answers from per-row computations over identical model state, so batched
== scalar **bit for bit** — the property ``tests/serve/test_predict.py``
and the loadgen comparisons assert.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.kg.cache import artifacts_for
from repro.kg.graph import KnowledgeGraph

#: PPR parameters used for link-prediction candidate generation (the same
#: defaults the ``/ppr`` op serves; candidates must match extraction).
PREDICT_PPR_ALPHA = 0.25
PREDICT_PPR_EPS = 2e-4


def run_ppr_batch(
    kg: KnowledgeGraph,
    targets: Sequence[int],
    k: int,
    alpha: float,
    eps: float,
) -> List[List[Tuple[int, float]]]:
    """One coalesced PPR window: top-``k`` list per target, target order."""
    from repro.sampling.ppr import batch_ppr_top_k

    target_array = np.asarray(targets, dtype=np.int64)
    table = batch_ppr_top_k(
        artifacts_for(kg).csr("both"), target_array, k, alpha=alpha, eps=eps
    )
    return [table[int(target)] for target in target_array]


def run_ego_batch(
    kg: KnowledgeGraph,
    roots: Sequence[int],
    depth: int,
    fanout: int,
    salt: int,
) -> list:
    """One coalesced ego window: one ``_EgoGraph`` per root, root order."""
    from repro.models.shadowsaint import extract_ego_batch

    return extract_ego_batch(
        kg,
        np.asarray(roots, dtype=np.int64),
        depth=depth,
        fanout=fanout,
        salt=salt,
    )


# -- /predict: model inference over checkpointed models -----------------------


def _top_k_rank(scores: np.ndarray, candidates: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` best candidates, score-descending, id tie-break.

    ``lexsort`` is a stable full sort with an explicit secondary key, so
    the ranking is deterministic for equal scores — the precondition for
    batched and scalar top-k selections agreeing exactly.
    """
    return np.lexsort((candidates, -scores))[: max(k, 0)]


def _nc_payload(architecture: str, node: int, row: np.ndarray) -> dict:
    return {
        "task_type": "NC",
        "model": architecture,
        "node": int(node),
        "label": int(np.argmax(row)),
        "scores": [float(value) for value in row],
    }


def _lp_payload(
    architecture: str, head: int, tails: np.ndarray, scores: np.ndarray, k: int
) -> dict:
    rank = _top_k_rank(scores, tails, k)
    return {
        "task_type": "LP",
        "model": architecture,
        "head": int(head),
        "tails": [int(tail) for tail in tails[rank]],
        "scores": [float(score) for score in scores[rank]],
    }


def _candidate_tails(
    pool: np.ndarray, ppr_list: Optional[List[Tuple[int, float]]]
) -> np.ndarray:
    """The tail candidates of one head: PPR top-c filtered to the pool.

    Extraction→inference pipelining: the PPR influence list localizes the
    candidate set around the head (in PPR order), restricted to the task's
    tail class.  An empty intersection falls back to the full pool so a
    poorly-connected head still gets an answer.
    """
    if ppr_list is None:
        return pool
    members = set(int(node) for node in pool)
    tails = [int(node) for node, _score in ppr_list if int(node) in members]
    return np.asarray(tails, dtype=np.int64) if tails else pool


def _predict_error(task_type: str, field: str, item: int, detail: str) -> dict:
    # Per-item errors ride back inside the window instead of raising: one
    # bad id must fail its own request, never the whole coalesced batch.
    return {"task_type": task_type, field: int(item), "error": detail}


def run_predict_batch(
    kg: KnowledgeGraph,
    registry,
    graph: str,
    task: str,
    architecture: str,
    items: Sequence[int],
    k: int,
    candidates: int,
    epoch: int = 0,
) -> List[dict]:
    """One coalesced ``/predict`` window: one payload per item, item order.

    Node classification gathers rows from the registry's cached
    full-target logits (one vectorized forward pass the first time, a row
    gather after); link prediction scores every head of the window against
    its candidate tails in **one** ``score_pairs`` call over the
    flattened (head, tail) pairs.  Scoring reduces per row
    (``sum(axis=1)`` over identical operands in identical order), so each
    row equals the scalar oracle's answer bit for bit.

    ``epoch`` pins the registry's built state (model + logits caches) to
    the graph snapshot ``kg`` is — a live graph bumps it on ingest so a
    window never answers from another epoch's forward pass.
    """
    model = registry.model(graph, task, architecture, kg, epoch)
    task_obj = model.task
    if task_obj.task_type == "NC":
        logits = registry.logits(graph, task, architecture, kg, epoch)
        positions = registry.target_positions(graph, task, architecture, kg, epoch)
        results = []
        for item in items:
            row = positions.get(int(item))
            if row is None:
                results.append(
                    _predict_error(
                        "NC", "node", item,
                        f"node {int(item)} is not a target of task {task!r}",
                    )
                )
            else:
                results.append(_nc_payload(architecture, int(item), logits[row]))
        return results

    heads = np.asarray([int(item) for item in items], dtype=np.int64)
    valid = (heads >= 0) & (heads < kg.num_nodes)
    pool = model.candidate_pool()
    if candidates > 0:
        # Batched candidate generation through the same PPR kernel the
        # /ppr op serves — bit-exact against the scalar ppr_top_k by the
        # existing kernel contract.
        ppr_lists = (
            run_ppr_batch(
                kg, heads[valid], candidates, PREDICT_PPR_ALPHA, PREDICT_PPR_EPS
            )
            if valid.any()
            else []
        )
        ppr_by_head = dict(zip(heads[valid].tolist(), ppr_lists))
        tail_sets = [
            _candidate_tails(pool, ppr_by_head[int(head)]) if ok else None
            for head, ok in zip(heads, valid)
        ]
    else:
        tail_sets = [pool if ok else None for ok in valid]

    flat_heads = np.concatenate(
        [np.full(len(tails), head, dtype=np.int64)
         for head, tails in zip(heads, tail_sets) if tails is not None]
        or [np.empty(0, dtype=np.int64)]
    )
    flat_tails = np.concatenate(
        [tails for tails in tail_sets if tails is not None]
        or [np.empty(0, dtype=np.int64)]
    )
    flat_scores = (
        model.score_pairs(flat_heads, flat_tails)
        if len(flat_heads)
        else np.empty(0)
    )

    results = []
    offset = 0
    for head, tails in zip(heads, tail_sets):
        if tails is None:
            results.append(
                _predict_error(
                    "LP", "head", head,
                    f"head {int(head)} is out of range for graph {graph!r} "
                    f"(num_nodes={kg.num_nodes})",
                )
            )
            continue
        scores = flat_scores[offset : offset + len(tails)]
        offset += len(tails)
        results.append(_lp_payload(architecture, int(head), tails, scores, k))
    return results


def run_predict_oracle(
    kg: KnowledgeGraph,
    registry,
    graph: str,
    task: str,
    architecture: str,
    item: int,
    k: int,
    candidates: int,
    epoch: int = 0,
) -> dict:
    """The scalar ``/predict`` baseline: one request, no registry caches.

    Node classification recomputes the full ``predict_logits()`` pass for
    every request (the honest one-at-a-time cost); link prediction scores
    one head against its candidates through the model's public
    ``score_pairs``.  Candidate generation uses the *scalar*
    :func:`~repro.sampling.ppr.ppr_top_k` kernel.  The batched path must
    match this function's output bit for bit.
    """
    from repro.sampling.ppr import ppr_top_k

    model = registry.model(graph, task, architecture, kg, epoch)
    task_obj = model.task
    item = int(item)
    if task_obj.task_type == "NC":
        rows = np.nonzero(task_obj.target_nodes == item)[0]
        if len(rows) == 0:
            return _predict_error(
                "NC", "node", item,
                f"node {item} is not a target of task {task!r}",
            )
        logits = model.predict_logits()
        return _nc_payload(architecture, item, logits[int(rows[0])])

    if not 0 <= item < kg.num_nodes:
        return _predict_error(
            "LP", "head", item,
            f"head {item} is out of range for graph {graph!r} "
            f"(num_nodes={kg.num_nodes})",
        )
    pool = model.candidate_pool()
    if candidates > 0:
        ppr_list = ppr_top_k(
            artifacts_for(kg).csr("both"), item, candidates,
            PREDICT_PPR_ALPHA, PREDICT_PPR_EPS,
        )
        tails = _candidate_tails(pool, ppr_list)
    else:
        tails = pool
    scores = model.score_pairs(np.full(len(tails), item, dtype=np.int64), tails)
    return _lp_payload(architecture, item, tails, scores, k)
