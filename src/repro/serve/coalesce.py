"""Micro-batching scheduler: live traffic in, batch-kernel calls out.

The PR-1/2 batch kernels (:func:`repro.sampling.ppr.batch_ppr_top_k`,
:func:`repro.models.shadowsaint.extract_ego_batch`) were built for
benchmark loops that already hold a whole array of targets.  A service
receives the same work one request at a time.  :class:`Coalescer` bridges
the two: concurrent requests that share a *compatibility key* (same graph,
same kernel parameters) are collected inside a small window — closed by
whichever comes first, ``max_batch`` items or ``max_delay`` seconds — and
dispatched as **one** batch-kernel call on a worker thread, with each
result fanned back to its request's future.

Because the batch kernels are bit-exact against their scalar oracles, a
coalesced request returns *exactly* what a lone request would — the window
only trades a bounded latency slack for kernel-side throughput.  The
scheduler does not care where ``dispatch`` executes: in-process it runs
the kernel directly, in pool mode it ships the batch to the owning
worker process (``serve/pool.py``) — window semantics and results are
identical either way.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Callable, Dict, Hashable, List, Optional, Set

from repro.serve.metrics import ServiceMetrics

# Default window: at most this many requests per dispatched batch ...
MAX_BATCH = 64
# ... or this many seconds after the first request opened the window.
MAX_DELAY_SECONDS = 0.002

# dispatch(key, items) -> results, one result per item, same order.
DispatchFn = Callable[[Hashable, List[Any]], List[Any]]


class _Window:
    """One open batch: items waiting for the size or time trigger."""

    __slots__ = ("items", "futures", "timer")

    def __init__(self) -> None:
        self.items: List[Any] = []
        self.futures: List[asyncio.Future] = []
        self.timer: Optional[asyncio.TimerHandle] = None


class Coalescer:
    """Collects per-key requests into windows and dispatches them batched.

    Parameters
    ----------
    dispatch:
        ``dispatch(key, items) -> results`` run on a worker thread
        (``asyncio.to_thread``); must return one result per item in item
        order.  Raising fails every request of the batch with the same
        exception.
    max_batch / max_delay:
        The coalescing window: a batch is dispatched as soon as it holds
        ``max_batch`` items, or ``max_delay`` seconds after its first item
        arrived, whichever happens first.  ``max_batch=1`` degenerates to
        per-request dispatch (the serial baseline).
    metrics:
        Optional :class:`ServiceMetrics` receiving batch size/duration.
    """

    def __init__(
        self,
        dispatch: DispatchFn,
        max_batch: int = MAX_BATCH,
        max_delay: float = MAX_DELAY_SECONDS,
        metrics: Optional[ServiceMetrics] = None,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {max_delay}")
        self._dispatch = dispatch
        self.max_batch = max_batch
        self.max_delay = max_delay
        self._metrics = metrics
        self._windows: Dict[Hashable, _Window] = {}
        self._inflight: Set[asyncio.Task] = set()

    async def submit(self, key: Hashable, item: Any) -> Any:
        """Queue ``item`` under ``key`` and await its individual result."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        window = self._windows.get(key)
        if window is None:
            window = _Window()
            self._windows[key] = window
            if self.max_batch > 1:
                # call_later(0, ...) fires on the next loop pass, so a zero
                # window still coalesces same-tick bursts and never hangs.
                window.timer = loop.call_later(self.max_delay, self._close, key)
        window.items.append(item)
        window.futures.append(future)
        if len(window.items) >= self.max_batch:
            self._close(key)
        return await future

    def _close(self, key: Hashable) -> None:
        """Close ``key``'s window (idempotent) and dispatch it."""
        window = self._windows.pop(key, None)
        if window is None:
            return
        if window.timer is not None:
            window.timer.cancel()
        task = asyncio.ensure_future(self._run(key, window))
        # Keep a strong reference until done: the loop only holds weak ones.
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _run(self, key: Hashable, window: _Window) -> None:
        start = time.perf_counter()
        try:
            results = await asyncio.to_thread(self._dispatch, key, window.items)
            if len(results) != len(window.items):
                raise RuntimeError(
                    f"dispatch returned {len(results)} results "
                    f"for {len(window.items)} items"
                )
        except BaseException as exc:  # noqa: BLE001 - fanned out to callers
            for future in window.futures:
                if not future.done():
                    future.set_exception(exc)
            return
        if self._metrics is not None:
            self._metrics.record_batch(len(window.items), time.perf_counter() - start)
        for future, result in zip(window.futures, results):
            if not future.done():
                future.set_result(result)

    async def flush(self) -> None:
        """Dispatch every open window now and wait for all batches to land."""
        for key in list(self._windows):
            self._close(key)
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)

    @property
    def open_windows(self) -> int:
        """Number of keys currently collecting a batch (introspection)."""
        return len(self._windows)
