"""Multi-process sharded worker pool over the per-graph artifact cache.

One Python interpreter caps extraction throughput no matter how many
cores the box has: the in-process :class:`ExtractionService` runs every
batch kernel on ``asyncio.to_thread``, and the GIL serializes the
Python-level parts of those kernels.  :class:`WorkerPool` removes that
bottleneck the way DGL-KE partitions KG state across processes: each
**worker process owns a shard of the artifact cache** — graphs are pinned
to workers by the deterministic :func:`shard_for` map, so CSR projections,
hexastore orderings and walk engines are built **exactly once per owning
worker** and never cross a process boundary — and the parent ships only
request parameters out and numpy result buffers back.

Contracts:

* **Deterministic placement** — :func:`shard_for` is a stable
  (process- and run-independent) hash of the graph *name*; the same graph
  always lands on the same home shard.  A graph is served by ``replicas``
  consecutive workers starting at its home shard (default: all workers,
  the "per-graph worker pool" regime for few-graph/high-traffic serving;
  ``replicas=1`` is the memory-tight pure-sharding regime for many
  graphs).  Batches round-robin over the replica set.
* **Ship parameters, not state** — a graph is pickled to each owning
  worker once at registration (locks, lazy indices and the attached
  artifact cache are stripped by ``KnowledgeGraph.__getstate__``); every
  later message is request parameters (a few ints/strings, one int64
  target array per batch) or results (top-k pairs, ego-graph arrays,
  SPARQL result columns).  With ``register(..., mmap_dir=...)`` even the
  one-time graph shipment disappears: the payload is a *path* to a saved
  artifact store (``repro/kg/store.py``) and each owning worker
  memory-maps the same physical pages — zero-copy startup and no
  per-shard RAM multiplier (shared clean pages instead of N resident
  copies).
* **Bit-exactness** — workers run the same batch kernels against their
  own :func:`~repro.kg.cache.artifacts_for` cache; the kernels are
  bit-exact against their scalar oracles and content-addressed, so which
  process runs a batch can never change an answer
  (``tests/serve/test_pool.py`` asserts pooled == in-process).
* **Crash containment** — a dead worker fails only its in-flight
  requests, each with a structured :class:`WorkerCrashed`; the pool
  respawns the worker, replays its graph registrations, and later
  requests are served normally.  Worker-side ``ValueError`` /
  ``KeyError`` / SPARQL syntax errors re-raise as the same type in the
  parent so the front ends' 400/404 mapping is identical in both modes.

The pool is synchronous and thread-safe; :class:`ExtractionService`
drives it from ``asyncio.to_thread`` exactly like the in-process kernels,
so admission, coalescing windows, retry-after hints and metrics behave
identically in both modes.  See ``docs/serving.md`` for the operator
surface (choosing ``--workers``, reading ``/metrics``).
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import itertools
import multiprocessing
import os
import threading
import time
import warnings
from typing import Any, Dict, List, Optional, Tuple

from repro.kg.graph import KnowledgeGraph

__all__ = [
    "WorkerCrashed",
    "WorkerError",
    "WorkerPool",
    "replica_shards",
    "shard_for",
]

#: Seconds a request waits for a crashed worker slot to finish respawning
#: before giving up with :class:`WorkerCrashed`.
RESPAWN_WAIT_SECONDS = 60.0

#: Seconds ``close()`` gives a worker to exit cleanly before terminating it.
SHUTDOWN_GRACE_SECONDS = 5.0


# -- deterministic graph -> shard map -----------------------------------------


def shard_for(name: str, num_shards: int) -> int:
    """Home shard of graph ``name`` in a pool of ``num_shards`` workers.

    Stable across processes, runs and machines (``blake2b`` of the name,
    *not* Python's per-process-seeded ``hash``), so the parent, every
    worker, and a restarted service all agree where a graph lives — the
    precondition for building its artifacts exactly once per owner.

    >>> shard_for("mag", 4) == shard_for("mag", 4)
    True
    >>> 0 <= shard_for("anything", 3) < 3
    True
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % num_shards


def replica_shards(name: str, num_shards: int, replicas: Optional[int] = None) -> List[int]:
    """The worker indices serving graph ``name`` (home shard first).

    ``replicas=None`` (default) means every worker serves the graph — the
    per-graph worker pool regime.  Smaller values walk consecutively from
    the home shard, so shrinking ``replicas`` never moves the home.
    """
    count = num_shards if replicas is None else min(max(replicas, 1), num_shards)
    home = shard_for(name, num_shards)
    return [(home + offset) % num_shards for offset in range(count)]


# -- errors -------------------------------------------------------------------


class WorkerCrashed(RuntimeError):
    """A worker process died with this request in flight (or respawning).

    The pool respawns the worker and replays its registrations; the
    *request* is not retried — retrying is the caller's decision, exactly
    like :class:`~repro.serve.service.ServiceOverloaded` rejections.
    """


class WorkerError(RuntimeError):
    """A worker-side failure that is not a client error (server fault)."""


#: Worker-side exception types re-raised as the same type in the parent so
#: the front ends map them to the same status codes as in-process serving
#: (ValueError/KeyError -> 400/404, SparqlSyntaxError -> 400 invalid SPARQL).
_CLIENT_ERRORS = {"ValueError": ValueError, "TypeError": TypeError, "KeyError": KeyError}


def _reraise(type_name: str, message: str) -> Exception:
    if type_name == "SparqlSyntaxError":
        from repro.sparql.parser import SparqlSyntaxError

        return SparqlSyntaxError(message)
    client_type = _CLIENT_ERRORS.get(type_name)
    if client_type is not None:
        return client_type(message)
    return WorkerError(f"{type_name}: {message}")


# -- worker process side ------------------------------------------------------


def _worker_graph_stats(entry: dict) -> dict:
    """The piggybacked per-graph stats: artifact cache + endpoint counters."""
    from repro.kg.cache import artifacts_for

    artifacts = artifacts_for(entry["kg"])
    stats = entry["endpoint"].stats
    return {
        "artifact_cache": {
            "hits": artifacts.hits,
            "builds": artifacts.builds,
            "nbytes": artifacts.nbytes(),
            "mapped_nbytes": artifacts.mapped_nbytes(),
        },
        "endpoint": {
            "requests": stats.requests,
            "rows_returned": stats.rows_returned,
            "bytes_raw": stats.bytes_raw,
            "bytes_shipped": stats.bytes_shipped,
        },
    }


def _execute_op(graphs: Dict[str, dict], op: str, payload: dict) -> Any:
    """Run one op against this worker's shard of graphs."""
    from repro.kg.cache import artifacts_for

    if op == "ping":
        return "pong"
    if op == "sleep":  # diagnostics/tests: hold the worker busy
        time.sleep(float(payload["seconds"]))
        return None
    if op == "register":
        name = payload["name"]
        entry = graphs.get(name)
        if entry is None:
            from repro.kg.epoch import LiveGraph
            from repro.serve.registry import ModelRegistry
            from repro.sparql.endpoint import SparqlEndpoint

            mmap_dir = payload.get("mmap_dir")
            if mmap_dir is not None:
                # Zero-copy startup: map the saved artifact store instead of
                # unpickling a shipped graph + rebuilding indices.  Every
                # worker mapping the same file shares its physical pages.
                from repro.kg.store import open_artifacts

                kg = open_artifacts(mmap_dir).kg
            else:
                kg = payload["kg"]
            graphs[name] = entry = {
                "kg": kg,
                "live": LiveGraph(kg),
                "endpoint": SparqlEndpoint(kg, compression=payload["compression"]),
                "registry": ModelRegistry(),
            }
        # Checkpoints ride the registration payload by *path* (respawn
        # replays re-read the same files); models load lazily on the
        # first predict window that reaches this worker.
        for checkpoint in payload.get("checkpoints", ()):
            entry["registry"].add(
                name, checkpoint, expected_graph=entry["kg"].name
            )
        if payload.get("warm"):
            artifacts_for(entry["kg"]).warm(payload.get("warm_kinds", ("csr",)))
        return sorted(graphs)

    entry = graphs.get(payload["graph"])
    if entry is None:
        raise KeyError(f"graph {payload['graph']!r} is not registered on this worker")
    if op == "triples":
        # Lockstep ingest: the parent ships the delta (and its compaction
        # decision) to every owning worker *before* applying it locally, so
        # any client that saw the new epoch number can be served by every
        # shard.  The worker loop is serial — no request can interleave
        # with a half-applied ingest.
        from repro.sparql.endpoint import SparqlEndpoint

        result = entry["live"].ingest(payload["triples"], compact=payload["compact"])
        if result["added"]:
            old = entry["endpoint"]
            entry["kg"] = entry["live"].kg
            endpoint = SparqlEndpoint(entry["live"].kg, compression=old.compression)
            endpoint.stats = old.stats  # counters survive the epoch bump
            entry["endpoint"] = endpoint
            entry["registry"].invalidate_graph(
                payload["graph"], keep_epoch=int(result["epoch"])
            )
        return result
    if op == "ppr":
        # The live graph's retained cache wraps the same batch kernel the
        # in-process dispatch path uses, so the two modes cannot drift.
        table = entry["live"].ppr_top_k(
            payload["targets"], payload["k"],
            alpha=payload["alpha"], eps=payload["eps"],
            epoch=payload.get("epoch"),
        )
        return [table[int(target)] for target in payload["targets"]]
    if op == "ego":
        return entry["live"].ego_batch(
            payload["roots"], payload["depth"], payload["fanout"],
            payload["salt"], epoch=payload.get("epoch"),
        )
    if op == "predict":
        # Same shared kernel as the in-process dispatch path; parameters
        # in (a few ints + the window's item ids), score payloads back.
        from repro.serve.kernels import run_predict_batch

        snapshot = entry["live"].resolve(payload.get("epoch"))
        return run_predict_batch(
            snapshot.kg, entry["registry"], payload["graph"], payload["task"],
            payload["model"], payload["items"], payload["k"],
            payload["candidates"], epoch=snapshot.number,
        )
    if op == "sparql":
        result = entry["endpoint"].query(payload["query"])
        return {
            "variables": list(result.variables),
            "columns": {v: result.columns[v] for v in result.variables},
        }
    if op == "sparql_stream":
        # Streamed /sparql in pool mode: evaluate here (one request in this
        # endpoint's stats), ship the columns whole; the parent cuts pages
        # and accounts them with endpoint.account_page.
        result = entry["endpoint"].evaluate_stream(payload["query"])
        return {
            "variables": list(result.variables),
            "columns": {v: result.columns[v] for v in result.variables},
        }
    if op == "count":
        return entry["endpoint"].count(payload["query"])
    raise ValueError(f"unknown pool op {op!r}")


def _worker_main(conn, worker_index: int) -> None:
    """Entry point of one worker process: a serial recv/execute/send loop.

    One request at a time per worker by design — a worker is a shard, and
    intra-worker parallelism would reintroduce the GIL contention the
    pool exists to remove.  Parallelism comes from the number of workers.
    """
    graphs: Dict[str, dict] = {}
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break  # parent is gone; daemonic exit
        request_id, op, payload = message
        if op == "shutdown":
            try:
                conn.send((request_id, "ok", None, None))
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
            break
        try:
            result = _execute_op(graphs, op, payload)
            graph_name = payload.get("graph") or payload.get("name")
            stats = None
            if graph_name in graphs:
                stats = {"graph": graph_name, **_worker_graph_stats(graphs[graph_name])}
            response = (request_id, "ok", result, stats)
        except BaseException as exc:  # noqa: BLE001 - shipped to the parent
            response = (request_id, "error", (type(exc).__name__, str(exc)), None)
        try:
            conn.send(response)
        except (BrokenPipeError, OSError):  # pragma: no cover - parent died
            break
    conn.close()


# -- parent side --------------------------------------------------------------


class _WorkerHandle:
    """Parent-side state of one worker slot: process, pipe, in-flight map.

    A dedicated reader thread blocks on the pipe and resolves
    :class:`concurrent.futures.Future` objects, so the pool works from
    plain threads (``asyncio.to_thread``) and from synchronous code
    (registration, CLI startup) without needing an event loop.
    """

    def __init__(self, pool: "WorkerPool", index: int):
        self.pool = pool
        self.index = index
        self.lock = threading.Lock()
        self.ready = threading.Event()  # cleared while (re)spawning
        self.process = None
        self.conn = None
        self.reader: Optional[threading.Thread] = None
        self.inflight: Dict[int, concurrent.futures.Future] = {}
        self.request_ids = itertools.count()
        self.respawns = 0
        self.spawn_failure: Optional[str] = None
        self.closed = False
        self.cpu: Optional[int] = None  # CPU this slot is pinned to (None = unpinned)

    # -- lifecycle --

    def spawn(self) -> None:
        """Start (or restart) the worker process and its reader thread."""
        ctx = self.pool._ctx
        parent_conn, child_conn = ctx.Pipe()
        process = ctx.Process(
            target=_worker_main,
            args=(child_conn, self.index),
            name=f"tosg-pool-worker-{self.index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        self.cpu = self.pool._pin_worker(process.pid, self.index)
        with self.lock:
            self.process = process
            self.conn = parent_conn
            self.inflight = {}
        reader = threading.Thread(
            target=self._read_loop,
            args=(parent_conn,),
            name=f"tosg-pool-reader-{self.index}",
            daemon=True,
        )
        self.reader = reader
        reader.start()
        # Replay this shard's registrations before accepting requests, so
        # a respawned worker is indistinguishable from the original.
        for registration in self.pool._registrations_for(self.index):
            self._request_on_conn(parent_conn, "register", registration).result()
        # ... then the ingest deltas, in order, so the respawned worker
        # reaches the same epoch as the workers that never died.
        for delta in self.pool._deltas_for(self.index):
            self._request_on_conn(parent_conn, "triples", delta).result()
        self.spawn_failure = None
        self.ready.set()

    def _read_loop(self, conn) -> None:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError, ValueError, TypeError):
                # EOF/OSError: the worker died or the pipe closed.
                # ValueError/TypeError: close() invalidated the connection
                # object while this thread was blocked inside recv().
                break
            request_id, status, result, stats = message
            with self.lock:
                future = self.inflight.pop(request_id, None)
            if stats is not None:
                self.pool._record_graph_stats(self.index, stats)
            if future is None:
                continue  # request already failed (e.g. during close)
            if status == "ok":
                future.set_result(result)
            else:
                future.set_exception(_reraise(*result))
        self._on_disconnect(conn)

    def _on_disconnect(self, conn) -> None:
        """The worker side of ``conn`` is gone: fail in-flight, respawn."""
        with self.lock:
            if self.conn is not conn:
                return  # a newer incarnation already took over
            stale = list(self.inflight.values())
            self.inflight = {}
            crashed = not self.closed
            if crashed:
                self.ready.clear()
        for future in stale:
            if not future.done():
                future.set_exception(
                    WorkerCrashed(
                        f"pool worker {self.index} died with this request in flight"
                    )
                )
        if not crashed or self.pool._closed:
            return
        # The dead incarnation's cumulative counters must survive the
        # respawn (the fresh process restarts its own from zero).
        self.pool._retire_worker_stats(self.index)
        self.respawns += 1
        try:
            self.spawn()
        except Exception as exc:  # pragma: no cover - spawn itself failed
            # Leave the slot not-ready; requests surface this reason via
            # WorkerCrashed, and describe() exposes it per slot.
            self.spawn_failure = f"{type(exc).__name__}: {exc}"

    # -- requests --

    def request(self, op: str, payload: dict) -> concurrent.futures.Future:
        """Send one request; the returned future resolves off-thread."""
        if not self.ready.wait(timeout=RESPAWN_WAIT_SECONDS):
            reason = f": {self.spawn_failure}" if self.spawn_failure else ""
            raise WorkerCrashed(
                f"pool worker {self.index} is not available "
                f"(respawn pending{reason})"
            )
        with self.lock:
            if self.closed:
                raise WorkerCrashed(f"pool worker {self.index} is shut down")
            conn = self.conn
        return self._request_on_conn(conn, op, payload)

    def _request_on_conn(self, conn, op: str, payload: dict) -> concurrent.futures.Future:
        future: concurrent.futures.Future = concurrent.futures.Future()
        with self.lock:
            request_id = next(self.request_ids)
            self.inflight[request_id] = future
            try:
                conn.send((request_id, op, payload))
            except (BrokenPipeError, OSError, ValueError):
                self.inflight.pop(request_id, None)
                raise WorkerCrashed(
                    f"pool worker {self.index} pipe is closed"
                ) from None
        return future

    def close(self) -> None:
        with self.lock:
            self.closed = True
            conn, process = self.conn, self.process
        self.ready.set()  # unblock waiters; they see closed and raise
        if conn is not None:
            try:
                conn.send((next(self.request_ids), "shutdown", {}))
            except (BrokenPipeError, OSError, ValueError):
                pass
        if process is not None:
            process.join(timeout=SHUTDOWN_GRACE_SECONDS)
            if process.is_alive():  # pragma: no cover - unresponsive worker
                process.terminate()
                process.join(timeout=SHUTDOWN_GRACE_SECONDS)
        if conn is not None:
            conn.close()


class _PoolGraph:
    """Parent-side registration record (replayed on worker respawn)."""

    __slots__ = (
        "name", "kg", "warm", "shards", "rr", "mmap_dir", "checkpoints", "deltas",
    )

    def __init__(
        self,
        name: str,
        kg: KnowledgeGraph,
        warm: bool,
        shards: List[int],
        mmap_dir: Optional[str] = None,
    ):
        self.name = name
        self.kg = kg
        self.warm = warm
        self.shards = shards
        self.mmap_dir = mmap_dir
        self.checkpoints: List[str] = []
        # Ingested (triples, compact) deltas in arrival order; a respawned
        # worker replays them after its registrations, so it reconstructs
        # the same epoch chain as the surviving workers.
        self.deltas: List[Tuple[Any, bool]] = []
        self.rr = itertools.count()


class WorkerPool:
    """A fixed set of worker processes, each owning a shard of graphs.

    Parameters
    ----------
    workers:
        Number of worker processes.  Throughput scales with workers up to
        the machine's core count; see ``docs/serving.md`` for guidance.
    replicas:
        How many workers serve each graph (``None``: all of them — the
        per-graph worker pool regime; ``1``: pure sharding, each graph
        lives on exactly its home shard).  Placement is
        :func:`replica_shards`, deterministic per graph name.
    start_method:
        ``multiprocessing`` start method.  Default ``"forkserver"`` where
        available (workers fork from a clean, thread-free server process,
        so respawning during live traffic is safe), else ``"spawn"``.
        ``"fork"`` is accepted but discouraged in threaded parents.
    compression:
        Passed to each worker-side :class:`SparqlEndpoint`.
    pin_workers:
        Pin each worker process to one CPU of the parent's affinity set
        (slot ``i`` → cpu ``i mod len(cpus)``) via ``os.sched_setaffinity``.
        Keeps a worker's pages NUMA-local and stops shard processes from
        migrating across cores under load.  On platforms without affinity
        support this degrades to a no-op with a ``RuntimeWarning``; the
        per-slot pinning (or ``None``) is reported by :meth:`describe`.

    The pool is a context manager; :meth:`close` terminates the workers.
    """

    def __init__(
        self,
        workers: int = 2,
        replicas: Optional[int] = None,
        start_method: Optional[str] = None,
        compression: bool = True,
        pin_workers: bool = False,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if replicas is not None:
            # Normalize up front so the banner, describe()/metrics and the
            # actual placement can never disagree about the replica count.
            replicas = min(max(replicas, 1), workers)
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "forkserver" if "forkserver" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        if start_method == "forkserver":
            # Pre-import the heavy stack once in the fork server so every
            # worker (and every respawn) forks warm instead of re-importing
            # numpy/scipy/repro.
            self._ctx.set_forkserver_preload(["repro.serve.pool"])
        self.start_method = start_method
        self.num_workers = workers
        self.replicas = replicas
        self.compression = compression
        self.pin_workers = pin_workers
        self._pin_warned = False
        self._closed = False
        self._registry_lock = threading.Lock()
        self._graphs: Dict[str, _PoolGraph] = {}
        self._stats_lock = threading.Lock()
        # Latest live piggybacked snapshot per (graph, worker slot) ...
        self._graph_stats: Dict[Tuple[str, int], dict] = {}
        # ... plus cumulative counters inherited from dead incarnations of
        # each slot, so a respawn never makes /metrics counters step back.
        self._retired_stats: Dict[Tuple[str, int], dict] = {}
        self._workers = [_WorkerHandle(self, index) for index in range(workers)]
        for handle in self._workers:
            handle.spawn()

    # -- context manager --

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- worker CPU affinity --------------------------------------------------

    def _pin_worker(self, pid: Optional[int], index: int) -> Optional[int]:
        """Pin worker ``index`` (process ``pid``) to one CPU; returns the CPU.

        Slot ``i`` gets the ``i mod len(cpus)``-th CPU of the parent's own
        affinity set, so pinning composes with an outer cpuset/container
        limit.  Returns ``None`` (after warning once) when pinning is off,
        unsupported on this platform, or rejected by the kernel.
        """
        if not self.pin_workers or pid is None:
            return None
        if not hasattr(os, "sched_setaffinity"):  # pragma: no cover - non-Linux
            if not self._pin_warned:
                self._pin_warned = True
                warnings.warn(
                    "worker pinning requested but this platform has no "
                    "os.sched_setaffinity; workers run unpinned",
                    RuntimeWarning,
                    stacklevel=3,
                )
            return None
        try:
            cpus = sorted(os.sched_getaffinity(0))
            cpu = cpus[index % len(cpus)]
            os.sched_setaffinity(pid, {cpu})
            return cpu
        except OSError as exc:  # pragma: no cover - kernel policy dependent
            if not self._pin_warned:
                self._pin_warned = True
                warnings.warn(
                    f"worker pinning failed ({exc}); workers run unpinned",
                    RuntimeWarning,
                    stacklevel=3,
                )
            return None

    # -- registration ---------------------------------------------------------

    def register(
        self,
        name: str,
        kg: KnowledgeGraph,
        warm: bool = True,
        mmap_dir: Optional[str] = None,
    ) -> List[int]:
        """Pin ``kg`` to its shard(s) and ship it to each owning worker.

        Idempotent for the same ``(name, kg)`` pair (re-registration is a
        no-op returning the existing placement); a different graph under a
        registered name is an error.  Returns the worker indices serving
        the graph, home shard first.

        With ``mmap_dir`` the registration payload carries only that *path*
        — never a pickled graph — and each owning worker memory-maps the
        saved artifact store (``repro/kg/store.py``) instead of rebuilding
        artifacts locally.  ``kg`` is still recorded parent-side (for
        metrics identity and conflict checks) and should be the
        ``open_artifacts(mmap_dir).kg`` of the same store.
        """
        with self._registry_lock:
            existing = self._graphs.get(name)
            if existing is not None:
                if existing.kg is not kg:
                    raise ValueError(
                        f"graph {name!r} is already registered with a different graph"
                    )
                return list(existing.shards)
            shards = replica_shards(name, self.num_workers, self.replicas)
            record = _PoolGraph(name, kg, warm, shards, mmap_dir=mmap_dir)
            self._graphs[name] = record
        # Ship outside the registry lock: pickling a large graph must not
        # block routing of other graphs' requests.
        futures = [
            self._workers[shard].request("register", self._registration_payload(record))
            for shard in shards
        ]
        for future in futures:
            future.result()
        return list(shards)

    def _registration_payload(self, record: _PoolGraph) -> dict:
        payload = {
            "name": record.name,
            "warm": record.warm,
            "warm_kinds": ("csr",),
            "compression": self.compression,
            # Checkpoint paths ride the registration record, so a respawned
            # worker replays them and serves /predict like the original.
            "checkpoints": list(record.checkpoints),
        }
        if record.mmap_dir is not None:
            # Ship the artifact-store path, not the graph: respawn replays
            # re-map the same file, so recovery is as cheap as startup.
            payload["mmap_dir"] = record.mmap_dir
        else:
            payload["kg"] = record.kg
        return payload

    def register_checkpoint(self, name: str, path: str) -> List[int]:
        """Ship the checkpoint at ``path`` to every worker serving ``name``.

        Only the *path* crosses the pipe; owning workers register it in
        their own :class:`~repro.serve.registry.ModelRegistry` and load
        the parameters lazily.  The path also joins the graph's
        registration record, so respawned workers replay it.  Idempotent
        per path.  Returns the owning worker indices.
        """
        with self._registry_lock:
            record = self._graphs.get(name)
            if record is None:
                raise KeyError(f"graph {name!r} is not registered with the pool")
            if path not in record.checkpoints:
                record.checkpoints.append(path)
            shards = list(record.shards)
            payload = self._registration_payload(record)
        # Re-registration is a no-op for the graph itself; workers only
        # fold in the (idempotent) checkpoint list.
        futures = [self._workers[shard].request("register", payload) for shard in shards]
        for future in futures:
            future.result()
        return shards

    def _registrations_for(self, index: int) -> List[dict]:
        with self._registry_lock:
            return [
                self._registration_payload(record)
                for record in self._graphs.values()
                if index in record.shards
            ]

    def _deltas_for(self, index: int) -> List[dict]:
        """Ingest replay payloads for worker ``index``, arrival order."""
        with self._registry_lock:
            return [
                {"graph": record.name, "triples": triples, "compact": compact}
                for record in self._graphs.values()
                if index in record.shards
                for triples, compact in record.deltas
            ]

    def ingest(self, name: str, triples, compact: bool) -> None:
        """Ship one ingest delta to every worker serving ``name`` (blocking).

        The *parent* decides whether this delta compacts (``compact``) and
        ships the decision, so every process's epoch chain stays in
        lockstep — epoch N means the same merged graph everywhere.  The
        delta joins the graph's registration record for respawn replay.
        Called by the service **before** it applies the delta to its own
        :class:`~repro.kg.epoch.LiveGraph`: once this returns, any worker
        can serve the new epoch.
        """
        with self._registry_lock:
            record = self._graphs.get(name)
            if record is None:
                raise KeyError(f"graph {name!r} is not registered with the pool")
            record.deltas.append((triples, bool(compact)))
            shards = list(record.shards)
        payload = {"graph": name, "triples": triples, "compact": bool(compact)}
        futures = [self._workers[shard].request("triples", payload) for shard in shards]
        for future in futures:
            future.result()

    def shards_of(self, name: str) -> List[int]:
        """The worker indices currently serving graph ``name``."""
        with self._registry_lock:
            record = self._graphs.get(name)
            if record is None:
                raise KeyError(f"graph {name!r} is not registered with the pool")
            return list(record.shards)

    # -- requests -------------------------------------------------------------

    def _route(self, graph: str) -> _WorkerHandle:
        with self._registry_lock:
            record = self._graphs.get(graph)
            if record is None:
                raise KeyError(f"graph {graph!r} is not registered with the pool")
            shards = record.shards
            turn = next(record.rr)
        return self._workers[shards[turn % len(shards)]]

    def call(self, op: str, payload: dict, timeout: Optional[float] = None) -> Any:
        """Route one op to the owning worker and block for its result.

        Runs on a plain thread (the service drives it via
        ``asyncio.to_thread``); raises what the worker raised for client
        errors, :class:`WorkerCrashed` if the worker died mid-request.
        """
        if self._closed:
            raise WorkerCrashed("worker pool is closed")
        handle = self._route(payload["graph"])
        return handle.request(op, payload).result(timeout=timeout)

    def ping(self, index: int, timeout: Optional[float] = 30.0) -> str:
        """Liveness probe of one worker slot (used by tests and smoke checks)."""
        return self._workers[index].request("ping", {}).result(timeout=timeout)

    # -- observability --------------------------------------------------------

    #: Monotonic counters carried over from dead worker incarnations.
    #: ``nbytes`` is deliberately absent: it is a resident-memory gauge,
    #: and a dead process's memory is gone.
    _ARTIFACT_COUNTERS = ("hits", "builds")
    _ENDPOINT_COUNTERS = ("requests", "rows_returned", "bytes_raw", "bytes_shipped")

    def _record_graph_stats(self, worker_index: int, stats: dict) -> None:
        # Piggybacked on every graph-touching response; eventually
        # consistent (latest snapshot per (graph, worker)), aggregated
        # across owning workers — and this slot's dead incarnations — at
        # read time.
        stats = dict(stats)
        name = stats.pop("graph", None)
        if name is not None:
            with self._stats_lock:
                self._graph_stats[(name, worker_index)] = stats

    def _retire_worker_stats(self, worker_index: int) -> None:
        """Fold a dead incarnation's counters into the slot's retired base."""
        with self._stats_lock:
            for key in [k for k in self._graph_stats if k[1] == worker_index]:
                snapshot = self._graph_stats.pop(key)
                base = self._retired_stats.setdefault(
                    key,
                    {
                        "artifact_cache": dict.fromkeys(self._ARTIFACT_COUNTERS, 0),
                        "endpoint": dict.fromkeys(self._ENDPOINT_COUNTERS, 0),
                    },
                )
                for counter in self._ARTIFACT_COUNTERS:
                    base["artifact_cache"][counter] += snapshot["artifact_cache"][counter]
                for counter in self._ENDPOINT_COUNTERS:
                    base["endpoint"][counter] += snapshot["endpoint"][counter]

    def graph_stats(self, name: str) -> Optional[dict]:
        """Worker-side artifact/endpoint stats of ``name``, summed over owners.

        ``None`` until the first graph-touching response arrived.  Counters
        sum each owning worker's latest piggybacked snapshot plus the
        retired counters of that slot's dead incarnations (so respawns
        never step a counter backwards); ``nbytes`` sums live snapshots
        only — it is a gauge.  ``mapped_nbytes`` is the **max** (not sum)
        across live workers: memory-mapped artifact pages are physically
        shared by every worker mapping the same file, so summing would
        count the same pages once per worker.  With replication every
        worker builds its own artifacts, so ``builds`` counts per-worker
        construction, as documented in ``docs/serving.md``.
        """
        with self._stats_lock:
            live = [
                value
                for (stats_name, _worker), value in self._graph_stats.items()
                if stats_name == name
            ]
            retired = [
                value
                for (stats_name, _worker), value in self._retired_stats.items()
                if stats_name == name
            ]
        if not live and not retired:
            return None
        merged = {
            "artifact_cache": {
                key: sum(s["artifact_cache"][key] for s in live + retired)
                for key in self._ARTIFACT_COUNTERS
            },
            "endpoint": {
                key: sum(s["endpoint"][key] for s in live + retired)
                for key in self._ENDPOINT_COUNTERS
            },
        }
        merged["artifact_cache"]["nbytes"] = sum(
            s["artifact_cache"]["nbytes"] for s in live
        )
        merged["artifact_cache"]["mapped_nbytes"] = max(
            (s["artifact_cache"].get("mapped_nbytes", 0) for s in live), default=0
        )
        # bytes_raw stays in the dict: the service folds parent-side page
        # accounting (streamed /sparql pages are cut parent-side) into these
        # counters before recomputing the ratio over the merged totals.
        raw = merged["endpoint"]["bytes_raw"]
        shipped = merged["endpoint"]["bytes_shipped"]
        merged["endpoint"]["compression_ratio"] = (raw / shipped) if shipped else 1.0
        return merged

    def worker_pids(self) -> List[Optional[int]]:
        """Current PID per worker slot (None while a slot is respawning)."""
        return [
            handle.process.pid if handle.process is not None else None
            for handle in self._workers
        ]

    def describe(self) -> dict:
        """Pool configuration + health as one JSON-serializable dict."""
        with self._registry_lock:
            graphs = {name: list(record.shards) for name, record in self._graphs.items()}
        return {
            "workers": self.num_workers,
            "replicas": self.replicas,
            "start_method": self.start_method,
            "alive": [
                handle.process is not None
                and handle.process.is_alive()
                and handle.ready.is_set()
                for handle in self._workers
            ],
            "respawns": sum(handle.respawns for handle in self._workers),
            # Per-slot reason when a respawn itself failed (None = healthy);
            # a persistently dead slot is diagnosable from /metrics alone.
            "spawn_failures": [handle.spawn_failure for handle in self._workers],
            # CPU each slot is pinned to (all None unless pin_workers and
            # the platform supports affinity).
            "pinned": [handle.cpu for handle in self._workers],
            "graphs": graphs,
        }

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Shut every worker down (idempotent)."""
        self._closed = True
        for handle in self._workers:
            handle.close()
