"""Lifecycle layer: a sharded worker pool orchestrated over transports.

One Python interpreter caps extraction throughput no matter how many
cores the box has: the in-process :class:`ExtractionService` runs every
batch kernel on ``asyncio.to_thread``, and the GIL serializes the
Python-level parts of those kernels.  :class:`WorkerPool` removes that
bottleneck the way DGL-KE partitions KG state across processes: each
**worker owns a shard of the artifact cache** — CSR projections,
hexastore orderings and walk engines are built exactly once per owning
worker and never cross a process boundary — and the parent ships only
request parameters out and numpy result buffers back.

The pool is the top of a three-layer split:

* **Transport** (``serve/transport.py``) — *how* a request reaches a
  worker: a local ``multiprocessing`` child over a pipe, or a standalone
  ``repro serve-worker`` process over newline-delimited JSON/TCP
  (possibly on another machine).  Above the
  :class:`~repro.serve.transport.WorkerTransport` interface the pool
  cannot tell the two apart, so crash handling, replay and bit-exactness
  hold identically for both.
* **Placement** (``serve/placement.py``) — *which* workers serve which
  graph: the deterministic blake2b shard map
  (:class:`~repro.serve.placement.HashPlacement`, the default) or
  least-loaded assignment over observed queue-depth EWMA and reported
  worker memory (:class:`~repro.serve.placement.LoadAwarePlacement`).
* **Lifecycle/elasticity** (this module) — *when* workers exist: spawn,
  crash → structured :class:`WorkerCrashed` → respawn/reconnect with
  registration-and-delta replay, graceful shard handoff when placement
  changes (register new owners first, then flip routing, then drain),
  and an elastic controller that grows/shrinks the local worker count
  between ``workers_min``/``workers_max`` driven by queue depth and
  Retry-After pressure.

Contracts (unchanged by the refactor):

* **Deterministic placement by default** — :func:`shard_for` is a stable
  hash of the graph *name*; the same graph always lands on the same home
  shard, and a graph is served by ``replicas`` consecutive workers
  starting there (default: all workers).  Batches round-robin over the
  owner set.
* **Ship parameters, not state** — registration ships a pickled graph
  once per owner, or (``mmap_dir``) just a *path* each owner maps
  zero-copy; every later message is request parameters or result
  buffers.  Remote workers accept only the path form.
* **Bit-exactness** — workers run the same batch kernels against their
  own :func:`~repro.kg.cache.artifacts_for` cache, and the remote JSON
  codec round-trips every answer losslessly, so which process — or
  machine — runs a batch can never change an answer
  (``tests/serve/test_pool.py`` and ``tests/serve/test_transport.py``
  assert pooled == in-process across both transports).
* **Crash containment** — a dead worker fails only its in-flight
  requests, each with a structured :class:`WorkerCrashed`; the pool
  respawns (local) or reconnects (remote) the slot and replays its
  registrations and ingest deltas, so the recovered worker reaches the
  same epoch as the workers that never died.

The pool is synchronous and thread-safe; :class:`ExtractionService`
drives it from ``asyncio.to_thread`` exactly like the in-process
kernels.  See ``docs/serving.md`` for the operator surface.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import threading
import time
import warnings
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.kg.graph import KnowledgeGraph
from repro.serve.placement import (
    HashPlacement,
    PlacementPolicy,
    WorkerLoad,
    replica_shards,
    shard_for,
)
from repro.serve.transport import (
    SHUTDOWN_GRACE_SECONDS,
    LocalProcessTransport,
    RemoteTcpTransport,
    WorkerCrashed,
    WorkerError,
    WorkerTransport,
)

__all__ = [
    "WorkerCrashed",
    "WorkerError",
    "WorkerPool",
    "replica_shards",
    "shard_for",
]

#: Seconds a request waits for a crashed worker slot to finish
#: respawning/reconnecting before giving up with :class:`WorkerCrashed`.
RESPAWN_WAIT_SECONDS = 60.0

#: Seconds between elastic scale decisions (prevents grow/shrink flapping).
ELASTIC_COOLDOWN_SECONDS = 2.0

#: Mean queue-depth EWMA above which the elastic controller grows the pool.
ELASTIC_SCALE_UP_DEPTH = 1.5

#: Mean queue-depth EWMA below which it considers shrinking.
ELASTIC_SCALE_DOWN_DEPTH = 0.1

#: Retry-After pressure EWMA (seconds) above which it grows regardless of
#: queue depth — admission is already turning clients away.
ELASTIC_SCALE_UP_PRESSURE = 0.25

#: Smoothing factor of the per-slot queue-depth EWMA (sampled at dispatch).
_DEPTH_EWMA_ALPHA = 0.2

#: Seconds a retiring slot gets to finish its in-flight requests.
DRAIN_TIMEOUT_SECONDS = 30.0


class _WorkerSlot:
    """One worker slot: a stable index bound to successive transports.

    The slot owns lifecycle (ready gating, respawn/reconnect, replay,
    retirement); the transport owns the wire.  Each incarnation is a
    *new* transport object, so "is this disconnect stale?" is an
    identity check (``reporting transport is self.transport``), never a
    state machine.  Slot indices are stable for the life of the pool —
    scale-down retires a slot in place instead of compacting the list,
    so recorded placements and piggybacked stats never need reindexing.
    """

    def __init__(
        self,
        pool: "WorkerPool",
        index: int,
        kind: str = "local",
        address: Optional[str] = None,
    ):
        self.pool = pool
        self.index = index
        self.kind = kind
        self.address = address
        self.lock = threading.Lock()
        self.spawn_lock = threading.Lock()
        self.ready = threading.Event()  # cleared while (re)spawning
        self.transport: Optional[WorkerTransport] = None
        self.respawns = 0
        self.spawn_failure: Optional[str] = None
        self.closed = False
        self.retired = False
        # Scale-down grace state: a draining slot is excluded from new
        # placements but still answers requests until routing has flipped
        # away from it and its in-flight work finished.
        self.draining = False
        self.cpu: Optional[int] = None  # CPU this slot is pinned to (None = unpinned)
        self.depth_ewma = 0.0  # queue depth sampled at dispatch, smoothed

    # -- lifecycle --

    def _make_transport(self) -> WorkerTransport:
        if self.kind == "remote":
            return RemoteTcpTransport(
                self.address,
                self.index,
                self.pool._record_graph_stats,
                self._on_disconnect,
            )
        return LocalProcessTransport(
            self.pool._ctx,
            self.index,
            self.pool._record_graph_stats,
            self._on_disconnect,
        )

    def spawn(self) -> None:
        """Start (or restart) this slot's worker behind a fresh transport."""
        transport = self._make_transport()
        with self.lock:
            self.transport = transport
        transport.start()
        self.cpu = self.pool._pin_worker(transport.pid(), self.index)
        # Replay this shard's registrations before accepting requests, so
        # a respawned/reconnected worker is indistinguishable from the
        # original ...
        for registration in self.pool._registrations_for(self.index):
            transport.request("register", registration).result()
        # ... then the ingest deltas, in order, so it reconstructs the
        # same epoch chain as the workers that never died.
        for delta in self.pool._deltas_for(self.index):
            transport.request("triples", delta).result()
        self.spawn_failure = None
        self.ready.set()

    def _on_disconnect(self, transport: WorkerTransport) -> None:
        """The worker behind ``transport`` is gone: maybe respawn.

        The transport has already failed its own in-flight requests with
        :class:`WorkerCrashed` before notifying us.
        """
        with self.lock:
            if transport is not self.transport:
                return  # a newer incarnation already took over
            if self.closed or self.retired or self.pool._closed:
                return  # deliberate teardown, not a crash
            self.ready.clear()
        # The dead incarnation's cumulative counters must survive the
        # respawn (the fresh worker restarts its own from zero).
        self.pool._retire_worker_stats(self.index)
        self.respawns += 1
        try:
            self.spawn()
        except Exception as exc:  # pragma: no cover - spawn itself failed
            # Leave the slot not-ready; requests retry the spawn (remote
            # workers may simply not be back yet) and surface this reason
            # via WorkerCrashed; describe() exposes it per slot.
            self.spawn_failure = f"{type(exc).__name__}: {exc}"

    def _respawn_now(self) -> None:
        """Reconnect-on-demand: retry a failed spawn from a request path.

        A remote worker that was down when the disconnect-path respawn
        ran may be back by the time the next request routes here; local
        slots get the same second chance after a failed fork.
        """
        with self.spawn_lock:
            self._respawn_attempt()

    def _respawn_attempt(self) -> None:
        """One spawn retry; the caller holds ``spawn_lock``."""
        if (
            self.ready.is_set()
            or self.spawn_failure is None
            or self.closed
            or self.retired
            or self.pool._closed
        ):
            return
        try:
            self.spawn()
        except Exception as exc:
            self.spawn_failure = f"{type(exc).__name__}: {exc}"

    def kick_respawn(self) -> None:
        """Retry a failed spawn in the background.

        Routing calls this for owners it skipped as not-ready: the live
        replicas keep answering while the dead slot's reconnect runs off
        the request path, so a remote worker that comes back rejoins
        without any request paying its connect timeout.  At most one
        attempt runs at a time; the lock is handed to the attempt thread
        and released there.
        """
        if self.spawn_failure is None or self.ready.is_set():
            return
        if not self.spawn_lock.acquire(blocking=False):
            return  # an attempt is already in flight

        def attempt() -> None:
            try:
                self._respawn_attempt()
            finally:
                self.spawn_lock.release()

        thread = threading.Thread(
            target=attempt, daemon=True, name=f"pool-revive-{self.index}"
        )
        try:
            thread.start()
        except BaseException:
            self.spawn_lock.release()
            raise

    # -- requests --

    def request(self, op: str, payload: dict):
        """Send one request; the returned future resolves off-thread."""
        deadline = time.monotonic() + RESPAWN_WAIT_SECONDS
        while not self.ready.is_set():
            if self.closed or self.pool._closed:
                raise WorkerCrashed(f"pool worker {self.index} is shut down")
            if self.retired:
                raise WorkerCrashed(f"pool worker {self.index} is retired")
            if self.spawn_failure is not None:
                self._respawn_now()
                if self.ready.is_set():
                    break
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                reason = f": {self.spawn_failure}" if self.spawn_failure else ""
                raise WorkerCrashed(
                    f"pool worker {self.index} is not available "
                    f"(respawn pending{reason})"
                )
            self.ready.wait(timeout=min(0.5, remaining))
        with self.lock:
            if self.closed:
                raise WorkerCrashed(f"pool worker {self.index} is shut down")
            transport = self.transport
        return transport.request(op, payload)

    def inflight_depth(self) -> int:
        transport = self.transport
        return transport.inflight_depth() if transport is not None else 0

    def alive(self) -> bool:
        transport = self.transport
        return (
            not self.retired
            and not self.closed
            and transport is not None
            and transport.alive()
            and self.ready.is_set()
        )

    def pid(self) -> Optional[int]:
        transport = self.transport
        return transport.pid() if transport is not None else None

    # -- teardown --

    def drain(self, timeout: float = DRAIN_TIMEOUT_SECONDS) -> None:
        """Wait for this slot's in-flight requests to finish."""
        deadline = time.monotonic() + timeout
        while self.inflight_depth() > 0 and time.monotonic() < deadline:
            time.sleep(0.005)

    def retire(self) -> None:
        """Take this slot out of service gracefully (scale-down path).

        Routing must already have been flipped away from this slot; we
        drain what is still in flight, then tear the transport down.  The
        slot object stays in place (indices are stable) and can be
        re-activated by a later scale-up via :meth:`spawn`.
        """
        with self.lock:
            self.retired = True
            self.ready.clear()
            transport = self.transport
        self.drain()
        if transport is not None:
            transport.close()
        self.pool._retire_worker_stats(self.index)
        self.depth_ewma = 0.0
        self.cpu = None

    def close(self) -> None:
        with self.lock:
            self.closed = True
            transport = self.transport
        self.ready.set()  # unblock waiters; they see closed and raise
        if transport is not None:
            transport.close()


class _PoolGraph:
    """Parent-side registration record (replayed on worker respawn)."""

    __slots__ = (
        "name", "kg", "warm", "shards", "rr", "mmap_dir", "checkpoints", "deltas",
    )

    def __init__(
        self,
        name: str,
        kg: KnowledgeGraph,
        warm: bool,
        shards: List[int],
        mmap_dir: Optional[str] = None,
    ):
        self.name = name
        self.kg = kg
        self.warm = warm
        self.shards = shards
        self.mmap_dir = mmap_dir
        self.checkpoints: List[str] = []
        # Ingested (triples, compact) deltas in arrival order; a respawned
        # worker replays them after its registrations, so it reconstructs
        # the same epoch chain as the surviving workers.
        self.deltas: List[Tuple[Any, bool]] = []
        self.rr = itertools.count()


class WorkerPool:
    """Worker slots (local and remote), each owning a shard of graphs.

    Parameters
    ----------
    workers:
        Number of **local** worker processes.  Throughput scales with
        workers up to the machine's core count; see ``docs/serving.md``.
        May be ``0`` when ``remote_workers`` is non-empty (a pure
        distributed parent that runs no kernels itself).
    replicas:
        How many workers serve each graph (``None``: all of them — the
        per-graph worker pool regime; ``1``: pure sharding, each graph
        lives on exactly its home shard).
    start_method:
        ``multiprocessing`` start method for local workers.  Default
        ``"forkserver"`` where available (workers fork from a clean,
        thread-free server process, so respawning during live traffic is
        safe), else ``"spawn"``.
    compression:
        Passed to each worker-side :class:`SparqlEndpoint`.
    pin_workers:
        Pin each local worker process to one CPU of the parent's affinity
        set (slot ``i`` → cpu ``i mod len(cpus)``).  No-op with a
        ``RuntimeWarning`` on platforms without affinity support; remote
        slots are never pinned (their machine is not ours to schedule).
    remote_workers:
        ``HOST:PORT`` addresses of standalone ``repro serve-worker``
        processes.  Remote slots sit after the local slots in index
        order, answer the same ops over JSON/TCP bit-exactly, and are
        reconnected (never respawned) on failure — a remote worker owns
        its own lifecycle.
    placement:
        A :class:`~repro.serve.placement.PlacementPolicy`; default
        :class:`~repro.serve.placement.HashPlacement` with ``replicas``,
        which reproduces the classic deterministic shard map.
    workers_min / workers_max:
        Enable the elastic controller: the pool grows/shrinks its
        **local** worker count within this range, driven by the
        queue-depth EWMA sampled at dispatch and by Retry-After pressure
        reported via :meth:`note_pressure`.  Resizes re-run placement
        and hand shards over gracefully (new owners register and replay
        *before* routing flips; leaving owners drain before teardown).

    The pool is a context manager; :meth:`close` terminates the workers.
    """

    def __init__(
        self,
        workers: int = 2,
        replicas: Optional[int] = None,
        start_method: Optional[str] = None,
        compression: bool = True,
        pin_workers: bool = False,
        remote_workers: Optional[Sequence[str]] = None,
        placement: Optional[PlacementPolicy] = None,
        workers_min: Optional[int] = None,
        workers_max: Optional[int] = None,
    ):
        remote_workers = list(remote_workers or ())
        if workers < 1 and not remote_workers:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        total = workers + len(remote_workers)
        if replicas is not None:
            # Normalize up front so the banner, describe()/metrics and the
            # actual placement can never disagree about the replica count.
            replicas = min(max(replicas, 1), total)
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "forkserver" if "forkserver" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        if start_method == "forkserver":
            # Pre-import the heavy stack once in the fork server so every
            # worker (and every respawn) forks warm instead of re-importing
            # numpy/scipy/repro.
            self._ctx.set_forkserver_preload(["repro.serve.transport"])
        self.start_method = start_method
        self.num_workers = total
        self.replicas = replicas
        self.compression = compression
        self.pin_workers = pin_workers
        self._placement = placement if placement is not None else HashPlacement(replicas)
        if self._placement.replicas is None:
            self._placement.replicas = replicas
        # Elastic range over *local* slots only; remote workers are not
        # ours to start or stop.
        self._elastic = workers_min is not None or workers_max is not None
        self._workers_min = workers_min if workers_min is not None else max(workers, 1)
        self._workers_max = workers_max if workers_max is not None else max(workers, 1)
        if self._elastic:
            if not (1 <= self._workers_min <= self._workers_max):
                raise ValueError(
                    f"need 1 <= workers_min <= workers_max, got "
                    f"{self._workers_min}..{self._workers_max}"
                )
            if not (self._workers_min <= max(workers, 1) <= self._workers_max):
                raise ValueError(
                    f"workers={workers} must lie within "
                    f"workers_min..workers_max ({self._workers_min}.."
                    f"{self._workers_max})"
                )
        self._pin_warned = False
        self._closed = False
        self._registry_lock = threading.Lock()
        # Serializes ingest shipping against shard handoffs, so a delta can
        # never miss a worker that is being promoted to owner concurrently.
        self._handoff_lock = threading.Lock()
        self._resize_lock = threading.RLock()
        self._graphs: Dict[str, _PoolGraph] = {}
        self._stats_lock = threading.Lock()
        # Latest live piggybacked snapshot per (graph, worker slot) ...
        self._graph_stats: Dict[Tuple[str, int], dict] = {}
        # ... plus cumulative counters inherited from dead incarnations of
        # each slot, so a respawn never makes /metrics counters step back.
        self._retired_stats: Dict[Tuple[str, int], dict] = {}
        self._pressure_ewma = 0.0
        self._last_elastic = time.monotonic()
        self._resizes = 0
        self._elastic_error: Optional[str] = None
        self._workers: List[_WorkerSlot] = [
            _WorkerSlot(self, index) for index in range(workers)
        ]
        for address in remote_workers:
            self._workers.append(
                _WorkerSlot(self, len(self._workers), kind="remote", address=address)
            )
        for slot in self._workers:
            slot.spawn()

    # -- context manager --

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- worker CPU affinity --------------------------------------------------

    def _pin_worker(self, pid: Optional[int], index: int) -> Optional[int]:
        """Pin worker ``index`` (process ``pid``) to one CPU; returns the CPU.

        Slot ``i`` gets the ``i mod len(cpus)``-th CPU of the parent's own
        affinity set, so pinning composes with an outer cpuset/container
        limit.  Returns ``None`` (after warning once) when pinning is off,
        unsupported on this platform, or rejected by the kernel — and for
        remote workers, whose ``pid`` is not on this machine.
        """
        if not self.pin_workers or pid is None:
            return None
        if not hasattr(os, "sched_setaffinity"):  # pragma: no cover - non-Linux
            if not self._pin_warned:
                self._pin_warned = True
                warnings.warn(
                    "worker pinning requested but this platform has no "
                    "os.sched_setaffinity; workers run unpinned",
                    RuntimeWarning,
                    stacklevel=3,
                )
            return None
        try:
            cpus = sorted(os.sched_getaffinity(0))
            cpu = cpus[index % len(cpus)]
            os.sched_setaffinity(pid, {cpu})
            return cpu
        except OSError as exc:  # pragma: no cover - kernel policy dependent
            if not self._pin_warned:
                self._pin_warned = True
                warnings.warn(
                    f"worker pinning failed ({exc}); workers run unpinned",
                    RuntimeWarning,
                    stacklevel=3,
                )
            return None

    # -- placement inputs -----------------------------------------------------

    def _active_indices(self) -> List[int]:
        return [
            slot.index
            for slot in self._workers
            if not slot.retired and not slot.closed and not slot.draining
        ]

    def _loads(self) -> Dict[int, WorkerLoad]:
        """Per-slot load observations for the placement policy."""
        heap: Dict[int, int] = {}
        mapped: Dict[int, int] = {}
        with self._stats_lock:
            for (_name, worker), snapshot in self._graph_stats.items():
                cache = snapshot["artifact_cache"]
                heap[worker] = heap.get(worker, 0) + cache.get("nbytes", 0)
                mapped[worker] = max(
                    mapped.get(worker, 0), cache.get("mapped_nbytes", 0)
                )
        return {
            slot.index: WorkerLoad(
                queue_depth_ewma=slot.depth_ewma,
                heap_nbytes=heap.get(slot.index, 0),
                mapped_nbytes=mapped.get(slot.index, 0),
            )
            for slot in self._workers
        }

    # -- registration ---------------------------------------------------------

    def register(
        self,
        name: str,
        kg: KnowledgeGraph,
        warm: bool = True,
        mmap_dir: Optional[str] = None,
    ) -> List[int]:
        """Place ``kg`` on its shard(s) and ship it to each owning worker.

        Idempotent for the same ``(name, kg)`` pair (re-registration is a
        no-op returning the existing placement); a different graph under a
        registered name is an error.  Returns the worker indices serving
        the graph, primary first.

        With ``mmap_dir`` the registration payload carries only that *path*
        — never a pickled graph — and each owning worker memory-maps the
        saved artifact store (``repro/kg/store.py``) instead of rebuilding
        artifacts locally.  ``kg`` is still recorded parent-side (for
        metrics identity and conflict checks) and should be the
        ``open_artifacts(mmap_dir).kg`` of the same store.  Remote workers
        accept **only** this form: the path must resolve on their own
        filesystem, and a pickled graph never crosses the network.
        """
        with self._registry_lock:
            existing = self._graphs.get(name)
            if existing is not None:
                if existing.kg is not kg:
                    raise ValueError(
                        f"graph {name!r} is already registered with a different graph"
                    )
                return list(existing.shards)
            shards = self._placement.place(name, self._active_indices(), self._loads())
            record = _PoolGraph(name, kg, warm, shards, mmap_dir=mmap_dir)
            self._graphs[name] = record
        # Ship outside the registry lock: pickling a large graph must not
        # block routing of other graphs' requests.
        futures = [
            self._workers[shard].request("register", self._registration_payload(record))
            for shard in shards
        ]
        for future in futures:
            future.result()
        return list(shards)

    def _registration_payload(self, record: _PoolGraph) -> dict:
        payload = {
            "name": record.name,
            "warm": record.warm,
            "warm_kinds": ("csr",),
            "compression": self.compression,
            # Checkpoint paths ride the registration record, so a respawned
            # worker replays them and serves /predict like the original.
            "checkpoints": list(record.checkpoints),
        }
        if record.mmap_dir is not None:
            # Ship the artifact-store path, not the graph: respawn replays
            # re-map the same file, so recovery is as cheap as startup.
            payload["mmap_dir"] = record.mmap_dir
        else:
            payload["kg"] = record.kg
        return payload

    def register_checkpoint(self, name: str, path: str) -> List[int]:
        """Ship the checkpoint at ``path`` to every worker serving ``name``.

        Only the *path* crosses the wire; owning workers register it in
        their own :class:`~repro.serve.registry.ModelRegistry` and load
        the parameters lazily.  The path also joins the graph's
        registration record, so respawned workers replay it.  Idempotent
        per path.  Returns the owning worker indices.
        """
        with self._registry_lock:
            record = self._graphs.get(name)
            if record is None:
                raise KeyError(f"graph {name!r} is not registered with the pool")
            if path not in record.checkpoints:
                record.checkpoints.append(path)
            shards = list(record.shards)
            payload = self._registration_payload(record)
        # Re-registration is a no-op for the graph itself; workers only
        # fold in the (idempotent) checkpoint list.
        futures = [self._workers[shard].request("register", payload) for shard in shards]
        for future in futures:
            future.result()
        return shards

    def _registrations_for(self, index: int) -> List[dict]:
        with self._registry_lock:
            return [
                self._registration_payload(record)
                for record in self._graphs.values()
                if index in record.shards
            ]

    def _deltas_for(self, index: int) -> List[dict]:
        """Ingest replay payloads for worker ``index``, arrival order."""
        with self._registry_lock:
            return [
                {"graph": record.name, "triples": triples, "compact": compact}
                for record in self._graphs.values()
                if index in record.shards
                for triples, compact in record.deltas
            ]

    def ingest(self, name: str, triples, compact: bool) -> None:
        """Ship one ingest delta to every worker serving ``name`` (blocking).

        The *parent* decides whether this delta compacts (``compact``) and
        ships the decision, so every process's epoch chain stays in
        lockstep — epoch N means the same merged graph everywhere.  The
        delta joins the graph's registration record for respawn replay.
        Called by the service **before** it applies the delta to its own
        :class:`~repro.kg.epoch.LiveGraph`: once this returns, any worker
        can serve the new epoch.  The handoff lock excludes concurrent
        placement changes, so a worker being promoted to owner can never
        miss a delta.
        """
        with self._handoff_lock:
            with self._registry_lock:
                record = self._graphs.get(name)
                if record is None:
                    raise KeyError(f"graph {name!r} is not registered with the pool")
                record.deltas.append((triples, bool(compact)))
                shards = list(record.shards)
            payload = {"graph": name, "triples": triples, "compact": bool(compact)}
            futures = [
                self._workers[shard].request("triples", payload) for shard in shards
            ]
            for future in futures:
                future.result()

    def shards_of(self, name: str) -> List[int]:
        """The worker indices currently serving graph ``name``."""
        with self._registry_lock:
            record = self._graphs.get(name)
            if record is None:
                raise KeyError(f"graph {name!r} is not registered with the pool")
            return list(record.shards)

    # -- requests -------------------------------------------------------------

    def _route(self, graph: str) -> _WorkerSlot:
        with self._registry_lock:
            record = self._graphs.get(graph)
            if record is None:
                raise KeyError(f"graph {graph!r} is not registered with the pool")
            shards = record.shards
            turn = next(record.rr)
        # Round-robin over the owners, but skip slots that are not ready:
        # a crashed remote worker reconnects in the background
        # (kick_respawn) without stalling requests that a live replica can
        # answer (any owner answers bit-identically).  With no ready
        # owner, fall back to the scheduled slot and let request() wait
        # for its respawn.
        ordered = [self._workers[shards[(turn + i) % len(shards)]] for i in range(len(shards))]
        for slot in ordered:
            if slot.ready.is_set() and not slot.retired:
                return slot
            slot.kick_respawn()
        return ordered[0]

    def call(self, op: str, payload: dict, timeout: Optional[float] = None) -> Any:
        """Route one op to an owning worker and block for its result.

        Runs on a plain thread (the service drives it via
        ``asyncio.to_thread``); raises what the worker raised for client
        errors, :class:`WorkerCrashed` if the worker died mid-request.
        Dispatch also samples the routed slot's queue depth into its
        EWMA — the load signal placement and elasticity act on.

        A request that routed to a slot just as a scale-down retired it
        re-routes instead of failing: retirement is deliberate and the
        shard map has already flipped to the surviving owners, so the
        retry cannot double-execute anything (crashes never retry).
        """
        while True:
            if self._closed:
                raise WorkerCrashed("worker pool is closed")
            slot = self._route(payload["graph"])
            depth = slot.inflight_depth()
            slot.depth_ewma += _DEPTH_EWMA_ALPHA * (depth - slot.depth_ewma)
            self._elastic_tick()
            try:
                return slot.request(op, payload).result(timeout=timeout)
            except WorkerCrashed:
                if not slot.retired or self._closed:
                    raise
                continue  # lost the race with a scale-down; re-route

    def ping(self, index: int, timeout: Optional[float] = 30.0) -> str:
        """Liveness probe of one worker slot (used by tests and smoke checks)."""
        return self._workers[index].request("ping", {}).result(timeout=timeout)

    # -- elasticity -----------------------------------------------------------

    def note_pressure(self, retry_after: float = 1.0) -> None:
        """Record one admission rejection (the Retry-After pressure signal).

        Called by the service whenever it turns a client away with
        :class:`~repro.serve.service.ServiceOverloaded`.  Sustained
        pressure grows the pool even while queue depths look moderate —
        rejected requests never reach a worker queue, so depth alone
        under-reports saturation.
        """
        self._pressure_ewma = 0.7 * self._pressure_ewma + 0.3 * float(retry_after)
        self._elastic_tick()

    def _elastic_tick(self) -> None:
        """Check-on-call controller: decide at most one resize per cooldown."""
        if not self._elastic or self._closed:
            return
        now = time.monotonic()
        elapsed = now - self._last_elastic
        if elapsed < ELASTIC_COOLDOWN_SECONDS:
            return
        self._last_elastic = now
        # Pressure decays between decisions, so one historic burst cannot
        # keep the pool scaled up forever.
        self._pressure_ewma *= 0.5 ** (elapsed / 10.0)
        local = [
            slot
            for slot in self._workers
            if slot.kind == "local" and not slot.retired and not slot.closed
        ]
        if not local:
            return
        mean_depth = sum(slot.depth_ewma for slot in local) / len(local)
        current = len(local)
        target = current
        if (
            mean_depth > ELASTIC_SCALE_UP_DEPTH
            or self._pressure_ewma > ELASTIC_SCALE_UP_PRESSURE
        ) and current < self._workers_max:
            target = current + 1
        elif (
            mean_depth < ELASTIC_SCALE_DOWN_DEPTH
            and self._pressure_ewma < ELASTIC_SCALE_UP_PRESSURE / 4
            and current > self._workers_min
        ):
            target = current - 1
        if target == current:
            return
        # Resize off the request path: spawning a worker and handing
        # shards over must not add latency to the call that tripped it.
        threading.Thread(
            target=self._resize_quietly,
            args=(target,),
            name="tosg-pool-elastic",
            daemon=True,
        ).start()

    def _resize_quietly(self, target: int) -> None:
        try:
            self.resize(target)
            self._elastic_error = None
        except Exception as exc:  # pragma: no cover - surfaced via describe()
            self._elastic_error = f"{type(exc).__name__}: {exc}"

    def resize(self, workers: int) -> dict:
        """Set the active **local** worker count (blocking); returns describe().

        Grow: retired slots are re-activated (or new slots appended),
        spawned, and only then does placement re-run — every graph whose
        owner set changed is registered (and delta-replayed) on its new
        owners **before** routing flips, so no request can reach a worker
        that has not finished registering.  Shrink: victims are marked
        retired, placement re-runs (flipping routing away from them),
        and each victim drains its in-flight requests before teardown.
        """
        if self._closed:
            raise WorkerCrashed("worker pool is closed")
        lo = self._workers_min if self._elastic else 1
        hi = self._workers_max if self._elastic else max(workers, 1)
        workers = min(max(workers, lo), hi)
        with self._resize_lock:
            local = [slot for slot in self._workers if slot.kind == "local"]
            active = [slot for slot in local if not slot.retired and not slot.closed]
            current = len(active)
            if workers > current:
                for _ in range(workers - current):
                    slot = next((s for s in local if s.retired), None)
                    if slot is not None:
                        slot.retired = False
                        slot.draining = False
                        slot.spawn_failure = None
                    else:
                        slot = _WorkerSlot(self, len(self._workers))
                        self._workers.append(slot)
                        local.append(slot)
                    try:
                        slot.spawn()
                    except Exception as exc:
                        slot.spawn_failure = f"{type(exc).__name__}: {exc}"
                self._rebalance()
            elif workers < current:
                victims = active[workers:]
                # Drain order matters: victims keep serving while placement
                # re-runs without them; only once routing has flipped do
                # they retire (drain in-flight work, close the transport).
                for victim in victims:
                    victim.draining = True
                self._rebalance()  # flips routing off the victims
                for victim in victims:
                    victim.retire()
                    victim.draining = False
            self.num_workers = len(self._active_indices())
            self._resizes += 1
            return self.describe()

    def _rebalance(self) -> None:
        """Re-run placement and hand shards over gracefully.

        Per graph: compute the new owner set; registrations (and the full
        delta chain) ship to *new* owners first, then routing flips under
        the registry lock.  Old owners simply stop receiving requests —
        their copy is reclaimed when their slot retires or respawns.
        """
        active = self._active_indices()
        if not active:
            return
        loads = self._loads()
        with self._registry_lock:
            records = list(self._graphs.values())
        for record in records:
            with self._handoff_lock:
                with self._registry_lock:
                    old_shards = list(record.shards)
                    payload = self._registration_payload(record)
                    deltas = [
                        {"graph": record.name, "triples": triples, "compact": compact}
                        for triples, compact in record.deltas
                    ]
                new_shards = self._placement.place(record.name, active, loads)
                for shard in new_shards:
                    if shard in old_shards:
                        continue
                    self._workers[shard].request("register", payload).result()
                    for delta in deltas:
                        self._workers[shard].request("triples", delta).result()
                with self._registry_lock:
                    record.shards = list(new_shards)

    # -- observability --------------------------------------------------------

    #: Monotonic counters carried over from dead worker incarnations.
    #: ``nbytes`` is deliberately absent: it is a resident-memory gauge,
    #: and a dead process's memory is gone.
    _ARTIFACT_COUNTERS = ("hits", "builds")
    _ENDPOINT_COUNTERS = ("requests", "rows_returned", "bytes_raw", "bytes_shipped")

    def _record_graph_stats(self, worker_index: int, stats: dict) -> None:
        # Piggybacked on every graph-touching response; eventually
        # consistent (latest snapshot per (graph, worker)), aggregated
        # across owning workers — and this slot's dead incarnations — at
        # read time.
        stats = dict(stats)
        name = stats.pop("graph", None)
        if name is not None:
            with self._stats_lock:
                self._graph_stats[(name, worker_index)] = stats

    def _retire_worker_stats(self, worker_index: int) -> None:
        """Fold a dead incarnation's counters into the slot's retired base."""
        with self._stats_lock:
            for key in [k for k in self._graph_stats if k[1] == worker_index]:
                snapshot = self._graph_stats.pop(key)
                base = self._retired_stats.setdefault(
                    key,
                    {
                        "artifact_cache": dict.fromkeys(self._ARTIFACT_COUNTERS, 0),
                        "endpoint": dict.fromkeys(self._ENDPOINT_COUNTERS, 0),
                    },
                )
                for counter in self._ARTIFACT_COUNTERS:
                    base["artifact_cache"][counter] += snapshot["artifact_cache"][counter]
                for counter in self._ENDPOINT_COUNTERS:
                    base["endpoint"][counter] += snapshot["endpoint"][counter]

    def graph_stats(self, name: str) -> Optional[dict]:
        """Worker-side artifact/endpoint stats of ``name``, summed over owners.

        ``None`` until the first graph-touching response arrived.  Counters
        sum each owning worker's latest piggybacked snapshot plus the
        retired counters of that slot's dead incarnations (so respawns
        never step a counter backwards); ``nbytes`` sums live snapshots
        only — it is a gauge.  ``mapped_nbytes`` is the **max** (not sum)
        across live workers: memory-mapped artifact pages are physically
        shared by every worker mapping the same file, so summing would
        count the same pages once per worker.  With replication every
        worker builds its own artifacts, so ``builds`` counts per-worker
        construction, as documented in ``docs/serving.md``.
        """
        with self._stats_lock:
            live = [
                value
                for (stats_name, _worker), value in self._graph_stats.items()
                if stats_name == name
            ]
            retired = [
                value
                for (stats_name, _worker), value in self._retired_stats.items()
                if stats_name == name
            ]
        if not live and not retired:
            return None
        merged = {
            "artifact_cache": {
                key: sum(s["artifact_cache"][key] for s in live + retired)
                for key in self._ARTIFACT_COUNTERS
            },
            "endpoint": {
                key: sum(s["endpoint"][key] for s in live + retired)
                for key in self._ENDPOINT_COUNTERS
            },
        }
        merged["artifact_cache"]["nbytes"] = sum(
            s["artifact_cache"]["nbytes"] for s in live
        )
        merged["artifact_cache"]["mapped_nbytes"] = max(
            (s["artifact_cache"].get("mapped_nbytes", 0) for s in live), default=0
        )
        # bytes_raw stays in the dict: the service folds parent-side page
        # accounting (streamed /sparql pages are cut parent-side) into these
        # counters before recomputing the ratio over the merged totals.
        raw = merged["endpoint"]["bytes_raw"]
        shipped = merged["endpoint"]["bytes_shipped"]
        merged["endpoint"]["compression_ratio"] = (raw / shipped) if shipped else 1.0
        return merged

    def worker_pids(self) -> List[Optional[int]]:
        """Current PID per worker slot (None while respawning, and for
        remote slots — their process lives on another machine)."""
        return [slot.pid() for slot in self._workers]

    def describe(self) -> dict:
        """Pool configuration + health as one JSON-serializable dict."""
        with self._registry_lock:
            graphs = {name: list(record.shards) for name, record in self._graphs.items()}
        local_active = [
            slot
            for slot in self._workers
            if slot.kind == "local" and not slot.retired and not slot.closed
        ]
        return {
            "workers": self.num_workers,
            "replicas": self.replicas,
            "start_method": self.start_method,
            "placement": self._placement.describe(),
            # Per-slot transport kind ("local"/"remote"); retired slots
            # keep their kind so slot indices stay interpretable.
            "transports": [slot.kind for slot in self._workers],
            "alive": [slot.alive() for slot in self._workers],
            "retired": [slot.retired for slot in self._workers],
            "respawns": sum(slot.respawns for slot in self._workers),
            # Per-slot reason when a respawn itself failed (None = healthy);
            # a persistently dead slot is diagnosable from /metrics alone.
            "spawn_failures": [slot.spawn_failure for slot in self._workers],
            # CPU each slot is pinned to (all None unless pin_workers and
            # the platform supports affinity).
            "pinned": [slot.cpu for slot in self._workers],
            # The load signal placement and elasticity act on.
            "queue_depth_ewma": [round(slot.depth_ewma, 4) for slot in self._workers],
            "elastic": {
                "enabled": self._elastic,
                "min": self._workers_min,
                "max": self._workers_max,
                "active_local": len(local_active),
                "resizes": self._resizes,
                "pressure_ewma": round(self._pressure_ewma, 4),
                "error": self._elastic_error,
            },
            "graphs": graphs,
        }

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Shut every worker down (idempotent).

        Local workers get the shutdown-op/join/terminate protocol; remote
        slots only drop their connection — a standalone ``serve-worker``
        owns its own lifecycle and may be serving other parents.
        """
        self._closed = True
        for slot in self._workers:
            slot.close()
