"""Placement layer: which workers serve which graph.

:class:`~repro.serve.pool.WorkerPool` separates *where a graph's
requests run* from *how they get there* (``serve/transport.py``) and
*when workers start and stop* (the pool's lifecycle layer).  This module
is the first of those concerns: a :class:`PlacementPolicy` maps a graph
name onto a subset of the currently active worker slots.

Two policies ship:

* :class:`HashPlacement` — the deterministic blake2b shard map
  (:func:`shard_for` / :func:`replica_shards`): the same graph always
  lands on the same home shard, so a restarted parent, every worker and
  any other process agree where a graph lives without coordination.
  This is DGL-KE's static partitioning regime and the pool's default.
* :class:`LoadAwarePlacement` — assigns a new graph to the *least
  loaded* workers, ranking slots by observed queue-depth EWMA and
  reported per-worker memory (heap ``nbytes`` + mapped artifact bytes,
  the measurements the pool already piggybacks on every response).
  Ties fall back to the deterministic hash walk, so an idle pool places
  exactly like :class:`HashPlacement`.  This is the online
  load-and-memory-aware scheduling regime of Luo et al. (PAPERS.md).

Placement decisions are *proposals*: the pool owns the handoff protocol
(register on the new owners, replay ingest deltas, flip routing, drain
the old owners) and calls back into the policy when the active worker
set changes, so a placement change can never produce a request routed to
a worker that has not finished registering the graph.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = [
    "HashPlacement",
    "LoadAwarePlacement",
    "PlacementPolicy",
    "WorkerLoad",
    "replica_shards",
    "shard_for",
]


# -- deterministic graph -> shard map -----------------------------------------


def shard_for(name: str, num_shards: int) -> int:
    """Home shard of graph ``name`` in a pool of ``num_shards`` workers.

    Stable across processes, runs and machines (``blake2b`` of the name,
    *not* Python's per-process-seeded ``hash``), so the parent, every
    worker, and a restarted service all agree where a graph lives — the
    precondition for building its artifacts exactly once per owner.

    >>> shard_for("mag", 4) == shard_for("mag", 4)
    True
    >>> 0 <= shard_for("anything", 3) < 3
    True
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % num_shards


def replica_shards(name: str, num_shards: int, replicas: Optional[int] = None) -> List[int]:
    """The worker indices serving graph ``name`` (home shard first).

    ``replicas=None`` (default) means every worker serves the graph — the
    per-graph worker pool regime.  Smaller values walk consecutively from
    the home shard, so shrinking ``replicas`` never moves the home.
    """
    count = num_shards if replicas is None else min(max(replicas, 1), num_shards)
    home = shard_for(name, num_shards)
    return [(home + offset) % num_shards for offset in range(count)]


# -- load observations ---------------------------------------------------------


@dataclass
class WorkerLoad:
    """One slot's observed load: the signals a placement policy ranks by.

    ``queue_depth_ewma`` smooths the number of in-flight requests the
    slot had when recent requests were dispatched; ``heap_nbytes`` and
    ``mapped_nbytes`` come from the worker's piggybacked artifact-cache
    stats (mapped pages are physically shared, but they still bound what
    else fits on that worker's machine, so both count toward placement).
    """

    queue_depth_ewma: float = 0.0
    heap_nbytes: int = 0
    mapped_nbytes: int = 0

    def score(self) -> float:
        """Scalar load rank: queue pressure first, memory as tiebreak.

        Queue depth is in requests (order unity); memory is scaled to
        GiB so a multi-GiB imbalance outweighs sub-request queue noise
        but byte-level jitter never reorders equally-busy workers.
        """
        return self.queue_depth_ewma + (
            (self.heap_nbytes + self.mapped_nbytes) / (1 << 30)
        )


# -- policies ------------------------------------------------------------------


class PlacementPolicy:
    """Maps a graph name onto the active worker slots serving it.

    ``place`` receives the *active* slot indices (ascending) and the
    latest per-slot :class:`WorkerLoad` observations; it returns the
    slot indices that should serve the graph, home/primary first.  It
    must be a pure function of its arguments — the pool re-invokes it
    after elastic resizes and performs the handoff for any graph whose
    answer changed.
    """

    #: How many of the returned slots serve each graph (``None``: all).
    replicas: Optional[int] = None

    def place(
        self,
        name: str,
        active: Sequence[int],
        loads: Dict[int, WorkerLoad],
    ) -> List[int]:
        raise NotImplementedError

    def describe(self) -> dict:
        """JSON-serializable policy identity for ``/metrics``."""
        return {"policy": type(self).__name__.lower(), "replicas": self.replicas}

    def _replica_count(self, active: Sequence[int]) -> int:
        count = len(active) if self.replicas is None else self.replicas
        return min(max(count, 1), len(active))


@dataclass
class HashPlacement(PlacementPolicy):
    """Deterministic blake2b placement (the classic pool shard map).

    With every slot active this reproduces :func:`replica_shards`
    exactly; after an elastic resize the same walk runs over the active
    slots in order, so placement stays a pure function of
    ``(name, active set)`` and any process can recompute it.
    """

    replicas: Optional[int] = None

    def place(
        self,
        name: str,
        active: Sequence[int],
        loads: Dict[int, WorkerLoad],
    ) -> List[int]:
        if not active:
            raise ValueError("cannot place a graph on an empty worker set")
        positions = replica_shards(name, len(active), self.replicas)
        ordered = sorted(active)
        return [ordered[position] for position in positions]

    def describe(self) -> dict:
        return {"policy": "hash", "replicas": self.replicas}


@dataclass
class LoadAwarePlacement(PlacementPolicy):
    """Least-loaded placement over observed queue depth and memory.

    Slots are ranked by :meth:`WorkerLoad.score` (queue-depth EWMA plus
    reported heap/mapped bytes in GiB); the graph goes to the
    ``replicas`` least-loaded slots.  Ties — in particular a freshly
    started, fully idle pool — break along the deterministic hash walk,
    so the policy degrades to :class:`HashPlacement` when there is no
    load signal to act on.
    """

    replicas: Optional[int] = None
    loads_seen: Dict[int, float] = field(default_factory=dict, repr=False)

    def place(
        self,
        name: str,
        active: Sequence[int],
        loads: Dict[int, WorkerLoad],
    ) -> List[int]:
        if not active:
            raise ValueError("cannot place a graph on an empty worker set")
        ordered = sorted(active)
        # Deterministic tiebreak: each slot's position in the hash walk.
        walk = {
            slot: turn
            for turn, slot in enumerate(
                ordered[p] for p in replica_shards(name, len(ordered), None)
            )
        }
        scored = sorted(
            ordered,
            key=lambda slot: (
                loads.get(slot, WorkerLoad()).score(),
                walk[slot],
            ),
        )
        chosen = scored[: self._replica_count(ordered)]
        for slot in chosen:
            self.loads_seen[slot] = loads.get(slot, WorkerLoad()).score()
        return chosen

    def describe(self) -> dict:
        return {"policy": "load", "replicas": self.replicas}
