"""HTTP/1.1 SPARQL-protocol front end for :class:`ExtractionService`.

The paper's Algorithm 3 talks to the RDF engine over HTTP, and that is
also how standard SPARQL clients and GNN-serving pipelines expect to
connect.  This module implements the slice of the SPARQL Protocol the
engine supports — plus JSON endpoints for the extraction ops — directly
on ``asyncio`` streams, dependency-free:

``GET /sparql?query=...``  /  ``POST /sparql``
    The SPARQL Protocol query operation.  POST bodies may be
    ``application/x-www-form-urlencoded`` (``query=...``) or raw
    ``application/sparql-query``.  Responses are
    ``application/sparql-results+json`` with **streaming pagination**:
    the result is written as chunked transfer-encoding pages of
    ``page_rows`` rows (default :data:`DEFAULT_PAGE_ROWS`, override with
    the ``page_rows`` parameter), cut lazily by the endpoint's
    LIMIT/OFFSET planner (:meth:`SparqlEndpoint.stream_pages`), so a
    multi-million-row SELECT ships without the service ever holding its
    serialized body — and TCP flow control paces the producer to the
    consumer.  Binding values are typed integer literals indexing the
    graph's node/relation/class vocabularies.
    ``graph`` selects the registered graph (defaults to the only one).
    With ``Accept: text/csv`` the same pages ship as ``text/csv``
    (SPARQL 1.1 CSV results: comma-joined header of variable names, one
    CRLF-terminated row per binding, same integer values as the JSON
    bindings bit for bit).  With ``Accept:
    application/sparql-results+xml`` they ship as SPARQL 1.1 XML results
    with **IRI-decoded** bindings: each variable's vocabulary domain
    (node / relation / class) is inferred from the query's triple
    patterns, and its integer ids decode to ``<uri>`` terms through the
    graph's vocabularies — round-tripping a URI back through the same
    vocabulary yields the JSON binding's id exactly.  Variables whose
    domain is ambiguous (or queries the inference cannot type) fall back
    to the same typed integer literals as the JSON bindings.

``GET|POST /ppr``, ``GET|POST /ego``, ``GET|POST /paths``
    The extraction ops, mirroring the ndjson protocol's fields
    (``graph``, ``target``/``root``/``src``+``dst``,
    ``k``/``depth``/``fanout``/``max_hops``/``max_paths``/...) as URL
    parameters or a JSON body; responses are the same payloads the TCP
    front end ships, as ``application/json``.  ``/paths`` answers the
    hop-major list of simple relation paths from ``src`` to ``dst``
    (each ``[src, rel, node, ..., rel, dst]``), bit-identical to the
    scalar oracle and across every serving mode.

``GET|POST /predict``
    Task-oriented model inference over registered checkpoints: ``node``
    (node classification) or ``head`` (link prediction) plus ``task``,
    with optional ``model``, ``k``, ``candidates`` and ``budget_ms``
    routing fields — see ``docs/serving.md`` for the full request shape.

``POST /triples``
    Live ingest: append ``[s, p, o]`` rows to a registered graph.  The
    JSON body carries ``graph`` and ``triples``; the response reports the
    new epoch.  Subsequent requests answer on the merged graph — no
    restart, no artifact rebuild from scratch (``docs/live-graphs.md``).

``GET /metrics``, ``GET /graphs``, ``GET /ping``
    Observability endpoints.

Error contract (shared with the TCP front end via ``serve/wire.py``):
missing/malformed fields and unparseable queries answer **400** with a
structured JSON body ``{"error": "bad_request", "detail": ...}``; an
unregistered graph answers **404** (``unknown_graph``); admission
rejection answers **503** with a ``Retry-After`` header (whole seconds,
per RFC 9110) *and* the precise float hint in the JSON body — the HTTP
face of the service's backpressure contract.

Connections are persistent (HTTP/1.1 keep-alive) and pipelined through
the same in-order response core as the TCP front end, so pipelined
requests share coalescing windows.

Like the TCP front end, this module is agnostic to where kernels
execute: with ``ExtractionService(pool=...)`` (``repro serve --protocol
http --workers N``) the coalesced batches run in sharded worker
processes, and every response — including streamed ``/sparql`` pages —
is byte-identical to in-process serving.  A crashed worker surfaces as a
structured ``500 internal_error`` for its in-flight requests while the
pool respawns it.
"""

from __future__ import annotations

import asyncio
import json
import math
from dataclasses import dataclass, field
from typing import AsyncIterator, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.serve.service import ExtractionService, ServiceOverloaded
from repro.serve.wire import (
    MAX_LINE_BYTES,
    BadRequest,
    UnknownGraph,
    bound_port,
    perform_op,
    result_payload,
    serve_pipelined,
)
from repro.sparql.endpoint import PageStream
from repro.sparql.executor import ResultSet
from repro.sparql.parser import SparqlSyntaxError

__all__ = ["serve_http", "bound_port", "DEFAULT_PAGE_ROWS"]

#: Rows per chunked page of a streamed SPARQL result.  Each chunk holds at
#: most this many serialized rows, which bounds the per-chunk memory no
#: matter how large the full result is.
DEFAULT_PAGE_ROWS = 4096

# A request body larger than this is a client bug (queries are short).
MAX_BODY_BYTES = MAX_LINE_BYTES

# Total header-section budget per request: individual lines are bounded by
# the stream limit, but an endless sequence of small header lines must not
# grow the headers dict without bound.
MAX_HEADER_BYTES = 64 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Datatype IRI attached to the integer-id literals in result bindings.
XSD_INTEGER = "http://www.w3.org/2001/XMLSchema#integer"


# -- request/response frames --------------------------------------------------


@dataclass
class HttpRequest:
    """One parsed request, or a framing error that must close the link."""

    method: str = ""
    path: str = ""
    params: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    last: bool = False  # stop reading after this request (Connection: close)
    error: Optional[Tuple[int, str]] = None  # (status, detail) framing error


@dataclass
class HttpResponse:
    """One response: fixed body (Content-Length) or a chunked stream."""

    status: int
    headers: List[Tuple[str, str]] = field(default_factory=list)
    body: Optional[bytes] = None
    stream: Optional[AsyncIterator[bytes]] = None
    close: bool = False


def _json_response(status: int, payload: object, **kwargs) -> HttpResponse:
    return HttpResponse(
        status,
        headers=[("Content-Type", "application/json")],
        body=(json.dumps(payload) + "\n").encode("utf-8"),
        **kwargs,
    )


def _error_response(status: int, error: str, detail: str, **kwargs) -> HttpResponse:
    return _json_response(status, {"error": error, "detail": detail}, **kwargs)


def _overloaded_response(exc: ServiceOverloaded) -> HttpResponse:
    response = _json_response(
        503, {"error": "overloaded", "retry_after": exc.retry_after}
    )
    # The header is whole seconds per RFC 9110; the body carries the
    # precise float for clients that can use sub-second hints.
    response.headers.append(("Retry-After", str(max(math.ceil(exc.retry_after), 1))))
    return response


# -- request parsing ----------------------------------------------------------


async def _read_request(reader: asyncio.StreamReader) -> Optional[HttpRequest]:
    """Read one HTTP/1.1 request; None at EOF; error frames close the link."""
    request_line = await reader.readline()
    if not request_line:
        return None
    try:
        method, target, version = request_line.decode("latin-1").split()
    except ValueError:
        return HttpRequest(
            error=(400, f"malformed request line {request_line!r}"), last=True
        )
    headers: Dict[str, str] = {}
    header_bytes = 0
    while True:
        line = await reader.readline()
        if line == b"":
            return None  # peer died mid-headers: drop, don't dispatch
        if line in (b"\r\n", b"\n"):
            break
        header_bytes += len(line)
        if header_bytes > MAX_HEADER_BYTES:
            return HttpRequest(
                error=(400, f"header section exceeds {MAX_HEADER_BYTES} bytes"),
                last=True,
            )
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length_header = headers.get("content-length")
    if length_header is not None:
        try:
            length = int(length_header)
        except ValueError:
            length = -1
        if length < 0:
            return HttpRequest(
                error=(400, f"malformed Content-Length {length_header!r}"), last=True
            )
        if length > MAX_BODY_BYTES:
            return HttpRequest(
                error=(413, f"request body of {length} bytes exceeds "
                            f"{MAX_BODY_BYTES}"),
                last=True,
            )
        body = await reader.readexactly(length)
    elif headers.get("transfer-encoding", "").lower() == "chunked":
        return HttpRequest(
            error=(411, "chunked request bodies are not supported; "
                        "send Content-Length"),
            last=True,
        )

    split = urlsplit(target)
    params = {
        name: values[0] for name, values in parse_qs(split.query).items() if values
    }
    connection = headers.get("connection", "").lower()
    if version == "HTTP/1.0":
        keep_alive = connection == "keep-alive"
    else:
        keep_alive = connection != "close"
    return HttpRequest(
        method=method.upper(),
        path=split.path,
        params=params,
        headers=headers,
        body=body,
        last=not keep_alive,
    )


# -- SPARQL results+json streaming --------------------------------------------


def _results_json_head(variables: List[str]) -> bytes:
    return (
        '{"head":{"vars":' + json.dumps(list(variables)) + '},'
        '"results":{"bindings":['
    ).encode("utf-8")


def _encode_page(page: ResultSet, first: bool) -> bytes:
    """Serialize one page of bindings, comma-joined across page boundaries."""
    variables = page.variables
    # One bulk tolist() per column, not one numpy scalar read per cell:
    # this loop is the hot path the serving_http_throughput floor guards.
    columns = [page.columns[variable].tolist() for variable in variables]
    rows = []
    for values in zip(*columns):
        binding = {
            variable: {
                "type": "literal",
                "datatype": XSD_INTEGER,
                "value": str(value),
            }
            for variable, value in zip(variables, values)
        }
        rows.append(json.dumps(binding, separators=(",", ":")))
    text = ",".join(rows)
    if not first and text:
        text = "," + text
    return text.encode("utf-8")


async def _stream_results(stream: PageStream) -> AsyncIterator[bytes]:
    """Chunk generator: head, one chunk per page, tail.

    Pages are pulled and serialized on a worker thread as the writer
    drains — the consumer paces the producer (writer backpressure), and
    at most one serialized page exists at a time.
    """
    yield _results_json_head(stream.variables)
    first = True
    iterator = stream.pages
    while True:
        chunk = await asyncio.to_thread(_next_page_chunk, iterator, first)
        if chunk is None:
            break
        first = False
        yield chunk
    yield b"]}}"


def _next_page_chunk(iterator, first: bool) -> Optional[bytes]:
    page = next(iterator, None)
    if page is None:
        return None
    return _encode_page(page, first)


# -- SPARQL results as text/csv (content negotiation) --------------------------


def _wants_csv(request: "HttpRequest") -> bool:
    """Whether the Accept header asks for ``text/csv`` (default: JSON)."""
    accept = request.headers.get("accept", "")
    return any(
        part.split(";")[0].strip().lower() == "text/csv"
        for part in accept.split(",")
    )


def _encode_csv_page(page: ResultSet) -> bytes:
    """One page as SPARQL 1.1 CSV rows (CRLF-terminated, plain integers)."""
    columns = [page.columns[variable].tolist() for variable in page.variables]
    return "".join(
        ",".join(str(value) for value in values) + "\r\n"
        for values in zip(*columns)
    ).encode("utf-8")


async def _stream_csv(stream: PageStream) -> AsyncIterator[bytes]:
    """Chunk generator mirroring :func:`_stream_results` for ``text/csv``.

    Same lazily-cut pages, same thread/backpressure discipline — only the
    serialization differs, so CSV and JSON answers are built from
    identical result pages (the bit-exactness the CSV tests assert).
    """
    yield (",".join(stream.variables) + "\r\n").encode("utf-8")
    iterator = stream.pages
    while True:
        chunk = await asyncio.to_thread(_next_csv_chunk, iterator)
        if chunk is None:
            break
        yield chunk


def _next_csv_chunk(iterator) -> Optional[bytes]:
    page = next(iterator, None)
    if page is None:
        return None
    return _encode_csv_page(page)


# -- SPARQL results as XML with IRI-decoded bindings ---------------------------

SPARQL_RESULTS_XML = "application/sparql-results+xml"


def _wants_xml(request: "HttpRequest") -> bool:
    """Whether the Accept header asks for SPARQL 1.1 XML results."""
    accept = request.headers.get("accept", "")
    return any(
        part.split(";")[0].strip().lower() == SPARQL_RESULTS_XML
        for part in accept.split(",")
    )


def _note_domain(domains: Dict[str, Optional[str]], term, domain: str) -> None:
    from repro.sparql.ast import Var

    if isinstance(term, Var):
        if term.name in domains and domains[term.name] != domain:
            domains[term.name] = None  # conflicting evidence: stay integer
        else:
            domains[term.name] = domain


def _query_domains(query) -> Dict[str, Optional[str]]:
    """Output variable name → vocabulary domain, inferred from the AST.

    Positions type variables: in a ``?v a <Class>`` pattern the subject
    is a node and the object a class; in a regular pattern subject and
    object are nodes and the predicate a relation.  Projection aliases
    carry their source's domain; UNION arms must agree or the variable
    stays untyped (``None`` → serialized as an integer literal, exactly
    like the JSON bindings).
    """
    from repro.sparql.ast import BGP

    if isinstance(query.body, BGP):
        inner: Dict[str, Optional[str]] = {}
        for pattern in query.body.patterns:
            if pattern.is_type_pattern():
                _note_domain(inner, pattern.s, "node")
                _note_domain(inner, pattern.o, "class")
            else:
                _note_domain(inner, pattern.s, "node")
                _note_domain(inner, pattern.p, "relation")
                _note_domain(inner, pattern.o, "node")
    else:  # Union: merge the arms' output domains, demoting disagreements
        inner = {}
        for arm in query.body.arms:
            for name, domain in _query_domains(arm).items():
                if name in inner and inner[name] != domain:
                    inner[name] = None
                else:
                    inner.setdefault(name, domain)
    if query.projections:
        return {
            projection.output.name: inner.get(projection.source.name)
            for projection in query.projections
        }
    return inner


def _binding_vocabs(
    service: ExtractionService, graph: str, query: str, variables: List[str]
) -> Dict[str, object]:
    """Variable → vocabulary to decode its ids through (None = integer)."""
    from repro.sparql.parser import parse_query

    try:
        domains = _query_domains(parse_query(query))
    except Exception:  # noqa: BLE001 - typing is best-effort, never fatal
        domains = {}
    kg = service.kg_of(graph)
    vocabs = {
        "node": kg.node_vocab,
        "relation": kg.relation_vocab,
        "class": kg.class_vocab,
    }
    return {
        variable: vocabs.get(domains.get(variable)) for variable in variables
    }


def _xml_head(variables: List[str]) -> bytes:
    from xml.sax.saxutils import quoteattr

    return (
        '<?xml version="1.0"?>\n'
        f'<sparql xmlns="http://www.w3.org/2005/sparql-results#"><head>'
        + "".join(f"<variable name={quoteattr(v)}/>" for v in variables)
        + "</head><results>"
    ).encode("utf-8")


def _encode_xml_page(page: ResultSet, vocabs: Dict[str, object]) -> bytes:
    """One page of ``<result>`` elements, IRI-decoded where typed.

    Same bulk ``tolist()`` discipline as the JSON/CSV encoders — the
    three serializers consume identical lazily-cut pages, which is what
    keeps the formats bit-exact relative to each other.
    """
    from xml.sax.saxutils import escape, quoteattr

    variables = page.variables
    columns = [page.columns[variable].tolist() for variable in variables]
    names = [quoteattr(variable) for variable in variables]
    decoders = [vocabs.get(variable) for variable in variables]
    parts: List[str] = []
    for values in zip(*columns):
        parts.append("<result>")
        for name, vocab, value in zip(names, decoders, values):
            if vocab is not None:
                parts.append(
                    f"<binding name={name}><uri>{escape(vocab.term(value))}"
                    "</uri></binding>"
                )
            else:
                parts.append(
                    f'<binding name={name}><literal datatype="{XSD_INTEGER}">'
                    f"{value}</literal></binding>"
                )
        parts.append("</result>")
    return "".join(parts).encode("utf-8")


async def _stream_xml(
    stream: PageStream, vocabs: Dict[str, object]
) -> AsyncIterator[bytes]:
    """Chunk generator mirroring :func:`_stream_results` for XML results."""
    yield _xml_head(stream.variables)
    iterator = stream.pages
    while True:
        chunk = await asyncio.to_thread(_next_xml_chunk, iterator, vocabs)
        if chunk is None:
            break
        yield chunk
    yield b"</results></sparql>"


def _next_xml_chunk(iterator, vocabs) -> Optional[bytes]:
    page = next(iterator, None)
    if page is None:
        return None
    return _encode_xml_page(page, vocabs)


# -- routing ------------------------------------------------------------------


def _single_graph_default(service: ExtractionService) -> Optional[str]:
    graphs = service.graphs()
    return graphs[0] if len(graphs) == 1 else None


async def _handle_sparql(service: ExtractionService, request: HttpRequest) -> HttpResponse:
    params = dict(request.params)
    query: Optional[str] = params.get("query")
    if request.method == "POST":
        content_type = request.headers.get("content-type", "").split(";")[0].strip()
        if content_type == "application/x-www-form-urlencoded":
            form = {
                name: values[0]
                for name, values in parse_qs(request.body.decode("utf-8")).items()
                if values
            }
            params.update(form)
            query = params.get("query")
        elif content_type == "application/sparql-query":
            query = request.body.decode("utf-8")
        elif request.body:
            return _error_response(
                400, "bad_request",
                f"unsupported Content-Type {content_type!r}; use "
                "application/x-www-form-urlencoded or application/sparql-query",
            )
    if not query:
        return _error_response(400, "bad_request", "missing 'query' parameter")

    graph = params.get("graph") or _single_graph_default(service)
    if graph is None:
        graphs = service.graphs()
        if not graphs:
            return _error_response(
                404, "unknown_graph", "no graphs are registered"
            )
        return _error_response(
            400, "bad_request",
            f"several graphs are registered ({graphs}); pass ?graph=<name>",
        )
    if not service.has_graph(graph):
        return _error_response(
            404, "unknown_graph",
            f"unknown graph {graph!r}; registered: {service.graphs()}",
        )
    try:
        page_rows = int(params.get("page_rows", DEFAULT_PAGE_ROWS))
        if page_rows <= 0:
            raise ValueError
    except ValueError:
        return _error_response(
            400, "bad_request",
            f"page_rows must be a positive integer, got {params.get('page_rows')!r}",
        )

    try:
        stream = await service.sparql_stream(graph, query, page_rows=page_rows)
    except ServiceOverloaded as exc:
        return _overloaded_response(exc)
    except SparqlSyntaxError as exc:
        return _error_response(400, "bad_request", f"invalid SPARQL: {exc}")
    except KeyError as exc:
        # Evaluation-time query errors (e.g. projecting an unbound
        # variable) are the client's fault, not a server failure.
        return _error_response(400, "bad_request", f"invalid query: {exc}")
    if _wants_xml(request):
        # Checked before CSV: a client asking for both formats gets the
        # richer (IRI-decoded) one.
        vocabs = _binding_vocabs(service, graph, query, stream.variables)
        return HttpResponse(
            200,
            headers=[("Content-Type", f"{SPARQL_RESULTS_XML}; charset=utf-8")],
            stream=_stream_xml(stream, vocabs),
        )
    if _wants_csv(request):
        return HttpResponse(
            200,
            headers=[("Content-Type", "text/csv; charset=utf-8")],
            stream=_stream_csv(stream),
        )
    return HttpResponse(
        200,
        headers=[("Content-Type", "application/sparql-results+json")],
        stream=_stream_results(stream),
    )


async def _handle_op(
    service: ExtractionService, op: str, request: HttpRequest
) -> HttpResponse:
    fields: Dict[str, object] = {"op": op, **request.params}
    if request.method == "POST" and request.body:
        content_type = request.headers.get("content-type", "").split(";")[0].strip()
        if content_type not in ("application/json", ""):
            return _error_response(
                400, "bad_request",
                f"unsupported Content-Type {content_type!r}; use application/json",
            )
        try:
            body = json.loads(request.body)
        except ValueError as exc:
            return _error_response(400, "bad_request", f"invalid JSON body: {exc}")
        if not isinstance(body, dict):
            return _error_response(400, "bad_request", "JSON body must be an object")
        fields.update(body)
        fields["op"] = op  # the route decides the op; a body key cannot
    try:
        result = await perform_op(service, fields)
    except ServiceOverloaded as exc:
        return _overloaded_response(exc)
    except UnknownGraph as exc:
        return _error_response(404, "unknown_graph", exc.detail)
    except BadRequest as exc:
        return _error_response(400, "bad_request", exc.detail)
    except SparqlSyntaxError as exc:
        return _error_response(400, "bad_request", f"invalid SPARQL: {exc}")
    except ValueError as exc:
        # Out-of-range parameters rejected by the kernels (alpha, eps, k,
        # ...) are client errors, not server faults.
        return _error_response(400, "bad_request", str(exc))
    except Exception as exc:  # noqa: BLE001 - reported to the client
        return _error_response(500, "internal_error", f"{type(exc).__name__}: {exc}")
    return _json_response(200, result_payload(result))


#: path -> (allowed methods, op passed to the shared dispatcher).
_OP_ROUTES = {
    "/ppr": (("GET", "POST"), "ppr"),
    "/ego": (("GET", "POST"), "ego"),
    "/paths": (("GET", "POST"), "paths"),
    "/predict": (("GET", "POST"), "predict"),
    "/triples": (("POST",), "triples"),
    "/metrics": (("GET",), "metrics"),
    "/graphs": (("GET",), "graphs"),
    "/ping": (("GET",), "ping"),
}


async def _respond(service: ExtractionService, request: HttpRequest) -> HttpResponse:
    """One request to one response; never raises."""
    if request.error is not None:
        status, detail = request.error
        return _error_response(status, "bad_request", detail, close=True)
    try:
        if request.path == "/sparql":
            if request.method not in ("GET", "POST"):
                return _error_response(
                    405, "method_not_allowed", f"{request.method} /sparql"
                )
            response = await _handle_sparql(service, request)
        elif request.path in _OP_ROUTES:
            methods, op = _OP_ROUTES[request.path]
            if request.method not in methods:
                return _error_response(
                    405, "method_not_allowed", f"{request.method} {request.path}"
                )
            response = await _handle_op(service, op, request)
        else:
            response = _error_response(
                404, "not_found",
                f"no route for {request.path!r}; endpoints: /sparql "
                f"{' '.join(sorted(_OP_ROUTES))}",
            )
    except Exception as exc:  # noqa: BLE001 - reported to the client
        response = _error_response(
            500, "internal_error", f"{type(exc).__name__}: {exc}"
        )
    if request.last:
        response.close = True
    return response


# -- response writing ---------------------------------------------------------


async def _write_response(writer: asyncio.StreamWriter, response: HttpResponse) -> None:
    reason = _REASONS.get(response.status, "Unknown")
    headers = list(response.headers)
    if response.stream is None:
        body = response.body if response.body is not None else b""
        headers.append(("Content-Length", str(len(body))))
    else:
        headers.append(("Transfer-Encoding", "chunked"))
    if response.close:
        headers.append(("Connection", "close"))
    head = [f"HTTP/1.1 {response.status} {reason}"]
    head.extend(f"{name}: {value}" for name, value in headers)
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))

    if response.stream is None:
        if response.body:
            writer.write(response.body)
        await writer.drain()
        return
    try:
        async for chunk in response.stream:
            if not chunk:
                continue  # a zero-size chunk would terminate the body
            writer.write(f"{len(chunk):x}\r\n".encode("latin-1") + chunk + b"\r\n")
            await writer.drain()  # consumer-paced: block while the peer is slow
        writer.write(b"0\r\n\r\n")
        await writer.drain()
    except ConnectionError:
        raise
    except Exception:
        # The status line already went out; the only honest signal left is
        # an abrupt close, which chunked framing lets the client detect.
        writer.close()
        raise ConnectionError("response stream failed mid-body") from None


async def serve_http(
    service: ExtractionService,
    host: str = "127.0.0.1",
    port: int = 0,
) -> asyncio.AbstractServer:
    """Start serving ``service`` over HTTP; ``port=0`` picks a free port."""

    async def handler(reader, writer):
        await serve_pipelined(
            reader,
            writer,
            read_frame=_read_request,
            respond=lambda request: _respond(service, request),
            write_response=_write_response,
        )

    return await asyncio.start_server(
        handler, host, port, limit=MAX_LINE_BYTES
    )
