"""Concurrent TOSG-extraction serving layer.

The async front door over the batch-kernel program (see
``docs/serving.md`` and ``docs/architecture.md``): an admission-bounded
:class:`ExtractionService` routes concurrent PPR / ego-scope / SPARQL
requests per graph, a :class:`Coalescer` micro-batches compatible
requests into single batch-kernel calls, and :class:`ServiceMetrics`
exports latency, queue depth, batch occupancy and cache-hit counters as
one dict.  Kernel work runs either in-process (``asyncio.to_thread``) or
— with ``ExtractionService(pool=WorkerPool(...))`` — in a multi-process
sharded :class:`WorkerPool` where each worker owns a shard of the
per-graph artifact cache, removing the single-interpreter throughput
cap while staying bit-identical to in-process extraction.  Two wire
front ends share one validation/pipelining core (``serve/wire.py``):
newline-delimited JSON over TCP (:func:`serve_tcp`) and the
HTTP/SPARQL-protocol server with streaming pagination
(:func:`serve_http`).
"""

from repro.serve.coalesce import Coalescer
from repro.serve.http import serve_http
from repro.serve.loadgen import (
    LoadReport,
    compare_distributed_scaling,
    compare_http_serving,
    compare_paths_serving,
    compare_pool_serving,
    compare_predict_serving,
    compare_serving_modes,
    run_http_load,
    run_load,
    run_paths_load,
    run_predict_load,
)
from repro.serve.metrics import ServiceMetrics
from repro.serve.pool import WorkerCrashed, WorkerError, WorkerPool, shard_for
from repro.serve.registry import ModelRegistry
from repro.serve.service import (
    AsyncSparqlEndpoint,
    ExtractionService,
    ServiceOverloaded,
)
from repro.serve.tcp import serve_tcp
from repro.serve.wire import BadRequest, UnknownGraph, bound_port

__all__ = [
    "AsyncSparqlEndpoint",
    "BadRequest",
    "Coalescer",
    "ExtractionService",
    "LoadReport",
    "ModelRegistry",
    "ServiceMetrics",
    "ServiceOverloaded",
    "UnknownGraph",
    "WorkerCrashed",
    "WorkerError",
    "WorkerPool",
    "bound_port",
    "compare_distributed_scaling",
    "compare_http_serving",
    "compare_paths_serving",
    "compare_pool_serving",
    "compare_predict_serving",
    "compare_serving_modes",
    "run_http_load",
    "run_load",
    "run_paths_load",
    "run_predict_load",
    "serve_http",
    "serve_tcp",
    "shard_for",
]
