"""Concurrent TOSG-extraction serving layer.

The async front door over the batch-kernel program (see
``docs/serving.md``): an admission-bounded :class:`ExtractionService`
routes concurrent PPR / ego-scope / SPARQL requests per graph, a
:class:`Coalescer` micro-batches compatible requests into single
batch-kernel calls, and :class:`ServiceMetrics` exports latency, queue
depth, batch occupancy and cache-hit counters as one dict.
"""

from repro.serve.coalesce import Coalescer
from repro.serve.loadgen import LoadReport, compare_serving_modes, run_load
from repro.serve.metrics import ServiceMetrics
from repro.serve.service import (
    AsyncSparqlEndpoint,
    ExtractionService,
    ServiceOverloaded,
)
from repro.serve.tcp import bound_port, serve_tcp

__all__ = [
    "AsyncSparqlEndpoint",
    "Coalescer",
    "ExtractionService",
    "LoadReport",
    "ServiceMetrics",
    "ServiceOverloaded",
    "bound_port",
    "compare_serving_modes",
    "run_load",
    "serve_tcp",
]
