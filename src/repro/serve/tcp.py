"""Newline-delimited-JSON TCP front end for :class:`ExtractionService`.

The paper's Algorithm 3 talks to the RDF engine over HTTP; this module is
the reproduction's equivalent wire layer, kept dependency-free with
``asyncio.start_server``.  One JSON object per line in, one per line out:

Request::

    {"op": "ppr",    "graph": "mag", "target": 17, "k": 16}
    {"op": "ego",    "graph": "mag", "root": 17, "depth": 2, "fanout": 8}
    {"op": "sparql", "graph": "mag", "query": "select ?s ?p ?o where ..."}
    {"op": "count",  "graph": "mag", "query": "..."}
    {"op": "metrics"}
    {"op": "ping"}

Response::

    {"ok": true,  "result": ...}
    {"ok": false, "error": "...", "retry_after": 0.25}   # overload only

Overload maps to ``ok: false`` with a ``retry_after`` hint — the TCP
analogue of HTTP 429 — so closed-loop clients can back off without
guessing.  Malformed requests also answer ``ok: false`` (no retry hint)
instead of killing the connection: one bad line must not break pipelined
requests behind it.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

from repro.serve.service import ExtractionService, ServiceOverloaded
from repro.sparql.executor import ResultSet

# One request line is bounded (queries are short); a huge line is a client
# bug, not a reason to buffer without limit.
MAX_LINE_BYTES = 1 << 20

# Requests a single connection may have in flight at once.  Pipelined
# requests are handled concurrently — so they can share coalescing windows
# and a slow op does not stall the ones behind it — while responses are
# written back in request order (the ndjson contract).
PIPELINE_DEPTH = 256


def _result_payload(result) -> object:
    """JSON-encode one op's result."""
    if isinstance(result, ResultSet):
        return {
            "variables": list(result.variables),
            "columns": {
                variable: [int(v) for v in result.columns[variable]]
                for variable in result.variables
            },
            "num_rows": int(result.num_rows),
        }
    if hasattr(result, "nodes") and hasattr(result, "rel"):  # _EgoGraph
        return {
            "nodes": [int(v) for v in result.nodes],
            "src": [int(v) for v in result.src],
            "dst": [int(v) for v in result.dst],
            "rel": [int(v) for v in result.rel],
        }
    if isinstance(result, list):  # ppr top-k [(node, score), ...]
        return [[int(node), float(score)] for node, score in result]
    return result


async def _handle_request(service: ExtractionService, request: dict) -> dict:
    op = request.get("op")
    if op == "ping":
        return {"ok": True, "result": "pong"}
    if op == "metrics":
        return {"ok": True, "result": service.metrics_snapshot()}
    if op == "graphs":
        return {"ok": True, "result": service.graphs()}
    if op == "ppr":
        result = await service.ppr_top_k(
            request["graph"],
            int(request["target"]),
            k=int(request.get("k", 16)),
            alpha=float(request.get("alpha", 0.25)),
            eps=float(request.get("eps", 2e-4)),
        )
    elif op == "ego":
        result = await service.extract_ego(
            request["graph"],
            int(request["root"]),
            depth=int(request.get("depth", 2)),
            fanout=int(request.get("fanout", 8)),
            salt=int(request.get("salt", 0)),
        )
    elif op == "sparql":
        result = await service.sparql(request["graph"], request["query"])
    elif op == "count":
        result = await service.count(request["graph"], request["query"])
    else:
        return {"ok": False, "error": f"unknown op {op!r}"}
    return {"ok": True, "result": _result_payload(result)}


async def _respond(service: ExtractionService, line: bytes) -> dict:
    """One request line to one response dict; never raises."""
    try:
        request = json.loads(line)
        return await _handle_request(service, request)
    except ServiceOverloaded as exc:
        return {"ok": False, "error": "overloaded", "retry_after": exc.retry_after}
    except Exception as exc:  # noqa: BLE001 - reported to the client
        return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}


async def _serve_connection(
    service: ExtractionService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    # Bounded pipeline: the reader spawns one task per line and the writer
    # drains them in order.  The writer consumes the queue even after the
    # peer stops reading, so the reader's put() can never deadlock.
    responses: asyncio.Queue = asyncio.Queue(maxsize=PIPELINE_DEPTH)

    async def write_responses() -> None:
        alive = True
        while True:
            task = await responses.get()
            if task is None:
                return
            response = await task
            if not alive:
                continue
            try:
                writer.write(json.dumps(response).encode("utf-8") + b"\n")
                await writer.drain()
            except ConnectionError:
                alive = False  # peer stopped reading; finish quietly

    writer_task = asyncio.ensure_future(write_responses())
    try:
        while True:
            try:
                line = await reader.readline()
            except (ValueError, ConnectionError):
                break  # oversized line or peer reset
            if not line:
                break
            await responses.put(asyncio.ensure_future(_respond(service, line)))
        await responses.put(None)
        await writer_task
    finally:
        if not writer_task.done():
            writer_task.cancel()
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:  # pragma: no cover - peer already gone
            pass


async def serve_tcp(
    service: ExtractionService,
    host: str = "127.0.0.1",
    port: int = 0,
) -> asyncio.AbstractServer:
    """Start serving ``service`` over TCP; ``port=0`` picks a free port."""

    async def handler(reader, writer):
        await _serve_connection(service, reader, writer)

    return await asyncio.start_server(
        handler, host, port, limit=MAX_LINE_BYTES
    )


def bound_port(server: asyncio.AbstractServer) -> Optional[int]:
    """The port the server actually bound (after ``port=0``)."""
    for socket in server.sockets:
        return socket.getsockname()[1]
    return None
