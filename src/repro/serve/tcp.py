"""Newline-delimited-JSON TCP front end for :class:`ExtractionService`.

The paper's Algorithm 3 talks to the RDF engine over HTTP; this module is
the reproduction's low-overhead wire layer (the HTTP/SPARQL-protocol
front end lives in ``serve/http.py``), kept dependency-free with
``asyncio.start_server``.  One JSON object per line in, one per line out:

Request::

    {"op": "ppr",    "graph": "mag", "target": 17, "k": 16}
    {"op": "ego",    "graph": "mag", "root": 17, "depth": 2, "fanout": 8}
    {"op": "paths",  "graph": "mag", "src": 17, "dst": 42, "max_hops": 3, "max_paths": 64}
    {"op": "sparql", "graph": "mag", "query": "select ?s ?p ?o where ..."}
    {"op": "count",  "graph": "mag", "query": "..."}
    {"op": "triples", "graph": "mag", "triples": [[0, 1, 2], [3, 1, 4]]}
    {"op": "metrics"}
    {"op": "ping"}

Response::

    {"ok": true,  "result": ...}
    {"ok": false, "error": "overloaded", "retry_after": 0.25}
    {"ok": false, "error": "bad_request", "detail": "..."}
    {"ok": false, "error": "unknown_graph", "detail": "..."}

Overload maps to ``ok: false`` with a ``retry_after`` hint — the TCP
analogue of HTTP 503 + ``Retry-After`` — so closed-loop clients can back
off without guessing.  Malformed requests (unparseable JSON, missing or
mistyped fields, unknown ops) answer a structured ``bad_request`` error
(no retry hint) instead of an opaque server error or a dropped
connection: one bad line must not break pipelined requests behind it.

Request validation, result encoding and the pipelined connection loop are
shared with the HTTP front end (``serve/wire.py``).  The wire layer is
agnostic to where kernels execute: the same protocol is served whether
the :class:`ExtractionService` dispatches in-process or to a
multi-process worker pool (``repro serve --workers N``), and responses
are byte-identical in both modes.
"""

from __future__ import annotations

import asyncio
import json

from repro.serve.service import ExtractionService, ServiceOverloaded
from repro.serve.wire import (
    MAX_LINE_BYTES,
    BadRequest,
    UnknownGraph,
    bound_port,
    perform_op,
    result_payload,
    serve_pipelined,
)

__all__ = ["serve_tcp", "bound_port"]


async def _respond(service: ExtractionService, line: bytes) -> dict:
    """One request line to one response dict; never raises."""
    try:
        request = json.loads(line)
    except ValueError as exc:
        return {"ok": False, "error": "bad_request", "detail": f"invalid JSON: {exc}"}
    try:
        result = await perform_op(service, request)
    except ServiceOverloaded as exc:
        return {"ok": False, "error": "overloaded", "retry_after": exc.retry_after}
    except UnknownGraph as exc:
        return {"ok": False, "error": "unknown_graph", "detail": exc.detail}
    except BadRequest as exc:
        return {"ok": False, "error": "bad_request", "detail": exc.detail}
    except ValueError as exc:
        # Out-of-range parameters rejected by the kernels (alpha, eps, k,
        # ...) are the client's fault, same as a mistyped field.
        return {"ok": False, "error": "bad_request", "detail": str(exc)}
    except Exception as exc:  # noqa: BLE001 - reported to the client
        return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
    return {"ok": True, "result": result_payload(result)}


async def _read_line(reader: asyncio.StreamReader):
    line = await reader.readline()
    return line if line else None


async def _write_json_line(writer: asyncio.StreamWriter, response: dict) -> None:
    writer.write(json.dumps(response).encode("utf-8") + b"\n")
    await writer.drain()


async def serve_tcp(
    service: ExtractionService,
    host: str = "127.0.0.1",
    port: int = 0,
) -> asyncio.AbstractServer:
    """Start serving ``service`` over TCP; ``port=0`` picks a free port."""

    async def handler(reader, writer):
        await serve_pipelined(
            reader,
            writer,
            read_frame=_read_line,
            respond=lambda line: _respond(service, line),
            write_response=_write_json_line,
        )

    return await asyncio.start_server(
        handler, host, port, limit=MAX_LINE_BYTES
    )
