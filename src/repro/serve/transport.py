"""Transport layer: how pool requests reach a worker, wherever it runs.

``serve/pool.py`` used to fuse three concerns; this module is the lowest
of the three layers it split into (placement lives in
``serve/placement.py``, lifecycle/elasticity in the pool itself):

* **The worker-side op executor** (:func:`_execute_op`): one serial
  recv/execute/send loop body shared by every transport.  A worker is a
  shard — it owns its slice of the per-graph artifact cache and answers
  the ten pool ops (``ping``/``register``/``triples``/``ppr``/``ego``/
  ``paths``/``predict``/``sparql``/``sparql_stream``/``count``) one at a
  time, so intra-worker parallelism can never reintroduce the GIL
  contention the pool exists to remove.
* **:class:`WorkerTransport`** — the parent-side interface the pool's
  lifecycle layer orchestrates: ``start()`` / ``request()`` (future per
  op) / ``close()``, plus a disconnect callback so a dead peer surfaces
  as structured :class:`WorkerCrashed` failures and a respawn/reconnect
  decision in the pool, identically for both implementations.
* **:class:`LocalProcessTransport`** — the classic same-machine worker:
  a ``multiprocessing`` child connected by a pipe, python objects
  (parameters out, numpy buffers back) crossing via pickle.
* **:class:`RemoteTcpTransport`** — the distributed tier: the same ops
  as newline-delimited JSON frames over TCP to a standalone
  ``repro serve-worker`` process (possibly on another machine), reusing
  the framing/pipelining core in ``serve/wire.py`` on the server side.
  The JSON codec (:func:`encode_result` / :func:`decode_result`)
  round-trips every answer losslessly — JSON floats serialize via
  ``repr`` (shortest round-trip), so remote answers stay **bit-exact**
  with local ones; the oracle suites assert it per op.

Remote registration ships *paths*, never graphs: a remote worker maps
``--mmap-dir`` artifacts (``repro build-artifacts``) from its own
filesystem, so registration and respawn replay cost O(header) on any
machine and a pickled multi-GiB graph never crosses the network.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import itertools
import json
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "LocalProcessTransport",
    "RemoteTcpTransport",
    "WorkerCrashed",
    "WorkerError",
    "WorkerServer",
    "WorkerTransport",
    "serve_worker",
]

#: Seconds a remote transport waits for the TCP connect + liveness probe.
CONNECT_TIMEOUT_SECONDS = 10.0


def _max_line_bytes() -> int:
    # Same frame bound as every other wire surface.  Imported lazily:
    # ``serve/wire.py`` imports the service (which imports the pool, which
    # imports this module), so a module-level import would be circular.
    from repro.serve.wire import MAX_LINE_BYTES

    return MAX_LINE_BYTES

#: Seconds ``close()`` gives a local worker to exit cleanly before
#: terminating it.
SHUTDOWN_GRACE_SECONDS = 5.0


# -- errors -------------------------------------------------------------------


class WorkerCrashed(RuntimeError):
    """A worker died with this request in flight (or is not reachable).

    The pool respawns/reconnects the worker and replays its
    registrations; the *request* is not retried — retrying is the
    caller's decision, exactly like
    :class:`~repro.serve.service.ServiceOverloaded` rejections.
    """


class WorkerError(RuntimeError):
    """A worker-side failure that is not a client error (server fault)."""


#: Worker-side exception types re-raised as the same type in the parent so
#: the front ends map them to the same status codes as in-process serving
#: (ValueError/KeyError -> 400/404, SparqlSyntaxError -> 400 invalid SPARQL).
_CLIENT_ERRORS = {"ValueError": ValueError, "TypeError": TypeError, "KeyError": KeyError}


def _reraise(type_name: str, message: str) -> Exception:
    if type_name == "SparqlSyntaxError":
        from repro.sparql.parser import SparqlSyntaxError

        return SparqlSyntaxError(message)
    client_type = _CLIENT_ERRORS.get(type_name)
    if client_type is not None:
        return client_type(message)
    return WorkerError(f"{type_name}: {message}")


# -- worker-side op execution (shared by every transport) ----------------------


def _worker_graph_stats(entry: dict) -> dict:
    """The piggybacked per-graph stats: artifact cache + endpoint counters."""
    from repro.kg.cache import artifacts_for

    artifacts = artifacts_for(entry["kg"])
    stats = entry["endpoint"].stats
    return {
        "artifact_cache": {
            "hits": artifacts.hits,
            "builds": artifacts.builds,
            "nbytes": artifacts.nbytes(),
            "mapped_nbytes": artifacts.mapped_nbytes(),
        },
        "endpoint": {
            "requests": stats.requests,
            "rows_returned": stats.rows_returned,
            "bytes_raw": stats.bytes_raw,
            "bytes_shipped": stats.bytes_shipped,
        },
    }


def _execute_op(graphs: Dict[str, dict], op: str, payload: dict) -> Any:
    """Run one op against this worker's shard of graphs."""
    from repro.kg.cache import artifacts_for

    if op == "ping":
        return "pong"
    if op == "sleep":  # diagnostics/tests: hold the worker busy
        time.sleep(float(payload["seconds"]))
        return None
    if op == "register":
        name = payload["name"]
        entry = graphs.get(name)
        if entry is None:
            from repro.kg.epoch import LiveGraph
            from repro.serve.registry import ModelRegistry
            from repro.sparql.endpoint import SparqlEndpoint

            mmap_dir = payload.get("mmap_dir")
            if mmap_dir is not None:
                # Zero-copy startup: map the saved artifact store instead of
                # unpickling a shipped graph + rebuilding indices.  Every
                # worker mapping the same file shares its physical pages.
                from repro.kg.store import open_artifacts

                kg = open_artifacts(mmap_dir).kg
            else:
                kg = payload["kg"]
            graphs[name] = entry = {
                "kg": kg,
                "live": LiveGraph(kg),
                "endpoint": SparqlEndpoint(kg, compression=payload["compression"]),
                "registry": ModelRegistry(),
            }
        # Checkpoints ride the registration payload by *path* (respawn
        # replays re-read the same files); models load lazily on the
        # first predict window that reaches this worker.
        for checkpoint in payload.get("checkpoints", ()):
            entry["registry"].add(
                name, checkpoint, expected_graph=entry["kg"].name
            )
        if payload.get("warm"):
            artifacts_for(entry["kg"]).warm(payload.get("warm_kinds", ("csr",)))
        return sorted(graphs)

    entry = graphs.get(payload["graph"])
    if entry is None:
        raise KeyError(f"graph {payload['graph']!r} is not registered on this worker")
    if op == "triples":
        # Lockstep ingest: the parent ships the delta (and its compaction
        # decision) to every owning worker *before* applying it locally, so
        # any client that saw the new epoch number can be served by every
        # shard.  The worker loop is serial — no request can interleave
        # with a half-applied ingest.
        from repro.sparql.endpoint import SparqlEndpoint

        result = entry["live"].ingest(payload["triples"], compact=payload["compact"])
        if result["added"]:
            old = entry["endpoint"]
            entry["kg"] = entry["live"].kg
            endpoint = SparqlEndpoint(entry["live"].kg, compression=old.compression)
            endpoint.stats = old.stats  # counters survive the epoch bump
            entry["endpoint"] = endpoint
            entry["registry"].invalidate_graph(
                payload["graph"], keep_epoch=int(result["epoch"])
            )
        return result
    if op == "ppr":
        # The live graph's retained cache wraps the same batch kernel the
        # in-process dispatch path uses, so the two modes cannot drift.
        table = entry["live"].ppr_top_k(
            payload["targets"], payload["k"],
            alpha=payload["alpha"], eps=payload["eps"],
            epoch=payload.get("epoch"),
        )
        return [table[int(target)] for target in payload["targets"]]
    if op == "ego":
        return entry["live"].ego_batch(
            payload["roots"], payload["depth"], payload["fanout"],
            payload["salt"], epoch=payload.get("epoch"),
        )
    if op == "paths":
        # Path lists are interleaved plain-int rows, so they cross every
        # wire (pickle pipe, JSON frames) without a codec branch.
        return entry["live"].paths_batch(
            payload["pairs"],
            max_hops=payload["max_hops"], max_paths=payload["max_paths"],
            epoch=payload.get("epoch"),
        )
    if op == "predict":
        # Same shared kernel as the in-process dispatch path; parameters
        # in (a few ints + the window's item ids), score payloads back.
        from repro.serve.kernels import run_predict_batch

        snapshot = entry["live"].resolve(payload.get("epoch"))
        return run_predict_batch(
            snapshot.kg, entry["registry"], payload["graph"], payload["task"],
            payload["model"], payload["items"], payload["k"],
            payload["candidates"], epoch=snapshot.number,
        )
    if op == "sparql":
        result = entry["endpoint"].query(payload["query"])
        return {
            "variables": list(result.variables),
            "columns": {v: result.columns[v] for v in result.variables},
        }
    if op == "sparql_stream":
        # Streamed /sparql in pool mode: evaluate here (one request in this
        # endpoint's stats), ship the columns whole; the parent cuts pages
        # and accounts them with endpoint.account_page.
        result = entry["endpoint"].evaluate_stream(payload["query"])
        return {
            "variables": list(result.variables),
            "columns": {v: result.columns[v] for v in result.variables},
        }
    if op == "count":
        return entry["endpoint"].count(payload["query"])
    raise ValueError(f"unknown pool op {op!r}")


def _worker_main(conn, worker_index: int) -> None:
    """Entry point of one local worker process: serial recv/execute/send.

    One request at a time per worker by design — a worker is a shard, and
    intra-worker parallelism would reintroduce the GIL contention the
    pool exists to remove.  Parallelism comes from the number of workers.
    """
    graphs: Dict[str, dict] = {}
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break  # parent is gone; daemonic exit
        request_id, op, payload = message
        if op == "shutdown":
            try:
                conn.send((request_id, "ok", None, None))
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
            break
        try:
            result = _execute_op(graphs, op, payload)
            graph_name = payload.get("graph") or payload.get("name")
            stats = None
            if graph_name in graphs:
                stats = {"graph": graph_name, **_worker_graph_stats(graphs[graph_name])}
            response = (request_id, "ok", result, stats)
        except BaseException as exc:  # noqa: BLE001 - shipped to the parent
            response = (request_id, "error", (type(exc).__name__, str(exc)), None)
        try:
            conn.send(response)
        except (BrokenPipeError, OSError):  # pragma: no cover - parent died
            break
    conn.close()


# -- JSON codec for the remote wire -------------------------------------------
#
# The remote protocol is newline-delimited JSON: requests
# ``{"id", "op", "payload"}`` out, responses ``{"id", "status", "result",
# "stats"}`` back.  Python's json round-trips floats exactly (repr-based
# shortest round-trip), so encoding kernel answers as JSON preserves the
# pool's bit-exactness contract; only the *container* types need explicit
# reconstruction (tuples, numpy arrays, ego-graph objects).


def _json_default(value: Any) -> Any:
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"{type(value).__name__} is not JSON serializable")


def encode_frame(message: dict) -> bytes:
    """One wire frame: compact JSON + newline, bounded by the line limit."""
    data = (
        json.dumps(message, separators=(",", ":"), default=_json_default) + "\n"
    ).encode("utf-8")
    limit = _max_line_bytes()
    if len(data) > limit:
        raise ValueError(f"wire frame of {len(data)} bytes exceeds {limit}")
    return data


def check_remote_payload(op: str, payload: dict) -> None:
    """Reject payloads that must never cross the remote wire."""
    if op == "register" and "kg" in payload:
        raise ValueError(
            "remote workers register graphs by artifact path, not by pickled "
            "graph; save the store with `repro build-artifacts` and register "
            "with mmap_dir (serve --mmap-dir)"
        )
    if op in ("sparql", "sparql_stream", "count") and not isinstance(
        payload.get("query"), str
    ):
        raise TypeError(
            f"op {op!r} over the remote transport requires the query as a "
            "string (parsed ASTs do not cross the wire)"
        )


def decode_request_payload(op: str, payload: dict) -> dict:
    """Worker-side: rebuild the kernel-facing types from a JSON payload."""
    if op == "ppr" and "targets" in payload:
        payload["targets"] = np.asarray(payload["targets"], dtype=np.int64)
    elif op == "ego" and "roots" in payload:
        payload["roots"] = np.asarray(payload["roots"], dtype=np.int64)
    elif op == "triples" and "triples" in payload:
        payload["triples"] = np.asarray(
            payload["triples"], dtype=np.int64
        ).reshape(-1, 3)
    elif op == "register" and "warm_kinds" in payload:
        payload["warm_kinds"] = tuple(payload["warm_kinds"])
    return payload


def encode_result(op: str, result: Any) -> Any:
    """Worker-side: make one op's result JSON-encodable (lossless)."""
    if op == "ego":
        return [
            {"nodes": e.nodes, "src": e.src, "dst": e.dst, "rel": e.rel}
            for e in result
        ]
    # ppr (lists of (node, score) tuples), sparql columns (numpy arrays) and
    # predict payloads (plain dicts) all serialize via _json_default.
    return result


def decode_result(op: str, result: Any) -> Any:
    """Parent-side: rebuild the exact in-process result types from JSON."""
    if op == "ppr":
        return [
            [(int(node), float(score)) for node, score in row] for row in result
        ]
    if op == "ego":
        from repro.models.shadowsaint import _EgoGraph

        return [
            _EgoGraph(
                nodes=np.asarray(e["nodes"], dtype=np.int64),
                src=np.asarray(e["src"], dtype=np.int64),
                dst=np.asarray(e["dst"], dtype=np.int64),
                rel=np.asarray(e["rel"], dtype=np.int64),
            )
            for e in result
        ]
    if op in ("sparql", "sparql_stream"):
        return {
            "variables": list(result["variables"]),
            "columns": {
                variable: np.asarray(column, dtype=np.int64)
                for variable, column in result["columns"].items()
            },
        }
    return result


# -- parent-side transports ---------------------------------------------------

#: ``on_stats(worker_index, stats)`` records a piggybacked stats snapshot.
StatsSink = Callable[[int, dict], None]
#: ``on_disconnect(transport)`` tells the lifecycle layer the peer is gone.
DisconnectSink = Callable[["WorkerTransport"], None]


class WorkerTransport:
    """Parent-side channel to one worker (one incarnation of one slot).

    A transport is single-incarnation: ``start()`` once, ``request()``
    until the peer dies or ``close()``; the pool's lifecycle layer builds
    a *new* transport to respawn/reconnect a slot, so "is this disconnect
    stale?" is an identity check, never a state machine.  All methods are
    thread-safe; ``request`` returns a future resolved off-thread by the
    transport's reader.
    """

    kind = "?"

    def __init__(self, index: int, on_stats: StatsSink, on_disconnect: DisconnectSink):
        self.index = index
        self.closed = False
        self._on_stats = on_stats
        self._on_disconnect = on_disconnect
        self._lock = threading.Lock()
        self._inflight: Dict[int, Tuple[str, concurrent.futures.Future]] = {}
        self._request_ids = itertools.count()

    # -- interface --

    def start(self) -> None:
        """Spawn/connect the worker; blocking until it answers."""
        raise NotImplementedError

    def request(self, op: str, payload: dict) -> concurrent.futures.Future:
        """Send one op; the returned future resolves off-thread."""
        raise NotImplementedError

    def close(self) -> None:
        """Tear down the channel (and, for local workers, the process)."""
        raise NotImplementedError

    def alive(self) -> bool:
        raise NotImplementedError

    def pid(self) -> Optional[int]:
        """Worker process id when it runs on this machine (else None)."""
        return None

    def describe(self) -> dict:
        return {"kind": self.kind}

    # -- shared bookkeeping --

    def inflight_depth(self) -> int:
        """Requests currently awaiting this worker (the load signal)."""
        with self._lock:
            return len(self._inflight)

    def _track(self, op: str) -> Tuple[int, concurrent.futures.Future]:
        future: concurrent.futures.Future = concurrent.futures.Future()
        with self._lock:
            request_id = next(self._request_ids)
            self._inflight[request_id] = (op, future)
        return request_id, future

    def _untrack(self, request_id: int) -> Optional[Tuple[str, concurrent.futures.Future]]:
        with self._lock:
            return self._inflight.pop(request_id, None)

    def _fail_inflight(self) -> None:
        with self._lock:
            stale = list(self._inflight.values())
            self._inflight = {}
        for _op, future in stale:
            if not future.done():
                future.set_exception(
                    WorkerCrashed(
                        f"pool worker {self.index} died with this request in flight"
                    )
                )


class LocalProcessTransport(WorkerTransport):
    """The classic same-machine worker: mp child + pipe + reader thread.

    Python objects cross via pickle (parameters out, numpy buffers back);
    a dedicated reader thread blocks on the pipe and resolves futures, so
    the pool works from plain threads (``asyncio.to_thread``) and from
    synchronous code without an event loop.
    """

    kind = "local"

    def __init__(
        self,
        ctx,
        index: int,
        on_stats: StatsSink,
        on_disconnect: DisconnectSink,
    ):
        super().__init__(index, on_stats, on_disconnect)
        self._ctx = ctx
        self.process = None
        self.conn = None
        self.reader: Optional[threading.Thread] = None

    def start(self) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self.index),
            name=f"tosg-pool-worker-{self.index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        self.process = process
        self.conn = parent_conn
        reader = threading.Thread(
            target=self._read_loop,
            args=(parent_conn,),
            name=f"tosg-pool-reader-{self.index}",
            daemon=True,
        )
        self.reader = reader
        reader.start()

    def _read_loop(self, conn) -> None:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError, ValueError, TypeError):
                # EOF/OSError: the worker died or the pipe closed.
                # ValueError/TypeError: close() invalidated the connection
                # object while this thread was blocked inside recv().
                break
            request_id, status, result, stats = message
            if stats is not None:
                self._on_stats(self.index, stats)
            entry = self._untrack(request_id)
            if entry is None:
                continue  # request already failed (e.g. during close)
            _op, future = entry
            if status == "ok":
                future.set_result(result)
            else:
                future.set_exception(_reraise(*result))
        self._fail_inflight()
        self._on_disconnect(self)

    def request(self, op: str, payload: dict) -> concurrent.futures.Future:
        with self._lock:
            if self.closed:
                raise WorkerCrashed(f"pool worker {self.index} is shut down")
            conn = self.conn
            request_id = next(self._request_ids)
            future: concurrent.futures.Future = concurrent.futures.Future()
            self._inflight[request_id] = (op, future)
            try:
                conn.send((request_id, op, payload))
            except (BrokenPipeError, OSError, ValueError):
                self._inflight.pop(request_id, None)
                raise WorkerCrashed(
                    f"pool worker {self.index} pipe is closed"
                ) from None
        return future

    def alive(self) -> bool:
        return (
            not self.closed
            and self.process is not None
            and self.process.is_alive()
        )

    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None

    def close(self) -> None:
        with self._lock:
            self.closed = True
            conn, process = self.conn, self.process
        if conn is not None:
            try:
                conn.send((next(self._request_ids), "shutdown", {}))
            except (BrokenPipeError, OSError, ValueError):
                pass
        if process is not None:
            process.join(timeout=SHUTDOWN_GRACE_SECONDS)
            if process.is_alive():  # pragma: no cover - unresponsive worker
                process.terminate()
                process.join(timeout=SHUTDOWN_GRACE_SECONDS)
        if conn is not None:
            conn.close()


class RemoteTcpTransport(WorkerTransport):
    """A standalone ``repro serve-worker`` over newline-delimited JSON/TCP.

    Requests ship as ``{"id", "op", "payload"}`` lines; the worker answers
    ``{"id", "status", "result", "stats"}`` in any order (the id pairs
    them), and a reader thread resolves futures exactly like the local
    pipe transport — the pool cannot tell the two apart above this layer.

    ``close()`` drops only the connection: a remote worker is its own
    process with its own lifecycle (it may serve other parents), so the
    pool never stops it — reconnecting is the respawn path.
    """

    kind = "remote"

    def __init__(
        self,
        address: str,
        index: int,
        on_stats: StatsSink,
        on_disconnect: DisconnectSink,
    ):
        super().__init__(index, on_stats, on_disconnect)
        host, _, port_text = address.rpartition(":")
        try:
            port = int(port_text)
        except ValueError:
            port = -1
        if not host or not (0 < port < 65536):
            raise ValueError(
                f"remote worker address must be HOST:PORT, got {address!r}"
            )
        self.address = address
        self._host = host
        self._port = port
        self._sock: Optional[socket.socket] = None
        self._rfile = None
        self._send_lock = threading.Lock()
        self.reader: Optional[threading.Thread] = None

    def start(self) -> None:
        sock = socket.create_connection(
            (self._host, self._port), timeout=CONNECT_TIMEOUT_SECONDS
        )
        sock.settimeout(None)
        self._sock = sock
        self._rfile = sock.makefile("rb")
        reader = threading.Thread(
            target=self._read_loop,
            args=(self._rfile,),
            name=f"tosg-remote-reader-{self.index}",
            daemon=True,
        )
        self.reader = reader
        reader.start()
        # Liveness probe: a refused/ dead endpoint fails here, inside the
        # caller's spawn path, instead of on the first routed request.
        self.request("ping", {}).result(timeout=CONNECT_TIMEOUT_SECONDS)

    def request(self, op: str, payload: dict) -> concurrent.futures.Future:
        if self.closed:
            raise WorkerCrashed(f"pool worker {self.index} is shut down")
        check_remote_payload(op, payload)
        request_id, future = self._track(op)
        try:
            data = encode_frame({"id": request_id, "op": op, "payload": payload})
        except (TypeError, ValueError):
            self._untrack(request_id)
            raise
        try:
            with self._send_lock:
                self._sock.sendall(data)
        except (OSError, AttributeError):
            self._untrack(request_id)
            raise WorkerCrashed(
                f"pool worker {self.index} connection to "
                f"{self.address} is closed"
            ) from None
        return future

    def _read_loop(self, rfile) -> None:
        while True:
            try:
                line = rfile.readline(_max_line_bytes() + 1)
            except (OSError, ValueError):
                break
            if not line or not line.endswith(b"\n"):
                break  # EOF, peer reset, or an over-long/truncated frame
            try:
                message = json.loads(line)
            except ValueError:
                break  # protocol corruption: treat the peer as gone
            if not isinstance(message, dict):
                break
            stats = message.get("stats")
            if stats is not None:
                self._on_stats(self.index, stats)
            entry = self._untrack(message.get("id"))
            if entry is None:
                continue
            op, future = entry
            if message.get("status") == "ok":
                try:
                    future.set_result(decode_result(op, message.get("result")))
                except Exception as exc:  # malformed result payload
                    future.set_exception(
                        WorkerError(f"undecodable {op!r} result: {exc}")
                    )
            else:
                error = message.get("result") or ["WorkerError", "unspecified"]
                future.set_exception(_reraise(str(error[0]), str(error[1])))
        self._fail_inflight()
        self._on_disconnect(self)

    def alive(self) -> bool:
        return (
            not self.closed and self.reader is not None and self.reader.is_alive()
        )

    def close(self) -> None:
        # Drop the link only — the standalone worker keeps running.
        with self._lock:
            self.closed = True
        sock = self._sock
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass

    def describe(self) -> dict:
        return {"kind": "remote", "address": self.address}


# -- the standalone worker server (`repro serve-worker`) ----------------------


@dataclass
class _WireFrame:
    """One parsed request line (or a framing error that closes the link)."""

    request_id: Any = None
    op: Optional[str] = None
    payload: dict = field(default_factory=dict)
    error: Optional[str] = None
    last: bool = False


async def _read_wire_frame(reader: asyncio.StreamReader) -> Optional[_WireFrame]:
    """Read one ndjson frame; None at EOF; error frames answer + close.

    Wire hardening, mirroring the front ends: an over-long line and
    unparseable bytes each produce one structured error response and then
    close the connection (resynchronizing inside a corrupt byte stream is
    guesswork); a partial frame at EOF is dropped without dispatching —
    half a request must never execute.
    """
    try:
        line = await reader.readline()
    except ValueError:
        return _WireFrame(
            error=f"frame exceeds {_max_line_bytes()} bytes", last=True
        )
    if not line:
        return None
    if not line.endswith(b"\n"):
        return None  # partial frame at EOF: drop, never dispatch
    try:
        message = json.loads(line)
    except ValueError:
        return _WireFrame(error="invalid JSON frame", last=True)
    if not isinstance(message, dict) or not isinstance(message.get("op"), str):
        return _WireFrame(
            error="frame must be a JSON object with a string 'op'", last=True
        )
    payload = message.get("payload", {})
    if not isinstance(payload, dict):
        return _WireFrame(error="'payload' must be a JSON object", last=True)
    return _WireFrame(
        request_id=message.get("id"), op=message["op"], payload=payload
    )


async def _write_wire_response(writer: asyncio.StreamWriter, response: dict) -> None:
    writer.write(encode_frame(response))
    await writer.drain()


class WorkerServer:
    """The state of one standalone worker: its shard of graphs.

    Execution is serialized by a lock — a standalone worker is the same
    shard abstraction as a pooled process child, and the lockstep-ingest
    contract (no request interleaves with a half-applied delta) depends
    on one-at-a-time execution.  Connections only add pipelining.
    """

    def __init__(self) -> None:
        self._graphs: Dict[str, dict] = {}
        self._execute_lock = threading.Lock()

    def register_local(self, payload: dict) -> List[str]:
        """Pre-register a graph from the CLI (same payload as the wire op).

        A later ``register`` op from a parent with the same name is then
        the usual idempotent no-op, so pre-registration turns the
        parent's registration round-trip into O(1).
        """
        return self.execute("register", dict(payload))[0]

    def graphs(self) -> List[str]:
        with self._execute_lock:
            return sorted(self._graphs)

    def execute(self, op: str, payload: dict) -> Tuple[Any, Optional[dict]]:
        """One op → (result, piggybacked stats); serial, like a pool child."""
        with self._execute_lock:
            result = _execute_op(self._graphs, op, payload)
            graph_name = payload.get("graph") or payload.get("name")
            stats = None
            if graph_name in self._graphs:
                stats = {
                    "graph": graph_name,
                    **_worker_graph_stats(self._graphs[graph_name]),
                }
            return result, stats


async def serve_worker(
    server: WorkerServer,
    host: str = "127.0.0.1",
    port: int = 0,
) -> asyncio.AbstractServer:
    """Serve ``server`` over ndjson TCP; ``port=0`` picks a free port.

    Reuses :func:`~repro.serve.wire.serve_pipelined`: pipelined frames on
    one connection are parsed concurrently and answered strictly in
    order, while execution itself stays serial in :class:`WorkerServer`.
    """

    async def respond(frame: _WireFrame) -> dict:
        if frame.error is not None:
            return {
                "id": frame.request_id,
                "status": "error",
                "result": ["BadRequest", frame.error],
            }
        try:
            payload = decode_request_payload(frame.op, dict(frame.payload))
            result, stats = await asyncio.to_thread(
                server.execute, frame.op, payload
            )
            response = {
                "id": frame.request_id,
                "status": "ok",
                "result": encode_result(frame.op, result),
            }
            if stats is not None:
                response["stats"] = stats
            return response
        except BaseException as exc:  # noqa: BLE001 - shipped to the parent
            return {
                "id": frame.request_id,
                "status": "error",
                "result": [type(exc).__name__, str(exc)],
            }

    async def handler(reader, writer):
        from repro.serve.wire import serve_pipelined

        await serve_pipelined(
            reader,
            writer,
            read_frame=_read_wire_frame,
            respond=respond,
            write_response=_write_wire_response,
        )

    return await asyncio.start_server(
        handler, host, port, limit=_max_line_bytes()
    )
