"""The serving-side model registry: checkpoints in, warm models out.

:class:`ModelRegistry` is to trained parameters what
:func:`repro.kg.cache.artifacts_for` is to graph artifacts — the single
construction point that makes "which model answers this request" a cache
lookup instead of a load.  Checkpoints are registered by *path*; only the
O(header) metadata (:func:`~repro.nn.checkpoint.read_checkpoint_meta`) is
read eagerly, so the parent process of a worker pool can route on
architecture / task / recorded metric / parameter count without ever
holding model parameters.  The full checkpoint is loaded and the model
rebuilt lazily, on the first request that actually needs it, and cached
under its ``(graph, task, architecture, epoch)`` identity for every later
request — the same double-checked idiom ``artifacts_for`` uses.  The
epoch component ties built state (model, logits, target positions) to
one immutable graph snapshot: a ``POST /triples`` ingest bumps the
graph's epoch and calls :meth:`invalidate_graph`, so the next request
rebuilds against the merged graph while in-flight windows pinned to an
older epoch keep their own entries — ``/predict`` answers never mix
epochs (see ``repro/kg/epoch.py`` and ``docs/live-graphs.md``).

The registry also owns the **full-target logits cache** for node
classification: the first NC request against a model triggers one
vectorized ``predict_logits()`` pass over *all* task targets, and every
subsequent request is a row gather.  Because the gather is taken from the
identical full-target computation the scalar oracle performs, cached
answers are bit-exact with uncached ones by construction.

Thread-safe: models are built on coalescer worker threads while the
event loop routes; counters (``hits`` / ``loads``) feed ``/metrics``.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nn.checkpoint import (
    CheckpointError,
    load_checkpoint,
    read_checkpoint_meta,
)

__all__ = ["ModelRegistry"]

#: Registry identity of one checkpoint: (graph name, task name, architecture).
Key = Tuple[str, str, str]

#: Identity of built state: a checkpoint identity pinned to a graph epoch.
BuiltKey = Tuple[str, str, str, int]


class ModelRegistry:
    """Lazily-loading cache of checkpointed models, keyed per graph×task×arch.

    Checkpoint *registrations* (paths + metadata) are epoch-independent;
    *built* state is keyed with an extra epoch component so one registry
    can serve several snapshots of a live graph without mixing them.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._paths: Dict[Key, str] = {}
        self._meta: Dict[Key, dict] = {}
        self._models: Dict[BuiltKey, object] = {}
        self._logits: Dict[BuiltKey, np.ndarray] = {}
        self._positions: Dict[BuiltKey, dict] = {}
        self.hits = 0  # cache hits: a request found its model already built
        self.loads = 0  # checkpoint loads: full parse + model rebuild

    # -- registration ---------------------------------------------------------

    def add(self, graph: str, path: str, expected_graph: Optional[str] = None) -> dict:
        """Register the checkpoint at ``path`` under serving name ``graph``.

        Reads only the header (cheap, validates magic/version/CRC).
        ``expected_graph`` — the registered graph's ``kg.name`` — makes
        graph skew loud at registration time instead of at first request.
        Re-adding the same path is a no-op; a *different* checkpoint for an
        already-registered ``(graph, task, architecture)`` is an error.
        """
        meta = read_checkpoint_meta(path)
        if expected_graph is not None and meta["graph"] != expected_graph:
            raise CheckpointError(
                f"{path}: checkpoint was trained on graph {meta['graph']!r} "
                f"but graph {graph!r} serves {expected_graph!r}"
            )
        key: Key = (graph, meta["task_name"], meta["architecture"])
        with self._lock:
            existing = self._paths.get(key)
            if existing is not None and existing != path:
                raise ValueError(
                    f"graph {graph!r} already serves task {meta['task_name']!r} "
                    f"with a {meta['architecture']} checkpoint ({existing})"
                )
            self._paths[key] = path
            self._meta[key] = meta
        return meta

    def paths(self) -> List[str]:
        """Every registered checkpoint path (registration order not kept)."""
        with self._lock:
            return sorted(set(self._paths.values()))

    def candidates(self, graph: str, task: str) -> List[Tuple[str, dict]]:
        """``(architecture, meta)`` per checkpoint able to answer ``task``.

        Sorted by architecture name so routing tie-breaks are
        deterministic across processes and runs.
        """
        with self._lock:
            return sorted(
                (key[2], meta)
                for key, meta in self._meta.items()
                if key[0] == graph and key[1] == task
            )

    def tasks(self, graph: str) -> List[str]:
        with self._lock:
            return sorted({key[1] for key in self._meta if key[0] == graph})

    def meta(self, graph: str, task: str, architecture: str) -> dict:
        with self._lock:
            meta = self._meta.get((graph, task, architecture))
        if meta is None:
            raise KeyError(
                f"no {architecture} checkpoint for task {task!r} on graph {graph!r}"
            )
        return meta

    # -- lazy model construction ----------------------------------------------

    def model(self, graph: str, task: str, architecture: str, kg, epoch: int = 0):
        """The warm model for ``(graph, task, architecture)`` at ``epoch``.

        The slow path (checkpoint parse + model rebuild + parameter load)
        runs outside the lock; a double-check keeps one build per key even
        when concurrent windows race, mirroring ``artifacts_for``.  ``kg``
        must be the graph snapshot ``epoch`` names — the built model holds
        a reference to it, which is exactly why built state is epoch-keyed.
        """
        key: BuiltKey = (graph, task, architecture, int(epoch))
        with self._lock:
            model = self._models.get(key)
            if model is not None:
                self.hits += 1
                return model
            path = self._paths.get(key[:3])
        if path is None:
            raise KeyError(
                f"no {architecture} checkpoint for task {task!r} on graph {graph!r}"
            )
        built = load_checkpoint(path).build_model(kg)
        with self._lock:
            model = self._models.get(key)
            if model is not None:
                self.hits += 1
                return model
            self._models[key] = built
            self.loads += 1
        return built

    def logits(
        self, graph: str, task: str, architecture: str, kg, epoch: int = 0
    ) -> np.ndarray:
        """Cached full-target NC logits (one vectorized pass, then gathers)."""
        key: BuiltKey = (graph, task, architecture, int(epoch))
        with self._lock:
            cached = self._logits.get(key)
        if cached is not None:
            return cached
        logits = self.model(graph, task, architecture, kg, epoch).predict_logits()
        with self._lock:
            return self._logits.setdefault(key, logits)

    def target_positions(
        self, graph: str, task: str, architecture: str, kg, epoch: int = 0
    ) -> dict:
        """``node id -> row`` lookup into the task's target/logits order."""
        key: BuiltKey = (graph, task, architecture, int(epoch))
        with self._lock:
            cached = self._positions.get(key)
        if cached is not None:
            return cached
        targets = self.model(graph, task, architecture, kg, epoch).task.target_nodes
        positions = {int(node): index for index, node in enumerate(targets)}
        with self._lock:
            return self._positions.setdefault(key, positions)

    def invalidate_graph(self, graph: str, keep_epoch: Optional[int] = None) -> int:
        """Drop ``graph``'s built state (models, logits, positions).

        Checkpoint registrations (paths + metadata) survive — they are
        epoch-independent — so the next request rebuilds from the same
        files against the new snapshot.  ``keep_epoch`` preserves entries
        already built at that epoch (the one the caller is moving *to*).
        Returns the number of built models dropped.
        """
        with self._lock:
            dropped = 0
            for cache in (self._models, self._logits, self._positions):
                stale = [
                    key
                    for key in cache
                    if key[0] == graph
                    and (keep_epoch is None or key[3] != int(keep_epoch))
                ]
                for key in stale:
                    del cache[key]
                if cache is self._models:
                    dropped = len(stale)
            return dropped

    # -- observability --------------------------------------------------------

    def snapshot(self) -> dict:
        """Registry state for ``/metrics``: per-checkpoint meta + counters."""
        with self._lock:
            checkpoints = [
                {
                    "graph": key[0],
                    "task": key[1],
                    "architecture": key[2],
                    "task_type": self._meta[key]["task_type"],
                    "num_parameters": self._meta[key]["num_parameters"],
                    "metrics": self._meta[key]["metrics"],
                    "loaded": any(built[:3] == key for built in self._models),
                    "path": self._paths[key],
                }
                for key in sorted(self._meta)
            ]
            return {
                "checkpoints": checkpoints,
                "loaded": len({built[:3] for built in self._models}),
                "hits": self.hits,
                "loads": self.loads,
            }
