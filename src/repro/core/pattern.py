"""The TOSG generic graph pattern (Figure 3) compiled to SPARQL subqueries.

The pattern has two parameters (Section IV-C): predicate **direction**
``d`` (1 = outgoing only, 2 = outgoing and incoming) and hop count ``h``.
Around every target vertex ``?v`` of the task's class, the pattern collects
all triples reachable within ``h`` hops following allowed directions.

A (d, h) pattern expands into ``sum_{k=1..h} d^k`` subqueries — one per
direction sequence per hop level — because each hop level contributes its
own triples to KG′ and Algorithm 3 paginates "each subquery independently"
to exploit per-subquery index locality.  For ``d2h1`` this yields exactly
the two UNION arms of the paper's ``Q_d2h1``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional

from repro.kg.graph import KnowledgeGraph
from repro.core.tasks import GNNTask, LinkPredictionTask
from repro.sparql.ast import BGP, IRI, Projection, RDF_TYPE, SelectQuery, TriplePattern, Var


@dataclass(frozen=True)
class GraphPattern:
    """The (d, h) parameterisation of the generic graph pattern."""

    direction: int = 1
    hops: int = 1

    def __post_init__(self) -> None:
        if self.direction not in (1, 2):
            raise ValueError(f"direction must be 1 or 2, got {self.direction}")
        if self.hops < 1:
            raise ValueError(f"hops must be >= 1, got {self.hops}")

    @property
    def label(self) -> str:
        """The paper's naming: d1h1, d2h1, d1h2, d2h2, ..."""
        return f"d{self.direction}h{self.hops}"

    def direction_sequences(self, hop_level: int) -> List[tuple[str, ...]]:
        """All direction sequences of length ``hop_level``.

        ``d=1`` allows only outgoing steps; ``d=2`` allows both at every hop.
        """
        choices = ("out",) if self.direction == 1 else ("out", "in")
        return list(itertools.product(choices, repeat=hop_level))


@dataclass(frozen=True)
class TOSGSubquery:
    """One pageable unit of Algorithm 3's query batch ``QB``.

    ``kind='spo'`` queries project full ``?s ?p ?o`` triples.
    ``kind='bridge'`` queries project ``?s ?o`` pairs of the LP task's
    predicate ``p_T`` (attached in code), implementing the paper's extra
    triple pattern ``⟨?v_Ti, p_T, ?v_Tj⟩`` between the two target subgraphs.
    """

    query: SelectQuery
    kind: str
    description: str
    bridge_predicate: Optional[int] = None


def _hop_query(class_iri: str, sequence: tuple[str, ...]) -> SelectQuery:
    """Build the subquery for one direction sequence.

    The BGP anchors at ``?v a <class>`` and chains one triple pattern per
    hop; only the **last** hop's triple is projected as (s, p, o) — earlier
    hops are covered by the shorter sequences' subqueries.
    """
    patterns: List[TriplePattern] = [
        TriplePattern(Var("v"), IRI(RDF_TYPE), IRI(class_iri))
    ]
    frontier = Var("v")
    last_pattern: Optional[TriplePattern] = None
    for hop_index, step in enumerate(sequence, start=1):
        predicate = Var(f"p{hop_index}")
        other = Var(f"o{hop_index}")
        if step == "out":
            last_pattern = TriplePattern(frontier, predicate, other)
        else:
            last_pattern = TriplePattern(other, predicate, frontier)
        patterns.append(last_pattern)
        frontier = other
    assert last_pattern is not None
    projections = (
        Projection(last_pattern.s, Var("s")),
        Projection(last_pattern.p, Var("p")),
        Projection(last_pattern.o, Var("o")),
    )
    return SelectQuery(projections, BGP(tuple(patterns)))


def _bridge_query(head_iri: str, tail_iri: str, predicate_iri: str) -> SelectQuery:
    """``?s a <head>. ?o a <tail>. ?s <p_T> ?o`` projected as (s, o)."""
    patterns = (
        TriplePattern(Var("s"), IRI(RDF_TYPE), IRI(head_iri)),
        TriplePattern(Var("o"), IRI(RDF_TYPE), IRI(tail_iri)),
        TriplePattern(Var("s"), IRI(predicate_iri), Var("o")),
    )
    projections = (Projection(Var("s")), Projection(Var("o")))
    return SelectQuery(projections, BGP(patterns))


def build_subqueries(
    kg: KnowledgeGraph, task: GNNTask, pattern: GraphPattern
) -> List[TOSGSubquery]:
    """Compile the generic graph pattern for ``task`` into subqueries.

    One ``spo`` subquery per (target class × hop level × direction
    sequence); for LP tasks an additional ``bridge`` subquery ties the head
    and tail target subgraphs together via ``p_T``.
    """
    subqueries: List[TOSGSubquery] = []
    for class_id in task.target_classes():
        class_iri = kg.class_vocab.term(class_id)
        for hop_level in range(1, pattern.hops + 1):
            for sequence in pattern.direction_sequences(hop_level):
                query = _hop_query(class_iri, sequence)
                subqueries.append(
                    TOSGSubquery(
                        query=query,
                        kind="spo",
                        description=f"{class_iri} {'→'.join(sequence)}",
                    )
                )
    if isinstance(task, LinkPredictionTask):
        predicate_iri = kg.relation_vocab.term(int(task.predicate))
        head_iri = kg.class_vocab.term(int(task.head_class))
        tail_iri = kg.class_vocab.term(int(task.tail_class))
        subqueries.append(
            TOSGSubquery(
                query=_bridge_query(head_iri, tail_iri, predicate_iri),
                kind="bridge",
                description=f"bridge {head_iri} -{predicate_iri}-> {tail_iri}",
                bridge_predicate=int(task.predicate),
            )
        )
    return subqueries
