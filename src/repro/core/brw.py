"""Algorithm 1 — Biased Random Walk (BRW) sampling.

URW's pathology (Figure 2) is that roots are drawn uniformly over all
nodes.  BRW biases the walk "toward graph regions centered around the
target vertices": the initial vertex set is drawn from ``V_T`` itself
(``getInitialVertices``), walks expand ``h`` hops, and the induced subgraph
over every visited node (``extractSubgraph``) interlinks the local
neighbourhoods into one TOSG that preserves the task's global structure.
"""

from __future__ import annotations

import numpy as np

from repro.kg.cache import artifacts_for
from repro.kg.graph import KnowledgeGraph
from repro.core.tasks import GNNTask
from repro.sampling.urw import SampledSubgraph
from repro.sampling.walks import RandomWalkEngine


class BiasedRandomWalkSampler:
    """Task-biased random-walk TOSG extraction (paper Algorithm 1).

    Parameters
    ----------
    kg:
        The full knowledge graph.
    walk_length:
        ``h`` — how far neighbours are included (paper default 3).
    batch_size:
        ``bs`` — number of initial target vertices (paper default 20 000;
        capped at ``|V_T|``).
    """

    name = "BRW"

    def __init__(self, kg: KnowledgeGraph, walk_length: int = 3, batch_size: int = 20000):
        if walk_length < 1:
            raise ValueError("walk_length must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.kg = kg
        self.walk_length = walk_length
        self.batch_size = batch_size

    @property
    def engine(self) -> RandomWalkEngine:
        return artifacts_for(self.kg).walk_engine("both")

    def _initial_vertices(self, task: GNNTask, rng: np.random.Generator) -> np.ndarray:
        """``getInitialVertices(bs, A.V_T)`` — random targets, no replacement."""
        targets = task.target_nodes
        if len(targets) == 0:
            raise ValueError(f"task {task.name} has no target vertices")
        size = min(self.batch_size, len(targets))
        return rng.choice(targets, size=size, replace=False)

    def sample(self, task: GNNTask, rng: np.random.Generator) -> SampledSubgraph:
        """Run Algorithm 1 and return KG′ with its id mapping."""
        initial = self._initial_vertices(task, rng)
        visited = self.engine.walk(initial, self.walk_length, rng)
        sampled = np.unique(np.concatenate([initial, visited]))
        subgraph, mapping = self.kg.induced_subgraph(
            sampled, name=f"{self.kg.name}-brw"
        )
        return SampledSubgraph(
            subgraph=subgraph,
            mapping=mapping,
            root_nodes=np.asarray(initial, dtype=np.int64),
            sampler=self.name,
        )
