"""Algorithm 2 — Influence-Based Sampling (IBS).

Expands from target vertices to the neighbours that most influence their
final-layer embeddings (Equation 3).  Following the paper, the influence
score ``I(v, u)`` is approximated with Personalized PageRank
(Andersen–Chung–Lang push, :mod:`repro.sampling.ppr`): for each target the
top-``k`` highest-PPR neighbours are selected (``SelectTopK-Nodes``), the
pairs form a partition of ``bs`` targets (``getPartition``), and the
node-induced subgraph over the partition is KG′.

The per-target PPR pushes run through the vectorized batch kernel
(:func:`repro.sampling.ppr.batch_ppr_top_k`): all targets advance in
lock-step over flat numpy state instead of one pure-Python push per target
behind a GIL-bound thread pool.  The cost profile the paper reports —
IBS preprocessing is expensive *relative to index-backed extraction*
(Figure 8's time columns) — still holds, but the constant factor no longer
comes from interpreter overhead.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.kg.cache import artifacts_for
from repro.kg.graph import KnowledgeGraph
from repro.core.tasks import GNNTask
from repro.sampling.ppr import batch_ppr_top_k
from repro.sampling.urw import SampledSubgraph


class InfluenceBasedSampler:
    """Task-oriented PPR sampling (paper Algorithm 2).

    Parameters
    ----------
    kg:
        The full knowledge graph.
    top_k:
        Influential neighbours kept per target (paper default 16).
    batch_size:
        ``bs`` — number of targets in the partition (paper default 20 000).
    alpha / eps:
        PPR teleport probability and push tolerance (paper: 0.25 / 2e-4).
    workers:
        Deprecated no-op.  The per-target thread pool ("the functions at
        lines 2 to 4 are parallelized using multi-threading") is superseded
        by the vectorized batch kernel, which needs no threads.
    chunk_size:
        Targets per dense batch-kernel chunk; ``None`` sizes chunks to keep
        each dense kernel matrix around 64 MB (a few such matrices live at
        once — scores, residuals, queue state).
    """

    name = "IBS"

    def __init__(
        self,
        kg: KnowledgeGraph,
        top_k: int = 16,
        batch_size: int = 20000,
        alpha: float = 0.25,
        eps: float = 2e-4,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
    ):
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if workers is not None:
            warnings.warn(
                "InfluenceBasedSampler(workers=...) is deprecated and ignored: "
                "the batched PPR kernel runs all targets in one vectorized pass",
                DeprecationWarning,
                stacklevel=2,
            )
        self.kg = kg
        self.top_k = top_k
        self.batch_size = batch_size
        self.alpha = alpha
        self.eps = eps
        self.workers = workers
        self.chunk_size = chunk_size

    @property
    def adjacency(self) -> sp.csr_matrix:
        """Undirected homogeneous projection used for influence scores."""
        return artifacts_for(self.kg).csr("both")

    def influence_pairs(self, targets: np.ndarray) -> Dict[int, List[Tuple[int, float]]]:
        """``getInfluenceScore`` + ``SelectTopK-Nodes`` for the whole batch."""
        return batch_ppr_top_k(
            self.adjacency,
            np.asarray(targets, dtype=np.int64),
            self.top_k,
            alpha=self.alpha,
            eps=self.eps,
            chunk_size=self.chunk_size,
        )

    def sample(self, task: GNNTask, rng: np.random.Generator) -> SampledSubgraph:
        """Run Algorithm 2 and return KG′ with its id mapping."""
        targets = task.target_nodes
        if len(targets) == 0:
            raise ValueError(f"task {task.name} has no target vertices")
        size = min(self.batch_size, len(targets))
        chosen = rng.choice(targets, size=size, replace=False)
        pairs = self.influence_pairs(chosen)
        partition: set[int] = {int(t) for t in chosen}
        for target, ranked in pairs.items():
            partition.update(node for node, _score in ranked)
        nodes = np.asarray(sorted(partition), dtype=np.int64)
        subgraph, mapping = self.kg.induced_subgraph(nodes, name=f"{self.kg.name}-ibs")
        return SampledSubgraph(
            subgraph=subgraph,
            mapping=mapping,
            root_nodes=np.asarray(chosen, dtype=np.int64),
            sampler=self.name,
        )
