"""Algorithm 2 — Influence-Based Sampling (IBS).

Expands from target vertices to the neighbours that most influence their
final-layer embeddings (Equation 3).  Following the paper, the influence
score ``I(v, u)`` is approximated with Personalized PageRank
(Andersen–Chung–Lang push, :mod:`repro.sampling.ppr`): for each target the
top-``k`` highest-PPR neighbours are selected (``SelectTopK-Nodes``), the
pairs form a partition of ``bs`` targets (``getPartition``), and the
node-induced subgraph over the partition is KG′.

The deliberate cost profile of this method matters to the evaluation: per-
target PPR makes IBS expensive on dense graphs, which is why the paper's
SPARQL-based method exists (Figure 8's time columns).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.kg.graph import KnowledgeGraph
from repro.core.tasks import GNNTask
from repro.sampling.ppr import ppr_top_k
from repro.sampling.urw import SampledSubgraph
from repro.transform.adjacency import build_csr


class InfluenceBasedSampler:
    """Task-oriented PPR sampling (paper Algorithm 2).

    Parameters
    ----------
    kg:
        The full knowledge graph.
    top_k:
        Influential neighbours kept per target (paper default 16).
    batch_size:
        ``bs`` — number of targets in the partition (paper default 20 000).
    alpha / eps:
        PPR teleport probability and push tolerance (paper: 0.25 / 2e-4).
    workers:
        Thread-pool width for the per-target PPR runs ("the functions at
        lines 2 to 4 are parallelized using multi-threading").
    """

    name = "IBS"

    def __init__(
        self,
        kg: KnowledgeGraph,
        top_k: int = 16,
        batch_size: int = 20000,
        alpha: float = 0.25,
        eps: float = 2e-4,
        workers: int = 4,
    ):
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.kg = kg
        self.top_k = top_k
        self.batch_size = batch_size
        self.alpha = alpha
        self.eps = eps
        self.workers = workers
        self._adjacency: Optional[sp.csr_matrix] = None

    @property
    def adjacency(self) -> sp.csr_matrix:
        """Undirected homogeneous projection used for influence scores."""
        if self._adjacency is None:
            self._adjacency = build_csr(self.kg, direction="both")
        return self._adjacency

    def influence_pairs(self, targets: np.ndarray) -> Dict[int, List[Tuple[int, float]]]:
        """``getInfluenceScore`` + ``SelectTopK-Nodes`` per target."""
        adjacency = self.adjacency

        def run(target: int) -> Tuple[int, List[Tuple[int, float]]]:
            return target, ppr_top_k(
                adjacency, int(target), self.top_k, alpha=self.alpha, eps=self.eps
            )

        if self.workers <= 1:
            results = [run(int(t)) for t in targets]
        else:
            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                results = list(pool.map(run, [int(t) for t in targets]))
        return dict(results)

    def sample(self, task: GNNTask, rng: np.random.Generator) -> SampledSubgraph:
        """Run Algorithm 2 and return KG′ with its id mapping."""
        targets = task.target_nodes
        if len(targets) == 0:
            raise ValueError(f"task {task.name} has no target vertices")
        size = min(self.batch_size, len(targets))
        chosen = rng.choice(targets, size=size, replace=False)
        pairs = self.influence_pairs(chosen)
        partition: set[int] = {int(t) for t in chosen}
        for target, ranked in pairs.items():
            partition.update(node for node, _score in ranked)
        nodes = np.asarray(sorted(partition), dtype=np.int64)
        subgraph, mapping = self.kg.induced_subgraph(nodes, name=f"{self.kg.name}-ibs")
        return SampledSubgraph(
            subgraph=subgraph,
            mapping=mapping,
            root_nodes=np.asarray(chosen, dtype=np.int64),
            sampler=self.name,
        )
