"""Multi-label node classification (Definition 2.2, second half).

The paper defines multi-label NC ("predict the presence or absence of
multiple labels for each node, e.g., predicting keywords of a paper") but
evaluates only single-label tasks.  This module completes the definition:
a multi-label task type, its subgraph remapping, and micro-F1 — the usual
multi-label metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.kg.graph import KnowledgeGraph, SubgraphMapping
from repro.core.tasks import Split


@dataclass
class MultiLabelNodeClassificationTask:
    """``NC(KG, V_T, c_T)`` with independent binary labels per target.

    ``labels`` is a ``(num_targets, num_labels)`` 0/1 matrix.
    """

    name: str
    target_class: int
    target_nodes: np.ndarray
    labels: np.ndarray
    split: Split
    metric: str = "micro-f1"
    kg_name: str = ""

    task_type: str = field(default="NC-ML", init=False)

    def __post_init__(self) -> None:
        self.target_nodes = np.asarray(self.target_nodes, dtype=np.int64)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if self.labels.ndim != 2:
            raise ValueError("multi-label labels must be a 2-D 0/1 matrix")
        if len(self.target_nodes) != len(self.labels):
            raise ValueError(
                f"{len(self.target_nodes)} targets vs {len(self.labels)} label rows"
            )
        if not np.isin(self.labels, (0, 1)).all():
            raise ValueError("labels must be binary")

    @property
    def num_targets(self) -> int:
        return len(self.target_nodes)

    @property
    def num_labels(self) -> int:
        return int(self.labels.shape[1])

    def target_classes(self) -> List[int]:
        return [int(self.target_class)]


def remap_multilabel_task(
    task: MultiLabelNodeClassificationTask,
    subgraph: KnowledgeGraph,
    mapping: SubgraphMapping,
) -> MultiLabelNodeClassificationTask:
    """Re-express a multi-label task in a subgraph's id space."""
    keep_positions: List[int] = []
    new_nodes: List[int] = []
    for position, node in enumerate(task.target_nodes):
        new_id = mapping.node_old_to_new.get(int(node))
        if new_id is not None:
            keep_positions.append(position)
            new_nodes.append(new_id)
    keep = np.asarray(keep_positions, dtype=np.int64)
    return MultiLabelNodeClassificationTask(
        name=task.name,
        target_class=mapping.class_old_to_new.get(int(task.target_class), -1),
        target_nodes=np.asarray(new_nodes, dtype=np.int64),
        labels=task.labels[keep] if len(keep) else np.empty((0, task.num_labels), dtype=np.int64),
        split=task.split.select(keep),
        metric=task.metric,
        kg_name=subgraph.name,
    )


def micro_f1(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Micro-averaged F1 over a 0/1 prediction/label matrix pair."""
    predictions = np.asarray(predictions, dtype=bool)
    labels = np.asarray(labels, dtype=bool)
    if predictions.shape != labels.shape:
        raise ValueError(f"shape mismatch: {predictions.shape} vs {labels.shape}")
    true_positive = int((predictions & labels).sum())
    false_positive = int((predictions & ~labels).sum())
    false_negative = int((~predictions & labels).sum())
    denominator = 2 * true_positive + false_positive + false_negative
    if denominator == 0:
        return 0.0
    return 2 * true_positive / denominator
