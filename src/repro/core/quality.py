"""Subgraph quality indicators (Section III-A / Table III).

Two families of indicators drive the paper's analysis of what makes HGNN
training data good:

* **data sufficiency** — enough target vertices (``V_T %``) and compact
  type sets (|C′|, |R′|);
* **graph topology** — no vertices disconnected from targets
  (``Target-Discon.%``), short average distance to the nearest target
  (``Avg.Dist.Target``), and diverse neighbour node types measured by the
  Shannon entropy of per-node neighbour-type counts (Equation 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from repro.kg.cache import artifacts_for
from repro.kg.graph import KnowledgeGraph
from repro.core.tasks import GNNTask


def multi_source_bfs_distances(adjacency: sp.csr_matrix, sources: np.ndarray) -> np.ndarray:
    """Hop distance from the nearest source to every node (``inf`` if none).

    Frontier-expansion BFS using sparse matrix-vector products; the
    adjacency should already reflect the traversal semantics (symmetrise
    for undirected reachability).
    """
    n = adjacency.shape[0]
    distances = np.full(n, np.inf)
    sources = np.asarray(sources, dtype=np.int64)
    if len(sources) == 0 or n == 0:
        return distances
    frontier = np.zeros(n, dtype=bool)
    frontier[sources] = True
    distances[sources] = 0.0
    level = 0
    transposed = adjacency.T.tocsr()
    while frontier.any():
        level += 1
        reached = transposed @ frontier.astype(np.float64)
        next_frontier = (reached > 0) & np.isinf(distances)
        if not next_frontier.any():
            break
        distances[next_frontier] = level
        frontier = next_frontier
    return distances


def neighbor_type_entropy(kg: KnowledgeGraph) -> float:
    """Equation 2: Shannon entropy of per-node neighbour-type counts.

    For each node, count how many *distinct* classes occur among its
    (undirected) neighbours; the entropy is taken over the empirical
    distribution of those counts.  Higher means more structural diversity.
    """
    if kg.num_nodes == 0:
        return 0.0
    s, o = kg.triples.s, kg.triples.o
    if len(s) == 0:
        return 0.0
    # Each (node, neighbour-class) incidence, both directions, deduplicated.
    node = np.concatenate([s, o])
    neighbor_class = np.concatenate([kg.node_types[o], kg.node_types[s]])
    pairs = np.unique(np.stack([node, neighbor_class], axis=1), axis=0)
    counts_per_node = np.bincount(pairs[:, 0], minlength=kg.num_nodes)
    # Distribution over the observed count values (nodes with 0 included).
    values, frequencies = np.unique(counts_per_node, return_counts=True)
    probabilities = frequencies / frequencies.sum()
    entropy = -(probabilities * np.log2(probabilities)).sum()
    return float(entropy + 0.0)  # normalise IEEE -0.0 to +0.0


@dataclass
class QualityReport:
    """One Table III row for a (sampler, task) pair."""

    sampler: str
    task_name: str
    num_nodes: int
    num_edges: int
    num_targets: int
    target_ratio_pct: float
    num_node_types: int
    num_edge_types: int
    disconnected_pct: float
    avg_distance_to_target: float
    entropy: float

    def as_row(self) -> List[str]:
        return [
            self.sampler,
            self.task_name,
            str(self.num_nodes),
            f"{self.target_ratio_pct:.1f}",
            str(self.num_node_types),
            str(self.num_edge_types),
            f"{self.disconnected_pct:.1f}",
            f"{self.avg_distance_to_target:.2f}",
            f"{self.entropy:.2f}",
        ]


def evaluate_quality(
    subgraph: KnowledgeGraph,
    task_in_subgraph: GNNTask,
    sampler: str,
    max_bfs_hops: Optional[int] = None,
) -> QualityReport:
    """Compute the Table III indicators for ``subgraph``.

    ``task_in_subgraph`` must already be remapped into the subgraph's id
    space (see :func:`repro.core.tasks.remap_task`).
    """
    targets = task_in_subgraph.target_nodes
    n = subgraph.num_nodes
    target_ratio = (len(targets) / n * 100.0) if n else 0.0

    if n and len(targets):
        adjacency = artifacts_for(subgraph).csr("both")
        distances = multi_source_bfs_distances(adjacency, targets)
        non_target = np.ones(n, dtype=bool)
        non_target[targets] = False
        non_target_distances = distances[non_target]
        unreachable = np.isinf(non_target_distances)
        disconnected_pct = (
            float(unreachable.sum()) / max(int(non_target.sum()), 1) * 100.0
            if non_target.any()
            else 0.0
        )
        reachable = non_target_distances[~unreachable]
        avg_distance = float(reachable.mean()) if len(reachable) else 0.0
    else:
        disconnected_pct = 100.0 if n else 0.0
        avg_distance = float("inf") if n else 0.0

    return QualityReport(
        sampler=sampler,
        task_name=task_in_subgraph.name,
        num_nodes=n,
        num_edges=subgraph.num_edges,
        num_targets=len(targets),
        target_ratio_pct=target_ratio,
        num_node_types=subgraph.num_node_types,
        num_edge_types=subgraph.num_edge_types,
        disconnected_pct=disconnected_pct,
        avg_distance_to_target=avg_distance,
        entropy=neighbor_type_entropy(subgraph),
    )
