"""High-level TOSG extraction façade.

``extract_tosg`` is the one call a downstream user needs: pick a method
(``"sparql"`` — the paper's default — ``"brw"`` or ``"ibs"``), a pattern
(d, h), and get back the TOSG **with the task already remapped** into the
subgraph's id space, plus extraction timing for the cost breakdowns of
Table IV.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro.kg.graph import KnowledgeGraph, SubgraphMapping
from repro.core.brw import BiasedRandomWalkSampler
from repro.core.ibs import InfluenceBasedSampler
from repro.core.pattern import GraphPattern
from repro.core.sparql_method import SparqlTOSGExtractor
from repro.core.tasks import GNNTask, remap_task
from repro.sparql.endpoint import SparqlEndpoint

_METHODS = ("sparql", "brw", "ibs")


@dataclass
class TOSGResult:
    """Everything produced by one TOSG extraction."""

    method: str
    subgraph: KnowledgeGraph
    mapping: SubgraphMapping
    task: GNNTask  # remapped into `subgraph` ids
    extraction_seconds: float
    source_kg_name: str
    params: Dict[str, Any] = field(default_factory=dict)

    @property
    def reduction_ratio(self) -> float:
        """KG′ edges / FG edges — how much structure the TOSG retains."""
        full_edges = self.params.get("source_num_edges")
        if not full_edges:
            return float("nan")
        return self.subgraph.num_edges / full_edges


def extract_tosg(
    kg: KnowledgeGraph,
    task: GNNTask,
    method: str = "sparql",
    direction: int = 1,
    hops: int = 1,
    rng: Optional[np.random.Generator] = None,
    endpoint: Optional[SparqlEndpoint] = None,
    batch_size: Optional[int] = None,
    workers: Optional[int] = None,
    walk_length: Optional[int] = None,
    top_k: int = 16,
    alpha: float = 0.25,
    eps: float = 2e-4,
) -> TOSGResult:
    """Extract a task-oriented subgraph of ``kg`` for ``task``.

    Parameters
    ----------
    method:
        ``"sparql"`` (Algorithm 3, the paper's default), ``"brw"``
        (Algorithm 1) or ``"ibs"`` (Algorithm 2).
    direction / hops:
        The generic graph pattern's (d, h) — SPARQL method only.
    walk_length:
        BRW walk length ``h`` (defaults to 3, the paper's setting).
    batch_size:
        SPARQL page size, or the bs target-batch for BRW/IBS (defaults:
        100 000 rows / all targets).
    workers:
        SPARQL request-handler threads (default 4).  For ``"ibs"`` the knob
        is deprecated and ignored — passing it forwards to the sampler,
        which raises a :class:`DeprecationWarning`.
    rng:
        Required for the stochastic methods (BRW, IBS target choice).

    Returns
    -------
    :class:`TOSGResult` with the subgraph, mapping, remapped task and the
    extraction wall time.
    """
    if method not in _METHODS:
        raise ValueError(f"unknown method {method!r}; expected one of {_METHODS}")
    start = time.perf_counter()
    params: Dict[str, Any] = {
        "source_num_edges": kg.num_edges,
        "source_num_nodes": kg.num_nodes,
    }

    if method == "sparql":
        pattern = GraphPattern(direction=direction, hops=hops)
        endpoint = endpoint if endpoint is not None else SparqlEndpoint(kg)
        extractor = SparqlTOSGExtractor(
            endpoint,
            batch_size=batch_size if batch_size is not None else 100_000,
            workers=workers if workers is not None else 4,
        )
        subgraph, mapping, stats = extractor.extract(task, pattern)
        params.update(
            pattern=pattern.label,
            subqueries=stats.subqueries,
            pages=stats.pages,
            rows_fetched=stats.rows_fetched,
            triples_after_dedup=stats.triples_after_dedup,
        )
        method_label = f"KG-TOSA{pattern.label}"
    elif method == "brw":
        if rng is None:
            rng = np.random.default_rng(0)
        sampler = BiasedRandomWalkSampler(
            kg,
            walk_length=walk_length if walk_length is not None else 3,
            batch_size=batch_size if batch_size is not None else max(len(task.target_nodes), 1),
        )
        sampled = sampler.sample(task, rng)
        subgraph, mapping = sampled.subgraph, sampled.mapping
        params.update(walk_length=sampler.walk_length, batch_size=sampler.batch_size)
        method_label = "BRW"
    else:  # ibs
        if rng is None:
            rng = np.random.default_rng(0)
        sampler = InfluenceBasedSampler(
            kg,
            top_k=top_k,
            batch_size=batch_size if batch_size is not None else max(len(task.target_nodes), 1),
            alpha=alpha,
            eps=eps,
            workers=workers,  # deprecated no-op; the sampler warns if set
        )
        sampled = sampler.sample(task, rng)
        subgraph, mapping = sampled.subgraph, sampled.mapping
        params.update(top_k=top_k, alpha=alpha, eps=eps, batch_size=sampler.batch_size)
        method_label = "IBS"

    remapped = remap_task(task, subgraph, mapping)
    elapsed = time.perf_counter() - start
    return TOSGResult(
        method=method_label,
        subgraph=subgraph,
        mapping=mapping,
        task=remapped,
        extraction_seconds=elapsed,
        source_kg_name=kg.name,
        params=params,
    )
