"""Algorithm 3 — SPARQL-based TOSG extraction.

Offloads the generic graph pattern to the RDF engine:

1. ``getBGP`` — compile the (d, h) pattern into per-hop-level subqueries
   (:func:`repro.core.pattern.build_subqueries`);
2. ``getGraphSize`` — COUNT each subquery so the planner knows how many
   pages exist;
3. ``executionPlanner`` — emit LIMIT/OFFSET pages of ``bs`` rows per
   subquery (each subquery paginates independently, avoiding the repeated
   UNION-deduplication cost the paper calls out);
4. worker request handlers — ``P`` threads fetch pages (compression flag
   accounted by the endpoint);
5. ``dropDuplicates`` — merge all pages and deduplicate triples;
6. construct KG′ from the merged triples (plus edge-less target vertices).
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.kg.graph import KnowledgeGraph, SubgraphMapping
from repro.kg.triples import TripleStore
from repro.core.pattern import GraphPattern, TOSGSubquery, build_subqueries
from repro.core.tasks import GNNTask
from repro.sparql.ast import SelectQuery
from repro.sparql.endpoint import SparqlEndpoint


@dataclass
class ExtractionStats:
    """Accounting for one Algorithm 3 run."""

    subqueries: int = 0
    pages: int = 0
    rows_fetched: int = 0
    triples_before_dedup: int = 0
    triples_after_dedup: int = 0
    count_seconds: float = 0.0
    fetch_seconds: float = 0.0
    dedup_seconds: float = 0.0
    total_seconds: float = 0.0
    subquery_texts: List[str] = field(default_factory=list)


class SparqlTOSGExtractor:
    """The paper's default TOSG extraction method (``SPARQL_MS``).

    Parameters
    ----------
    endpoint:
        The SPARQL endpoint serving the full KG (paper: one Virtuoso
        instance per KG; here an in-process engine).
    batch_size:
        ``bs`` — page size in rows per HTTP request (paper used 1M triples).
    workers:
        ``P`` — parallel request-handler threads (paper used 64).
    """

    name = "SPARQL"

    def __init__(self, endpoint: SparqlEndpoint, batch_size: int = 100_000, workers: int = 4):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.endpoint = endpoint
        self.batch_size = batch_size
        self.workers = workers

    @property
    def kg(self) -> KnowledgeGraph:
        return self.endpoint.kg

    def extract(
        self, task: GNNTask, pattern: GraphPattern
    ) -> Tuple[KnowledgeGraph, SubgraphMapping, ExtractionStats]:
        """Run Algorithm 3 and return ``(KG′, id mapping, stats)``."""
        stats = ExtractionStats()
        start_total = time.perf_counter()

        subqueries = build_subqueries(self.kg, task, pattern)
        stats.subqueries = len(subqueries)
        stats.subquery_texts = [str(sq.query) for sq in subqueries]

        # getGraphSize per subquery, then plan the page batch QB.
        start_count = time.perf_counter()
        counts = [self.endpoint.count(sq.query) for sq in subqueries]
        stats.count_seconds = time.perf_counter() - start_count

        pages: List[Tuple[TOSGSubquery, SelectQuery]] = []
        for subquery, total in zip(subqueries, counts):
            for offset in range(0, total, self.batch_size):
                pages.append(
                    (subquery, subquery.query.with_page(limit=self.batch_size, offset=offset))
                )
        stats.pages = len(pages)

        # Worker request handlers fetch the page batch.
        start_fetch = time.perf_counter()
        if self.workers <= 1 or len(pages) <= 1:
            results = [self._fetch(page) for page in pages]
        else:
            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                results = list(pool.map(self._fetch, pages))
        stats.fetch_seconds = time.perf_counter() - start_fetch

        merged = TripleStore()
        for store in results:
            stats.rows_fetched += len(store)
            merged = merged.append(store)
        stats.triples_before_dedup = len(merged)

        start_dedup = time.perf_counter()
        deduped = merged.deduplicated()
        stats.dedup_seconds = time.perf_counter() - start_dedup
        stats.triples_after_dedup = len(deduped)

        subgraph, mapping = self.kg.subgraph_from_triples(
            deduped,
            name=f"{self.kg.name}-tosa-{pattern.label}",
            extra_nodes=task.target_nodes,
        )
        stats.total_seconds = time.perf_counter() - start_total
        return subgraph, mapping, stats

    def _fetch(self, page: Tuple[TOSGSubquery, SelectQuery]) -> TripleStore:
        """Fetch one page and normalise it to (s, p, o) triples."""
        subquery, paged = page
        result = self.endpoint.query(paged)
        if subquery.kind == "bridge":
            predicate = np.full(result.num_rows, subquery.bridge_predicate, dtype=np.int64)
            return TripleStore(result.columns["s"], predicate, result.columns["o"])
        return result.to_triples()
