"""GNN task definitions over knowledge graphs.

Implements Definition 2.2 (single-label node classification: predict a
label for every target vertex of class ``c_T``) and Definition 2.3 (missing
entity link prediction for a given predicate ``p_T``), together with the
train/valid/test split bookkeeping of Table II and the id-remapping needed
when a task "moves" from the full KG onto an extracted TOSG.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np

from repro.kg.graph import KnowledgeGraph, SubgraphMapping


@dataclass(frozen=True)
class Split:
    """Positional train/valid/test indices into a task's example array."""

    train: np.ndarray
    valid: np.ndarray
    test: np.ndarray
    schema: str = "random"  # "random" (stratified) or "time" (Table II)

    def ratios(self) -> tuple[float, float, float]:
        """(train, valid, test) fractions — the Table II 'Split Ratio'."""
        total = len(self.train) + len(self.valid) + len(self.test)
        if total == 0:
            return (0.0, 0.0, 0.0)
        return (
            len(self.train) / total,
            len(self.valid) / total,
            len(self.test) / total,
        )

    def select(self, keep_positions: np.ndarray) -> "Split":
        """Restrict the split to surviving examples and re-index densely.

        ``keep_positions`` are old example positions that survive (sorted);
        each split part keeps its members and maps them to new positions.
        """
        keep_positions = np.asarray(keep_positions, dtype=np.int64)
        new_position = {int(old): new for new, old in enumerate(keep_positions)}

        def translate(part: np.ndarray) -> np.ndarray:
            return np.asarray(
                [new_position[int(i)] for i in part if int(i) in new_position],
                dtype=np.int64,
            )

        return Split(
            train=translate(self.train),
            valid=translate(self.valid),
            test=translate(self.test),
            schema=self.schema,
        )


@dataclass
class NodeClassificationTask:
    """Definition 2.2: ``NC(KG, V_T, c_T)`` with single-label targets.

    Attributes
    ----------
    target_class:
        ``c_T`` — class id of the target vertices in the host KG.
    target_nodes:
        ``V_T`` — node ids of the targets (defines example positions).
    labels:
        int label per target node, aligned with ``target_nodes``.
    """

    name: str
    target_class: int
    target_nodes: np.ndarray
    labels: np.ndarray
    num_labels: int
    split: Split
    metric: str = "accuracy"
    kg_name: str = ""

    task_type: str = field(default="NC", init=False)

    def __post_init__(self) -> None:
        self.target_nodes = np.asarray(self.target_nodes, dtype=np.int64)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if len(self.target_nodes) != len(self.labels):
            raise ValueError(
                f"{len(self.target_nodes)} target nodes vs {len(self.labels)} labels"
            )
        if self.num_labels <= 0:
            raise ValueError("num_labels must be positive")

    @property
    def num_targets(self) -> int:
        return len(self.target_nodes)

    def target_classes(self) -> List[int]:
        """Classes whose instances the task targets (NC: just ``c_T``)."""
        return [int(self.target_class)]

    def describe(self) -> str:
        train, valid, test = self.split.ratios()
        return (
            f"NC {self.name}: {self.num_targets} targets of class {self.target_class}, "
            f"{self.num_labels} labels, split {train:.0%}/{valid:.0%}/{test:.0%} "
            f"({self.split.schema})"
        )


@dataclass
class LinkPredictionTask:
    """Definition 2.3: missing-entity prediction for one predicate ``p_T``.

    ``edges`` holds the known ``(head, tail)`` pairs connected by
    ``predicate``; the model ranks candidate tails for ``<h, p_T, ?>``
    (and candidate heads for ``<?, p_T, t>``).
    """

    name: str
    predicate: int
    head_class: int
    tail_class: int
    edges: np.ndarray  # (n, 2) int64
    split: Split
    metric: str = "hits@10"
    kg_name: str = ""

    task_type: str = field(default="LP", init=False)

    def __post_init__(self) -> None:
        self.edges = np.asarray(self.edges, dtype=np.int64)
        if self.edges.ndim != 2 or self.edges.shape[1] != 2:
            raise ValueError("edges must be an (n, 2) array of (head, tail) pairs")

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    @property
    def target_nodes(self) -> np.ndarray:
        """``V_T`` — every vertex participating in a task edge."""
        if self.num_edges == 0:
            return np.empty(0, dtype=np.int64)
        return np.unique(self.edges.ravel())

    def target_classes(self) -> List[int]:
        """Head and tail classes (deduplicated, order-preserving)."""
        classes = [int(self.head_class)]
        if int(self.tail_class) != int(self.head_class):
            classes.append(int(self.tail_class))
        return classes

    def describe(self) -> str:
        train, valid, test = self.split.ratios()
        return (
            f"LP {self.name}: {self.num_edges} edges of predicate {self.predicate}, "
            f"split {train:.1%}/{valid:.1%}/{test:.1%} ({self.split.schema})"
        )


GNNTask = Union[NodeClassificationTask, LinkPredictionTask]


def remap_nc_task(
    task: NodeClassificationTask,
    subgraph: KnowledgeGraph,
    mapping: SubgraphMapping,
) -> NodeClassificationTask:
    """Re-express an NC task in a subgraph's id space.

    Target nodes absent from the subgraph are dropped (with their labels and
    split entries); the target class id is translated through the mapping's
    class compaction.
    """
    keep_positions: List[int] = []
    new_nodes: List[int] = []
    for position, node in enumerate(task.target_nodes):
        new_id = mapping.node_old_to_new.get(int(node))
        if new_id is not None:
            keep_positions.append(position)
            new_nodes.append(new_id)
    keep = np.asarray(keep_positions, dtype=np.int64)
    new_class = mapping.class_old_to_new.get(int(task.target_class), -1)
    return NodeClassificationTask(
        name=task.name,
        target_class=new_class,
        target_nodes=np.asarray(new_nodes, dtype=np.int64),
        labels=task.labels[keep] if len(keep) else np.empty(0, dtype=np.int64),
        num_labels=task.num_labels,
        split=task.split.select(keep),
        metric=task.metric,
        kg_name=subgraph.name,
    )


def remap_lp_task(
    task: LinkPredictionTask,
    subgraph: KnowledgeGraph,
    mapping: SubgraphMapping,
) -> LinkPredictionTask:
    """Re-express an LP task in a subgraph's id space (dropping lost edges)."""
    keep_positions: List[int] = []
    new_edges: List[tuple[int, int]] = []
    for position, (head, tail) in enumerate(task.edges):
        new_head = mapping.node_old_to_new.get(int(head))
        new_tail = mapping.node_old_to_new.get(int(tail))
        if new_head is not None and new_tail is not None:
            keep_positions.append(position)
            new_edges.append((new_head, new_tail))
    keep = np.asarray(keep_positions, dtype=np.int64)
    edges = (
        np.asarray(new_edges, dtype=np.int64)
        if new_edges
        else np.empty((0, 2), dtype=np.int64)
    )
    return LinkPredictionTask(
        name=task.name,
        predicate=mapping.relation_old_to_new.get(int(task.predicate), -1),
        head_class=mapping.class_old_to_new.get(int(task.head_class), -1),
        tail_class=mapping.class_old_to_new.get(int(task.tail_class), -1),
        edges=edges,
        split=task.split.select(keep),
        metric=task.metric,
        kg_name=subgraph.name,
    )


def remap_task(task, subgraph: KnowledgeGraph, mapping: SubgraphMapping):
    """Dispatch to the NC, multi-label NC, or LP remapper."""
    if isinstance(task, NodeClassificationTask):
        return remap_nc_task(task, subgraph, mapping)
    if isinstance(task, LinkPredictionTask):
        return remap_lp_task(task, subgraph, mapping)
    from repro.core.multilabel import (  # local import breaks the cycle
        MultiLabelNodeClassificationTask,
        remap_multilabel_task,
    )

    if isinstance(task, MultiLabelNodeClassificationTask):
        return remap_multilabel_task(task, subgraph, mapping)
    raise TypeError(f"unsupported task type {type(task).__name__}")


def lp_task_from_predicate(
    kg: KnowledgeGraph,
    predicate: int,
    ratios: tuple[float, float, float] = (0.9, 0.05, 0.05),
    rng: Optional[np.random.Generator] = None,
    name: Optional[str] = None,
) -> LinkPredictionTask:
    """Derive an LP task from one predicate's existing edges.

    Used for KG-completion style workloads (Section V-B2): every relation
    becomes its own missing-entity task.  Head/tail classes are the
    *dominant* subject/object classes of the predicate.  Edges stay in the
    graph (this helper targets cost studies, not leakage-free accuracy
    evaluation — the benchmark catalog's LP tasks hold edges out properly).
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    predicate = int(predicate)
    if not 0 <= predicate < kg.num_edge_types:
        raise ValueError(f"unknown predicate id {predicate}")
    positions = kg.hexastore.match(predicate=predicate)
    if len(positions) == 0:
        raise ValueError(
            f"predicate {kg.relation_vocab.term(predicate)!r} has no edges"
        )
    heads = kg.triples.s[positions]
    tails = kg.triples.o[positions]
    head_class = int(np.bincount(kg.node_types[heads]).argmax())
    tail_class = int(np.bincount(kg.node_types[tails]).argmax())
    keep = (kg.node_types[heads] == head_class) & (kg.node_types[tails] == tail_class)
    edges = np.stack([heads[keep], tails[keep]], axis=1)

    order = rng.permutation(len(edges))
    train_ratio, valid_ratio, _ = ratios
    total = train_ratio + valid_ratio + ratios[2]
    train_end = int(round(len(edges) * train_ratio / total))
    valid_end = train_end + int(round(len(edges) * valid_ratio / total))
    split = Split(
        train=np.sort(order[:train_end]),
        valid=np.sort(order[train_end:valid_end]),
        test=np.sort(order[valid_end:]),
        schema="random",
    )
    return LinkPredictionTask(
        name=name or f"LP-{kg.relation_vocab.term(int(predicate))}",
        predicate=int(predicate),
        head_class=head_class,
        tail_class=tail_class,
        edges=edges,
        split=split,
        kg_name=kg.name,
    )
