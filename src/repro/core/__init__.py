"""KG-TOSA: the paper's primary contribution.

Everything in Sections III and IV lives here:

* :mod:`repro.core.tasks` — node-classification / link-prediction task
  definitions (Definitions 2.2 and 2.3) with train/valid/test splits;
* :mod:`repro.core.pattern` — the generic graph pattern of Figure 3,
  parameterised by predicate direction ``d`` and hop count ``h``, compiled
  into SPARQL subqueries;
* :mod:`repro.core.brw` — Algorithm 1, biased random-walk sampling;
* :mod:`repro.core.ibs` — Algorithm 2, influence-based (PPR) sampling;
* :mod:`repro.core.sparql_method` — Algorithm 3, SPARQL-based extraction;
* :mod:`repro.core.quality` — the data-sufficiency and graph-topology
  indicators of Table III;
* :mod:`repro.core.api` — the ``extract_tosg`` façade tying it together.
"""

from repro.core.tasks import (
    Split,
    NodeClassificationTask,
    LinkPredictionTask,
    GNNTask,
    remap_nc_task,
    remap_lp_task,
    lp_task_from_predicate,
)
from repro.core.multilabel import (
    MultiLabelNodeClassificationTask,
    remap_multilabel_task,
    micro_f1,
)
from repro.core.pattern import GraphPattern, build_subqueries
from repro.core.brw import BiasedRandomWalkSampler
from repro.core.ibs import InfluenceBasedSampler
from repro.core.sparql_method import SparqlTOSGExtractor
from repro.core.quality import QualityReport, evaluate_quality, neighbor_type_entropy
from repro.core.api import TOSGResult, extract_tosg

__all__ = [
    "Split",
    "NodeClassificationTask",
    "LinkPredictionTask",
    "GNNTask",
    "remap_nc_task",
    "remap_lp_task",
    "lp_task_from_predicate",
    "MultiLabelNodeClassificationTask",
    "remap_multilabel_task",
    "micro_f1",
    "GraphPattern",
    "build_subqueries",
    "BiasedRandomWalkSampler",
    "InfluenceBasedSampler",
    "SparqlTOSGExtractor",
    "QualityReport",
    "evaluate_quality",
    "neighbor_type_entropy",
    "TOSGResult",
    "extract_tosg",
]
