"""Measurement plumbing shared by all benchmark experiments.

``run_nc_method`` / ``run_lp_method`` wrap (model construction + training +
evaluation) into a :class:`MethodRun` record carrying every quantity the
paper reports, converting modeled-memory budget violations into the
``oom``/``dnf`` outcomes of Figure 7.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Type

from repro.kg.graph import KnowledgeGraph
from repro.core.tasks import LinkPredictionTask, NodeClassificationTask
from repro.models import (
    GraphSAINTClassifier,
    LHGNNPredictor,
    ModelConfig,
    MorsEPredictor,
    RGCNLinkPredictor,
    RGCNNodeClassifier,
    SeHGNNClassifier,
    ShaDowSAINTClassifier,
)
from repro.training import (
    OutOfModeledMemory,
    ResourceMeter,
    TrainConfig,
    train_link_predictor,
    train_node_classifier,
)
from repro.training.trainer import TracePoint

NC_MODELS: Dict[str, Type] = {
    "RGCN": RGCNNodeClassifier,
    "GraphSAINT": GraphSAINTClassifier,
    "ShaDowSAINT": ShaDowSAINTClassifier,
    "SeHGNN": SeHGNNClassifier,
}

LP_MODELS: Dict[str, Type] = {
    "RGCN": RGCNLinkPredictor,
    "MorsE": MorsEPredictor,
    "LHGNN": LHGNNPredictor,
}


@dataclass
class MethodRun:
    """One (method × graph) measurement — a bar in the paper's figures."""

    method: str
    graph_label: str
    task_name: str
    metric: float = 0.0
    metric_name: str = "accuracy"
    train_seconds: float = 0.0
    preprocess_seconds: float = 0.0
    inference_seconds: float = 0.0
    memory_mb: float = 0.0
    num_parameters: int = 0
    epochs: int = 0
    oom: bool = False
    trace: List[TracePoint] = field(default_factory=list)
    # The trained model itself (None after an OOM) — carried so callers
    # can persist it (`repro train --save-checkpoint`); never rendered.
    model: Optional[object] = field(default=None, repr=False, compare=False)

    @property
    def total_seconds(self) -> float:
        """Extraction/transformation + training (Figure 8's time bars)."""
        return self.preprocess_seconds + self.train_seconds

    def cells(self) -> List[str]:
        if self.oom:
            return [
                self.method,
                self.graph_label,
                "OOM",
                "-",
                f"{self.memory_mb:.1f}*",
                "-",
                "-",
            ]
        return [
            self.method,
            self.graph_label,
            f"{self.metric:.3f}",
            f"{self.total_seconds:.1f}s",
            f"{self.memory_mb:.1f}",
            f"{self.num_parameters}",
            f"{self.inference_seconds * 1e3:.0f}ms",
        ]


RUN_HEADERS = ["method", "graph", "metric", "time", "mem(MB)", "#params", "infer"]


def run_nc_method(
    method: str,
    kg: KnowledgeGraph,
    task: NodeClassificationTask,
    model_config: ModelConfig,
    train_config: TrainConfig,
    graph_label: str,
    preprocess_seconds: float = 0.0,
    budget_bytes: Optional[int] = None,
    **model_kwargs,
) -> MethodRun:
    """Construct, train and measure one NC method on one graph."""
    meter = ResourceMeter(budget_bytes=budget_bytes)
    model_cls = NC_MODELS[method]
    try:
        model = model_cls(kg, task, model_config, meter=meter, **model_kwargs)
        result = train_node_classifier(model, task, train_config, meter)
    except OutOfModeledMemory as oom:
        return MethodRun(
            method=method,
            graph_label=graph_label,
            task_name=task.name,
            preprocess_seconds=preprocess_seconds,
            memory_mb=oom.requested / 1e6,
            oom=True,
        )
    return MethodRun(
        method=method,
        graph_label=graph_label,
        task_name=task.name,
        metric=result.test_metric,
        metric_name=result.metric_name,
        train_seconds=result.train_seconds,
        preprocess_seconds=preprocess_seconds,
        inference_seconds=result.inference_seconds,
        memory_mb=meter.peak_bytes / 1e6,
        num_parameters=result.num_parameters,
        epochs=result.epochs_run,
        trace=result.trace,
        model=model,
    )


def run_lp_method(
    method: str,
    kg: KnowledgeGraph,
    task: LinkPredictionTask,
    model_config: ModelConfig,
    train_config: TrainConfig,
    graph_label: str,
    preprocess_seconds: float = 0.0,
    budget_bytes: Optional[int] = None,
    **model_kwargs,
) -> MethodRun:
    """Construct, train and measure one LP method on one graph."""
    meter = ResourceMeter(budget_bytes=budget_bytes)
    model_cls = LP_MODELS[method]
    try:
        model = model_cls(kg, task, model_config, meter=meter, **model_kwargs)
        result = train_link_predictor(model, task, train_config, meter)
    except OutOfModeledMemory as oom:
        return MethodRun(
            method=method,
            graph_label=graph_label,
            task_name=task.name,
            preprocess_seconds=preprocess_seconds,
            memory_mb=oom.requested / 1e6,
            metric_name=f"hits@{train_config.hits_k}",
            oom=True,
        )
    return MethodRun(
        method=method,
        graph_label=graph_label,
        task_name=task.name,
        metric=result.test_metric,
        metric_name=result.metric_name,
        train_seconds=result.train_seconds,
        preprocess_seconds=preprocess_seconds,
        inference_seconds=result.inference_seconds,
        memory_mb=meter.peak_bytes / 1e6,
        num_parameters=result.num_parameters,
        epochs=result.epochs_run,
        trace=result.trace,
        model=model,
    )


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]], title: str = "") -> str:
    """Plain ASCII table (the harness's figure/table output format)."""
    headers = [str(h) for h in headers]
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    border = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    lines.append(border)
    lines.append("| " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)) + " |")
    lines.append(border)
    for row in str_rows:
        lines.append("| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |")
    lines.append(border)
    return "\n".join(lines)


def render_series(
    series: Dict[str, List[Tuple[float, float]]],
    title: str = "",
    x_label: str = "seconds",
    y_label: str = "metric",
) -> str:
    """Numeric rendering of convergence curves (Figure 9 style)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    for name, points in series.items():
        rendered = " ".join(f"({x:.1f}{x_label[0]}, {y:.3f})" for x, y in points)
        lines.append(f"  {name}: {rendered}")
    return "\n".join(lines)
