"""Benchmark harness.

:mod:`repro.bench.harness` holds the measurement plumbing (method runners,
ASCII table/series rendering, paper-vs-measured records);
:mod:`repro.bench.experiments` defines one entry point per table/figure of
the paper, each returning a structured result that the ``benchmarks/``
pytest modules print and assert shape properties on.
"""

from repro.bench.harness import (
    MethodRun,
    render_table,
    render_series,
    run_nc_method,
    run_lp_method,
    NC_MODELS,
    LP_MODELS,
)
from repro.bench import experiments

__all__ = [
    "MethodRun",
    "render_table",
    "render_series",
    "run_nc_method",
    "run_lp_method",
    "NC_MODELS",
    "LP_MODELS",
    "experiments",
]
