"""One entry point per table / figure of the paper.

Every function builds the relevant synthetic workload, runs the relevant
methods on the full graph (FG) and/or extracted TOSGs, and returns a
structured result the ``benchmarks/`` modules print and sanity-check.

Absolute numbers differ from the paper (synthetic KGs, numpy substrate);
the assertions in ``benchmarks/`` check the paper's *shapes*: who wins,
what gets reduced, where OOM happens, how convergence compares.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.core import extract_tosg
from repro.core.quality import QualityReport, evaluate_quality
from repro.core.tasks import remap_task
from repro.datasets import catalog
from repro.kg.cache import artifacts_for
from repro.kg.stats import compute_statistics
from repro.models import ModelConfig
from repro.sampling.urw import UniformRandomWalkSampler
from repro.training import TrainConfig
from repro.bench.harness import MethodRun, run_lp_method, run_nc_method

# Bench-default hyper-parameters (paper settings scaled down; Section V-A3).
NC_MODEL_CONFIG = ModelConfig(hidden_dim=24, num_layers=2, dropout=0.1, lr=0.02, batch_size=256)
NC_TRAIN_CONFIG = TrainConfig(epochs=10, eval_every=2)
LP_MODEL_CONFIG = ModelConfig(
    hidden_dim=32, num_layers=1, dropout=0.0, lr=0.03, batch_size=512, margin=2.0
)
LP_TRAIN_CONFIG = TrainConfig(epochs=40, eval_every=10, num_eval_negatives=40)


@dataclass
class ExperimentResult:
    """A named collection of method runs / reports, per figure or table."""

    name: str
    sections: Dict[str, List[MethodRun]] = field(default_factory=dict)
    quality: Dict[str, List[QualityReport]] = field(default_factory=dict)
    tables: Dict[str, List[List[str]]] = field(default_factory=dict)
    notes: str = ""

    def all_runs(self) -> List[MethodRun]:
        return [run for runs in self.sections.values() for run in runs]


def _extract(kg, task, method: str, direction: int = 1, hops: int = 1, seed: int = 0, **kw):
    return extract_tosg(
        kg, task, method=method, direction=direction, hops=hops,
        rng=np.random.default_rng(seed), **kw,
    )


# ---------------------------------------------------------------------------
# Figure 1 — motivation: FG vs handcrafted OGBN-MAG vs KG-TOSA d1h1
# ---------------------------------------------------------------------------


def fig1_motivation(scale="tiny", seed: int = 7) -> ExperimentResult:
    """PV on MAG with ShaDowSAINT and SeHGNN on three graphs.

    Paper shape: the handcrafted subset cuts time/memory but trades
    accuracy; KG-TOSA cuts time/memory while *improving* accuracy.
    """
    bundle = catalog.mag(scale, seed)
    task = bundle.task("PV")
    handcrafted = catalog.ogbn_mag_subset(bundle)
    tosa = _extract(bundle.kg, task, "sparql", direction=1, hops=1)

    graphs = [
        ("FG", bundle.kg, task, 0.0),
        ("OGBN-MAG", handcrafted.kg, handcrafted.task("PV"), 0.0),
        ("KG-TOSAd1h1", tosa.subgraph, tosa.task, tosa.extraction_seconds),
    ]
    result = ExperimentResult(name="fig1_motivation")
    for method in ("ShaDowSAINT", "SeHGNN"):
        runs = [
            run_nc_method(
                method, graph, graph_task, NC_MODEL_CONFIG, NC_TRAIN_CONFIG,
                graph_label=label, preprocess_seconds=pre,
            )
            for label, graph, graph_task, pre in graphs
        ]
        result.sections[method] = runs
    return result


# ---------------------------------------------------------------------------
# Figures 2 & 5 / Table III — subgraph quality of the samplers
# ---------------------------------------------------------------------------

_QUALITY_TASKS: List[Tuple[str, str, str]] = [
    # (section label, dataset, task)
    ("CG/YAGO", "yago4", "CG"),
    ("PC/YAGO", "yago4", "PC"),
    ("PV/DBLP", "dblp", "PV"),
    ("PV/MAG", "mag", "PV"),
]


def _dataset(name: str, scale, seed: int) -> catalog.DatasetBundle:
    maker = getattr(catalog, name)
    return maker(scale, seed)


def _urw_quality(
    bundle, task, seed: int, walk_length: int = 2, num_roots: int = 20
) -> QualityReport:
    sampler = UniformRandomWalkSampler(bundle.kg, walk_length=walk_length, num_roots=num_roots)
    sampled = sampler.sample(np.random.default_rng(seed))
    remapped = remap_task(task, sampled.subgraph, sampled.mapping)
    return evaluate_quality(sampled.subgraph, remapped, sampler="URW")


def fig2_urw_pathology(scale="small", seed: int = 7, num_roots: int = 20) -> ExperimentResult:
    """URW samples: low target ratio + disconnected vertices (Figure 2)."""
    result = ExperimentResult(name="fig2_urw_pathology")
    for label, dataset, task_name in _QUALITY_TASKS[:1] + _QUALITY_TASKS[2:]:
        bundle = _dataset(dataset, scale, seed)
        task = bundle.task(task_name)
        result.quality[label] = [_urw_quality(bundle, task, seed, num_roots=num_roots)]
    return result


def fig5_brw_quality(scale="small", seed: int = 7) -> ExperimentResult:
    """BRW samples: high target ratio, everything reachable (Figure 5)."""
    result = ExperimentResult(name="fig5_brw_quality")
    for label, dataset, task_name in _QUALITY_TASKS[:1] + _QUALITY_TASKS[2:]:
        bundle = _dataset(dataset, scale, seed)
        task = bundle.task(task_name)
        tosg = _extract(bundle.kg, task, "brw", seed=seed, batch_size=20, walk_length=2)
        result.quality[label] = [
            evaluate_quality(tosg.subgraph, tosg.task, sampler="BRW"),
            _urw_quality(bundle, task, seed),
        ]
    return result


def table3_subgraph_quality(
    scale="small", seed: int = 7, train_epochs: int = 6
) -> ExperimentResult:
    """URW vs BRW vs IBS vs KG-TOSA d1h1 quality indicators + accuracy."""
    result = ExperimentResult(name="table3_subgraph_quality")
    train_config = TrainConfig(epochs=train_epochs, eval_every=max(train_epochs // 2, 1))
    for label, dataset, task_name in _QUALITY_TASKS:
        bundle = _dataset(dataset, scale, seed)
        task = bundle.task(task_name)
        reports: List[QualityReport] = []
        runs: List[MethodRun] = []

        sampler = UniformRandomWalkSampler(bundle.kg, walk_length=3, num_roots=64)
        sampled = sampler.sample(np.random.default_rng(seed))
        urw_task = remap_task(task, sampled.subgraph, sampled.mapping)
        reports.append(evaluate_quality(sampled.subgraph, urw_task, sampler="URW"))
        runs.append(
            run_nc_method(
                "GraphSAINT", sampled.subgraph, urw_task, NC_MODEL_CONFIG,
                train_config, graph_label="URW",
            )
        )

        for method, kwargs in (
            ("brw", {"walk_length": 3, "batch_size": 20000}),
            ("ibs", {"top_k": 16, "eps": 2e-3}),
            ("sparql", {"direction": 1, "hops": 1}),
        ):
            tosg = _extract(bundle.kg, task, method, seed=seed, **kwargs)
            reports.append(evaluate_quality(tosg.subgraph, tosg.task, sampler=tosg.method))
            runs.append(
                run_nc_method(
                    "GraphSAINT", tosg.subgraph, tosg.task, NC_MODEL_CONFIG,
                    train_config, graph_label=tosg.method,
                    preprocess_seconds=tosg.extraction_seconds,
                )
            )
        result.quality[label] = reports
        result.sections[label] = runs
    return result


# ---------------------------------------------------------------------------
# Figure 6 — NC tasks × methods × {FG, KG-TOSA d1h1}
# ---------------------------------------------------------------------------

_FIG6_TASKS = [("PV/MAG", "mag", "PV"), ("PV/DBLP", "dblp", "PV"), ("PC/YAGO", "yago4", "PC")]


def fig6_nc_tasks(
    scale="tiny",
    seed: int = 7,
    methods: Tuple[str, ...] = ("RGCN", "GraphSAINT", "ShaDowSAINT", "SeHGNN"),
) -> ExperimentResult:
    """The headline NC comparison (Figure 6)."""
    result = ExperimentResult(name="fig6_nc_tasks")
    for label, dataset, task_name in _FIG6_TASKS:
        bundle = _dataset(dataset, scale, seed)
        task = bundle.task(task_name)
        tosa = _extract(bundle.kg, task, "sparql", direction=1, hops=1)
        runs: List[MethodRun] = []
        for method in methods:
            runs.append(
                run_nc_method(
                    method, bundle.kg, task, NC_MODEL_CONFIG, NC_TRAIN_CONFIG,
                    graph_label="FG",
                )
            )
            runs.append(
                run_nc_method(
                    method, tosa.subgraph, tosa.task, NC_MODEL_CONFIG, NC_TRAIN_CONFIG,
                    graph_label="KG-TOSAd1h1", preprocess_seconds=tosa.extraction_seconds,
                )
            )
        result.sections[label] = runs
    return result


# ---------------------------------------------------------------------------
# Figure 7 — LP tasks × methods × {FG, KG-TOSA d2h1}, with OOM semantics
# ---------------------------------------------------------------------------


def fig7_lp_tasks(scale="small", seed: int = 7) -> ExperimentResult:
    """LP comparison with the paper's resource-exhaustion shape.

    Budgets mirror the paper's VM limits proportionally: on the DBLP task
    full-batch RGCN exceeds the budget (the paper's 3 TB OOM) while KG′
    fits easily; LHGNN exceeds it on both larger KGs ("did not finish").
    """
    workloads = [
        # (label, dataset, task, methods, budget MB)
        ("CA/YAGO3-10", "yago3_10", "CA", ("RGCN", "MorsE", "LHGNN"), None),
        ("PO/wikikg2", "wikikg2", "PO", ("RGCN", "MorsE", "LHGNN"), 64.0),
        ("AA/DBLP", "dblp", "AA", ("RGCN", "MorsE", "LHGNN"), 12.0),
    ]
    result = ExperimentResult(name="fig7_lp_tasks")
    for label, dataset, task_name, methods, budget_mb in workloads:
        bundle = _dataset(dataset, scale, seed)
        task = bundle.task(task_name)
        tosa = _extract(bundle.kg, task, "sparql", direction=2, hops=1)
        budget = int(budget_mb * 1e6) if budget_mb is not None else None
        runs: List[MethodRun] = []
        for method in methods:
            runs.append(
                run_lp_method(
                    method, bundle.kg, task, LP_MODEL_CONFIG, LP_TRAIN_CONFIG,
                    graph_label="FG", budget_bytes=budget,
                )
            )
            runs.append(
                run_lp_method(
                    method, tosa.subgraph, tosa.task, LP_MODEL_CONFIG, LP_TRAIN_CONFIG,
                    graph_label="KG-TOSAd2h1", preprocess_seconds=tosa.extraction_seconds,
                    budget_bytes=budget,
                )
            )
        result.sections[label] = runs
    return result


# ---------------------------------------------------------------------------
# Figure 8 — extraction methods: BRW vs IBS vs the four (d, h) variations
# ---------------------------------------------------------------------------

_FIG8_TASKS = [("PV/MAG", "mag", "PV"), ("PV/DBLP", "dblp", "PV"), ("PC/YAGO", "yago4", "PC")]


def fig8_extraction_methods(
    scale="small", seed: int = 7, train_epochs: int = 6
) -> ExperimentResult:
    """Accuracy / total time / memory per extraction method (Figure 8)."""
    variants = [
        ("brw", {"walk_length": 3, "batch_size": 20000}),
        ("ibs", {"top_k": 16, "eps": 2e-3}),
        ("sparql", {"direction": 1, "hops": 1}),
        ("sparql", {"direction": 2, "hops": 1}),
        ("sparql", {"direction": 1, "hops": 2}),
        ("sparql", {"direction": 2, "hops": 2}),
    ]
    train_config = TrainConfig(epochs=train_epochs, eval_every=max(train_epochs // 2, 1))
    result = ExperimentResult(name="fig8_extraction_methods")
    for label, dataset, task_name in _FIG8_TASKS:
        bundle = _dataset(dataset, scale, seed)
        task = bundle.task(task_name)
        runs: List[MethodRun] = []
        for method, kwargs in variants:
            tosg = _extract(bundle.kg, task, method, seed=seed, **kwargs)
            runs.append(
                run_nc_method(
                    "GraphSAINT", tosg.subgraph, tosg.task, NC_MODEL_CONFIG, train_config,
                    graph_label=tosg.method, preprocess_seconds=tosg.extraction_seconds,
                )
            )
        result.sections[label] = runs
    return result


# ---------------------------------------------------------------------------
# Figure 9 — convergence traces, FG vs KG′, six NC tasks
# ---------------------------------------------------------------------------

_ALL_NC_TASKS = [
    ("PV/MAG", "mag", "PV"),
    ("PD/MAG", "mag", "PD"),
    ("PV/DBLP", "dblp", "PV"),
    ("AC/DBLP", "dblp", "AC"),
    ("PC/YAGO", "yago4", "PC"),
    ("CG/YAGO", "yago4", "CG"),
]


def fig9_convergence(scale="small", seed: int = 7, epochs: int = 10) -> ExperimentResult:
    """GraphSAINT accuracy-vs-time traces on all six NC tasks."""
    train_config = TrainConfig(epochs=epochs, eval_every=1)
    result = ExperimentResult(name="fig9_convergence")
    for label, dataset, task_name in _ALL_NC_TASKS:
        bundle = _dataset(dataset, scale, seed)
        task = bundle.task(task_name)
        tosa = _extract(bundle.kg, task, "sparql", direction=1, hops=1)
        runs = [
            run_nc_method(
                "GraphSAINT", bundle.kg, task, NC_MODEL_CONFIG, train_config,
                graph_label="FG",
            ),
            run_nc_method(
                "GraphSAINT", tosa.subgraph, tosa.task, NC_MODEL_CONFIG, train_config,
                graph_label="KG-TOSAd1h1", preprocess_seconds=tosa.extraction_seconds,
            ),
        ]
        result.sections[label] = runs
    return result


# ---------------------------------------------------------------------------
# Table I / Table II — benchmark statistics and task summaries
# ---------------------------------------------------------------------------


def table1_benchmark_stats(scale="small", seed: int = 7) -> ExperimentResult:
    """Table I: per-KG node/edge/type counts."""
    result = ExperimentResult(name="table1_benchmark_stats")
    rows = []
    for name, bundle in catalog.benchmark_kgs(scale, seed).items():
        stats = compute_statistics(bundle.kg)
        rows.append(stats.as_row())
    result.tables["table1"] = rows
    return result


def table2_task_summary(scale="small", seed: int = 7) -> ExperimentResult:
    """Table II: task type, KG, split schema/ratio, metric."""
    result = ExperimentResult(name="table2_task_summary")
    rows: List[List[str]] = []
    for name, bundle in catalog.benchmark_kgs(scale, seed).items():
        for task_name, task in sorted(bundle.tasks.items()):
            if task.task_type not in ("NC", "LP"):
                continue  # extensions (multi-label PK) are not Table II rows
            train, valid, test = task.split.ratios()
            rows.append(
                [
                    task.task_type,
                    task_name,
                    bundle.kg.name,
                    task.split.schema,
                    f"{train * 100:.0f}/{valid * 100:.0f}/{test * 100:.0f}",
                    task.metric,
                ]
            )
    result.tables["table2"] = rows
    return result


# ---------------------------------------------------------------------------
# Table IV — cost breakdown: extraction / transformation / training
# ---------------------------------------------------------------------------


def table4_cost_breakdown(scale="small", seed: int = 7, epochs: int = 8) -> ExperimentResult:
    """FG-vs-KG′ pipeline cost breakdown using GraphSAINT (Table IV)."""
    train_config = TrainConfig(epochs=epochs, eval_every=2)
    result = ExperimentResult(name="table4_cost_breakdown")
    rows: List[List[str]] = []
    for label, dataset, task_name in _ALL_NC_TASKS:
        bundle = _dataset(dataset, scale, seed)
        task = bundle.task(task_name)
        tosa = _extract(bundle.kg, task, "sparql", direction=1, hops=1)
        for graph_label, graph, graph_task, extract_seconds in (
            ("FG", bundle.kg, task, 0.0),
            ("KG'", tosa.subgraph, tosa.task, tosa.extraction_seconds),
        ):
            # Shared with the model construction below via the artifact cache.
            adjacency = artifacts_for(graph).hetero()
            run = run_nc_method(
                "GraphSAINT", graph, graph_task, NC_MODEL_CONFIG, train_config,
                graph_label=graph_label, preprocess_seconds=extract_seconds,
            )
            rows.append(
                [
                    label,
                    graph_label,
                    f"{extract_seconds:.2f}",
                    f"{adjacency.transform_seconds:.2f}",
                    f"{run.train_seconds:.2f}",
                    f"{run.metric:.3f}",
                    str(run.num_parameters),
                    f"{run.inference_seconds * 1e3:.0f}",
                    f"{run.memory_mb:.1f}",
                ]
            )
            result.sections.setdefault(label, []).append(run)
    result.tables["table4"] = rows
    return result
