"""Columnar triple storage.

A :class:`TripleStore` keeps (subject, predicate, object) id triples in three
parallel numpy arrays.  This is the representation the rest of the stack
(hexastore indices, CSR transformation, SPARQL executor) builds on.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np

Triple = Tuple[int, int, int]


class TripleStore:
    """Append-friendly columnar storage of integer triples.

    Parameters
    ----------
    subjects, predicates, objects:
        Optional initial columns; all three must have equal length.

    Notes
    -----
    The store deliberately does **not** deduplicate on append — RDF engines
    bulk-load and deduplicate on demand.  Use :meth:`deduplicated` to obtain
    a duplicate-free copy (this mirrors the ``dropDuplicates`` step of the
    paper's Algorithm 3).
    """

    __slots__ = ("s", "p", "o")

    def __init__(
        self,
        subjects: Optional[Sequence[int]] = None,
        predicates: Optional[Sequence[int]] = None,
        objects: Optional[Sequence[int]] = None,
    ):
        if subjects is None:
            subjects, predicates, objects = [], [], []
        if predicates is None or objects is None:
            raise ValueError("subjects, predicates and objects must be given together")
        self.s = np.asarray(subjects, dtype=np.int64)
        self.p = np.asarray(predicates, dtype=np.int64)
        self.o = np.asarray(objects, dtype=np.int64)
        if not (len(self.s) == len(self.p) == len(self.o)):
            raise ValueError(
                "column length mismatch: "
                f"{len(self.s)} subjects, {len(self.p)} predicates, {len(self.o)} objects"
            )

    @classmethod
    def from_triples(cls, triples: Iterable[Triple]) -> "TripleStore":
        """Build a store from an iterable of ``(s, p, o)`` tuples."""
        triples = list(triples)
        if not triples:
            return cls()
        arr = np.asarray(triples, dtype=np.int64)
        if arr.ndim != 2 or arr.shape[1] != 3:
            raise ValueError("expected an iterable of (s, p, o) tuples")
        return cls(arr[:, 0], arr[:, 1], arr[:, 2])

    def __len__(self) -> int:
        return len(self.s)

    def __iter__(self) -> Iterator[Triple]:
        for i in range(len(self)):
            yield (int(self.s[i]), int(self.p[i]), int(self.o[i]))

    def __getitem__(self, index: int) -> Triple:
        return (int(self.s[index]), int(self.p[index]), int(self.o[index]))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TripleStore):
            return NotImplemented
        return (
            np.array_equal(self.s, other.s)
            and np.array_equal(self.p, other.p)
            and np.array_equal(self.o, other.o)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TripleStore(n={len(self)})"

    def append(self, other: "TripleStore") -> "TripleStore":
        """Return a new store with ``other``'s triples appended."""
        return TripleStore(
            np.concatenate([self.s, other.s]),
            np.concatenate([self.p, other.p]),
            np.concatenate([self.o, other.o]),
        )

    def select(self, indices: np.ndarray) -> "TripleStore":
        """Return the sub-store at positional ``indices``."""
        indices = np.asarray(indices, dtype=np.int64)
        return TripleStore(self.s[indices], self.p[indices], self.o[indices])

    def mask(self, keep: np.ndarray) -> "TripleStore":
        """Return the sub-store where the boolean mask ``keep`` is True."""
        keep = np.asarray(keep, dtype=bool)
        return TripleStore(self.s[keep], self.p[keep], self.o[keep])

    def deduplicated(self) -> "TripleStore":
        """Return a copy without duplicate triples (order not preserved)."""
        if len(self) == 0:
            return TripleStore()
        stacked = np.stack([self.s, self.p, self.o], axis=1)
        unique = np.unique(stacked, axis=0)
        return TripleStore(unique[:, 0], unique[:, 1], unique[:, 2])

    def as_array(self) -> np.ndarray:
        """Return an ``(n, 3)`` int64 array view of the triples."""
        return np.stack([self.s, self.p, self.o], axis=1)

    def to_set(self) -> set[Triple]:
        """Return the triples as a Python set (small stores / tests only)."""
        return set(map(tuple, self.as_array().tolist()))

    def nbytes(self) -> int:
        """Bytes consumed by the three columns (modeled-memory accounting)."""
        return int(self.s.nbytes + self.p.nbytes + self.o.nbytes)

    def unique_nodes(self) -> np.ndarray:
        """Sorted unique node ids appearing as subject or object."""
        if len(self) == 0:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate([self.s, self.o]))

    def unique_predicates(self) -> np.ndarray:
        """Sorted unique predicate ids."""
        return np.unique(self.p)
