"""Shared per-graph artifact cache (the IBS/BRW/URW/bench hot path).

Samplers, the SPARQL executor and the benchmark experiments all derive the
same handful of artifacts from a :class:`~repro.kg.graph.KnowledgeGraph`:
the symmetric/homogeneous CSR projections, the hexastore index, the random
walk engine and the per-relation hetero adjacency stack.  Before this cache
each consumer rebuilt them independently — e.g. one ``table3`` run built
the identical symmetric CSR four times per dataset.

:class:`GraphArtifacts` memoizes each artifact per graph; :func:`artifacts_for`
hands out one shared instance per :class:`KnowledgeGraph`.

Invalidation contract
---------------------
Artifacts are keyed by *object identity* of the graph, which the codebase
treats as immutable after construction (subgraph extraction returns new
``KnowledgeGraph`` instances rather than mutating).  There is therefore no
invalidation: a mutated graph must be rebuilt, which naturally gets a fresh
cache entry.  Artifacts live on the graph object itself (a plain reference
cycle the garbage collector handles), so they die with their graph and
throwaway subgraphs do not accumulate.  See ``docs/performance.md`` for the
full contract.

Live ingest (``repro/kg/epoch.py``) honours the same rule rather than
bending it: appending triples produces a **new** merged graph — and with
it a fresh identity-keyed cache entry — whose artifacts are *seeded*
incrementally from the parent epoch's (merged CSR, sorted-merge
hexastore) instead of rebuilt, bit-identical to a cold build.  The old
epoch's graph and cache stay valid for requests still pinned to it.

Process locality (sharded serving)
----------------------------------
The cache is strictly **process-local**: artifacts are never pickled —
``KnowledgeGraph.__getstate__`` strips the attached cache (and every other
derived structure) before a graph ships to a serving pool worker, and each
worker rebuilds its own shard of artifacts on arrival via
:meth:`GraphArtifacts.warm`, the registration-time warm-up hook.  Under
multi-process serving (``repro/serve/pool.py``) there is consequently one
cache per (graph, owning worker) pair, built exactly once each; the
``hits``/``builds`` counters a worker reports are therefore per-process
numbers, summed across owners by the pool's metrics.
"""

from __future__ import annotations

import mmap
import threading
from typing import TYPE_CHECKING, Dict, Iterator, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.kg.graph import KnowledgeGraph
from repro.kg.hexastore import Hexastore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.sampling.walks import RandomWalkEngine
    from repro.transform.adjacency import Direction, HeteroAdjacency


def _is_mapped(array: np.ndarray) -> bool:
    """True when ``array``'s memory lives in a file mapping, not the heap.

    Walks the ``.base`` chain because views over a mapping (including the
    plain ``ndarray`` wrappers scipy's CSR constructor may produce) are not
    themselves ``memmap``/``mmap`` instances.
    """
    base = array
    while base is not None:
        if isinstance(base, (np.memmap, mmap.mmap)):
            return True
        if isinstance(base, memoryview):
            # np.frombuffer wraps its buffer in a memoryview; the mapping
            # (when there is one) sits behind the view's .obj.
            return isinstance(base.obj, mmap.mmap)
        base = getattr(base, "base", None)
    return False


class GraphArtifacts:
    """Memoized derived artifacts of one (immutable) knowledge graph.

    All getters are idempotent and thread-safe; the first call builds, every
    later call returns the shared instance.  This is the single construction
    point for CSR projections, walk engines and hetero stacks outside
    :mod:`repro.transform`.
    """

    def __init__(self, kg: KnowledgeGraph):
        self.kg = kg
        self._lock = threading.RLock()
        self._csr: Dict[str, sp.csr_matrix] = {}
        self._engines: Dict[str, "RandomWalkEngine"] = {}
        self._hetero: Dict[Tuple[bool, bool], "HeteroAdjacency"] = {}
        # Observability counters (read by the serving metrics): how many
        # getter calls found a warm artifact vs had to build one.  Guarded
        # by the same lock as the artifacts themselves.
        self.hits = 0
        self.builds = 0
        # Set by :meth:`from_store` when the arrays are mmap-backed views
        # of an on-disk artifact file (see ``repro/kg/store.py``).
        self.store_path: Optional[str] = None

    @classmethod
    def from_store(
        cls,
        kg: KnowledgeGraph,
        csr_matrices: Dict[str, sp.csr_matrix],
        store_path: Optional[str] = None,
    ) -> "GraphArtifacts":
        """Wire up a cache whose CSR projections are already built.

        The artifact store (``repro/kg/store.py``) reconstructs ``kg`` and
        its CSR projections as read-only memory-mapped views; this
        constructor pre-populates the cache with them and attaches it to the
        graph so every existing ``artifacts_for(kg)`` call site transparently
        gets the file-backed instance.  Pre-populated entries count as hits,
        never builds — nothing was constructed in this process.
        """
        artifacts = cls(kg)
        artifacts._csr.update(csr_matrices)
        artifacts.store_path = store_path
        with _ATTACH_LOCK:
            setattr(kg, _ATTRIBUTE, artifacts)
        return artifacts

    # -- homogeneous projections --

    def csr(self, direction: "Direction" = "both") -> sp.csr_matrix:
        """Homogeneous 0/1 CSR projection (memoized per direction)."""
        with self._lock:
            matrix = self._csr.get(direction)
            if matrix is None:
                from repro.transform.adjacency import build_csr

                matrix = build_csr(self.kg, direction=direction)
                self._csr[direction] = matrix
                self.builds += 1
            else:
                self.hits += 1
            return matrix

    # -- indices --

    @property
    def hexastore(self) -> Hexastore:
        """The graph's (lazily built) six-permutation index."""
        return self.kg.hexastore

    # -- walk engines --

    def walk_engine(self, direction: "Direction" = "both") -> "RandomWalkEngine":
        """Shared random-walk engine over the cached CSR projection."""
        with self._lock:
            engine = self._engines.get(direction)
            if engine is None:
                from repro.sampling.walks import RandomWalkEngine

                engine = RandomWalkEngine(
                    self.kg, direction=direction, adjacency=self.csr(direction)
                )
                self._engines[direction] = engine
                self.builds += 1
            else:
                self.hits += 1
            return engine

    # -- heterogeneous stacks --

    def hetero(
        self, add_reverse: bool = True, normalize: bool = True
    ) -> "HeteroAdjacency":
        """Per-relation adjacency stack (memoized per flag combination)."""
        key = (add_reverse, normalize)
        with self._lock:
            stack = self._hetero.get(key)
            if stack is None:
                from repro.transform.adjacency import build_hetero_adjacency

                stack = build_hetero_adjacency(
                    self.kg, add_reverse=add_reverse, normalize=normalize
                )
                self._hetero[key] = stack
                self.builds += 1
            else:
                self.hits += 1
            return stack

    # -- warm-up hook (serving registration / pool workers) --

    #: Artifact kinds :meth:`warm` understands.
    WARM_KINDS = ("csr", "walk", "hexastore", "hetero")

    def warm(self, kinds: Tuple[str, ...] = ("csr",)) -> None:
        """Build the named artifacts now instead of on the first request.

        The serving layer calls this at graph-registration time (in pool
        mode: inside the owning worker processes) so the first request's
        latency matches steady state.  ``kinds`` is a subset of
        :data:`WARM_KINDS`; ``"hexastore"`` constructs the index object —
        its individual orderings still build on first use, which is the
        documented lazy contract.
        """
        for kind in kinds:
            if kind == "csr":
                self.csr("both")
            elif kind == "walk":
                self.walk_engine("both")
            elif kind == "hexastore":
                self.hexastore  # noqa: B018 - lazy property, touch to build
            elif kind == "hetero":
                self.hetero()
            else:
                raise ValueError(
                    f"unknown artifact kind {kind!r}; choose from {self.WARM_KINDS}"
                )

    # -- accounting --

    def _artifact_arrays(self) -> Iterator[np.ndarray]:
        """Every array of every artifact built so far (caller holds the lock)."""
        for matrix in self._csr.values():
            yield matrix.data
            yield matrix.indices
            yield matrix.indptr
        for stack in self._hetero.values():
            for matrix in stack.matrices:
                yield matrix.data
                yield matrix.indices
                yield matrix.indptr
        if self.kg._hexastore is not None:
            yield from self.kg._hexastore.iter_arrays()

    def nbytes(self) -> int:
        """Modeled *resident* (heap) bytes of all artifacts built so far.

        Memory-mapped arrays are excluded: their pages are clean page-cache
        pages shared by every process mapping the same artifact file, so
        counting them here would bill the same physical memory once per
        worker (see :meth:`mapped_nbytes` and ``docs/performance.md``).
        """
        with self._lock:
            return int(
                sum(a.nbytes for a in self._artifact_arrays() if not _is_mapped(a))
            )

    def mapped_nbytes(self) -> int:
        """Bytes of artifact *and raw-graph* arrays backed by a file mapping.

        This is the shared, at-most-once-physical footprint of an
        ``open_artifacts`` graph; it is 0 for in-memory builds.  The serving
        metrics report it alongside :meth:`nbytes` (max across workers, not
        summed) so ``/metrics`` never multiplies shared pages per worker.
        """
        kg_arrays = (
            self.kg.node_types,
            self.kg.triples.s,
            self.kg.triples.p,
            self.kg.triples.o,
            self.kg.literal_triples.s,
            self.kg.literal_triples.p,
            self.kg.literal_triples.o,
        )
        with self._lock:
            total = sum(a.nbytes for a in self._artifact_arrays() if _is_mapped(a))
            total += sum(a.nbytes for a in kg_arrays if _is_mapped(a))
            return int(total)

    def clear(self) -> None:
        """Drop every memoized artifact (they rebuild on next access)."""
        with self._lock:
            self._csr.clear()
            self._engines.clear()
            self._hetero.clear()


# Artifacts hang off the graph object itself (not a module-level registry):
# the kg <-> artifacts reference cycle is ordinary and cyclic-GC collected,
# whereas a WeakKeyDictionary whose values reference their keys would pin
# every graph forever.
_ATTRIBUTE = "_graph_artifacts"
_ATTACH_LOCK = threading.Lock()


def artifacts_for(kg: KnowledgeGraph) -> GraphArtifacts:
    """The shared :class:`GraphArtifacts` of ``kg`` (one per graph)."""
    artifacts = getattr(kg, _ATTRIBUTE, None)
    if artifacts is None:
        with _ATTACH_LOCK:
            artifacts = getattr(kg, _ATTRIBUTE, None)
            if artifacts is None:
                artifacts = GraphArtifacts(kg)
                setattr(kg, _ATTRIBUTE, artifacts)
    return artifacts


def clear_artifacts(kg: KnowledgeGraph) -> None:
    """Forget ``kg``'s cached artifacts (they rebuild on next access)."""
    with _ATTACH_LOCK:
        if getattr(kg, _ATTRIBUTE, None) is not None:
            delattr(kg, _ATTRIBUTE)
