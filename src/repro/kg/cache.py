"""Shared per-graph artifact cache (the IBS/BRW/URW/bench hot path).

Samplers, the SPARQL executor and the benchmark experiments all derive the
same handful of artifacts from a :class:`~repro.kg.graph.KnowledgeGraph`:
the symmetric/homogeneous CSR projections, the hexastore index, the random
walk engine and the per-relation hetero adjacency stack.  Before this cache
each consumer rebuilt them independently — e.g. one ``table3`` run built
the identical symmetric CSR four times per dataset.

:class:`GraphArtifacts` memoizes each artifact per graph; :func:`artifacts_for`
hands out one shared instance per :class:`KnowledgeGraph`.

Invalidation contract
---------------------
Artifacts are keyed by *object identity* of the graph, which the codebase
treats as immutable after construction (subgraph extraction returns new
``KnowledgeGraph`` instances rather than mutating).  There is therefore no
invalidation: a mutated graph must be rebuilt, which naturally gets a fresh
cache entry.  Artifacts live on the graph object itself (a plain reference
cycle the garbage collector handles), so they die with their graph and
throwaway subgraphs do not accumulate.  See ``docs/performance.md`` for the
full contract.

Process locality (sharded serving)
----------------------------------
The cache is strictly **process-local**: artifacts are never pickled —
``KnowledgeGraph.__getstate__`` strips the attached cache (and every other
derived structure) before a graph ships to a serving pool worker, and each
worker rebuilds its own shard of artifacts on arrival via
:meth:`GraphArtifacts.warm`, the registration-time warm-up hook.  Under
multi-process serving (``repro/serve/pool.py``) there is consequently one
cache per (graph, owning worker) pair, built exactly once each; the
``hits``/``builds`` counters a worker reports are therefore per-process
numbers, summed across owners by the pool's metrics.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Dict, Tuple

import scipy.sparse as sp

from repro.kg.graph import KnowledgeGraph
from repro.kg.hexastore import Hexastore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.sampling.walks import RandomWalkEngine
    from repro.transform.adjacency import Direction, HeteroAdjacency


class GraphArtifacts:
    """Memoized derived artifacts of one (immutable) knowledge graph.

    All getters are idempotent and thread-safe; the first call builds, every
    later call returns the shared instance.  This is the single construction
    point for CSR projections, walk engines and hetero stacks outside
    :mod:`repro.transform`.
    """

    def __init__(self, kg: KnowledgeGraph):
        self.kg = kg
        self._lock = threading.RLock()
        self._csr: Dict[str, sp.csr_matrix] = {}
        self._engines: Dict[str, "RandomWalkEngine"] = {}
        self._hetero: Dict[Tuple[bool, bool], "HeteroAdjacency"] = {}
        # Observability counters (read by the serving metrics): how many
        # getter calls found a warm artifact vs had to build one.  Guarded
        # by the same lock as the artifacts themselves.
        self.hits = 0
        self.builds = 0

    # -- homogeneous projections --

    def csr(self, direction: "Direction" = "both") -> sp.csr_matrix:
        """Homogeneous 0/1 CSR projection (memoized per direction)."""
        with self._lock:
            matrix = self._csr.get(direction)
            if matrix is None:
                from repro.transform.adjacency import build_csr

                matrix = build_csr(self.kg, direction=direction)
                self._csr[direction] = matrix
                self.builds += 1
            else:
                self.hits += 1
            return matrix

    # -- indices --

    @property
    def hexastore(self) -> Hexastore:
        """The graph's (lazily built) six-permutation index."""
        return self.kg.hexastore

    # -- walk engines --

    def walk_engine(self, direction: "Direction" = "both") -> "RandomWalkEngine":
        """Shared random-walk engine over the cached CSR projection."""
        with self._lock:
            engine = self._engines.get(direction)
            if engine is None:
                from repro.sampling.walks import RandomWalkEngine

                engine = RandomWalkEngine(
                    self.kg, direction=direction, adjacency=self.csr(direction)
                )
                self._engines[direction] = engine
                self.builds += 1
            else:
                self.hits += 1
            return engine

    # -- heterogeneous stacks --

    def hetero(
        self, add_reverse: bool = True, normalize: bool = True
    ) -> "HeteroAdjacency":
        """Per-relation adjacency stack (memoized per flag combination)."""
        key = (add_reverse, normalize)
        with self._lock:
            stack = self._hetero.get(key)
            if stack is None:
                from repro.transform.adjacency import build_hetero_adjacency

                stack = build_hetero_adjacency(
                    self.kg, add_reverse=add_reverse, normalize=normalize
                )
                self._hetero[key] = stack
                self.builds += 1
            else:
                self.hits += 1
            return stack

    # -- warm-up hook (serving registration / pool workers) --

    #: Artifact kinds :meth:`warm` understands.
    WARM_KINDS = ("csr", "walk", "hexastore", "hetero")

    def warm(self, kinds: Tuple[str, ...] = ("csr",)) -> None:
        """Build the named artifacts now instead of on the first request.

        The serving layer calls this at graph-registration time (in pool
        mode: inside the owning worker processes) so the first request's
        latency matches steady state.  ``kinds`` is a subset of
        :data:`WARM_KINDS`; ``"hexastore"`` constructs the index object —
        its individual orderings still build on first use, which is the
        documented lazy contract.
        """
        for kind in kinds:
            if kind == "csr":
                self.csr("both")
            elif kind == "walk":
                self.walk_engine("both")
            elif kind == "hexastore":
                self.hexastore  # noqa: B018 - lazy property, touch to build
            elif kind == "hetero":
                self.hetero()
            else:
                raise ValueError(
                    f"unknown artifact kind {kind!r}; choose from {self.WARM_KINDS}"
                )

    # -- accounting --

    def nbytes(self) -> int:
        """Modeled resident bytes of all artifacts built so far."""
        with self._lock:
            total = 0
            for matrix in self._csr.values():
                total += matrix.data.nbytes + matrix.indices.nbytes + matrix.indptr.nbytes
            for stack in self._hetero.values():
                total += stack.nbytes()
            if self.kg._hexastore is not None:
                total += self.kg._hexastore.nbytes()
            return int(total)

    def clear(self) -> None:
        """Drop every memoized artifact (they rebuild on next access)."""
        with self._lock:
            self._csr.clear()
            self._engines.clear()
            self._hetero.clear()


# Artifacts hang off the graph object itself (not a module-level registry):
# the kg <-> artifacts reference cycle is ordinary and cyclic-GC collected,
# whereas a WeakKeyDictionary whose values reference their keys would pin
# every graph forever.
_ATTRIBUTE = "_graph_artifacts"
_ATTACH_LOCK = threading.Lock()


def artifacts_for(kg: KnowledgeGraph) -> GraphArtifacts:
    """The shared :class:`GraphArtifacts` of ``kg`` (one per graph)."""
    artifacts = getattr(kg, _ATTRIBUTE, None)
    if artifacts is None:
        with _ATTACH_LOCK:
            artifacts = getattr(kg, _ATTRIBUTE, None)
            if artifacts is None:
                artifacts = GraphArtifacts(kg)
                setattr(kg, _ATTRIBUTE, artifacts)
    return artifacts


def clear_artifacts(kg: KnowledgeGraph) -> None:
    """Forget ``kg``'s cached artifacts (they rebuild on next access)."""
    with _ATTACH_LOCK:
        if getattr(kg, _ATTRIBUTE, None) is not None:
            delattr(kg, _ATTRIBUTE)
