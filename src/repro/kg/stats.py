"""KG statistics (Table I of the paper).

The paper reports, per benchmark KG: #nodes, #edges (RDF triples), #node
types and #edge types.  :func:`compute_statistics` adds a few structural
indicators (density, degree moments) that the analysis sections reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.kg.graph import KnowledgeGraph


@dataclass(frozen=True)
class KGStatistics:
    """A Table I row plus structural extras."""

    name: str
    num_nodes: int
    num_edges: int
    num_node_types: int
    num_edge_types: int
    avg_out_degree: float
    max_degree: int
    density: float

    def as_row(self) -> List[str]:
        """Format as the Table I row: KG, #nodes, #edges, #n-type, #e-type."""
        return [
            self.name,
            _humanize(self.num_nodes),
            _humanize(self.num_edges),
            str(self.num_node_types),
            str(self.num_edge_types),
        ]


def _humanize(count: int) -> str:
    """Render a count the way Table I does (42.4M, 123K, ...)."""
    if count >= 1_000_000:
        return f"{count / 1_000_000:.1f}M"
    if count >= 1_000:
        return f"{count / 1_000:.1f}K"
    return str(count)


def compute_statistics(kg: KnowledgeGraph) -> KGStatistics:
    """Compute the Table I row (plus extras) for ``kg``."""
    degrees = kg.degree()
    num_nodes = kg.num_nodes
    num_edges = kg.num_edges
    density = num_edges / (num_nodes * max(num_nodes - 1, 1)) if num_nodes else 0.0
    return KGStatistics(
        name=kg.name,
        num_nodes=num_nodes,
        num_edges=num_edges,
        num_node_types=kg.num_node_types,
        num_edge_types=kg.num_edge_types,
        avg_out_degree=float(np.mean(kg.out_degree())) if num_nodes else 0.0,
        max_degree=int(degrees.max()) if num_nodes else 0,
        density=float(density),
    )
