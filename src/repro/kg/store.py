"""On-disk, memory-mapped graph artifact store (zero-copy serving).

The serving pool originally shipped every worker a pickled
:class:`~repro.kg.graph.KnowledgeGraph` and had each process rebuild its
indices locally — per-worker startup cost plus a per-shard RAM multiplier
(N workers → N resident copies of the same arrays).  This module writes the
graph *and* its derived artifacts once, as a single columnar file, and maps
it back read-only:

* :func:`save_artifacts` serializes the triple columns, node types,
  vocabularies, the three CSR projections (``both``/``out``/``in``) and all
  six hexastore orderings (permutation + gathered key columns) into one
  versioned artifact file;
* :func:`open_artifacts` memory-maps that file and returns a fully wired
  :class:`~repro.kg.cache.GraphArtifacts` whose arrays are read-only views
  into the mapping — no deserialization, no index builds, and every process
  that opens the same file shares the same physical page-cache pages.

File format (version 1)
-----------------------
::

    bytes 0..7    magic  b"TOSGART1"
    bytes 8..11   format version   (<u4)
    bytes 12..15  header length    (<u4, bytes of JSON that follow)
    bytes 16..19  header CRC-32    (<u4, over the JSON bytes)
    bytes 20..    JSON header      {"name", "vocab_counts", "sections"}
    ...           zero padding to a 64-byte boundary
    ...           sections, each starting on a 64-byte boundary

Every section is a flat little-endian array described by the header's
``sections`` table (``{name: {"dtype", "shape", "offset", "nbytes"}}``;
offsets are relative to the 64-byte-aligned data start).  Vocabularies are
stored as newline-joined UTF-8 blobs (``uint8`` sections).  All structural
failure modes — missing file, wrong magic, unsupported version, corrupted
header, truncated or inconsistent sections — raise the structured
:class:`ArtifactStoreError` instead of returning garbage arrays.

Because the mapping is ``ACCESS_READ``, the views are write-protected:
kernels that accidentally mutate shared state fail loudly instead of
corrupting a neighbour worker's answers, which keeps the standing
bit-exactness contract honest.
"""

from __future__ import annotations

import json
import mmap
import os
import zlib
from typing import Dict, List, Tuple

import numpy as np

from repro.kg.cache import GraphArtifacts
from repro.kg.graph import KnowledgeGraph
from repro.kg.hexastore import _ORDERS, Hexastore
from repro.kg.triples import TripleStore
from repro.kg.vocabulary import Vocabulary

#: Name of the artifact file inside the store directory.
ARTIFACT_FILENAME = "artifacts.tosg"

_MAGIC = b"TOSGART1"
_FORMAT_VERSION = 1
_ALIGNMENT = 64
_PREAMBLE = len(_MAGIC) + 4 + 4 + 4  # magic + version + header length + CRC

#: CSR projections persisted per graph (matches ``build_csr`` directions).
_CSR_DIRECTIONS = ("both", "out", "in")

#: Vocabulary sections: (section name, KnowledgeGraph attribute).
_VOCABS = (
    ("nodes", "node_vocab"),
    ("classes", "class_vocab"),
    ("relations", "relation_vocab"),
    ("literals", "literal_vocab"),
)


class ArtifactStoreError(RuntimeError):
    """A structured artifact-store failure (missing/corrupt/incompatible file)."""


def _align(offset: int) -> int:
    return (offset + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT


def _little_endian(array: np.ndarray) -> np.ndarray:
    """Contiguous little-endian copy-if-needed of ``array``."""
    array = np.ascontiguousarray(array)
    if array.dtype.byteorder == ">":  # pragma: no cover - big-endian hosts only
        array = array.astype(array.dtype.newbyteorder("<"))
    return array


def _encode_vocab(vocab: Vocabulary) -> np.ndarray:
    """A vocabulary's terms as one newline-joined UTF-8 ``uint8`` blob."""
    terms = list(vocab)
    for term in terms:
        if "\n" in term:
            raise ArtifactStoreError(
                f"vocabulary {vocab.name!r} term {term!r} contains a newline; "
                "the artifact store encodes terms newline-separated"
            )
    blob = "\n".join(terms).encode("utf-8")
    return np.frombuffer(blob, dtype=np.uint8) if blob else np.empty(0, dtype=np.uint8)


class _LazyVocabulary(Vocabulary):
    """A vocabulary that defers blob decoding until a term is first needed.

    Opening a store must stay O(header): splitting N terms and building the
    intern dict dominates open time on large graphs, yet the serving
    kernels (PPR, ego nets, CSR walks) work on dense integer ids and never
    touch term strings.  ``len`` answers straight from the header count;
    the first term-level operation materializes both maps and validates the
    blob (raising :class:`ArtifactStoreError` on corruption) exactly as an
    eager decode would have.
    """

    __slots__ = ("_pending",)

    def __init__(self, blob: np.ndarray, count: int, name: str):
        super().__init__(name=name)
        self._pending = (blob, int(count))

    def _materialize(self) -> None:
        if self._pending is None:
            return
        blob, count = self._pending
        try:
            terms = blob.tobytes().decode("utf-8").split("\n") if count else []
        except UnicodeDecodeError as exc:
            raise ArtifactStoreError(
                f"vocabulary section {self.name!r} is not valid UTF-8: {exc}"
            ) from exc
        if len(terms) != count:
            raise ArtifactStoreError(
                f"vocabulary section {self.name!r} decoded to {len(terms)} terms, "
                f"header promises {count}"
            )
        self._id_to_term = terms
        self._term_to_id = dict(zip(terms, range(count)))
        if len(self._term_to_id) != count:
            raise ArtifactStoreError(
                f"vocabulary section {self.name!r} contains duplicate terms"
            )
        self._pending = None

    def __len__(self) -> int:
        if self._pending is not None:
            return self._pending[1]
        return super().__len__()

    def add(self, term):
        self._materialize()
        return super().add(term)

    def id(self, term):
        self._materialize()
        return super().id(term)

    def get(self, term, default=None):
        self._materialize()
        return super().get(term, default)

    def term(self, term_id):
        self._materialize()
        return super().term(term_id)

    def __contains__(self, term):
        self._materialize()
        return super().__contains__(term)

    def __iter__(self):
        self._materialize()
        return super().__iter__()

    def copy(self):
        self._materialize()
        return super().copy()


def _decode_vocab(blob: np.ndarray, count: int, name: str) -> Vocabulary:
    return _LazyVocabulary(blob, count, name)


def _collect_arrays(kg: KnowledgeGraph) -> Dict[str, np.ndarray]:
    """Every array section of ``kg``'s artifact file, in file order."""
    from repro.kg.cache import artifacts_for

    arrays: Dict[str, np.ndarray] = {
        "node_types": kg.node_types,
        "triples/s": kg.triples.s,
        "triples/p": kg.triples.p,
        "triples/o": kg.triples.o,
        "literal_triples/s": kg.literal_triples.s,
        "literal_triples/p": kg.literal_triples.p,
        "literal_triples/o": kg.literal_triples.o,
    }
    for section, attribute in _VOCABS:
        arrays[f"vocab/{section}"] = _encode_vocab(getattr(kg, attribute))
    artifacts = artifacts_for(kg)
    for direction in _CSR_DIRECTIONS:
        matrix = artifacts.csr(direction)
        arrays[f"csr/{direction}/data"] = matrix.data
        arrays[f"csr/{direction}/indices"] = matrix.indices
        arrays[f"csr/{direction}/indptr"] = matrix.indptr
    hexastore = kg.hexastore.materialize()
    for order in _ORDERS:
        index = hexastore._index(order)
        arrays[f"hexastore/{order}/perm"] = index.perm
        for level in range(3):
            arrays[f"hexastore/{order}/key{level}"] = index.key(level)
    return arrays


def save_artifacts(kg: KnowledgeGraph, directory: str) -> Dict[str, object]:
    """Write ``kg`` and its derived artifacts as one mappable file.

    Builds any missing artifacts (CSR projections, hexastore orderings)
    through the shared :func:`~repro.kg.cache.artifacts_for` cache, then
    serializes everything into ``directory/artifacts.tosg`` atomically
    (write-temp + rename).  Returns a small manifest dict
    (``path`` / ``nbytes`` / ``sections``).
    """
    arrays = {name: _little_endian(array) for name, array in _collect_arrays(kg).items()}

    sections: Dict[str, Dict[str, object]] = {}
    offset = 0
    for name, array in arrays.items():
        offset = _align(offset)
        sections[name] = {
            "dtype": array.dtype.str,
            "shape": list(array.shape),
            "offset": offset,
            "nbytes": int(array.nbytes),
        }
        offset += array.nbytes

    header = {
        "name": kg.name,
        "vocab_counts": {
            section: len(getattr(kg, attribute)) for section, attribute in _VOCABS
        },
        "sections": sections,
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")

    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, ARTIFACT_FILENAME)
    temp_path = path + ".tmp"
    with open(temp_path, "wb") as handle:
        handle.write(_MAGIC)
        preamble_words = [_FORMAT_VERSION, len(header_bytes), zlib.crc32(header_bytes)]
        handle.write(np.asarray(preamble_words, dtype="<u4").tobytes())
        handle.write(header_bytes)
        position = _PREAMBLE + len(header_bytes)
        data_start = _align(position)
        handle.write(b"\x00" * (data_start - position))
        position = 0  # now relative to data_start
        for name, array in arrays.items():
            target = sections[name]["offset"]
            handle.write(b"\x00" * (target - position))
            handle.write(array.tobytes())
            position = target + array.nbytes
    os.replace(temp_path, path)
    return {"path": path, "nbytes": os.path.getsize(path), "sections": len(sections)}


def _parse_header(buffer: mmap.mmap, path: str) -> Tuple[Dict[str, object], int]:
    """Validate preamble + header; returns ``(header, data_start)``."""
    if len(buffer) < _PREAMBLE:
        raise ArtifactStoreError(
            f"{path}: file is {len(buffer)} bytes, shorter than the "
            f"{_PREAMBLE}-byte preamble (truncated?)"
        )
    if buffer[: len(_MAGIC)] != _MAGIC:
        raise ArtifactStoreError(
            f"{path}: bad magic {bytes(buffer[:len(_MAGIC)])!r}; "
            "not a TOSG artifact file"
        )
    version, header_length, header_crc = np.frombuffer(
        buffer, dtype="<u4", count=3, offset=len(_MAGIC)
    )
    if int(version) != _FORMAT_VERSION:
        raise ArtifactStoreError(
            f"{path}: artifact format version {int(version)} is not supported "
            f"(this build reads version {_FORMAT_VERSION}); rebuild with "
            "`repro build-artifacts`"
        )
    if _PREAMBLE + int(header_length) > len(buffer):
        raise ArtifactStoreError(
            f"{path}: header overruns the file ({int(header_length)} header bytes "
            f"in a {len(buffer)}-byte file); truncated artifact"
        )
    header_bytes = buffer[_PREAMBLE : _PREAMBLE + int(header_length)]
    if zlib.crc32(header_bytes) != int(header_crc):
        raise ArtifactStoreError(f"{path}: header checksum mismatch; corrupted artifact")
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ArtifactStoreError(f"{path}: unreadable artifact header: {exc}") from exc
    return header, _align(_PREAMBLE + int(header_length))


def _map_sections(
    buffer: mmap.mmap, header: Dict[str, object], data_start: int, path: str
) -> Dict[str, np.ndarray]:
    """Zero-copy ``np.frombuffer`` views for every section, bounds-checked."""
    arrays: Dict[str, np.ndarray] = {}
    for name, spec in header["sections"].items():
        dtype = np.dtype(spec["dtype"])
        if dtype.byteorder == ">":  # pragma: no cover - never written by save
            raise ArtifactStoreError(
                f"{path}: section {name!r} is big-endian; artifact files are "
                "little-endian by contract"
            )
        count = int(np.prod(spec["shape"], dtype=np.int64)) if spec["shape"] else 1
        expected = count * dtype.itemsize
        if expected != int(spec["nbytes"]):
            raise ArtifactStoreError(
                f"{path}: section {name!r} is internally inconsistent "
                f"({spec['nbytes']} bytes for shape {spec['shape']} {dtype})"
            )
        end = data_start + int(spec["offset"]) + expected
        if end > len(buffer):
            raise ArtifactStoreError(
                f"{path}: section {name!r} ends at byte {end} but the file has "
                f"only {len(buffer)}; truncated artifact"
            )
        view = np.frombuffer(
            buffer, dtype=dtype, count=count, offset=data_start + int(spec["offset"])
        )
        arrays[name] = view.reshape(spec["shape"])
    return arrays


def open_artifacts(directory: str) -> GraphArtifacts:
    """Memory-map a saved artifact store back into serving shape.

    Returns a :class:`~repro.kg.cache.GraphArtifacts` (reachable again via
    ``artifacts_for(result.kg)``) whose CSR projections and hexastore
    orderings are read-only views into the file mapping — opening is
    O(header): vocabularies decode lazily on first term access, and the
    array pages fault in lazily and are shared by every process mapping the
    same file.
    """
    path = os.path.join(directory, ARTIFACT_FILENAME)
    if not os.path.exists(path):
        raise ArtifactStoreError(
            f"no artifact store at {path}; create one with `repro build-artifacts`"
        )
    with open(path, "rb") as handle:
        try:
            buffer = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except ValueError as exc:  # zero-byte file
            raise ArtifactStoreError(f"{path}: cannot map artifact file: {exc}") from exc

    header, data_start = _parse_header(buffer, path)
    arrays = _map_sections(buffer, header, data_start, path)
    try:
        vocabs = {
            section: _decode_vocab(
                arrays[f"vocab/{section}"], header["vocab_counts"][section], section
            )
            for section, _ in _VOCABS
        }
        kg = KnowledgeGraph(
            node_vocab=vocabs["nodes"],
            class_vocab=vocabs["classes"],
            relation_vocab=vocabs["relations"],
            node_types=arrays["node_types"],
            triples=TripleStore(arrays["triples/s"], arrays["triples/p"], arrays["triples/o"]),
            literal_vocab=vocabs["literals"],
            literal_triples=TripleStore(
                arrays["literal_triples/s"],
                arrays["literal_triples/p"],
                arrays["literal_triples/o"],
            ),
            name=header["name"],
        )
    except (KeyError, ValueError) as exc:
        raise ArtifactStoreError(f"{path}: inconsistent artifact contents: {exc}") from exc

    kg._hexastore = Hexastore.from_prebuilt(
        kg.triples,
        {
            order: (
                arrays[f"hexastore/{order}/perm"],
                [arrays[f"hexastore/{order}/key{level}"] for level in range(3)],
            )
            for order in _ORDERS
        },
    )

    import scipy.sparse as sp

    n = kg.num_nodes
    csr_matrices = {}
    for direction in _CSR_DIRECTIONS:
        csr_matrices[direction] = sp.csr_matrix(
            (
                arrays[f"csr/{direction}/data"],
                arrays[f"csr/{direction}/indices"],
                arrays[f"csr/{direction}/indptr"],
            ),
            shape=(n, n),
        )
    return GraphArtifacts.from_store(kg, csr_matrices, store_path=path)
