"""KG schema summaries.

The paper's graph pattern reasons about which (subject class, predicate,
object class) combinations exist — metapaths are composed from these schema
triples.  :func:`summarize_schema` derives them from the instance data.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.kg.graph import KnowledgeGraph


@dataclass
class SchemaSummary:
    """Aggregate view of a KG's type-level structure.

    Attributes
    ----------
    class_counts:
        class id -> number of instance nodes.
    relation_counts:
        relation id -> number of instance edges.
    schema_triples:
        (subject class, relation, object class) -> instance-edge count.
    """

    class_counts: Dict[int, int] = field(default_factory=dict)
    relation_counts: Dict[int, int] = field(default_factory=dict)
    schema_triples: Dict[Tuple[int, int, int], int] = field(default_factory=dict)

    def relations_between(self, subject_class: int, object_class: int) -> List[int]:
        """Relation ids observed from ``subject_class`` to ``object_class``."""
        return sorted(
            {
                r
                for (sc, r, oc) in self.schema_triples
                if sc == subject_class and oc == object_class
            }
        )

    def out_relations(self, subject_class: int) -> List[int]:
        """Relation ids whose subjects are of ``subject_class``."""
        return sorted({r for (sc, r, _oc) in self.schema_triples if sc == subject_class})

    def in_relations(self, object_class: int) -> List[int]:
        """Relation ids whose objects are of ``object_class``."""
        return sorted({r for (_sc, r, oc) in self.schema_triples if oc == object_class})

    def metapaths(self, start_class: int, hops: int) -> List[Tuple[int, ...]]:
        """Enumerate metapaths of ``hops`` edges starting at ``start_class``.

        A metapath is returned as an alternating tuple
        ``(c0, r1, c1, r2, c2, ...)`` following the paper's
        ``c1 -r1-> c2 -r2-> ...`` notation (forward direction only).
        """
        paths: List[Tuple[int, ...]] = [(start_class,)]
        for _ in range(hops):
            extended: List[Tuple[int, ...]] = []
            for path in paths:
                tail_class = path[-1]
                for (sc, r, oc) in self.schema_triples:
                    if sc == tail_class:
                        extended.append(path + (r, oc))
            paths = extended
        return paths


def summarize_schema(kg: KnowledgeGraph) -> SchemaSummary:
    """Derive the :class:`SchemaSummary` of ``kg`` from its instance triples."""
    class_counts = Counter(kg.node_types.tolist())
    relation_counts = Counter(kg.triples.p.tolist())
    if len(kg.triples):
        subject_classes = kg.node_types[kg.triples.s]
        object_classes = kg.node_types[kg.triples.o]
        stacked = np.stack([subject_classes, kg.triples.p, object_classes], axis=1)
        unique, counts = np.unique(stacked, axis=0, return_counts=True)
        schema_triples = {
            (int(sc), int(r), int(oc)): int(n)
            for (sc, r, oc), n in zip(unique.tolist(), counts.tolist())
        }
    else:
        schema_triples = {}
    return SchemaSummary(
        class_counts=dict(class_counts),
        relation_counts=dict(relation_counts),
        schema_triples=schema_triples,
    )
