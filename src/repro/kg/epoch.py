"""Epochal graph snapshots: live KGs as chains of immutable epochs.

Production KGs receive triples continuously, but everything in this
codebase — the artifact cache, the batch kernels, the serving layer — is
built on *immutable* graphs.  This module reconciles the two without
giving up a single bit-exactness contract:

* A :class:`GraphEpoch` is one immutable snapshot: a **base**
  :class:`~repro.kg.graph.KnowledgeGraph` (the last compaction point)
  plus an append-only columnar **delta log** of the triples ingested
  since.  ``epoch.kg`` is a *real* merged ``KnowledgeGraph`` — every
  existing consumer (``artifacts_for``, the SPARQL executor, the batch
  kernels, the model registry) works on it unchanged — but its derived
  artifacts are constructed **incrementally** from the parent epoch's
  artifacts instead of from scratch:

  - **CSR projections** merge as ``base_csr + delta_csr`` (canonicalised
    back to 0/1), identical to ``build_csr`` on the merged graph.
  - **Hexastore orderings** merge each already-built base permutation
    with a lexsort of the (small) delta via two ``searchsorted`` calls —
    the classic sorted-merge — reproducing ``np.lexsort`` on the merged
    columns *exactly* (lexsort is stable and base positions precede
    delta positions, so tie order is preserved).

* :class:`LiveGraph` strings epochs together behind one lock: ingest
  appends a delta (bumping the epoch number), periodic **compaction**
  folds the delta into a fresh base (reusing the already-merged graph,
  so nothing is recomputed), and a bounded ring of recent epochs keeps
  in-flight requests pinned to the epoch they were admitted under.

* The hot kernels become **delta-aware with retained oracles**:
  per-target batch-PPR results are cached together with their *support
  set* (every node whose adjacency row or degree the push schedule
  read), and ego extractions with their node sets.  An ingest
  invalidates exactly the entries whose support intersects the dirty
  nodes — everything else provably replays the identical schedule on
  the new epoch, so serving it from cache is bit-exact.

See ``docs/live-graphs.md`` for the operator-facing lifecycle.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.kg.cache import GraphArtifacts, artifacts_for
from repro.kg.graph import KnowledgeGraph
from repro.kg.hexastore import Hexastore, _radix_product_fits_int64
from repro.kg.triples import TripleStore

#: How many past epochs a LiveGraph keeps resolvable by number.  In-flight
#: requests admitted under epoch N resolve N from this ring even after
#: later ingests; beyond the ring the current epoch answers (the only
#: callers that far behind are metrics readers, not correctness paths).
EPOCH_HISTORY = 16

#: Bound on retained per-target kernel caches (FIFO eviction).
KERNEL_CACHE_CAPACITY = 4096


def _merged_csr(
    parent: GraphArtifacts, delta: TripleStore, num_nodes: int
) -> Dict[str, sp.csr_matrix]:
    """Merge every CSR direction the parent has built with the delta.

    ``base + delta`` unions the sparsity structures (scipy's CSR addition
    emits canonical, column-sorted output); resetting ``data`` to 1.0
    restores the 0/1 convention, after which the matrix is value-identical
    to ``build_csr`` on the merged graph.
    """
    merged: Dict[str, sp.csr_matrix] = {}
    for direction, base in parent._csr.items():
        if direction == "out":
            rows, cols = delta.s, delta.o
        elif direction == "in":
            rows, cols = delta.o, delta.s
        else:  # "both" symmetrises, exactly like build_csr
            rows = np.concatenate([delta.s, delta.o])
            cols = np.concatenate([delta.o, delta.s])
        extra = sp.csr_matrix(
            (np.ones(len(rows), dtype=np.float64), (rows, cols)),
            shape=(num_nodes, num_nodes),
        )
        extra.sum_duplicates()
        combined = base + extra
        combined.sum_duplicates()
        combined.sort_indices()
        combined.data[:] = 1.0
        merged[direction] = combined
    return merged


def _composite(keys: List[np.ndarray], radices: List[int]) -> np.ndarray:
    """Mixed-radix int64 encoding of three sorted key columns.

    With each radix above the level's maximum value the encoding is
    injective and order-preserving, so composites compare exactly like
    the lexicographic triple order.
    """
    out = keys[0].astype(np.int64, copy=True)
    for key, radix in zip(keys[1:], radices[1:]):
        out *= radix
        out += key
    return out


def _merged_hexastore(
    parent_kg: KnowledgeGraph, delta: TripleStore, merged_store: TripleStore
) -> Optional[Hexastore]:
    """Incrementally merge the parent's built hexastore orderings.

    For each ordering the parent materialised, the merged permutation is
    the stable sorted-merge of the base permutation and a lexsort of the
    delta: composite keys for both runs, then two ``searchsorted`` calls
    place every element.  Because ``np.lexsort`` is stable and base
    triples precede delta triples in the merged store, the result is
    **bit-identical** to lexsorting the merged columns from scratch.
    Orderings the parent never built stay lazy on the merged store.
    """
    base_hexa = parent_kg._hexastore
    if base_hexa is None or not base_hexa._indices:
        return None
    delta_columns = {"s": delta.s, "p": delta.p, "o": delta.o}
    n_base = len(parent_kg.triples)
    n_delta = len(delta)
    prebuilt: Dict[str, Tuple[np.ndarray, List[Optional[np.ndarray]]]] = {}
    for name, index in base_hexa._indices.items():
        ordered = [delta_columns[component] for component in index.order]
        delta_perm = np.lexsort((ordered[2], ordered[1], ordered[0]))
        base_keys = [index.key(level) for level in range(3)]
        delta_keys = [column[delta_perm] for column in ordered]
        radices = [
            int(
                max(
                    int(bk.max()) if bk.size else 0,
                    int(dk.max()) if dk.size else 0,
                )
            )
            + 1
            for bk, dk in zip(base_keys, delta_keys)
        ]
        keys: List[Optional[np.ndarray]] = [None, None, None]
        if _radix_product_fits_int64(radices):
            base_composite = _composite(base_keys, radices)
            delta_composite = _composite(delta_keys, radices)
            pos_base = np.arange(n_base, dtype=np.int64) + np.searchsorted(
                delta_composite, base_composite, side="left"
            )
            pos_delta = np.arange(n_delta, dtype=np.int64) + np.searchsorted(
                base_composite, delta_composite, side="right"
            )
            perm = np.empty(n_base + n_delta, dtype=np.int64)
            perm[pos_base] = index.perm
            perm[pos_delta] = delta_perm + n_base
            for level in range(3):
                merged_key = np.empty(n_base + n_delta, dtype=np.int64)
                merged_key[pos_base] = base_keys[level]
                merged_key[pos_delta] = delta_keys[level]
                keys[level] = merged_key
        else:  # pragma: no cover - needs ids near 2^21 on all three levels
            columns = {"s": merged_store.s, "p": merged_store.p, "o": merged_store.o}
            full = [columns[component] for component in index.order]
            perm = np.lexsort((full[2], full[1], full[0]))
        prebuilt[name] = (perm, keys)
    return Hexastore.from_prebuilt(merged_store, prebuilt)


class GraphEpoch:
    """One immutable snapshot of a live graph.

    ``kg`` is a fully usable merged :class:`KnowledgeGraph` (base + every
    delta so far); ``base_kg`` is the last compaction point and ``delta``
    the columnar log of triples ingested since.  Epochs never mutate:
    :meth:`extend` and :meth:`compact` return *new* epochs, which is what
    keeps every identity-keyed cache and bit-exactness contract intact.
    """

    __slots__ = ("number", "kg", "base_kg", "delta")

    def __init__(
        self,
        number: int,
        kg: KnowledgeGraph,
        base_kg: KnowledgeGraph,
        delta: TripleStore,
    ):
        self.number = number
        self.kg = kg
        self.base_kg = base_kg
        self.delta = delta

    @classmethod
    def initial(cls, kg: KnowledgeGraph) -> "GraphEpoch":
        """Epoch 0: the registered graph itself, with an empty delta log."""
        return cls(number=0, kg=kg, base_kg=kg, delta=TripleStore())

    @property
    def delta_rows(self) -> int:
        """Triples ingested since the last compaction."""
        return len(self.delta)

    def extend(self, new_triples: TripleStore, compact: bool = False) -> "GraphEpoch":
        """Next epoch with ``new_triples`` appended.

        The merged graph shares this epoch's vocabularies and node types
        (ingest never grows the id spaces — see :meth:`LiveGraph.ingest`),
        and its derived artifacts are built incrementally from this
        epoch's: merged CSR projections for every direction already
        cached, merged hexastore permutations for every ordering already
        built.  ``compact=True`` additionally folds the whole delta into
        the new epoch's base (same merged graph, empty delta) — used when
        the compaction policy triggers on ingest.
        """
        parent_kg = self.kg
        merged_store = parent_kg.triples.append(new_triples)
        merged_kg = KnowledgeGraph(
            node_vocab=parent_kg.node_vocab,
            class_vocab=parent_kg.class_vocab,
            relation_vocab=parent_kg.relation_vocab,
            node_types=parent_kg.node_types,
            triples=merged_store,
            literal_vocab=parent_kg.literal_vocab,
            literal_triples=parent_kg.literal_triples,
            name=parent_kg.name,
        )
        hexa = _merged_hexastore(parent_kg, new_triples, merged_store)
        if hexa is not None:
            merged_kg._hexastore = hexa
        # Degree caches update by bincount of the delta endpoints; the
        # nodes_of_type buckets depend only on node_types, shared as-is.
        if parent_kg._out_degree is not None:
            merged_kg._out_degree = parent_kg._out_degree + np.bincount(
                new_triples.s, minlength=merged_kg.num_nodes
            )
        if parent_kg._in_degree is not None:
            merged_kg._in_degree = parent_kg._in_degree + np.bincount(
                new_triples.o, minlength=merged_kg.num_nodes
            )
        if parent_kg._nodes_by_type is not None:
            merged_kg._nodes_by_type = parent_kg._nodes_by_type
        parent_artifacts = getattr(parent_kg, "_graph_artifacts", None)
        if parent_artifacts is not None and parent_artifacts._csr:
            GraphArtifacts.from_store(
                merged_kg, _merged_csr(parent_artifacts, new_triples, merged_kg.num_nodes)
            )
        if compact:
            return GraphEpoch(
                number=self.number + 1,
                kg=merged_kg,
                base_kg=merged_kg,
                delta=TripleStore(),
            )
        return GraphEpoch(
            number=self.number + 1,
            kg=merged_kg,
            base_kg=self.base_kg,
            delta=self.delta.append(new_triples),
        )

    def compact(self, out_dir: Optional[str] = None) -> "GraphEpoch":
        """Fold the delta into a fresh base without recomputing anything.

        The merged graph *is* the new base — its artifacts were already
        built incrementally — so compaction is O(1) plus, optionally, one
        ``save_artifacts`` write when ``out_dir`` is given (the same
        on-disk store ``--mmap-dir`` serves from).
        """
        if out_dir is not None:
            from repro.kg.store import save_artifacts

            save_artifacts(self.kg, out_dir)
        return GraphEpoch(
            number=self.number + 1, kg=self.kg, base_kg=self.kg, delta=TripleStore()
        )

    def cold_rebuild(self) -> KnowledgeGraph:
        """A fresh, cache-free graph with this epoch's exact content.

        The oracle for every incremental-merge claim: rebuilding all
        artifacts from scratch on this graph must reproduce the merged
        artifacts bit for bit (asserted by ``tests/kg/test_epoch.py`` and
        ``benchmarks/test_perf_live.py``).
        """
        return KnowledgeGraph(
            node_vocab=self.kg.node_vocab,
            class_vocab=self.kg.class_vocab,
            relation_vocab=self.kg.relation_vocab,
            node_types=self.kg.node_types,
            triples=TripleStore(self.kg.triples.s, self.kg.triples.p, self.kg.triples.o),
            literal_vocab=self.kg.literal_vocab,
            literal_triples=self.kg.literal_triples,
            name=self.kg.name,
        )


class LiveGraph:
    """A thread-safe chain of :class:`GraphEpoch` s with retained kernels.

    One ``LiveGraph`` wraps one registered graph: :meth:`ingest` appends
    triples (bumping the epoch), :meth:`compact` folds the delta log, and
    :meth:`ppr_top_k` / :meth:`ego_batch` / :meth:`paths_batch` answer
    kernel requests through per-target caches that survive ingests
    untouched by them.  Epoch
    resolution by number keeps in-flight requests on the snapshot they
    were admitted under (a bounded ring; see :data:`EPOCH_HISTORY`).
    """

    def __init__(
        self,
        kg: KnowledgeGraph,
        compact_every: int = 0,
        history: int = EPOCH_HISTORY,
        cache_capacity: int = KERNEL_CACHE_CAPACITY,
    ):
        self._lock = threading.RLock()
        self._current = GraphEpoch.initial(kg)
        self._ring: Dict[int, GraphEpoch] = {0: self._current}
        self._history = max(int(history), 1)
        self.compact_every = max(int(compact_every), 0)
        self._cache_capacity = max(int(cache_capacity), 0)
        # (target, k, alpha, eps) -> (top-k pairs, support node array)
        self._ppr_cache: Dict[Tuple, Tuple[list, np.ndarray]] = {}
        # (root, depth, fanout, salt) -> ego extraction
        self._ego_cache: Dict[Tuple, object] = {}
        # (src, dst, max_hops, max_paths) -> (path lists, support node array)
        self._paths_cache: Dict[Tuple, Tuple[list, np.ndarray]] = {}
        self.ingested_triples = 0
        self.compactions = 0
        self.ppr_hits = 0
        self.ppr_misses = 0
        self.ppr_invalidated = 0
        self.ego_hits = 0
        self.ego_misses = 0
        self.ego_invalidated = 0
        self.paths_hits = 0
        self.paths_misses = 0
        self.paths_invalidated = 0

    # -- epoch access --

    @property
    def epoch(self) -> GraphEpoch:
        """The current (most recent) epoch."""
        with self._lock:
            return self._current

    @property
    def kg(self) -> KnowledgeGraph:
        """The current epoch's merged graph."""
        return self.epoch.kg

    def resolve(self, number: Optional[int] = None) -> GraphEpoch:
        """The epoch with ``number``, or the current one.

        Numbers older than the ring (or unknown) resolve to the current
        epoch — acceptable because the ring outlives any in-flight
        coalescing window by orders of magnitude.
        """
        with self._lock:
            if number is None:
                return self._current
            return self._ring.get(int(number), self._current)

    # -- ingest --

    def validate_triples(self, triples) -> np.ndarray:
        """Normalise and range-check an ingest payload against the graph.

        Returns the ``(n, 3)`` int64 array; raises ``ValueError`` with an
        operator-readable message otherwise.  Only triples among existing
        nodes and relations are accepted — ingest never grows the id
        spaces, which is what keeps vocabularies, CSR shapes, tasks and
        registered checkpoints valid across epochs.
        """
        try:
            arr = np.asarray(triples, dtype=np.int64)
        except (TypeError, ValueError, OverflowError):
            raise ValueError("triples must be an array of integer [s, p, o] rows")
        if arr.size == 0:
            return arr.reshape(0, 3)
        if arr.ndim != 2 or arr.shape[1] != 3:
            raise ValueError(
                f"triples must be shaped (n, 3), got {list(arr.shape)}"
            )
        kg = self.kg
        if int(arr[:, [0, 2]].min()) < 0 or int(arr[:, [0, 2]].max()) >= kg.num_nodes:
            raise ValueError(
                f"subject/object ids must be in [0, {kg.num_nodes}) — "
                "ingest does not mint new nodes"
            )
        if int(arr[:, 1].min()) < 0 or int(arr[:, 1].max()) >= kg.num_edge_types:
            raise ValueError(
                f"predicate ids must be in [0, {kg.num_edge_types}) — "
                "ingest does not mint new relations"
            )
        return arr

    def would_compact(self, new_rows: int) -> bool:
        """Whether ingesting ``new_rows`` triples triggers compaction."""
        if self.compact_every <= 0:
            return False
        with self._lock:
            return self._current.delta_rows + int(new_rows) >= self.compact_every

    def ingest(self, triples, compact: Optional[bool] = None) -> Dict[str, object]:
        """Append triples as a new epoch; invalidate touched kernel caches.

        ``compact`` overrides the ``compact_every`` policy — the worker
        pool ships the parent's decision so every process's epoch chain
        stays in lockstep.  An empty payload is a no-op (no epoch bump).
        """
        arr = self.validate_triples(triples)
        with self._lock:
            if len(arr) == 0:
                return {
                    "added": 0,
                    "epoch": self._current.number,
                    "delta_rows": self._current.delta_rows,
                    "compacted": False,
                }
            if compact is None:
                compact = self.would_compact(len(arr))
            delta = TripleStore(arr[:, 0], arr[:, 1], arr[:, 2])
            epoch = self._current.extend(delta, compact=bool(compact))
            self._install(epoch)
            self.ingested_triples += len(arr)
            if compact:
                self.compactions += 1
            self._invalidate(arr)
            return {
                "added": len(arr),
                "epoch": epoch.number,
                "delta_rows": epoch.delta_rows,
                "compacted": bool(compact),
            }

    def compact(self, out_dir: Optional[str] = None) -> Dict[str, object]:
        """Fold the current delta into a fresh base epoch.

        Results are unchanged (the merged graph is reused as the new
        base), so retained kernel caches survive; in-flight requests on
        the previous epoch keep answering from the ring.
        """
        with self._lock:
            epoch = self._current.compact(out_dir)
            self._install(epoch)
            self.compactions += 1
            return {
                "epoch": epoch.number,
                "delta_rows": epoch.delta_rows,
                "compacted": True,
            }

    def _install(self, epoch: GraphEpoch) -> None:
        self._current = epoch
        self._ring[epoch.number] = epoch
        while len(self._ring) > self._history:
            del self._ring[min(self._ring)]

    def _invalidate(self, arr: np.ndarray) -> None:
        """Drop retained entries whose support intersects the dirty nodes."""
        dirty = np.zeros(self._current.kg.num_nodes, dtype=bool)
        dirty[arr[:, 0]] = True
        dirty[arr[:, 2]] = True
        stale = [
            key
            for key, (_, support) in self._ppr_cache.items()
            if support.size and dirty[support].any()
        ]
        for key in stale:
            del self._ppr_cache[key]
        self.ppr_invalidated += len(stale)
        stale = [
            key
            for key, ego in self._ego_cache.items()
            if getattr(ego, "nodes").size and dirty[getattr(ego, "nodes")].any()
        ]
        for key in stale:
            del self._ego_cache[key]
        self.ego_invalidated += len(stale)
        stale = [
            key
            for key, (_, support) in self._paths_cache.items()
            if support.size and dirty[support].any()
        ]
        for key in stale:
            del self._paths_cache[key]
        self.paths_invalidated += len(stale)

    def _evict(self, cache: Dict) -> None:
        while self._cache_capacity and len(cache) > self._cache_capacity:
            del cache[next(iter(cache))]

    # -- delta-aware kernels --

    def ppr_top_k(
        self,
        targets,
        k: int,
        alpha: float = 0.25,
        eps: float = 2e-4,
        epoch: Optional[int] = None,
    ) -> Dict[int, List[Tuple[int, float]]]:
        """`batch_ppr_top_k` through the retained per-target cache.

        Requests for the current epoch serve cached targets and batch the
        rest through :func:`repro.sampling.ppr.batch_ppr_top_k_with_support`,
        retaining each fresh result with its support set.  Requests pinned
        to an older epoch bypass the cache and run on that snapshot —
        still bit-exact, never mixed with another epoch's answers.
        """
        from repro.sampling.ppr import batch_ppr_top_k, batch_ppr_top_k_with_support

        targets = [int(t) for t in targets]
        with self._lock:
            snapshot = self._current
            if epoch is not None and int(epoch) != snapshot.number:
                snapshot = self._ring.get(int(epoch), snapshot)
                use_cache = snapshot is self._current
            else:
                use_cache = True
            results: Dict[int, List[Tuple[int, float]]] = {}
            missing: List[int] = []
            if use_cache:
                for target in targets:
                    hit = self._ppr_cache.get((target, int(k), float(alpha), float(eps)))
                    if hit is None:
                        missing.append(target)
                    else:
                        results[target] = hit[0]
                self.ppr_hits += len(results)
                self.ppr_misses += len(set(missing))
        if not use_cache:
            adjacency = artifacts_for(snapshot.kg).csr("both")
            return batch_ppr_top_k(adjacency, targets, k, alpha=alpha, eps=eps)
        if missing:
            adjacency = artifacts_for(snapshot.kg).csr("both")
            fresh = batch_ppr_top_k_with_support(
                adjacency, missing, k, alpha=alpha, eps=eps
            )
            with self._lock:
                retain = self._current is snapshot
                for target, (pairs, support) in fresh.items():
                    results[target] = pairs
                    if retain:
                        self._ppr_cache[
                            (target, int(k), float(alpha), float(eps))
                        ] = (pairs, support)
                if retain:
                    self._evict(self._ppr_cache)
        return results

    def ego_batch(
        self,
        roots,
        depth: int,
        fanout: int,
        salt: int,
        epoch: Optional[int] = None,
    ) -> List[object]:
        """`extract_ego_batch` through the retained per-root cache.

        An ego extraction only ever reads the adjacency rows of nodes it
        reached, so a cached extraction stays valid until an ingest dirties
        one of its nodes — the invalidation rule :meth:`ingest` applies.
        """
        from repro.models.shadowsaint import extract_ego_batch

        roots = [int(r) for r in roots]
        with self._lock:
            snapshot = self._current
            if epoch is not None and int(epoch) != snapshot.number:
                snapshot = self._ring.get(int(epoch), snapshot)
                use_cache = snapshot is self._current
            else:
                use_cache = True
            cached: Dict[int, object] = {}
            missing: List[int] = []
            if use_cache:
                for root in roots:
                    hit = self._ego_cache.get((root, int(depth), int(fanout), int(salt)))
                    if hit is None:
                        missing.append(root)
                    else:
                        cached[root] = hit
                self.ego_hits += len(cached)
                self.ego_misses += len(set(missing))
        if not use_cache:
            return extract_ego_batch(snapshot.kg, roots, depth, fanout, salt)
        if missing:
            fresh = extract_ego_batch(snapshot.kg, missing, depth, fanout, salt)
            with self._lock:
                retain = self._current is snapshot
                for root, ego in zip(missing, fresh):
                    cached[root] = ego
                    if retain:
                        self._ego_cache[(root, int(depth), int(fanout), int(salt))] = ego
                if retain:
                    self._evict(self._ego_cache)
        return [cached[root] for root in roots]

    def paths_batch(
        self,
        pairs,
        max_hops: int = 3,
        max_paths: int = 64,
        epoch: Optional[int] = None,
    ) -> List[list]:
        """`enumerate_paths_batch` through the retained per-pair cache.

        Requests for the current epoch serve cached ``(src, dst)`` pairs
        and batch the rest through
        :func:`repro.sampling.paths.enumerate_paths_batch_with_support`,
        retaining each fresh path list with its support set (every node
        the enumeration expanded — see the kernel's docstring for why an
        ingest outside the support cannot change the answer).  Requests
        pinned to an older epoch bypass the cache and run on that
        snapshot.  Returns one path list per input pair, in order.
        """
        from repro.sampling.paths import (
            enumerate_paths_batch,
            enumerate_paths_batch_with_support,
        )

        pair_keys = [(int(src), int(dst)) for src, dst in pairs]
        with self._lock:
            snapshot = self._current
            if epoch is not None and int(epoch) != snapshot.number:
                snapshot = self._ring.get(int(epoch), snapshot)
                use_cache = snapshot is self._current
            else:
                use_cache = True
            cached: Dict[Tuple[int, int], list] = {}
            missing: List[Tuple[int, int]] = []
            if use_cache:
                for pair in pair_keys:
                    hit = self._paths_cache.get((pair, int(max_hops), int(max_paths)))
                    if hit is None:
                        missing.append(pair)
                    else:
                        cached[pair] = hit[0]
                self.paths_hits += len(cached)
                self.paths_misses += len(set(missing))
        if not use_cache:
            return enumerate_paths_batch(
                snapshot.kg, pair_keys, max_hops=max_hops, max_paths=max_paths
            )
        if missing:
            distinct = sorted(set(missing))
            fresh = enumerate_paths_batch_with_support(
                snapshot.kg, distinct, max_hops=max_hops, max_paths=max_paths
            )
            with self._lock:
                retain = self._current is snapshot
                for pair, (paths, support) in zip(distinct, fresh):
                    cached[pair] = paths
                    if retain:
                        self._paths_cache[(pair, int(max_hops), int(max_paths))] = (
                            paths,
                            support,
                        )
                if retain:
                    self._evict(self._paths_cache)
        return [cached[pair] for pair in pair_keys]

    # -- observability --

    def stats(self) -> Dict[str, object]:
        """The `/metrics` epoch/delta gauges for this graph."""
        with self._lock:
            return {
                "epoch": self._current.number,
                "delta_rows": self._current.delta_rows,
                "base_rows": len(self._current.base_kg.triples),
                "ingested_triples": self.ingested_triples,
                "compactions": self.compactions,
                "compact_every": self.compact_every,
                "ppr_cache": {
                    "entries": len(self._ppr_cache),
                    "hits": self.ppr_hits,
                    "misses": self.ppr_misses,
                    "invalidated": self.ppr_invalidated,
                },
                "ego_cache": {
                    "entries": len(self._ego_cache),
                    "hits": self.ego_hits,
                    "misses": self.ego_misses,
                    "invalidated": self.ego_invalidated,
                },
                "paths_cache": {
                    "entries": len(self._paths_cache),
                    "hits": self.paths_hits,
                    "misses": self.paths_misses,
                    "invalidated": self.paths_invalidated,
                },
            }
