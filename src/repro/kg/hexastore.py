"""Hexastore-style sextuple indexing (Weiss et al., VLDB 2008).

RDF engines build six sorted permutation indices — SPO, SOP, PSO, POS, OSP,
OPS — so that any triple pattern with bound subject/predicate/object prefixes
resolves to a contiguous run found by binary search.  The paper's
SPARQL-based extraction (Algorithm 3) owes its "negligible preprocessing
overhead" to exactly these indices; this module supplies the equivalent.

The implementation stores, per ordering, a permutation of triple positions
sorted lexicographically by that ordering.  Both the orderings themselves
and their sorted key columns are built *lazily*: an ordering materialises on
its first lookup, and each sorted key column is derived from the stored
permutation on the first lookup that actually binds that level.  A workload
that only ever asks ``(s, ?, ?)`` patterns therefore pays for one
``lexsort`` and one gathered column instead of six of each.  Lookups are
nested ``numpy.searchsorted`` range narrowings, i.e. O(log n) per bound
component; :meth:`Hexastore.batch_ranges` answers many sibling patterns with
one batched ``searchsorted`` for the executor's vectorized joins.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.kg.triples import TripleStore

# Component order per index: which triple column is the 1st/2nd/3rd sort key.
_ORDERS: Dict[str, Tuple[str, str, str]] = {
    "spo": ("s", "p", "o"),
    "sop": ("s", "o", "p"),
    "pso": ("p", "s", "o"),
    "pos": ("p", "o", "s"),
    "osp": ("o", "s", "p"),
    "ops": ("o", "p", "s"),
}


class _SortedIndex:
    """One of the six orderings: a permutation plus lazy sorted key columns."""

    __slots__ = ("order", "perm", "_columns", "_keys", "_lock")

    def __init__(self, store: TripleStore, order: Tuple[str, str, str]):
        self.order = order
        columns = {"s": store.s, "p": store.p, "o": store.o}
        self._columns = tuple(columns[c] for c in order)
        # numpy.lexsort sorts by the *last* key first.
        self.perm = np.lexsort((self._columns[2], self._columns[1], self._columns[0]))
        self._keys: List[Optional[np.ndarray]] = [None, None, None]
        self._lock = threading.Lock()

    @classmethod
    def from_arrays(
        cls,
        store: TripleStore,
        order: Tuple[str, str, str],
        perm: np.ndarray,
        keys: Sequence[np.ndarray],
    ) -> "_SortedIndex":
        """Rehydrate an ordering from previously materialized arrays.

        Used by the artifact store (``repro/kg/store.py``): ``perm`` and all
        three ``keys`` are read-only memory-mapped views, so the index skips
        its lexsort entirely and never mutates lazy state afterwards.
        """
        index = cls.__new__(cls)
        index.order = order
        columns = {"s": store.s, "p": store.p, "o": store.o}
        index._columns = tuple(columns[c] for c in order)
        index.perm = perm
        index._keys = list(keys)
        index._lock = threading.Lock()
        return index

    def iter_arrays(self):
        """Yield the permutation plus every key column built so far."""
        yield self.perm
        for column in self._keys:
            if column is not None:
                yield column

    def key(self, level: int) -> np.ndarray:
        """Sorted key column of ``level``, derived from ``perm`` on first use."""
        column = self._keys[level]
        if column is None:
            # Double-checked so concurrent endpoint workers gather once.
            with self._lock:
                column = self._keys[level]
                if column is None:
                    column = self._columns[level][self.perm]
                    self._keys[level] = column
        return column

    def nbytes(self) -> int:
        """Bytes of the permutation plus the key columns built so far."""
        total = int(self.perm.nbytes)
        for column in self._keys:
            if column is not None:
                total += int(column.nbytes)
        return total

    def narrow(self, bound: Dict[str, int]) -> Tuple[int, int]:
        """Binary-search the run of positions matching the bound prefix.

        ``bound`` maps component letters to required values; only a *prefix*
        of this index's order may be bound (the caller picks a compatible
        index).  Returns the half-open range ``[lo, hi)`` into ``perm``.
        """
        lo, hi = 0, len(self.perm)
        for level, component in enumerate(self.order):
            if component not in bound:
                break
            key_column = self.key(level)
            value = bound[component]
            window = key_column[lo:hi]
            new_lo = lo + int(np.searchsorted(window, value, side="left"))
            new_hi = lo + int(np.searchsorted(window, value, side="right"))
            lo, hi = new_lo, new_hi
            if lo >= hi:
                return lo, lo
        return lo, hi


def _choose_order(bound_components: frozenset) -> str:
    """Pick the index whose prefix covers all bound components."""
    for name, order in _ORDERS.items():
        prefix = set(order[: len(bound_components)])
        if prefix == set(bound_components):
            return name
    raise AssertionError(f"no order covers {bound_components}")  # pragma: no cover


def _choose_order_with_next(bound_components: frozenset, next_component: str) -> str:
    """Pick the index whose prefix is ``bound`` followed by ``next_component``."""
    depth = len(bound_components)
    for name, order in _ORDERS.items():
        if set(order[:depth]) == set(bound_components) and order[depth] == next_component:
            return name
    raise AssertionError(  # pragma: no cover
        f"no order covers {bound_components} then {next_component!r}"
    )


def _choose_order_with_group(
    bound_components: frozenset, group: Sequence[str]
) -> Tuple[str, Tuple[int, ...]]:
    """Pick an index whose prefix is ``bound`` then the ``group`` components.

    The group may land in the index in either internal order; returns the
    index name plus, per index level, which position of ``group`` supplies
    that level's key (so callers can reorder their key columns to match).
    """
    depth = len(bound_components)
    wanted = set(group)
    for name, order in _ORDERS.items():
        if set(order[:depth]) != set(bound_components):
            continue
        if set(order[depth : depth + len(group)]) == wanted:
            layout = tuple(group.index(order[depth + i]) for i in range(len(group)))
            return name, layout
    raise AssertionError(  # pragma: no cover
        f"no order covers {bound_components} then group {group}"
    )


def _radix_product_fits_int64(radices: List[int]) -> bool:
    product = 1
    for radix in radices:
        product *= radix
    return product < 2**63


class Hexastore:
    """Six-permutation sorted index over a :class:`TripleStore`.

    Each of the six indices is built on its first use (and its sorted key
    columns on *their* first use), so the steady-state footprint reflects
    the patterns a workload actually asks; :meth:`materialize` forces the
    full RDF-engine-style eager build.  :meth:`match` answers any triple
    pattern by nested binary search on the best-suited ordering.

    Example
    -------
    >>> store = TripleStore.from_triples([(0, 1, 2), (0, 1, 3), (4, 1, 2)])
    >>> hexa = Hexastore(store)
    >>> sorted(hexa.objects(subject=0, predicate=1).tolist())
    [2, 3]
    """

    def __init__(self, store: TripleStore):
        self.store = store
        self._indices: Dict[str, _SortedIndex] = {}
        self._build_lock = threading.Lock()

    @classmethod
    def from_prebuilt(
        cls,
        store: TripleStore,
        indices: Dict[str, Tuple[np.ndarray, Sequence[np.ndarray]]],
    ) -> "Hexastore":
        """Build a hexastore around already-sorted arrays (the mmap path).

        ``indices`` maps each ordering name to ``(perm, [key0, key1, key2])``
        as produced by a :meth:`materialize`-d index — typically read-only
        memory-mapped sections from ``repro/kg/store.py``.  Orderings not in
        ``indices`` still build lazily on first use.
        """
        hexa = cls(store)
        for name, (perm, keys) in indices.items():
            hexa._indices[name] = _SortedIndex.from_arrays(store, _ORDERS[name], perm, keys)
        return hexa

    def iter_arrays(self):
        """Yield every permutation / key-column array built so far."""
        for index in self._indices.values():
            yield from index.iter_arrays()

    def __len__(self) -> int:
        return len(self.store)

    def _index(self, name: str) -> _SortedIndex:
        index = self._indices.get(name)
        if index is None:
            # The SPARQL endpoint fans pages out to worker threads over one
            # shared hexastore; double-checked locking keeps the one-time
            # lexsort per ordering from running once per thread.
            with self._build_lock:
                index = self._indices.get(name)
                if index is None:
                    index = _SortedIndex(self.store, _ORDERS[name])
                    self._indices[name] = index
        return index

    def materialize(self) -> "Hexastore":
        """Eagerly build all six orderings and their key columns."""
        for name in _ORDERS:
            index = self._index(name)
            for level in range(3):
                index.key(level)
        return self

    def nbytes(self) -> int:
        """Approximate bytes used by the permutations + key columns built."""
        return int(sum(index.nbytes() for index in self._indices.values()))

    def match(
        self,
        subject: Optional[int] = None,
        predicate: Optional[int] = None,
        obj: Optional[int] = None,
    ) -> np.ndarray:
        """Return positions (into the store) of triples matching the pattern.

        ``None`` components are wildcards.  With no components bound this
        returns all positions.
        """
        bound: Dict[str, int] = {}
        if subject is not None:
            bound["s"] = int(subject)
        if predicate is not None:
            bound["p"] = int(predicate)
        if obj is not None:
            bound["o"] = int(obj)
        if not bound:
            return np.arange(len(self.store), dtype=np.int64)
        index = self._index(_choose_order(frozenset(bound)))
        lo, hi = index.narrow(bound)
        return index.perm[lo:hi]

    def count(
        self,
        subject: Optional[int] = None,
        predicate: Optional[int] = None,
        obj: Optional[int] = None,
    ) -> int:
        """Number of triples matching the pattern (no materialisation)."""
        bound: Dict[str, int] = {}
        if subject is not None:
            bound["s"] = int(subject)
        if predicate is not None:
            bound["p"] = int(predicate)
        if obj is not None:
            bound["o"] = int(obj)
        if not bound:
            return len(self.store)
        index = self._index(_choose_order(frozenset(bound)))
        lo, hi = index.narrow(bound)
        return hi - lo

    def batch_ranges(
        self,
        bound: Dict[str, int],
        component: Union[str, Sequence[str]],
        values: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched lookup of many sibling patterns in one ``searchsorted``.

        With a single ``component``, resolves — for each ``v`` in the 1-D
        ``values`` — the pattern whose constants are ``bound`` plus
        ``{component: v}``.  With a *sequence* of components, ``values``
        must be 2-D with one column per component (in the given order) and
        each row resolves the pattern binding all of them at once: the
        sorted-merge over composite keys that vectorizes the executor's
        multi-bound-variable joins.

        Returns ``(los, his, perm)`` where ``perm[los[i]:his[i]]`` are the
        store positions matching the i-th pattern.  ``bound`` may be empty;
        ``values`` need not be unique.
        """
        if isinstance(component, str):
            order_name = _choose_order_with_next(frozenset(bound), component)
            index = self._index(order_name)
            lo, hi = (0, len(index.perm)) if not bound else index.narrow(bound)
            window = index.key(len(bound))[lo:hi]
            values = np.asarray(values)
            los = lo + np.searchsorted(window, values, side="left")
            his = lo + np.searchsorted(window, values, side="right")
            return los.astype(np.int64), his.astype(np.int64), index.perm

        components = tuple(component)
        values = np.atleast_2d(np.asarray(values, dtype=np.int64))
        if values.shape[1] != len(components):
            raise ValueError(
                f"values must have one column per component: "
                f"{values.shape[1]} columns for {components}"
            )
        order_name, layout = _choose_order_with_group(frozenset(bound), components)
        index = self._index(order_name)
        lo, hi = (0, len(index.perm)) if not bound else index.narrow(bound)
        depth = len(bound)
        if lo >= hi:
            flat = np.full(len(values), lo, dtype=np.int64)
            return flat, flat.copy(), index.perm
        windows = [index.key(depth + level)[lo:hi] for level in range(len(components))]
        columns = [values[:, position] for position in layout]
        # Mixed-radix composite keys: with radix > max value per level the
        # encoding is injective and preserves the window's lexicographic
        # order, so one searchsorted resolves every composite pattern.
        radices = [
            int(max(window.max(), column.max() if column.size else 0)) + 1
            for window, column in zip(windows, columns)
        ]
        if _radix_product_fits_int64(radices):
            composite_window = windows[0].astype(np.int64)
            composite_values = columns[0].astype(np.int64)
            for window, column, radix in zip(windows[1:], columns[1:], radices[1:]):
                composite_window = composite_window * radix + window
                composite_values = composite_values * radix + column
            los = lo + np.searchsorted(composite_window, composite_values, side="left")
            his = lo + np.searchsorted(composite_window, composite_values, side="right")
            return los.astype(np.int64), his.astype(np.int64), index.perm
        # Composite would overflow int64 (needs ids near 2^21 on all three
        # levels): narrow each row separately — rare and still correct.
        los = np.empty(len(values), dtype=np.int64)
        his = np.empty(len(values), dtype=np.int64)
        for row in range(len(values)):  # pragma: no cover - overflow guard
            pattern = dict(bound)
            for position, name in enumerate(components):
                pattern[name] = int(values[row, position])
            row_lo, row_hi = index.narrow(pattern)
            los[row], his[row] = row_lo, row_hi
        return los, his, index.perm

    def triples(
        self,
        subject: Optional[int] = None,
        predicate: Optional[int] = None,
        obj: Optional[int] = None,
    ) -> TripleStore:
        """Materialise the matching triples as a :class:`TripleStore`."""
        positions = self.match(subject, predicate, obj)
        return self.store.select(positions)

    # -- convenience accessors used heavily by samplers and the executor --

    def objects(self, subject: Optional[int] = None, predicate: Optional[int] = None) -> np.ndarray:
        """Object ids of triples matching ``(subject, predicate, ?)``."""
        positions = self.match(subject=subject, predicate=predicate)
        return self.store.o[positions]

    def subjects(self, predicate: Optional[int] = None, obj: Optional[int] = None) -> np.ndarray:
        """Subject ids of triples matching ``(?, predicate, obj)``."""
        positions = self.match(predicate=predicate, obj=obj)
        return self.store.s[positions]

    def predicates(self, subject: Optional[int] = None, obj: Optional[int] = None) -> np.ndarray:
        """Predicate ids of triples matching ``(subject, ?, obj)``."""
        positions = self.match(subject=subject, obj=obj)
        return self.store.p[positions]

    def out_neighbors(self, subject: int) -> np.ndarray:
        """All objects reachable from ``subject`` via any predicate."""
        return self.objects(subject=subject)

    def in_neighbors(self, obj: int) -> np.ndarray:
        """All subjects pointing to ``obj`` via any predicate."""
        return self.subjects(obj=obj)

    def neighbors(self, node: int, unique: bool = True) -> np.ndarray:
        """Union of in- and out-neighbours of ``node``.

        ``unique=True`` (default) deduplicates and sorts.  ``unique=False``
        skips the sort and may return duplicates — the fast path for
        walk-style frontier expansion (ego-net BFS, fanout sampling) whose
        callers dedupe downstream anyway.  One-sided nodes never pay the
        concatenate+unique of the general case.
        """
        outs = self.out_neighbors(node)
        ins = self.in_neighbors(node)
        if len(ins) == 0:
            combined = outs
        elif len(outs) == 0:
            combined = ins
        else:
            combined = np.concatenate([outs, ins])
        if len(combined) == 0:
            return np.empty(0, dtype=np.int64)
        return np.unique(combined) if unique else combined
