"""Hexastore-style sextuple indexing (Weiss et al., VLDB 2008).

RDF engines build six sorted permutation indices — SPO, SOP, PSO, POS, OSP,
OPS — so that any triple pattern with bound subject/predicate/object prefixes
resolves to a contiguous run found by binary search.  The paper's
SPARQL-based extraction (Algorithm 3) owes its "negligible preprocessing
overhead" to exactly these indices; this module supplies the equivalent.

The implementation stores, per ordering, a permutation of triple positions
sorted lexicographically by that ordering, plus materialised sorted key
columns.  Lookups are nested ``numpy.searchsorted`` range narrowings, i.e.
O(log n) per bound component.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.kg.triples import TripleStore

# Component order per index: which triple column is the 1st/2nd/3rd sort key.
_ORDERS: Dict[str, Tuple[str, str, str]] = {
    "spo": ("s", "p", "o"),
    "sop": ("s", "o", "p"),
    "pso": ("p", "s", "o"),
    "pos": ("p", "o", "s"),
    "osp": ("o", "s", "p"),
    "ops": ("o", "p", "s"),
}


class _SortedIndex:
    """One of the six orderings: a permutation plus its sorted key columns."""

    __slots__ = ("order", "perm", "keys")

    def __init__(self, store: TripleStore, order: Tuple[str, str, str]):
        self.order = order
        columns = {"s": store.s, "p": store.p, "o": store.o}
        primary, secondary, tertiary = (columns[c] for c in order)
        # numpy.lexsort sorts by the *last* key first.
        self.perm = np.lexsort((tertiary, secondary, primary))
        self.keys = tuple(columns[c][self.perm] for c in order)

    def narrow(self, bound: Dict[str, int]) -> Tuple[int, int]:
        """Binary-search the run of positions matching the bound prefix.

        ``bound`` maps component letters to required values; only a *prefix*
        of this index's order may be bound (the caller picks a compatible
        index).  Returns the half-open range ``[lo, hi)`` into ``perm``.
        """
        lo, hi = 0, len(self.perm)
        for level, component in enumerate(self.order):
            if component not in bound:
                break
            key_column = self.keys[level]
            value = bound[component]
            window = key_column[lo:hi]
            new_lo = lo + int(np.searchsorted(window, value, side="left"))
            new_hi = lo + int(np.searchsorted(window, value, side="right"))
            lo, hi = new_lo, new_hi
            if lo >= hi:
                return lo, lo
        return lo, hi


def _choose_order(bound_components: frozenset) -> str:
    """Pick the index whose prefix covers all bound components."""
    for name, order in _ORDERS.items():
        prefix = set(order[: len(bound_components)])
        if prefix == set(bound_components):
            return name
    raise AssertionError(f"no order covers {bound_components}")  # pragma: no cover


class Hexastore:
    """Six-permutation sorted index over a :class:`TripleStore`.

    All six indices are built eagerly at construction (RDF engines build
    them at load time); :meth:`match` then answers any triple pattern by
    nested binary search on the best-suited ordering.

    Example
    -------
    >>> store = TripleStore.from_triples([(0, 1, 2), (0, 1, 3), (4, 1, 2)])
    >>> hexa = Hexastore(store)
    >>> sorted(hexa.objects(subject=0, predicate=1).tolist())
    [2, 3]
    """

    def __init__(self, store: TripleStore):
        self.store = store
        self._indices: Dict[str, _SortedIndex] = {
            name: _SortedIndex(store, order) for name, order in _ORDERS.items()
        }

    def __len__(self) -> int:
        return len(self.store)

    def nbytes(self) -> int:
        """Approximate bytes used by the six permutations + key copies."""
        total = 0
        for index in self._indices.values():
            total += index.perm.nbytes + sum(k.nbytes for k in index.keys)
        return int(total)

    def match(
        self,
        subject: Optional[int] = None,
        predicate: Optional[int] = None,
        obj: Optional[int] = None,
    ) -> np.ndarray:
        """Return positions (into the store) of triples matching the pattern.

        ``None`` components are wildcards.  With no components bound this
        returns all positions.
        """
        bound: Dict[str, int] = {}
        if subject is not None:
            bound["s"] = int(subject)
        if predicate is not None:
            bound["p"] = int(predicate)
        if obj is not None:
            bound["o"] = int(obj)
        if not bound:
            return np.arange(len(self.store), dtype=np.int64)
        index = self._indices[_choose_order(frozenset(bound))]
        lo, hi = index.narrow(bound)
        return index.perm[lo:hi]

    def count(
        self,
        subject: Optional[int] = None,
        predicate: Optional[int] = None,
        obj: Optional[int] = None,
    ) -> int:
        """Number of triples matching the pattern (no materialisation)."""
        bound: Dict[str, int] = {}
        if subject is not None:
            bound["s"] = int(subject)
        if predicate is not None:
            bound["p"] = int(predicate)
        if obj is not None:
            bound["o"] = int(obj)
        if not bound:
            return len(self.store)
        index = self._indices[_choose_order(frozenset(bound))]
        lo, hi = index.narrow(bound)
        return hi - lo

    def triples(
        self,
        subject: Optional[int] = None,
        predicate: Optional[int] = None,
        obj: Optional[int] = None,
    ) -> TripleStore:
        """Materialise the matching triples as a :class:`TripleStore`."""
        positions = self.match(subject, predicate, obj)
        return self.store.select(positions)

    # -- convenience accessors used heavily by samplers and the executor --

    def objects(self, subject: Optional[int] = None, predicate: Optional[int] = None) -> np.ndarray:
        """Object ids of triples matching ``(subject, predicate, ?)``."""
        positions = self.match(subject=subject, predicate=predicate)
        return self.store.o[positions]

    def subjects(self, predicate: Optional[int] = None, obj: Optional[int] = None) -> np.ndarray:
        """Subject ids of triples matching ``(?, predicate, obj)``."""
        positions = self.match(predicate=predicate, obj=obj)
        return self.store.s[positions]

    def predicates(self, subject: Optional[int] = None, obj: Optional[int] = None) -> np.ndarray:
        """Predicate ids of triples matching ``(subject, ?, obj)``."""
        positions = self.match(subject=subject, obj=obj)
        return self.store.p[positions]

    def out_neighbors(self, subject: int) -> np.ndarray:
        """All objects reachable from ``subject`` via any predicate."""
        return self.objects(subject=subject)

    def in_neighbors(self, obj: int) -> np.ndarray:
        """All subjects pointing to ``obj`` via any predicate."""
        return self.subjects(obj=obj)

    def neighbors(self, node: int) -> np.ndarray:
        """Union of in- and out-neighbours of ``node`` (unique, sorted)."""
        outs = self.out_neighbors(node)
        ins = self.in_neighbors(node)
        if len(outs) == 0 and len(ins) == 0:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate([outs, ins]))
