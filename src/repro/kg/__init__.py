"""Knowledge-graph substrate.

This package implements the storage layer that the paper assumes an RDF
engine provides: interned vocabularies, a columnar triple store, a
hexastore-style six-permutation index (Weiss et al., VLDB 2008), the
:class:`KnowledgeGraph` container used throughout the reproduction, schema
summaries, serialization, and statistics (Table I of the paper).
"""

from repro.kg.vocabulary import Vocabulary
from repro.kg.triples import TripleStore
from repro.kg.hexastore import Hexastore
from repro.kg.graph import KnowledgeGraph, SubgraphMapping
from repro.kg.cache import GraphArtifacts, artifacts_for, clear_artifacts
from repro.kg.store import ArtifactStoreError, open_artifacts, save_artifacts
from repro.kg.schema import SchemaSummary, summarize_schema
from repro.kg.stats import KGStatistics, compute_statistics
from repro.kg.io import save_kg, load_kg, write_ntriples, read_ntriples

__all__ = [
    "Vocabulary",
    "TripleStore",
    "Hexastore",
    "KnowledgeGraph",
    "SubgraphMapping",
    "GraphArtifacts",
    "artifacts_for",
    "clear_artifacts",
    "ArtifactStoreError",
    "open_artifacts",
    "save_artifacts",
    "SchemaSummary",
    "summarize_schema",
    "KGStatistics",
    "compute_statistics",
    "save_kg",
    "load_kg",
    "write_ntriples",
    "read_ntriples",
]
