"""KG serialization.

Two formats are supported:

* a columnar TSV bundle (``nodes.tsv`` + ``triples.tsv``) that round-trips a
  :class:`~repro.kg.graph.KnowledgeGraph` exactly, and
* a minimal N-Triples-style writer/reader (``<iri> <iri> <iri> .``) for
  interoperability with RDF tooling, mirroring how the paper's benchmark
  KGs are shipped.
"""

from __future__ import annotations

import os
from typing import Tuple

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.kg.triples import TripleStore
from repro.kg.vocabulary import Vocabulary

_NODES_FILE = "nodes.tsv"
_TRIPLES_FILE = "triples.tsv"


def save_kg(kg: KnowledgeGraph, directory: str) -> None:
    """Write ``kg`` as a TSV bundle under ``directory``.

    ``nodes.tsv`` holds ``node_iri \\t class_iri`` (one line per node, in id
    order); ``triples.tsv`` holds ``s_iri \\t p_iri \\t o_iri``.
    """
    os.makedirs(directory, exist_ok=True)
    with open(os.path.join(directory, _NODES_FILE), "w", encoding="utf-8") as handle:
        for node_id in range(kg.num_nodes):
            node_iri = kg.node_vocab.term(node_id)
            class_iri = kg.class_vocab.term(int(kg.node_types[node_id]))
            handle.write(f"{node_iri}\t{class_iri}\n")
    with open(os.path.join(directory, _TRIPLES_FILE), "w", encoding="utf-8") as handle:
        for s, p, o in kg.triples:
            handle.write(
                f"{kg.node_vocab.term(s)}\t{kg.relation_vocab.term(p)}\t{kg.node_vocab.term(o)}\n"
            )


def load_kg(directory: str, name: str = "kg") -> KnowledgeGraph:
    """Load a TSV bundle previously written by :func:`save_kg`."""
    nodes_path = os.path.join(directory, _NODES_FILE)
    triples_path = os.path.join(directory, _TRIPLES_FILE)
    node_rows: list[Tuple[str, str]] = []
    with open(nodes_path, encoding="utf-8") as handle:
        for line in handle:
            line = line.rstrip("\n")
            if not line:
                continue
            node_iri, class_iri = line.split("\t")
            node_rows.append((node_iri, class_iri))
    triple_rows: list[Tuple[str, str, str]] = []
    with open(triples_path, encoding="utf-8") as handle:
        for line in handle:
            line = line.rstrip("\n")
            if not line:
                continue
            s_iri, p_iri, o_iri = line.split("\t")
            triple_rows.append((s_iri, p_iri, o_iri))
    kg = KnowledgeGraph.build(node_rows, triple_rows, name=name)
    return kg


_RDF_TYPE = "rdf:type"


def write_ntriples(kg: KnowledgeGraph, path: str) -> None:
    """Write ``kg`` in a minimal N-Triples dialect.

    Node-type assertions are emitted as ``<s> <rdf:type> <class> .`` lines so
    the file is self-contained, matching how RDF KG dumps encode classes.
    """
    with open(path, "w", encoding="utf-8") as handle:
        for node_id in range(kg.num_nodes):
            node_iri = kg.node_vocab.term(node_id)
            class_iri = kg.class_vocab.term(int(kg.node_types[node_id]))
            handle.write(f"<{node_iri}> <{_RDF_TYPE}> <{class_iri}> .\n")
        for s, p, o in kg.triples:
            handle.write(
                f"<{kg.node_vocab.term(s)}> <{kg.relation_vocab.term(p)}> "
                f"<{kg.node_vocab.term(o)}> .\n"
            )


def _parse_nt_line(line: str) -> Tuple[str, str, str] | None:
    line = line.strip()
    if not line or line.startswith("#"):
        return None
    if not line.endswith("."):
        raise ValueError(f"malformed N-Triples line (missing '.'): {line!r}")
    body = line[:-1].strip()
    parts = body.split(None, 2)
    if len(parts) != 3:
        raise ValueError(f"malformed N-Triples line: {line!r}")
    terms = []
    for part in parts:
        part = part.strip()
        if part.startswith("<") and part.endswith(">"):
            terms.append(part[1:-1])
        else:
            terms.append(part)
    return terms[0], terms[1], terms[2]


def read_ntriples(path: str, name: str = "kg") -> KnowledgeGraph:
    """Read the dialect written by :func:`write_ntriples`.

    ``rdf:type`` triples define node classes; any node never typed falls
    back to the class ``"owl:Thing"``.
    """
    node_vocab = Vocabulary(name="nodes")
    class_vocab = Vocabulary(name="classes")
    relation_vocab = Vocabulary(name="relations")
    type_of: dict[int, int] = {}
    subjects: list[int] = []
    predicates: list[int] = []
    objects: list[int] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            parsed = _parse_nt_line(line)
            if parsed is None:
                continue
            s_iri, p_iri, o_iri = parsed
            if p_iri == _RDF_TYPE:
                node_id = node_vocab.add(s_iri)
                type_of[node_id] = class_vocab.add(o_iri)
            else:
                subjects.append(node_vocab.add(s_iri))
                predicates.append(relation_vocab.add(p_iri))
                objects.append(node_vocab.add(o_iri))
    default_class = None
    node_types = np.zeros(len(node_vocab), dtype=np.int64)
    for node_id in range(len(node_vocab)):
        if node_id in type_of:
            node_types[node_id] = type_of[node_id]
        else:
            if default_class is None:
                default_class = class_vocab.add("owl:Thing")
            node_types[node_id] = default_class
    return KnowledgeGraph(
        node_vocab=node_vocab,
        class_vocab=class_vocab,
        relation_vocab=relation_vocab,
        node_types=node_types,
        triples=TripleStore(subjects, predicates, objects),
        name=name,
    )
