"""String interning for RDF terms.

RDF engines map IRIs/literals to dense integer ids so that triples become
integer tuples amenable to sorted indices.  :class:`Vocabulary` provides the
bidirectional mapping used by every layer of the reproduction.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional


class Vocabulary:
    """A bidirectional mapping between terms (strings) and dense int ids.

    Ids are assigned contiguously starting at 0 in first-seen order, which
    keeps downstream numpy arrays dense and makes the id space directly
    usable as array indices.

    Example
    -------
    >>> vocab = Vocabulary()
    >>> vocab.add("ex:Paper1")
    0
    >>> vocab.add("ex:Paper1")
    0
    >>> vocab.term(0)
    'ex:Paper1'
    """

    __slots__ = ("_term_to_id", "_id_to_term", "name")

    def __init__(self, terms: Optional[Iterable[str]] = None, name: str = "vocab"):
        self._term_to_id: dict[str, int] = {}
        self._id_to_term: List[str] = []
        self.name = name
        if terms is not None:
            for term in terms:
                self.add(term)

    @classmethod
    def from_terms(cls, terms: Iterable[str], name: str = "vocab") -> "Vocabulary":
        """Bulk-build from already-unique terms (ids = input positions).

        The deserialization fast path (``repro/kg/store.py``): a saved term
        list *is* a previously interned id space, so this skips the per-term
        dedup probe of :meth:`add` and builds both maps at C speed.
        Duplicate terms would silently alias ids, so they are rejected.
        """
        vocab = cls(name=name)
        vocab._id_to_term = list(terms)
        vocab._term_to_id = dict(zip(vocab._id_to_term, range(len(vocab._id_to_term))))
        if len(vocab._term_to_id) != len(vocab._id_to_term):
            raise ValueError(f"duplicate terms in bulk load of vocabulary {name!r}")
        return vocab

    def add(self, term: str) -> int:
        """Intern ``term`` and return its id (existing id if already known)."""
        existing = self._term_to_id.get(term)
        if existing is not None:
            return existing
        new_id = len(self._id_to_term)
        self._term_to_id[term] = new_id
        self._id_to_term.append(term)
        return new_id

    def add_many(self, terms: Iterable[str]) -> List[int]:
        """Intern every term in ``terms``; returns ids in input order."""
        return [self.add(term) for term in terms]

    def id(self, term: str) -> int:
        """Return the id of ``term``; raises ``KeyError`` when unknown."""
        return self._term_to_id[term]

    def get(self, term: str, default: Optional[int] = None) -> Optional[int]:
        """Return the id of ``term`` or ``default`` when unknown."""
        return self._term_to_id.get(term, default)

    def term(self, term_id: int) -> str:
        """Return the term for ``term_id``; raises ``IndexError`` when unknown."""
        if term_id < 0:
            raise IndexError(f"negative term id {term_id}")
        return self._id_to_term[term_id]

    def terms(self, term_ids: Iterable[int]) -> List[str]:
        """Vectorised :meth:`term`."""
        return [self.term(term_id) for term_id in term_ids]

    def __contains__(self, term: str) -> bool:
        return term in self._term_to_id

    def __len__(self) -> int:
        return len(self._id_to_term)

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_term)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Vocabulary(name={self.name!r}, size={len(self)})"

    def copy(self) -> "Vocabulary":
        """Return an independent copy of this vocabulary."""
        clone = Vocabulary(name=self.name)
        clone._term_to_id = dict(self._term_to_id)
        clone._id_to_term = list(self._id_to_term)
        return clone

    def restrict(self, keep_ids: Iterable[int]) -> tuple["Vocabulary", dict[int, int]]:
        """Build a compacted vocabulary containing only ``keep_ids``.

        Returns ``(new_vocab, old_to_new)`` where ``old_to_new`` maps the
        retained old ids to their dense ids in the new vocabulary.  Used when
        extracting a TOSG so the subgraph gets a dense id space.
        """
        new_vocab = Vocabulary(name=self.name)
        old_to_new: dict[int, int] = {}
        for old_id in keep_ids:
            old_to_new[old_id] = new_vocab.add(self.term(old_id))
        return new_vocab, old_to_new
