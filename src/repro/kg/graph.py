"""The central :class:`KnowledgeGraph` container.

Follows Definition 2.1 of the paper: ``KG = (V, C, L, R, T)`` with vertices
``V`` typed by classes ``C``, literals ``L``, relations ``R`` and triples
``T``.  Every node carries exactly one class (``type(v) ∈ C``); entity→entity
triples live in a :class:`~repro.kg.triples.TripleStore` indexed by a lazy
:class:`~repro.kg.hexastore.Hexastore`; literal-valued triples are stored
separately (they carry node attributes, not graph structure).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.kg.hexastore import Hexastore
from repro.kg.triples import TripleStore
from repro.kg.vocabulary import Vocabulary


@dataclass
class SubgraphMapping:
    """Id remapping produced when extracting a subgraph.

    Attributes
    ----------
    node_old_ids:
        ``new_id -> old_id`` (position = new id in the subgraph).
    node_old_to_new:
        Sparse inverse map ``old_id -> new_id``.
    class_old_to_new / relation_old_to_new:
        Compaction maps for classes and relations that survive in the
        subgraph (the paper's |C′| and |R′|).
    """

    node_old_ids: np.ndarray
    node_old_to_new: Dict[int, int]
    class_old_to_new: Dict[int, int] = field(default_factory=dict)
    relation_old_to_new: Dict[int, int] = field(default_factory=dict)

    def to_old_nodes(self, new_ids: Iterable[int]) -> List[int]:
        """Map subgraph node ids back to original-graph ids."""
        return [int(self.node_old_ids[new_id]) for new_id in new_ids]

    def to_new_nodes(self, old_ids: Iterable[int]) -> List[int]:
        """Map original node ids to subgraph ids (skipping absent nodes)."""
        return [
            self.node_old_to_new[old_id]
            for old_id in old_ids
            if old_id in self.node_old_to_new
        ]


class KnowledgeGraph:
    """A directed heterogeneous multigraph ``KG = (V, C, L, R, T)``.

    Parameters
    ----------
    node_vocab / class_vocab / relation_vocab / literal_vocab:
        Interned term spaces for V, C, R and L.
    node_types:
        int64 array of length ``|V|``; ``node_types[v]`` is the class id of v.
    triples:
        Entity→entity edges (ids into ``node_vocab`` / ``relation_vocab``).
    literal_triples:
        Optional attribute edges whose object indexes ``literal_vocab``.
    """

    def __init__(
        self,
        node_vocab: Vocabulary,
        class_vocab: Vocabulary,
        relation_vocab: Vocabulary,
        node_types: np.ndarray,
        triples: TripleStore,
        literal_vocab: Optional[Vocabulary] = None,
        literal_triples: Optional[TripleStore] = None,
        name: str = "kg",
    ):
        self.name = name
        self.node_vocab = node_vocab
        self.class_vocab = class_vocab
        self.relation_vocab = relation_vocab
        self.literal_vocab = (
            literal_vocab if literal_vocab is not None else Vocabulary(name="literals")
        )
        self.node_types = np.asarray(node_types, dtype=np.int64)
        self.triples = triples
        self.literal_triples = literal_triples if literal_triples is not None else TripleStore()
        if len(self.node_types) != len(node_vocab):
            raise ValueError(
                f"node_types length {len(self.node_types)} != |V| {len(node_vocab)}"
            )
        if len(triples) > 0:
            max_node = max(int(triples.s.max()), int(triples.o.max()))
            if max_node >= len(node_vocab):
                raise ValueError(f"triple references node {max_node} >= |V| {len(node_vocab)}")
        self._hexastore: Optional[Hexastore] = None
        self._hexastore_lock = threading.Lock()
        self._nodes_by_type: Optional[Dict[int, np.ndarray]] = None
        self._out_degree: Optional[np.ndarray] = None
        self._in_degree: Optional[np.ndarray] = None

    # -- basic cardinalities (Definition 2.1 notation) --

    @property
    def num_nodes(self) -> int:
        """|V|."""
        return len(self.node_vocab)

    @property
    def num_edges(self) -> int:
        """|T| restricted to entity→entity edges."""
        return len(self.triples)

    @property
    def num_triples(self) -> int:
        """|T| including literal-valued (attribute) triples."""
        return len(self.triples) + len(self.literal_triples)

    @property
    def num_node_types(self) -> int:
        """|C|."""
        return len(self.class_vocab)

    @property
    def num_edge_types(self) -> int:
        """|R|."""
        return len(self.relation_vocab)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KnowledgeGraph(name={self.name!r}, |V|={self.num_nodes}, "
            f"|T|={self.num_edges}, |C|={self.num_node_types}, |R|={self.num_edge_types})"
        )

    # -- pickling (shipping a graph to a pool worker) --

    def __getstate__(self) -> Dict[str, object]:
        """Pickle only the raw graph, never its derived state.

        Locks are unpicklable, and every cache — the hexastore, degree
        arrays, ``nodes_of_type`` buckets, and the attached
        :class:`~repro.kg.cache.GraphArtifacts` — is process-local by
        contract: the receiving process (a serving pool worker) rebuilds
        its own shard of artifacts exactly once via ``artifacts_for``.
        Stripping them keeps a one-time graph shipment at the size of the
        triple arrays plus vocabularies.
        """
        state = self.__dict__.copy()
        state["_hexastore"] = None
        state["_hexastore_lock"] = None
        state["_nodes_by_type"] = None
        state["_out_degree"] = None
        state["_in_degree"] = None
        # Attached lazily by repro.kg.cache.artifacts_for; holds an RLock.
        state.pop("_graph_artifacts", None)
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        self._hexastore_lock = threading.Lock()

    # -- indices --

    @property
    def hexastore(self) -> Hexastore:
        """Lazily built six-permutation index over the entity triples."""
        if self._hexastore is None:
            # Double-checked so the SPARQL endpoint's worker threads share
            # one index (its own lazy builds are serialized internally).
            with self._hexastore_lock:
                if self._hexastore is None:
                    self._hexastore = Hexastore(self.triples)
        return self._hexastore

    def nodes_of_type(self, class_id: int) -> np.ndarray:
        """All node ids whose class is ``class_id`` (sorted)."""
        if self._nodes_by_type is None:
            order = np.argsort(self.node_types, kind="stable")
            sorted_types = self.node_types[order]
            boundaries = np.searchsorted(
                sorted_types, np.arange(self.num_node_types + 1)
            )
            self._nodes_by_type = {
                c: np.sort(order[boundaries[c] : boundaries[c + 1]])
                for c in range(self.num_node_types)
            }
        return self._nodes_by_type.get(int(class_id), np.empty(0, dtype=np.int64))

    def out_degree(self) -> np.ndarray:
        """Out-degree per node over entity triples."""
        if self._out_degree is None:
            self._out_degree = np.bincount(
                self.triples.s, minlength=self.num_nodes
            ).astype(np.int64)
        return self._out_degree

    def in_degree(self) -> np.ndarray:
        """In-degree per node over entity triples."""
        if self._in_degree is None:
            self._in_degree = np.bincount(self.triples.o, minlength=self.num_nodes).astype(np.int64)
        return self._in_degree

    def degree(self) -> np.ndarray:
        """Total (in + out) degree per node."""
        return self.out_degree() + self.in_degree()

    # -- neighbourhood access (delegates to the hexastore) --

    def out_neighbors(self, node: int) -> np.ndarray:
        """Objects of triples with subject ``node``."""
        return self.hexastore.out_neighbors(node)

    def in_neighbors(self, node: int) -> np.ndarray:
        """Subjects of triples with object ``node``."""
        return self.hexastore.in_neighbors(node)

    def neighbors(self, node: int, unique: bool = True) -> np.ndarray:
        """In+out neighbours of ``node``; ``unique=False`` skips the dedup
        sort (frontier-expansion fast path, see :meth:`Hexastore.neighbors`)."""
        return self.hexastore.neighbors(node, unique=unique)

    # -- memory accounting --

    def nbytes(self) -> int:
        """Modeled resident bytes of the raw graph (no indices)."""
        return int(self.node_types.nbytes) + self.triples.nbytes() + self.literal_triples.nbytes()

    # -- subgraph extraction --

    def induced_subgraph(
        self, nodes: np.ndarray, name: Optional[str] = None
    ) -> tuple["KnowledgeGraph", SubgraphMapping]:
        """Node-induced subgraph: keep triples with both endpoints in ``nodes``.

        This is the ``extractSubgraph`` step shared by Algorithms 1 and 2 of
        the paper.  Node, class and relation id spaces are all compacted so
        the returned KG reports the paper's |C′| and |R′| directly.
        """
        nodes = np.unique(np.asarray(nodes, dtype=np.int64))
        member = np.zeros(self.num_nodes, dtype=bool)
        member[nodes] = True
        keep = member[self.triples.s] & member[self.triples.o]
        kept = self.triples.mask(keep)
        return self._build_subgraph(nodes, kept, name or f"{self.name}-induced")

    def subgraph_from_triples(
        self,
        triples: TripleStore,
        name: Optional[str] = None,
        extra_nodes: Optional[np.ndarray] = None,
    ) -> tuple["KnowledgeGraph", SubgraphMapping]:
        """Subgraph containing exactly ``triples`` (plus their endpoints).

        This is the merge step of the SPARQL-based method: the union of the
        per-target-node triple sets *is* the TOSG.  ``extra_nodes`` forces
        additional (possibly isolated) nodes into the subgraph — used so
        edge-less target vertices keep their labels in KG′.
        """
        triples = triples.deduplicated()
        nodes = triples.unique_nodes()
        if extra_nodes is not None and len(extra_nodes):
            nodes = np.unique(np.concatenate([nodes, np.asarray(extra_nodes, dtype=np.int64)]))
        return self._build_subgraph(nodes, triples, name or f"{self.name}-triples")

    def _build_subgraph(
        self, nodes: np.ndarray, kept: TripleStore, name: str
    ) -> tuple["KnowledgeGraph", SubgraphMapping]:
        new_node_vocab, node_old_to_new = self.node_vocab.restrict(nodes.tolist())
        node_old_ids = nodes

        # Remap node ids through a dense lookup table.
        lookup = np.full(self.num_nodes, -1, dtype=np.int64)
        lookup[nodes] = np.arange(len(nodes), dtype=np.int64)
        new_s = lookup[kept.s]
        new_o = lookup[kept.o]

        # Compact surviving classes.
        old_types = self.node_types[nodes]
        surviving_classes = np.unique(old_types)
        new_class_vocab, class_old_to_new = self.class_vocab.restrict(surviving_classes.tolist())
        class_lookup = np.full(self.num_node_types, -1, dtype=np.int64)
        class_lookup[surviving_classes] = np.arange(len(surviving_classes), dtype=np.int64)
        new_types = class_lookup[old_types]

        # Compact surviving relations.
        surviving_relations = np.unique(kept.p) if len(kept) else np.empty(0, dtype=np.int64)
        new_relation_vocab, relation_old_to_new = self.relation_vocab.restrict(
            surviving_relations.tolist()
        )
        relation_lookup = np.full(max(self.num_edge_types, 1), -1, dtype=np.int64)
        if len(surviving_relations):
            relation_lookup[surviving_relations] = np.arange(
                len(surviving_relations), dtype=np.int64
            )
        new_p = relation_lookup[kept.p] if len(kept) else kept.p

        # Literal triples whose subject survives.
        lit = self.literal_triples
        if len(lit):
            lit_keep = lookup[lit.s] >= 0
            lit_kept = lit.mask(lit_keep)
            lit_relations = np.unique(lit_kept.p)
            missing = [int(r) for r in lit_relations if relation_lookup[r] < 0]
            for r in missing:
                relation_old_to_new[r] = new_relation_vocab.add(self.relation_vocab.term(r))
                relation_lookup[r] = relation_old_to_new[r]
            new_lit = TripleStore(lookup[lit_kept.s], relation_lookup[lit_kept.p], lit_kept.o)
        else:
            new_lit = TripleStore()

        subgraph = KnowledgeGraph(
            node_vocab=new_node_vocab,
            class_vocab=new_class_vocab,
            relation_vocab=new_relation_vocab,
            node_types=new_types,
            triples=TripleStore(new_s, new_p, new_o),
            literal_vocab=self.literal_vocab,
            literal_triples=new_lit,
            name=name,
        )
        mapping = SubgraphMapping(
            node_old_ids=node_old_ids,
            node_old_to_new={int(k): int(v) for k, v in node_old_to_new.items()},
            class_old_to_new={int(k): int(v) for k, v in class_old_to_new.items()},
            relation_old_to_new={int(k): int(v) for k, v in relation_old_to_new.items()},
        )
        return subgraph, mapping

    # -- construction helper used by generators and tests --

    @classmethod
    def build(
        cls,
        node_terms_and_types: Iterable[tuple[str, str]],
        triple_terms: Iterable[tuple[str, str, str]],
        name: str = "kg",
    ) -> "KnowledgeGraph":
        """Construct a KG from human-readable terms.

        ``node_terms_and_types`` yields ``(node_iri, class_iri)``;
        ``triple_terms`` yields ``(subject_iri, predicate_iri, object_iri)``.
        Convenient for tests and small fixtures.
        """
        node_vocab = Vocabulary(name="nodes")
        class_vocab = Vocabulary(name="classes")
        relation_vocab = Vocabulary(name="relations")
        types: List[int] = []
        for node_iri, class_iri in node_terms_and_types:
            node_id = node_vocab.add(node_iri)
            class_id = class_vocab.add(class_iri)
            if node_id == len(types):
                types.append(class_id)
            else:
                types[node_id] = class_id
        subjects, predicates, objects = [], [], []
        for s_iri, p_iri, o_iri in triple_terms:
            subjects.append(node_vocab.id(s_iri))
            predicates.append(relation_vocab.add(p_iri))
            objects.append(node_vocab.id(o_iri))
        return cls(
            node_vocab=node_vocab,
            class_vocab=class_vocab,
            relation_vocab=relation_vocab,
            node_types=np.asarray(types, dtype=np.int64),
            triples=TripleStore(subjects, predicates, objects),
            name=name,
        )
