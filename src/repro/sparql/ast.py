"""Abstract syntax tree for the SPARQL subset used by KG-TOSA.

The paper's extraction queries (Section IV-C) only need: SELECT with
projection and ``?x as ?y`` aliases, basic graph patterns (BGPs) of triple
patterns, the ``a`` shorthand for ``rdf:type``, UNION between select blocks,
and LIMIT/OFFSET pagination.  The AST below covers exactly that surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union as TypingUnion

#: The reserved predicate IRI that the ``a`` keyword expands to.
RDF_TYPE = "rdf:type"


@dataclass(frozen=True)
class Var:
    """A SPARQL variable, e.g. ``?v`` (stored without the ``?``)."""

    name: str

    def __str__(self) -> str:
        return f"?{self.name}"


@dataclass(frozen=True)
class IRI:
    """An IRI term, e.g. ``<http://example.org/Paper>``."""

    value: str

    def __str__(self) -> str:
        return f"<{self.value}>"


Term = TypingUnion[Var, IRI]


@dataclass(frozen=True)
class TriplePattern:
    """One ``s p o`` pattern inside a BGP."""

    s: Term
    p: Term
    o: Term

    def variables(self) -> List[Var]:
        """Variables appearing in this pattern, in s/p/o order."""
        return [t for t in (self.s, self.p, self.o) if isinstance(t, Var)]

    def bound_count(self) -> int:
        """Number of constant (IRI) components — a selectivity proxy."""
        return sum(1 for t in (self.s, self.p, self.o) if isinstance(t, IRI))

    def is_type_pattern(self) -> bool:
        """True for ``?v a <Class>`` patterns (virtual rdf:type edges)."""
        return isinstance(self.p, IRI) and self.p.value == RDF_TYPE

    def __str__(self) -> str:
        return f"{self.s} {self.p} {self.o} ."


@dataclass(frozen=True)
class BGP:
    """A basic graph pattern: a conjunction of triple patterns."""

    patterns: Tuple[TriplePattern, ...]

    def variables(self) -> List[Var]:
        """All distinct variables, in first-appearance order."""
        seen: List[Var] = []
        for pattern in self.patterns:
            for var in pattern.variables():
                if var not in seen:
                    seen.append(var)
        return seen

    def __str__(self) -> str:
        return " ".join(str(p) for p in self.patterns)


@dataclass(frozen=True)
class Projection:
    """One projected column: an inner variable optionally renamed.

    ``?v as ?s`` projects inner variable ``v`` under the output name ``s``.
    """

    source: Var
    alias: Optional[Var] = None

    @property
    def output(self) -> Var:
        """The column name visible to the consumer."""
        return self.alias if self.alias is not None else self.source

    def __str__(self) -> str:
        if self.alias is not None:
            return f"{self.source} as {self.alias}"
        return str(self.source)


@dataclass(frozen=True)
class SelectQuery:
    """``SELECT <projections> WHERE { <body> } LIMIT .. OFFSET ..``.

    ``projections`` empty means ``SELECT *``.  ``body`` is either a
    :class:`BGP` or a :class:`Union` of nested select queries.
    """

    projections: Tuple[Projection, ...]
    body: TypingUnion["BGP", "Union"]
    limit: Optional[int] = None
    offset: Optional[int] = None

    def output_variables(self) -> List[Var]:
        """The result columns this query produces, in order."""
        if self.projections:
            return [p.output for p in self.projections]
        if isinstance(self.body, BGP):
            return self.body.variables()
        return self.body.output_variables()

    def with_page(self, limit: int, offset: int) -> "SelectQuery":
        """Return a copy of this query with pagination applied."""
        return SelectQuery(self.projections, self.body, limit=limit, offset=offset)

    def __str__(self) -> str:
        proj = " ".join(str(p) for p in self.projections) if self.projections else "*"
        text = f"SELECT {proj} WHERE {{ {self.body} }}"
        if self.limit is not None:
            text += f" LIMIT {self.limit}"
        if self.offset is not None:
            text += f" OFFSET {self.offset}"
        return text


@dataclass(frozen=True)
class Union:
    """A UNION of select arms (the paper's Q_d2h1 shape)."""

    arms: Tuple[SelectQuery, ...] = field(default_factory=tuple)

    def output_variables(self) -> List[Var]:
        """Columns of the union = columns of the first arm."""
        return self.arms[0].output_variables()

    def __str__(self) -> str:
        return " UNION ".join(f"{{ {arm} }}" for arm in self.arms)
