"""A miniature in-process RDF/SPARQL engine.

The paper's most practical contribution — the SPARQL-based TOSG extraction
(Algorithm 3) — assumes a SPARQL endpoint backed by an RDF engine with
built-in sextuple indices (the paper used Virtuoso).  This package provides
an equivalent substrate: an AST (:mod:`repro.sparql.ast`), a parser for the
SPARQL subset the paper's queries use (:mod:`repro.sparql.parser`), an
index-backed BGP executor (:mod:`repro.sparql.executor`) and an endpoint
façade with pagination, compression accounting and multi-worker fetching
(:mod:`repro.sparql.endpoint`).
"""

from repro.sparql.ast import IRI, Var, TriplePattern, BGP, SelectQuery, Union, Projection, RDF_TYPE
from repro.sparql.parser import parse_query, SparqlSyntaxError
from repro.sparql.executor import ResultSet, QueryExecutor
from repro.sparql.endpoint import SparqlEndpoint, EndpointStats

__all__ = [
    "IRI",
    "Var",
    "TriplePattern",
    "BGP",
    "SelectQuery",
    "Union",
    "Projection",
    "RDF_TYPE",
    "parse_query",
    "SparqlSyntaxError",
    "ResultSet",
    "QueryExecutor",
    "SparqlEndpoint",
    "EndpointStats",
]
