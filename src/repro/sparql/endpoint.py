"""SPARQL endpoint façade.

Algorithm 3 of the paper talks to an RDF engine over HTTP: it counts the
result size, plans query batches (LIMIT/OFFSET pages per UNION arm), fetches
pages from ``P`` parallel workers with a compression flag, and merges the
triples.  :class:`SparqlEndpoint` reproduces that interface in-process while
accounting for the quantities the paper's cost model cares about (requests
issued, rows shipped, bytes before/after compression).
"""

from __future__ import annotations

import threading
import zlib
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Deque, Iterable, Iterator, List, Optional, Union as TypingUnion

from repro.kg.graph import KnowledgeGraph
from repro.sparql.ast import SelectQuery
from repro.sparql.executor import QueryExecutor, ResultSet
from repro.sparql.parser import parse_query

# How many query strings the log retains by default.  The scalar counters
# (requests, rows, bytes) are always exact over the endpoint's lifetime; the
# log is a debugging window, and an unbounded list would grow without limit
# in a long-running service.  Pass ``query_log=None`` for opt-in full
# retention (tests, short-lived cost-model experiments).
QUERY_LOG_LIMIT = 256


@dataclass
class EndpointStats:
    """Counters accumulated across requests (thread-safe via endpoint lock).

    ``queries`` is a bounded ring of the most recent query strings
    (:data:`QUERY_LOG_LIMIT` by default); construct with
    ``EndpointStats.with_query_log(None)`` to retain every query.
    """

    requests: int = 0
    rows_returned: int = 0
    bytes_raw: int = 0
    bytes_shipped: int = 0
    queries: Deque[str] = field(
        default_factory=lambda: deque(maxlen=QUERY_LOG_LIMIT)
    )

    @classmethod
    def with_query_log(cls, limit: Optional[int]) -> "EndpointStats":
        """Stats whose query log keeps ``limit`` entries (``None``: all)."""
        return cls(queries=deque(maxlen=limit))

    def compression_ratio(self) -> float:
        """Raw/shipped byte ratio (1.0 when compression is off or no data)."""
        if self.bytes_shipped == 0:
            return 1.0
        return self.bytes_raw / self.bytes_shipped


@dataclass
class PageStream:
    """A planned streaming read: head metadata + a lazy page iterator.

    ``variables`` and ``total_rows`` are known before the first page is
    pulled (response heads need them); ``pages`` yields
    :class:`ResultSet` slices of ``page_rows`` rows each, in order, and
    accounts endpoint stats as each page ships.
    """

    variables: List[str]
    total_rows: int
    page_rows: int
    pages: Iterator[ResultSet]

    @property
    def num_pages(self) -> int:
        return -(-self.total_rows // self.page_rows) if self.total_rows else 0


class SparqlEndpoint:
    """An in-process stand-in for an RDF engine's HTTP SPARQL endpoint.

    Parameters
    ----------
    kg:
        The knowledge graph served by this endpoint.
    compression:
        When True (paper default), shipped bytes are modeled as the
        zlib-compressed size of the serialized result page.
    query_log:
        How many recent query strings ``stats.queries`` retains
        (default :data:`QUERY_LOG_LIMIT`); ``None`` keeps every query —
        opt into that only for short-lived endpoints, a long-running
        service would leak memory under sustained traffic.
    """

    def __init__(
        self,
        kg: KnowledgeGraph,
        compression: bool = True,
        query_log: Optional[int] = QUERY_LOG_LIMIT,
    ):
        self.kg = kg
        self.executor = QueryExecutor(kg)
        self.compression = compression
        self.stats = EndpointStats.with_query_log(query_log)
        self._lock = threading.Lock()

    # -- core request handling --

    def query(self, query: TypingUnion[str, SelectQuery]) -> ResultSet:
        """Execute one request (a query string or parsed AST) and account it."""
        parsed = parse_query(query) if isinstance(query, str) else query
        result = self.executor.evaluate(parsed)
        self._account(parsed, result)
        return result

    def count(self, query: TypingUnion[str, SelectQuery]) -> int:
        """``getGraphSize``: result cardinality ignoring pagination."""
        parsed = parse_query(query) if isinstance(query, str) else query
        with self._lock:
            self.stats.requests += 1
            self.stats.queries.append(f"COUNT({parsed})")
        return self.executor.count(parsed)

    def _account(self, parsed: SelectQuery, result: ResultSet) -> None:
        payload = _serialize(result)
        raw_size = len(payload)
        shipped = len(zlib.compress(payload)) if self.compression else raw_size
        with self._lock:
            self.stats.requests += 1
            self.stats.rows_returned += result.num_rows
            self.stats.bytes_raw += raw_size
            self.stats.bytes_shipped += shipped
            self.stats.queries.append(str(parsed))

    # -- streaming pagination (the wire-facing LIMIT/OFFSET planner) --

    def stream_pages(
        self,
        query: TypingUnion[str, SelectQuery],
        page_rows: int,
    ) -> "PageStream":
        """Plan ``query`` as a stream of LIMIT/OFFSET pages.

        The query is evaluated **once** (honouring its own LIMIT/OFFSET)
        into the compact columnar result; pages are then cut lazily with
        :meth:`ResultSet.page` as the consumer pulls them, so the wire
        representation of a huge SELECT is never materialized whole — only
        one page's worth of serialized rows exists at a time.  Each page
        is accounted to :attr:`stats` (rows returned, modeled raw/shipped
        bytes) as it is shipped; the request itself counts once.

        Returns a :class:`PageStream` carrying the output variables and
        total row count up front (for response heads) plus the lazy page
        iterator.  Concatenating the pages is bit-exact with :meth:`query`
        on the same query.
        """
        if page_rows <= 0:
            raise ValueError(f"page_rows must be positive, got {page_rows}")
        parsed = parse_query(query) if isinstance(query, str) else query
        result = self.executor.evaluate(parsed)
        with self._lock:
            self.stats.requests += 1
            self.stats.queries.append(f"STREAM({parsed})")

        def pages() -> Iterator[ResultSet]:
            for page in result.iter_pages(page_rows):
                self._account_page(page)
                yield page

        return PageStream(
            variables=list(result.variables),
            total_rows=result.num_rows,
            page_rows=page_rows,
            pages=pages(),
        )

    def _account_page(self, page: ResultSet) -> None:
        """Account one shipped page's rows/bytes (request already counted)."""
        account_page(self.stats, page, self.compression, self._lock)

    def evaluate_stream(self, query: TypingUnion[str, SelectQuery]) -> ResultSet:
        """Evaluate for *remote* paging: account the request, not the pages.

        The pool's parent process cuts streamed-``/sparql`` pages on its
        side of the pipe; the owning worker calls this so the query counts
        as one request here while every shipped page is accounted
        parent-side with :func:`account_page` — summed in
        ``metrics_snapshot``, pooled counters match in-process serving
        page for page.
        """
        parsed = parse_query(query) if isinstance(query, str) else query
        result = self.executor.evaluate(parsed)
        with self._lock:
            self.stats.requests += 1
            self.stats.queries.append(f"STREAM({parsed})")
        return result

    # -- paginated parallel fetch (the request-handler workers of Alg. 3) --

    def fetch_paginated(
        self,
        query: TypingUnion[str, SelectQuery],
        batch_size: int,
        workers: int = 1,
        total: Optional[int] = None,
    ) -> List[ResultSet]:
        """Fetch all pages of ``query`` with LIMIT/OFFSET batches.

        Pages are issued to a pool of ``workers`` threads; results come back
        in page order.  ``total`` (when known from a prior :meth:`count`)
        avoids a trailing empty-page probe.
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        parsed = parse_query(query) if isinstance(query, str) else query
        if total is None:
            total = self.count(parsed)
        offsets = list(range(0, total, batch_size))
        if not offsets:
            return []
        pages = [parsed.with_page(limit=batch_size, offset=offset) for offset in offsets]
        if workers <= 1:
            return [self.query(page) for page in pages]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(self.query, pages))

    def fetch_all(
        self,
        query: TypingUnion[str, SelectQuery],
        batch_size: int,
        workers: int = 1,
    ) -> ResultSet:
        """Fetch and concatenate every page of ``query``."""
        pages = self.fetch_paginated(query, batch_size=batch_size, workers=workers)
        parsed = parse_query(query) if isinstance(query, str) else query
        if not pages:
            return ResultSet.empty([v.name for v in parsed.output_variables()])
        merged = pages[0]
        for page in pages[1:]:
            merged = merged.concat(page)
        return merged


def account_page(
    stats: EndpointStats,
    page: ResultSet,
    compression: bool,
    lock: Optional[threading.Lock] = None,
) -> None:
    """Account one shipped page (rows + modeled raw/shipped bytes) to ``stats``.

    The single definition of page accounting: the in-process endpoint uses
    it for :meth:`SparqlEndpoint.stream_pages`, and the pool's parent uses
    it for pages cut from a worker-evaluated result — so both serving
    modes count streamed traffic identically.
    """
    payload = _serialize(page)
    raw_size = len(payload)
    shipped = len(zlib.compress(payload)) if compression else raw_size
    if lock is None:
        lock = threading.Lock()
    with lock:
        stats.rows_returned += page.num_rows
        stats.bytes_raw += raw_size
        stats.bytes_shipped += shipped


def _serialize(result: ResultSet) -> bytes:
    """Model the wire representation of a result page (TSV of ids)."""
    lines: Iterable[str] = (
        "\t".join(str(int(result.columns[v][row])) for v in result.variables)
        for row in range(result.num_rows)
    )
    return ("\n".join(lines)).encode("ascii")
