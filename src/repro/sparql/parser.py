"""Recursive-descent parser for the KG-TOSA SPARQL subset.

Grammar (case-insensitive keywords)::

    query       := select
    select      := 'SELECT' projection body modifiers
    projection  := '*' | proj_item+
    proj_item   := VAR | VAR 'as' VAR | '(' VAR 'as' VAR ')'
    body        := 'WHERE'? '{' group '}'
    group       := select ('UNION' select)*          -- nested select arms
                 | patterns
    patterns    := triple ('.' triple)* '.'?
    triple      := term term term
    term        := VAR | IRIREF | 'a' | PNAME
    modifiers   := ('LIMIT' INT)? ('OFFSET' INT)?

This covers the queries in Section IV-C of the paper, e.g. ``Q_d2h1``::

    select ?s ?p ?o {
      select ?v as ?s ?p ?o where { ?v a <Type>. ?v ?p ?o. }
      union
      select ?s ?p ?v as ?o where { ?v a <Type>. ?s ?p ?v. }
    }
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.sparql.ast import BGP, IRI, Projection, RDF_TYPE, SelectQuery, TriplePattern, Union, Var


class SparqlSyntaxError(ValueError):
    """Raised when the query text does not match the supported subset."""


_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<IRIREF><[^<>\s]*>)
  | (?P<VAR>\?[A-Za-z_][A-Za-z0-9_]*)
  | (?P<LBRACE>\{)
  | (?P<RBRACE>\})
  | (?P<LPAREN>\()
  | (?P<RPAREN>\))
  | (?P<DOT>\.)
  | (?P<STAR>\*)
  | (?P<MINUS>-)
  | (?P<INT>\d+)
  | (?P<WORD>[A-Za-z_][A-Za-z0-9_:\-]*)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise SparqlSyntaxError(f"unexpected character {text[pos]!r} at offset {pos}")
        kind = match.lastgroup
        value = match.group()
        pos = match.end()
        if kind != "WS":
            tokens.append((kind, value))
    return tokens


class _Parser:
    def __init__(self, tokens: List[Tuple[str, str]]):
        self.tokens = tokens
        self.index = 0

    # -- token helpers --

    def peek(self) -> Optional[Tuple[str, str]]:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def advance(self) -> Tuple[str, str]:
        token = self.peek()
        if token is None:
            raise SparqlSyntaxError("unexpected end of query")
        self.index += 1
        return token

    def accept_word(self, word: str) -> bool:
        token = self.peek()
        if token is not None and token[0] == "WORD" and token[1].lower() == word:
            self.index += 1
            return True
        return False

    def accept_kind(self, kind: str) -> bool:
        token = self.peek()
        if token is not None and token[0] == kind:
            self.index += 1
            return True
        return False

    def expect_kind(self, kind: str) -> str:
        token = self.advance()
        if token[0] != kind:
            raise SparqlSyntaxError(f"expected {kind}, got {token[1]!r}")
        return token[1]

    # -- grammar --

    def parse_query(self) -> SelectQuery:
        query = self.parse_select()
        if self.peek() is not None:
            raise SparqlSyntaxError(f"trailing tokens starting at {self.peek()[1]!r}")
        return query

    def parse_select(self) -> SelectQuery:
        if not self.accept_word("select"):
            raise SparqlSyntaxError("query must start with SELECT")
        projections = self.parse_projection()
        self.accept_word("where")
        self.expect_kind("LBRACE")
        body = self.parse_group()
        self.expect_kind("RBRACE")
        limit = offset = None
        if self.accept_word("limit"):
            limit = self.parse_modifier_int("LIMIT")
        if self.accept_word("offset"):
            offset = self.parse_modifier_int("OFFSET")
        return SelectQuery(tuple(projections), body, limit=limit, offset=offset)

    def parse_modifier_int(self, keyword: str) -> int:
        """A LIMIT/OFFSET operand: a *non-negative* integer.

        SPARQL solution modifiers take unsigned integers; a negative value
        is rejected here with a targeted message rather than slipping
        through to Python slice semantics downstream (which would wrap
        from the end of the result).
        """
        if self.accept_kind("MINUS"):
            token = self.peek()
            value = f"-{token[1]}" if token is not None and token[0] == "INT" else "-"
            raise SparqlSyntaxError(
                f"{keyword} must be a non-negative integer, got {value}"
            )
        return int(self.expect_kind("INT"))

    def parse_projection(self) -> List[Projection]:
        if self.accept_kind("STAR"):
            return []
        projections: List[Projection] = []
        while True:
            token = self.peek()
            if token is None:
                raise SparqlSyntaxError("unexpected end of query in projection")
            if token[0] == "LPAREN":
                self.advance()
                source = Var(self.expect_kind("VAR")[1:])
                if not self.accept_word("as"):
                    raise SparqlSyntaxError("expected 'as' inside (...) projection")
                alias = Var(self.expect_kind("VAR")[1:])
                self.expect_kind("RPAREN")
                projections.append(Projection(source, alias))
            elif token[0] == "VAR":
                self.advance()
                source = Var(token[1][1:])
                if self.accept_word("as"):
                    alias = Var(self.expect_kind("VAR")[1:])
                    projections.append(Projection(source, alias))
                else:
                    projections.append(Projection(source))
            else:
                break
        if not projections:
            raise SparqlSyntaxError("empty projection")
        return projections

    def parse_group(self):
        token = self.peek()
        if token is not None and token[0] == "WORD" and token[1].lower() == "select":
            arms = [self.parse_select()]
            while self.accept_word("union"):
                # Arms may also be wrapped in braces: { select ... }
                if self.accept_kind("LBRACE"):
                    arms.append(self.parse_select())
                    self.expect_kind("RBRACE")
                else:
                    arms.append(self.parse_select())
            return Union(tuple(arms))
        if token is not None and token[0] == "LBRACE":
            # { select ... } union { select ... }
            self.advance()
            arms = [self.parse_select()]
            self.expect_kind("RBRACE")
            while self.accept_word("union"):
                self.expect_kind("LBRACE")
                arms.append(self.parse_select())
                self.expect_kind("RBRACE")
            if len(arms) == 1:
                return arms[0].body if not arms[0].projections else Union(tuple(arms))
            return Union(tuple(arms))
        return self.parse_patterns()

    def parse_patterns(self) -> BGP:
        patterns: List[TriplePattern] = []
        while True:
            token = self.peek()
            if token is None or token[0] == "RBRACE":
                break
            s = self.parse_term()
            p = self.parse_term()
            o = self.parse_term()
            patterns.append(TriplePattern(s, p, o))
            self.accept_kind("DOT")
        if not patterns:
            raise SparqlSyntaxError("empty graph pattern")
        return BGP(tuple(patterns))

    def parse_term(self):
        token = self.advance()
        kind, value = token
        if kind == "VAR":
            return Var(value[1:])
        if kind == "IRIREF":
            return IRI(value[1:-1])
        if kind == "WORD":
            if value == "a":
                return IRI(RDF_TYPE)
            return IRI(value)  # prefixed name treated as opaque IRI
        raise SparqlSyntaxError(f"unexpected token {value!r} in triple pattern")


def parse_query(text: str) -> SelectQuery:
    """Parse ``text`` into a :class:`~repro.sparql.ast.SelectQuery`."""
    return _Parser(_tokenize(text)).parse_query()
