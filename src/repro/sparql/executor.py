"""Index-backed evaluation of the SPARQL subset.

The executor answers BGPs by nested hexastore lookups with a greedy,
selectivity-first join order — the same regime that lets real RDF engines
run the paper's extraction queries "efficiently by leveraging the indices
existing in RDF engines" (Section IV-C).

Node classes are virtual ``rdf:type`` edges: patterns ``?v a <Class>`` are
answered from the KG's ``node_types`` array instead of materialised triples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.kg.triples import TripleStore
from repro.nputil import expand_ranges
from repro.sparql.ast import BGP, IRI, SelectQuery, TriplePattern, Union, Var


@dataclass
class ResultSet:
    """A deterministic, column-oriented SPARQL result.

    ``variables`` fixes column order; ``columns`` maps each variable name to
    an int64 id array (ids index the KG's node/relation/class vocabularies).
    """

    variables: List[str]
    columns: Dict[str, np.ndarray]

    @property
    def num_rows(self) -> int:
        if not self.variables:
            return 0
        return len(self.columns[self.variables[0]])

    @classmethod
    def empty(cls, variables: List[str]) -> "ResultSet":
        return cls(variables, {v: np.empty(0, dtype=np.int64) for v in variables})

    def page(self, offset: Optional[int], limit: Optional[int]) -> "ResultSet":
        """Apply OFFSET then LIMIT (SPARQL solution-modifier order).

        SPARQL solution modifiers are non-negative integers; negative
        values are clamped to 0 (OFFSET -n skips nothing, LIMIT -n keeps
        nothing) instead of falling through to Python slice semantics,
        which would wrap from the *end* of the result and silently return
        wrong pages.  The parser rejects negative literals outright; the
        clamp guards programmatic construction (``with_page`` etc.).
        """
        start = max(int(offset), 0) if offset is not None else 0
        stop = None if limit is None else start + max(int(limit), 0)
        return ResultSet(
            list(self.variables),
            {v: self.columns[v][start:stop] for v in self.variables},
        )

    def iter_pages(self, page_rows: int) -> Iterator["ResultSet"]:
        """Yield this result in OFFSET/LIMIT slices of ``page_rows`` rows.

        Concatenating the pages reproduces the result bit-exactly; an
        empty result yields no pages.  This is the slicing step behind the
        endpoint's streaming planner and the HTTP front end's chunked
        pagination.
        """
        if page_rows <= 0:
            raise ValueError(f"page_rows must be positive, got {page_rows}")
        for offset in range(0, self.num_rows, page_rows):
            yield self.page(offset, page_rows)

    def concat(self, other: "ResultSet") -> "ResultSet":
        """Row-concatenate two results over the same variables."""
        if self.variables != other.variables:
            raise ValueError(
                f"cannot concat results over {self.variables} and {other.variables}"
            )
        return ResultSet(
            list(self.variables),
            {
                v: np.concatenate([self.columns[v], other.columns[v]])
                for v in self.variables
            },
        )

    def to_triples(self, s: str = "s", p: str = "p", o: str = "o") -> TripleStore:
        """Interpret three columns as a triple set (Algorithm 3 collection)."""
        return TripleStore(self.columns[s], self.columns[p], self.columns[o])


@dataclass
class _Bindings:
    """Intermediate solution table: equal-length columns + explicit row count.

    The explicit ``rows`` field lets a variable-free conjunction (all-constant
    patterns) distinguish "one empty solution" from "no solution".
    """

    columns: Dict[str, np.ndarray] = field(default_factory=dict)
    rows: int = 1

    @classmethod
    def none(cls, variable_names: List[str]) -> "_Bindings":
        return cls({name: np.empty(0, dtype=np.int64) for name in variable_names}, rows=0)

    def with_names(self, extra: List[str]) -> "_Bindings":
        """Zero-row copy that also carries ``extra`` (for empty results)."""
        names = list(self.columns.keys()) + [n for n in extra if n not in self.columns]
        return _Bindings.none(names)


class QueryExecutor:
    """Evaluates parsed queries against a :class:`KnowledgeGraph`.

    ``join_kernel`` selects how patterns with already-bound variables join:
    ``"batch"`` (default) resolves all distinct key combinations with one
    batched ``searchsorted`` per pattern (:meth:`Hexastore.batch_ranges`,
    composite keys for multiple bound variables); ``"scalar"`` keeps the
    per-key index-lookup loop — the reference oracle the batch kernel is
    tested against, row-for-row.
    """

    def __init__(self, kg: KnowledgeGraph, join_kernel: str = "batch"):
        if join_kernel not in ("batch", "scalar"):
            raise ValueError(f"join_kernel must be 'batch' or 'scalar', got {join_kernel!r}")
        self.kg = kg
        self.join_kernel = join_kernel

    # -- public API --

    def evaluate(self, query: SelectQuery) -> ResultSet:
        """Evaluate ``query`` and return its (paged) result."""
        return self._eval_select(query)

    def count(self, query: SelectQuery) -> int:
        """Row count of ``query`` ignoring LIMIT/OFFSET (``getGraphSize``)."""
        unpaged = SelectQuery(query.projections, query.body, limit=None, offset=None)
        return self._eval_select(unpaged).num_rows

    # -- evaluation --

    def _eval_select(self, query: SelectQuery) -> ResultSet:
        if isinstance(query.body, Union):
            arm_results = [self._eval_select(arm) for arm in query.body.arms]
            merged = arm_results[0]
            for arm_result in arm_results[1:]:
                merged = merged.concat(arm_result)
            result = self._project_result(merged, query)
        else:
            bindings = self._eval_bgp(query.body)
            available = [v.name for v in query.body.variables()]
            base = ResultSet(available, {name: bindings.columns[name] for name in available})
            result = self._project_result(base, query)
        return result.page(query.offset, query.limit)

    def _project_result(self, base: ResultSet, query: SelectQuery) -> ResultSet:
        if not query.projections:
            return base
        variables: List[str] = []
        columns: Dict[str, np.ndarray] = {}
        for projection in query.projections:
            source = projection.source.name
            output = projection.output.name
            if source not in base.columns:
                raise KeyError(f"projected variable ?{source} is not bound by the pattern")
            variables.append(output)
            columns[output] = base.columns[source]
        return ResultSet(variables, columns)

    # -- BGP evaluation --

    def _eval_bgp(self, bgp: BGP) -> _Bindings:
        ordered = self._order_patterns(list(bgp.patterns))
        bindings = _Bindings()
        all_names = [v.name for v in bgp.variables()]
        for pattern in ordered:
            bindings = self._join(bindings, pattern)
            if bindings.rows == 0:
                return _Bindings.none(all_names)
        return bindings

    def _order_patterns(self, patterns: List[TriplePattern]) -> List[TriplePattern]:
        """Greedy join order: most selective first, then connected patterns."""

        def selectivity(pattern: TriplePattern) -> Tuple[int, int]:
            # Type patterns with a constant class are the classic entry point
            # of the paper's queries; prefer them, then more-bound patterns.
            return (0 if pattern.is_type_pattern() else 1, -pattern.bound_count())

        remaining = sorted(patterns, key=selectivity)
        if not remaining:
            return []
        ordered = [remaining.pop(0)]
        bound = {v.name for v in ordered[0].variables()}
        while remaining:
            connected_index = None
            for index, pattern in enumerate(remaining):
                if any(v.name in bound for v in pattern.variables()):
                    connected_index = index
                    break
            index = connected_index if connected_index is not None else 0
            chosen = remaining.pop(index)
            ordered.append(chosen)
            bound.update(v.name for v in chosen.variables())
        return ordered

    # -- term resolution --

    def _resolve_node(self, iri: IRI) -> Optional[int]:
        return self.kg.node_vocab.get(iri.value)

    def _resolve_relation(self, iri: IRI) -> Optional[int]:
        return self.kg.relation_vocab.get(iri.value)

    def _resolve_class(self, iri: IRI) -> Optional[int]:
        return self.kg.class_vocab.get(iri.value)

    # -- join machinery --

    def _join(self, bindings: _Bindings, pattern: TriplePattern) -> _Bindings:
        if pattern.is_type_pattern():
            return self._join_type_pattern(bindings, pattern)
        return self._join_triple_pattern(bindings, pattern)

    def _join_type_pattern(self, bindings: _Bindings, pattern: TriplePattern) -> _Bindings:
        if isinstance(pattern.o, Var):
            return self._join_type_var_class(bindings, pattern)
        class_id = self._resolve_class(pattern.o)
        pattern_names = [v.name for v in pattern.variables()]
        if class_id is None:
            return bindings.with_names(pattern_names)
        if isinstance(pattern.s, IRI):
            node_id = self._resolve_node(pattern.s)
            matches = node_id is not None and int(self.kg.node_types[node_id]) == class_id
            return bindings if matches else bindings.with_names(pattern_names)
        var = pattern.s.name
        if var in bindings.columns:
            keep = self.kg.node_types[bindings.columns[var]] == class_id
            return _Bindings(
                {name: col[keep] for name, col in bindings.columns.items()},
                rows=int(np.count_nonzero(keep)),
            )
        nodes = self.kg.nodes_of_type(class_id)
        return _cross_join(bindings, {var: nodes})

    def _join_type_var_class(self, bindings: _Bindings, pattern: TriplePattern) -> _Bindings:
        class_var = pattern.o.name
        if isinstance(pattern.s, Var):
            subject_var = pattern.s.name
            if subject_var in bindings.columns:
                columns = dict(bindings.columns)
                columns[class_var] = self.kg.node_types[bindings.columns[subject_var]]
                return _Bindings(columns, rows=bindings.rows)
            nodes = np.arange(self.kg.num_nodes, dtype=np.int64)
            return _cross_join(
                bindings, {subject_var: nodes, class_var: self.kg.node_types[nodes]}
            )
        node_id = self._resolve_node(pattern.s)
        if node_id is None:
            return bindings.with_names([class_var])
        node_class = np.asarray([self.kg.node_types[node_id]], dtype=np.int64)
        return _cross_join(bindings, {class_var: node_class})

    def _join_triple_pattern(self, bindings: _Bindings, pattern: TriplePattern) -> _Bindings:
        store = self.kg.triples
        components = [("s", pattern.s), ("p", pattern.p), ("o", pattern.o)]

        consts: Dict[str, int] = {}
        bound_vars: List[Tuple[str, str]] = []  # (component, var name)
        free_vars: List[Tuple[str, str]] = []
        pattern_names = [v.name for v in pattern.variables()]
        for component, term in components:
            if isinstance(term, IRI):
                resolver = self._resolve_relation if component == "p" else self._resolve_node
                resolved = resolver(term)
                if resolved is None:
                    return bindings.with_names(pattern_names)
                consts[component] = resolved
            else:
                name = term.name
                if name in bindings.columns:
                    bound_vars.append((component, name))
                else:
                    free_vars.append((component, name))

        # Repeated free variable inside the pattern (e.g. ?v ?p ?v): keep one
        # occurrence, post-filter on equality of the components.
        repeated_pairs: List[Tuple[str, str]] = []
        first_seen: Dict[str, str] = {}
        deduped_free: List[Tuple[str, str]] = []
        for component, name in free_vars:
            if name in first_seen:
                repeated_pairs.append((first_seen[name], component))
            else:
                first_seen[name] = component
                deduped_free.append((component, name))
        free_vars = deduped_free

        if not bound_vars:
            positions = self.kg.hexastore.match(
                subject=consts.get("s"), predicate=consts.get("p"), obj=consts.get("o")
            )
            positions = self._filter_repeats(positions, repeated_pairs)
            new_cols = {
                name: getattr(store, component)[positions] for component, name in free_vars
            }
            if not free_vars:
                # Fully-constant pattern: acts as an existence filter.
                if len(positions) == 0:
                    return bindings.with_names([])
                return bindings
            return _cross_join(bindings, new_cols)

        if self.join_kernel == "scalar":
            return self._join_bound_vars_scalar(
                bindings, consts, bound_vars, free_vars, repeated_pairs, pattern_names
            )
        return self._join_bound_vars(
            bindings, consts, bound_vars, free_vars, repeated_pairs, pattern_names
        )

    def _join_bound_vars_scalar(
        self,
        bindings: _Bindings,
        consts: Dict[str, int],
        bound_vars: List[Tuple[str, str]],
        free_vars: List[Tuple[str, str]],
        repeated_pairs: List[Tuple[str, str]],
        pattern_names: List[str],
    ) -> _Bindings:
        """Reference join: one hexastore lookup per distinct key combination.

        Groups rows by their distinct bound-value combinations so each
        distinct combination costs one index lookup.  Kept as the oracle the
        vectorized :meth:`_join_bound_vars` must match row-for-row.
        """
        store = self.kg.triples
        key_columns = [bindings.columns[name] for _component, name in bound_vars]
        keys = np.stack(key_columns, axis=1)
        unique_keys, inverse = np.unique(keys, axis=0, return_inverse=True)

        row_chunks: List[np.ndarray] = []
        pos_chunks: List[np.ndarray] = []
        row_indices = np.arange(bindings.rows, dtype=np.int64)
        for key_index in range(len(unique_keys)):
            lookup = dict(consts)
            for (component, _name), value in zip(bound_vars, unique_keys[key_index]):
                lookup[component] = int(value)
            positions = self.kg.hexastore.match(
                subject=lookup.get("s"), predicate=lookup.get("p"), obj=lookup.get("o")
            )
            positions = self._filter_repeats(positions, repeated_pairs)
            if len(positions) == 0:
                continue
            rows_here = row_indices[inverse == key_index]
            row_chunks.append(np.repeat(rows_here, len(positions)))
            pos_chunks.append(np.tile(positions, len(rows_here)))

        if not row_chunks:
            return bindings.with_names(pattern_names)

        row_rep = np.concatenate(row_chunks)
        pos_rep = np.concatenate(pos_chunks)
        columns = {name: column[row_rep] for name, column in bindings.columns.items()}
        for component, name in free_vars:
            columns[name] = getattr(store, component)[pos_rep]
        return _Bindings(columns, rows=len(row_rep))

    def _join_bound_vars(
        self,
        bindings: _Bindings,
        consts: Dict[str, int],
        bound_vars: List[Tuple[str, str]],
        free_vars: List[Tuple[str, str]],
        repeated_pairs: List[Tuple[str, str]],
        pattern_names: List[str],
    ) -> _Bindings:
        """Vectorized join for patterns with bound variables (any count).

        Instead of one hexastore lookup per distinct key combination, all
        distinct combinations are resolved with one batched ``searchsorted``
        over the ordering whose prefix is ``consts`` plus the bound
        components — composite mixed-radix keys when more than one variable
        is bound (:meth:`Hexastore.batch_ranges`).  Produces rows in exactly
        the per-key order of the scalar reference loop.
        """
        store = self.kg.triples
        components = [component for component, _name in bound_vars]
        if len(bound_vars) == 1:
            column = bindings.columns[bound_vars[0][1]]
            unique_keys, inverse = np.unique(column, return_inverse=True)
            lookup_values: np.ndarray = unique_keys
            lookup_component: object = components[0]
        else:
            key_columns = [bindings.columns[name] for _component, name in bound_vars]
            keys = np.stack(key_columns, axis=1)
            unique_keys, inverse = np.unique(keys, axis=0, return_inverse=True)
            lookup_values = unique_keys
            lookup_component = components

        los, his, perm = self.kg.hexastore.batch_ranges(
            consts, lookup_component, lookup_values
        )
        counts = his - los
        pos_flat = perm[expand_ranges(los, counts)]
        if repeated_pairs and len(pos_flat):
            keep = np.ones(len(pos_flat), dtype=bool)
            for first, second in repeated_pairs:
                keep &= getattr(store, first)[pos_flat] == getattr(store, second)[pos_flat]
            key_ids = np.repeat(np.arange(len(unique_keys)), counts)[keep]
            pos_flat = pos_flat[keep]
            counts = np.bincount(key_ids, minlength=len(unique_keys))
        if len(pos_flat) == 0:
            return bindings.with_names(pattern_names)
        key_starts = np.concatenate([[0], np.cumsum(counts)[:-1]])

        # Expand per row, grouped by key with rows in original order — the
        # same output order the per-key loop produces.
        order = np.argsort(inverse, kind="stable")
        keys_of_rows = inverse[order]
        row_counts = counts[keys_of_rows]
        row_rep = np.repeat(order, row_counts)
        if len(row_rep) == 0:
            return bindings.with_names(pattern_names)
        pos_rep = pos_flat[expand_ranges(key_starts[keys_of_rows], row_counts)]

        columns = {n: col[row_rep] for n, col in bindings.columns.items()}
        for free_component, free_name in free_vars:
            columns[free_name] = getattr(store, free_component)[pos_rep]
        return _Bindings(columns, rows=len(row_rep))

    def _filter_repeats(
        self, positions: np.ndarray, repeated_pairs: List[Tuple[str, str]]
    ) -> np.ndarray:
        if not repeated_pairs:
            return positions
        store = self.kg.triples
        keep = np.ones(len(positions), dtype=bool)
        for first, second in repeated_pairs:
            keep &= getattr(store, first)[positions] == getattr(store, second)[positions]
        return positions[keep]


def _cross_join(bindings: _Bindings, new_cols: Dict[str, np.ndarray]) -> _Bindings:
    n_new = 0
    for column in new_cols.values():
        n_new = len(column)
        break
    if not bindings.columns:
        if bindings.rows == 0:
            return _Bindings.none(list(new_cols.keys()))
        return _Bindings(dict(new_cols), rows=n_new)
    columns = {name: np.repeat(column, n_new) for name, column in bindings.columns.items()}
    for name, column in new_cols.items():
        columns[name] = np.tile(column, bindings.rows)
    return _Bindings(columns, rows=bindings.rows * n_new)
