"""Command-line interface.

Seven subcommands cover the library's day-to-day uses::

    python -m repro stats           --dataset mag --scale small
    python -m repro extract         --dataset mag --task PV --method sparql -d 1 -H 1 --out kgprime/
    python -m repro train           --dataset mag --task PV --model GraphSAINT --tosa --epochs 10
    python -m repro train           --dataset mag --task PV --model RGCN --save-checkpoint ckpt/pv.ckpt
    python -m repro bench           --experiment table1 --scale tiny
    python -m repro build-artifacts --dataset mag --scale large --out artifacts/mag-large
    python -m repro serve           --dataset mag --scale small --port 7469
    python -m repro serve           --dataset mag --protocol http --port 8080 --workers 4
    python -m repro serve           --dataset mag --protocol http --checkpoint ckpt/pv.ckpt
    python -m repro serve           --dataset mag --workers 4 --mmap-dir artifacts/mag-large
    python -m repro bench-serve     --dataset mag --scale small --concurrency 64 --workers 2
    python -m repro bench-serve     --dataset mag --checkpoint ckpt/pv.ckpt --requests 512

``stats`` prints the Table-I row of a benchmark KG; ``extract`` runs TOSG
extraction and optionally saves KG′ as a TSV bundle; ``train`` runs one
method on FG or KG′ and reports the paper's metrics; ``bench`` regenerates
one paper artifact; ``build-artifacts`` writes a graph plus its derived
indices as a memory-mappable artifact store (``repro/kg/store.py``);
``serve`` exposes the concurrent extraction service over
newline-delimited-JSON TCP or the HTTP/SPARQL-protocol front end
(``--protocol http``), in-process or on a multi-process sharded worker
pool (``--workers N``, optionally zero-copy from a saved store via
``--mmap-dir``); ``bench-serve`` runs the closed-loop load generator
against the serial baseline and either the in-process coalescing
scheduler or the worker pool (see ``docs/serving.md``).

``train --save-checkpoint PATH`` additionally persists the trained model
as a CRC-checked checkpoint artifact (``repro/nn/checkpoint.py``);
``serve --checkpoint PATH`` registers such checkpoints with the model
registry so ``/predict`` answers node-classification and link-prediction
queries on the same coalescing hot path, and ``bench-serve --checkpoint``
drives a closed-loop /predict load against the scalar one-request oracle.

The argparse help text is the contract: every flag documented in
``docs/serving.md`` must appear verbatim in ``repro serve --help`` /
``repro bench-serve --help`` (``tests/test_cli.py`` enforces this).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

_DATASETS = ("mag", "dblp", "yago4", "yago3_10", "wikikg2")
_NC_MODELS = ("RGCN", "GraphSAINT", "ShaDowSAINT", "SeHGNN")
_LP_MODELS = ("RGCN", "MorsE", "LHGNN")
_EXPERIMENTS = (
    "fig1", "fig2", "fig5", "fig6", "fig7", "fig8", "fig9",
    "table1", "table2", "table3", "table4",
)


def _load_bundle(dataset: str, scale: str, seed: int):
    from repro.datasets import catalog

    if dataset not in _DATASETS:
        raise SystemExit(f"unknown dataset {dataset!r}; choose from {_DATASETS}")
    return getattr(catalog, dataset)(scale, seed)


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.bench.harness import render_table
    from repro.kg.stats import compute_statistics

    bundle = _load_bundle(args.dataset, args.scale, args.seed)
    stats = compute_statistics(bundle.kg)
    print(render_table(
        ["KG", "#nodes", "#edges", "#n-type", "#e-type"], [stats.as_row()],
        title=f"{bundle.kg.name} (tasks: {', '.join(sorted(bundle.tasks))})",
    ))
    print(f"avg out-degree {stats.avg_out_degree:.2f}, max degree {stats.max_degree}, "
          f"density {stats.density:.2e}")
    return 0


def _cmd_extract(args: argparse.Namespace) -> int:
    from repro.core import evaluate_quality, extract_tosg
    from repro.kg.io import save_kg

    bundle = _load_bundle(args.dataset, args.scale, args.seed)
    task = bundle.task(args.task)
    result = extract_tosg(
        bundle.kg, task, method=args.method, direction=args.direction,
        hops=args.hops, rng=np.random.default_rng(args.seed),
        walk_length=args.walk_length, top_k=args.top_k,
    )
    quality = evaluate_quality(result.subgraph, result.task, sampler=result.method)
    print(f"extracted {result.subgraph} with {result.method} "
          f"in {result.extraction_seconds:.2f}s")
    print(f"  targets kept: {result.task.num_targets}/{task.num_targets}  "
          f"target ratio {quality.target_ratio_pct:.1f}%  "
          f"disconnected {quality.disconnected_pct:.1f}%  "
          f"entropy {quality.entropy:.2f}")
    if args.out:
        save_kg(result.subgraph, args.out)
        print(f"  saved TSV bundle to {args.out}")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.bench.harness import RUN_HEADERS, render_table, run_lp_method, run_nc_method
    from repro.core import extract_tosg
    from repro.models import ModelConfig
    from repro.training import TrainConfig

    bundle = _load_bundle(args.dataset, args.scale, args.seed)
    task = bundle.task(args.task)
    is_lp = task.task_type == "LP"
    if is_lp and args.model not in _LP_MODELS:
        raise SystemExit(f"{args.task} is a link-prediction task; choose from {_LP_MODELS}")
    if not is_lp and args.model not in _NC_MODELS:
        raise SystemExit(f"{args.task} is a node-classification task; choose from {_NC_MODELS}")

    if args.tosa:
        direction = args.direction if args.direction else (2 if is_lp else 1)
        tosa = extract_tosg(bundle.kg, task, method="sparql", direction=direction, hops=args.hops)
        graph, graph_task = tosa.subgraph, tosa.task
        label, preprocess = f"KG-TOSA{tosa.params['pattern']}", tosa.extraction_seconds
    else:
        graph, graph_task, label, preprocess = bundle.kg, task, "FG", 0.0

    model_config = ModelConfig(
        hidden_dim=args.hidden_dim, num_layers=args.layers, lr=args.lr, seed=args.seed
    )
    train_config = TrainConfig(epochs=args.epochs, eval_every=max(args.epochs // 5, 1))
    runner = run_lp_method if is_lp else run_nc_method
    run = runner(
        args.model, graph, graph_task, model_config, train_config,
        graph_label=label, preprocess_seconds=preprocess,
    )
    print(render_table(RUN_HEADERS, [run.cells()], title=f"{args.task}/{bundle.kg.name}"))
    if args.save_checkpoint:
        if run.oom:
            raise SystemExit("training hit the modeled-memory budget; nothing to checkpoint")
        from repro.nn.checkpoint import save_checkpoint

        manifest = save_checkpoint(
            run.model, args.save_checkpoint,
            metrics={"test_metric": run.metric, "metric": run.metric_name},
        )
        print(
            f"checkpoint saved to {manifest['path']} "
            f"({manifest['nbytes'] / 1e3:.1f} kB, {manifest['parameters']} parameters); "
            f"serve it with: repro serve --dataset {args.dataset} "
            f"--checkpoint {args.save_checkpoint}"
        )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import experiments
    from repro.bench.harness import RUN_HEADERS, render_table

    functions = {
        "fig1": experiments.fig1_motivation,
        "fig2": experiments.fig2_urw_pathology,
        "fig5": experiments.fig5_brw_quality,
        "fig6": experiments.fig6_nc_tasks,
        "fig7": experiments.fig7_lp_tasks,
        "fig8": experiments.fig8_extraction_methods,
        "fig9": experiments.fig9_convergence,
        "table1": experiments.table1_benchmark_stats,
        "table2": experiments.table2_task_summary,
        "table3": experiments.table3_subgraph_quality,
        "table4": experiments.table4_cost_breakdown,
    }
    if args.experiment not in functions:
        raise SystemExit(f"unknown experiment; choose from {sorted(functions)}")
    result = functions[args.experiment](scale=args.scale, seed=args.seed)
    for name, rows in result.tables.items():
        print(render_table([""] * len(rows[0]) if rows else [], rows, title=name))
    for label, runs in result.sections.items():
        print(render_table(RUN_HEADERS, [r.cells() for r in runs], title=label))
    for label, reports in result.quality.items():
        rows = [r.as_row() for r in reports]
        headers = ["sampler", "task", "|V'|", "VT%", "|C'|", "|R'|", "discon%", "dist", "H"]
        print(render_table(headers, rows, title=label))
    return 0


def _cmd_build_artifacts(args: argparse.Namespace) -> int:
    from repro.kg.store import save_artifacts

    bundle = _load_bundle(args.dataset, args.scale, args.seed)
    manifest = save_artifacts(bundle.kg, args.out)
    print(
        f"saved artifact store for {bundle.kg.name} to {args.out} "
        f"({manifest['nbytes'] / 1e6:.1f} MB, {manifest['sections']} sections); "
        f"serve it with: repro serve --dataset {args.dataset} --workers 2 "
        f"--mmap-dir {args.out}"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import ExtractionService, WorkerPool, bound_port, serve_http, serve_tcp

    if args.mmap_dir:
        # The store is the graph: no generation, no index builds — the
        # serving state memory-maps in directly (and, with --workers,
        # every worker maps the same physical pages).
        from repro.kg.store import open_artifacts

        kg = open_artifacts(args.mmap_dir).kg
    else:
        kg = _load_bundle(args.dataset, args.scale, args.seed).kg
    serve_protocol = serve_http if args.protocol == "http" else serve_tcp
    if (args.workers or args.remote_worker) and args.no_coalesce:
        raise SystemExit(
            "--workers/--remote-worker require the coalescing scheduler "
            "(drop --no-coalesce)"
        )
    if args.pin_workers and not args.workers:
        raise SystemExit("--pin-workers requires a worker pool (add --workers N)")
    if args.remote_worker and not args.mmap_dir:
        raise SystemExit(
            "--remote-worker requires --mmap-dir: remote registration ships "
            "the artifact-store path, never a pickled graph"
        )
    if (args.workers_min or args.workers_max) and not args.workers:
        raise SystemExit(
            "--workers-min/--workers-max scale the local pool; add --workers N"
        )
    pool = None
    if args.workers or args.remote_worker:
        from repro.serve.placement import HashPlacement, LoadAwarePlacement

        replicas = args.replicas if args.replicas else None
        placement_cls = (
            LoadAwarePlacement if args.placement == "load" else HashPlacement
        )
        pool = WorkerPool(
            workers=args.workers,
            replicas=replicas,
            pin_workers=args.pin_workers,
            remote_workers=args.remote_worker,
            placement=placement_cls(replicas),
            workers_min=args.workers_min or None,
            workers_max=args.workers_max or None,
        )

    async def run() -> None:
        service = ExtractionService(
            max_pending=args.max_pending,
            max_batch=args.max_batch,
            max_delay=args.max_delay_ms / 1e3,
            coalesce=not args.no_coalesce,
            pool=pool,
            compact_every=args.compact_every,
        )
        service.register(args.dataset, kg, mmap_dir=args.mmap_dir)
        for path in args.checkpoint:
            service.register_checkpoint(args.dataset, path)
        server = await serve_protocol(service, host=args.host, port=args.port)
        if pool is not None:
            # Read back from the pool: it normalizes (clamps) the replica
            # count, so the banner can never advertise a placement that
            # does not exist.
            replicas = pool.replicas if pool.replicas else pool.num_workers
            mode = f"pool of {pool.num_workers} workers, {replicas} replica(s)/graph"
            if args.remote_worker:
                mode += f" ({len(args.remote_worker)} remote)"
            if args.placement != "hash":
                mode += f", {args.placement} placement"
            if args.workers_min or args.workers_max:
                elastic = pool.describe()["elastic"]
                mode += f", elastic {elastic['min']}..{elastic['max']} local"
            if args.pin_workers:
                pinned = pool.describe()["pinned"]
                cpus = ",".join("-" if cpu is None else str(cpu) for cpu in pinned)
                mode += f", pinned to cpus [{cpus}]"
        else:
            mode = "serial" if args.no_coalesce else "coalescing"
        if args.mmap_dir:
            mode += ", mmap artifacts"
        if args.checkpoint:
            mode += f", {len(args.checkpoint)} checkpoint(s)"
        print(
            f"serving {kg.name} as graph {args.dataset!r} on "
            f"{args.host}:{bound_port(server)} via {args.protocol} ({mode}, "
            f"window {args.max_batch}x{args.max_delay_ms}ms, "
            f"max {args.max_pending} in flight)",
            flush=True,
        )
        async with server:
            if args.duration is not None:
                try:
                    await asyncio.wait_for(server.serve_forever(), args.duration)
                except asyncio.TimeoutError:
                    pass
            else:
                await server.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass
    finally:
        if pool is not None:
            pool.close()
    return 0


def _cmd_serve_worker(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve.transport import WorkerServer, serve_worker
    from repro.serve.wire import bound_port

    host, _, port_text = args.listen.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        port = -1
    if not host or not (0 <= port < 65536):
        raise SystemExit(f"--listen must be HOST:PORT, got {args.listen!r}")
    if args.checkpoint and not args.mmap_dir:
        raise SystemExit(
            "--checkpoint requires --mmap-dir (the graph the checkpoints serve)"
        )
    state = WorkerServer()
    if args.mmap_dir:
        # Pre-register from the local store: the parent's later register op
        # for the same name is then an idempotent no-op, so it pays no
        # startup cost on this worker.  Use --graph to match the name the
        # parent serves under (its --dataset value).
        from repro.kg.store import open_artifacts

        name = args.graph or open_artifacts(args.mmap_dir).kg.name
        state.register_local({
            "name": name,
            "mmap_dir": args.mmap_dir,
            "warm": True,
            "warm_kinds": ("csr",),
            "compression": True,
            "checkpoints": list(args.checkpoint),
        })

    async def run() -> None:
        server = await serve_worker(state, host, port)
        graphs = state.graphs()
        print(
            f"serve-worker listening on {host}:{bound_port(server)} "
            f"(graphs: {', '.join(graphs) if graphs else 'none, awaiting registration'})",
            flush=True,
        )
        async with server:
            if args.duration is not None:
                try:
                    await asyncio.wait_for(server.serve_forever(), args.duration)
                except asyncio.TimeoutError:
                    pass
            else:
                await server.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass
    return 0


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    import json

    from repro.bench.harness import render_table
    from repro.serve import compare_pool_serving, compare_serving_modes
    from repro.serve.loadgen import ROW_HEADERS

    bundle = _load_bundle(args.dataset, args.scale, args.seed)
    rng = np.random.default_rng(args.seed)
    if args.mmap_dir and not args.workers:
        raise SystemExit("--mmap-dir benchmarks pool startup; add --workers N")
    if args.checkpoint and args.mmap_dir:
        raise SystemExit("--checkpoint benchmarks the /predict path; drop --mmap-dir")
    if args.paths and args.checkpoint:
        raise SystemExit("--paths benchmarks the /paths op; drop --checkpoint")
    if args.paths and args.mmap_dir:
        raise SystemExit("--paths registers the catalog graph directly; drop --mmap-dir")
    kg = bundle.kg
    if args.mmap_dir:
        # Serve the mapped copy of the same graph: targets come from the
        # catalog task, so the store must have been built with the same
        # --dataset/--scale/--seed (ids are then bit-identical).
        from repro.kg.store import open_artifacts

        kg = open_artifacts(args.mmap_dir).kg
    if args.checkpoint:
        # /predict load: the request mix interleaves every task that has a
        # checkpoint — target nodes for NC tasks, head nodes for LP tasks.
        from repro.nn.checkpoint import read_checkpoint_meta
        from repro.serve import WorkerPool, compare_predict_serving

        task_types = {}
        for path in args.checkpoint:
            meta = read_checkpoint_meta(path)
            task_types[meta["task_name"]] = meta["task_type"]
        task_names = sorted(task_types)
        draws = {}
        for name in task_names:
            load_task = bundle.task(name)
            source = (load_task.target_nodes if task_types[name] == "NC"
                      else load_task.edges[:, 0])
            draws[name] = rng.choice(source, size=args.requests, replace=True)
        requests = [
            (task_names[i % len(task_names)],
             int(draws[task_names[i % len(task_names)]][i]))
            for i in range(args.requests)
        ]
        pool = WorkerPool(workers=args.workers) if args.workers else None
        try:
            serial, fast, speedup = compare_predict_serving(
                kg, args.checkpoint, requests, k=args.top_k,
                candidates=args.candidates, concurrency=args.concurrency,
                max_batch=args.max_batch, max_delay=args.max_delay_ms / 1e3,
                pool=pool,
            )
        finally:
            if pool is not None:
                pool.close()
        if args.workers:
            label = f"/predict pool ({args.workers} workers) speedup"
        else:
            label = "/predict coalescing speedup"
        task_label = "+".join(task_names)
    elif args.paths:
        # /paths load: random (src, dst) pairs drawn from the task's
        # targets — the serial baseline answers each with the scalar DFS
        # oracle, the fast mode micro-batches path enumerations (on the
        # worker pool when --workers is given).
        from repro.serve import WorkerPool, compare_paths_serving

        targets = bundle.task(args.task).target_nodes
        pairs = [
            (int(src), int(dst))
            for src, dst in zip(
                rng.choice(targets, size=args.requests, replace=True),
                rng.choice(targets, size=args.requests, replace=True),
            )
        ]
        pool = WorkerPool(workers=args.workers) if args.workers else None
        try:
            serial, fast, speedup = compare_paths_serving(
                kg, pairs, max_hops=args.max_hops, max_paths=args.max_paths,
                concurrency=args.concurrency, max_batch=args.max_batch,
                max_delay=args.max_delay_ms / 1e3, pool=pool,
            )
        finally:
            if pool is not None:
                pool.close()
        if args.workers:
            label = f"/paths pool ({args.workers} workers) speedup"
        else:
            label = "/paths coalescing speedup"
        task_label = f"{args.task} pairs"
    elif args.workers:
        targets = rng.choice(bundle.task(args.task).target_nodes,
                             size=args.requests, replace=True)
        serial, fast, speedup = compare_pool_serving(
            kg, targets, k=args.top_k, concurrency=args.concurrency,
            workers=args.workers, mmap_dir=args.mmap_dir,
            max_batch=args.max_batch, max_delay=args.max_delay_ms / 1e3,
        )
        label = f"pool ({args.workers} workers) speedup"
        task_label = args.task
    else:
        targets = rng.choice(bundle.task(args.task).target_nodes,
                             size=args.requests, replace=True)
        serial, fast, speedup = compare_serving_modes(
            bundle.kg, targets, k=args.top_k, concurrency=args.concurrency,
            max_batch=args.max_batch, max_delay=args.max_delay_ms / 1e3,
        )
        label = "coalescing speedup"
        task_label = args.task
    print(render_table(
        ROW_HEADERS,
        [serial.as_row(), fast.as_row()],
        title=f"closed-loop serving, {bundle.kg.name} ({task_label})",
    ))
    print(f"{label} {speedup:.1f}x (results bit-identical to serial)")
    if args.out:
        payload = {
            "graph": bundle.kg.name,
            "task": task_label,
            "speedup": speedup,
            "serial": serial.as_json(),
            fast.mode: fast.as_json(),
            "metrics": fast.metrics,
        }
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"[report saved to {args.out}]")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="KG-TOSA reproduction command-line interface"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("--dataset", default="mag", help=f"one of {_DATASETS}")
        p.add_argument("--scale", default="small", help="tiny | small | medium | large | float")
        p.add_argument("--seed", type=int, default=7, help="generator / sampling seed")

    stats = sub.add_parser("stats", help="print Table-I statistics of a benchmark KG")
    add_common(stats)
    stats.set_defaults(func=_cmd_stats)

    extract = sub.add_parser("extract", help="extract a task-oriented subgraph")
    add_common(extract)
    extract.add_argument("--task", default="PV")
    extract.add_argument("--method", default="sparql", choices=("sparql", "brw", "ibs"))
    extract.add_argument("-d", "--direction", type=int, default=1, choices=(1, 2))
    extract.add_argument("-H", "--hops", type=int, default=1)
    extract.add_argument("--walk-length", type=int, default=3)
    extract.add_argument("--top-k", type=int, default=16)
    extract.add_argument("--out", default=None, help="directory for the KG' TSV bundle")
    extract.set_defaults(func=_cmd_extract)

    train = sub.add_parser("train", help="train one HGNN method on FG or KG'")
    add_common(train)
    train.add_argument("--task", default="PV")
    train.add_argument("--model", default="GraphSAINT")
    train.add_argument("--tosa", action="store_true", help="train on the extracted TOSG")
    train.add_argument("-d", "--direction", type=int, default=None, choices=(1, 2))
    train.add_argument("-H", "--hops", type=int, default=1)
    train.add_argument("--epochs", type=int, default=10)
    train.add_argument("--hidden-dim", type=int, default=24)
    train.add_argument("--layers", type=int, default=2)
    train.add_argument("--lr", type=float, default=0.02)
    train.add_argument("--save-checkpoint", default=None, metavar="PATH",
                       help="persist the trained model as a CRC-checked checkpoint "
                            "artifact servable via `repro serve --checkpoint PATH`")
    train.set_defaults(func=_cmd_train)

    bench = sub.add_parser("bench", help="regenerate one paper table/figure")
    bench.add_argument("--experiment", default="table1", help=f"one of {_EXPERIMENTS}")
    bench.add_argument("--scale", default="tiny")
    bench.add_argument("--seed", type=int, default=7)
    bench.set_defaults(func=_cmd_bench)

    build = sub.add_parser(
        "build-artifacts",
        help="write a graph + derived indices as a memory-mappable artifact "
             "store (served zero-copy via serve/bench-serve --mmap-dir)",
    )
    add_common(build)
    build.add_argument("--out", required=True,
                       help="directory for the artifact store (one artifacts.tosg file)")
    build.set_defaults(func=_cmd_build_artifacts)

    serve = sub.add_parser(
        "serve",
        help="serve concurrent extraction over HTTP/SPARQL or TCP (ndjson), "
             "in-process or on a multi-process worker pool (--workers)",
    )
    add_common(serve)
    serve.add_argument("--protocol", default="tcp", choices=("tcp", "http"),
                       help="wire protocol: ndjson TCP or the HTTP/SPARQL front end")
    serve.add_argument("--host", default="127.0.0.1", help="interface to bind")
    serve.add_argument("--port", type=int, default=7469, help="0 picks a free port")
    serve.add_argument("--workers", type=int, default=0,
                       help="worker processes for sharded multi-process serving "
                            "(0: in-process dispatch)")
    serve.add_argument("--replicas", type=int, default=0,
                       help="workers serving each graph (0: all --workers; "
                            "1: pure sharding, one owner per graph)")
    serve.add_argument("--max-pending", type=int, default=256,
                       help="admission bound: in-flight requests before 503/Retry-After")
    serve.add_argument("--max-batch", type=int, default=64,
                       help="coalescing window: max requests per batch-kernel call")
    serve.add_argument("--max-delay-ms", type=float, default=2.0,
                       help="coalescing window: max ms a request waits to batch")
    serve.add_argument("--no-coalesce", action="store_true",
                       help="serial per-request dispatch (baseline mode)")
    serve.add_argument("--mmap-dir", default=None,
                       help="serve from a saved artifact store (see build-artifacts): "
                            "the graph and its indices memory-map in read-only, and "
                            "pool workers share the same physical pages instead of "
                            "receiving a pickled graph")
    serve.add_argument("--pin-workers", action="store_true",
                       help="pin each pool worker to one CPU via os.sched_setaffinity "
                            "(no-op with a warning where unsupported)")
    serve.add_argument("--checkpoint", action="append", default=[], metavar="PATH",
                       help="register a model checkpoint (created with "
                            "`repro train --save-checkpoint`) so /predict can "
                            "serve its task; repeatable")
    serve.add_argument("--compact-every", type=int, default=0,
                       help="compact a live graph's delta log into a fresh base "
                            "once POST /triples has accumulated this many delta "
                            "rows (0: never compact)")
    serve.add_argument("--duration", type=float, default=None,
                       help="stop after this many seconds (default: run forever)")
    serve.add_argument("--remote-worker", action="append", default=[],
                       metavar="HOST:PORT",
                       help="add a standalone `repro serve-worker` at this address "
                            "to the pool as a remote shard (repeatable; requires "
                            "--mmap-dir so registration ships a store path, never "
                            "a pickled graph)")
    serve.add_argument("--placement", default="hash", choices=("hash", "load"),
                       help="graph->worker placement policy: deterministic blake2b "
                            "shard map (hash), or least-loaded by queue-depth EWMA "
                            "and reported worker memory (load)")
    serve.add_argument("--workers-min", type=int, default=0,
                       help="elastic lower bound on local pool workers "
                            "(0: elasticity off)")
    serve.add_argument("--workers-max", type=int, default=0,
                       help="elastic upper bound on local pool workers "
                            "(0: elasticity off)")
    serve.set_defaults(func=_cmd_serve)

    serve_worker = sub.add_parser(
        "serve-worker",
        help="run one standalone pool worker: answers the pool ops over "
             "ndjson TCP for a parent started with serve --remote-worker",
    )
    serve_worker.add_argument("--listen", required=True, metavar="HOST:PORT",
                              help="interface:port to bind (port 0 picks a free port)")
    serve_worker.add_argument("--mmap-dir", default=None,
                              help="pre-register the graph from this saved artifact "
                                   "store (see build-artifacts); parents can also "
                                   "register remotely, shipping only the store path")
    serve_worker.add_argument("--graph", default=None,
                              help="name to pre-register the --mmap-dir store under "
                                   "— match the parent's --dataset (default: the "
                                   "store's own graph name)")
    serve_worker.add_argument("--checkpoint", action="append", default=[],
                              metavar="PATH",
                              help="register a model checkpoint so /predict windows "
                                   "routed here can serve its task; repeatable")
    serve_worker.add_argument("--duration", type=float, default=None,
                              help="stop after this many seconds (default: run forever)")
    serve_worker.set_defaults(func=_cmd_serve_worker)

    bench_serve = sub.add_parser(
        "bench-serve",
        help="closed-loop load: serial baseline vs coalescing scheduler "
             "or worker pool (--workers)",
    )
    add_common(bench_serve)
    bench_serve.add_argument("--task", default="PV", help="task whose targets drive the load")
    bench_serve.add_argument("--requests", type=int, default=256,
                             help="total requests in the closed loop")
    bench_serve.add_argument("--concurrency", type=int, default=64,
                             help="closed-loop workers (requests in flight)")
    bench_serve.add_argument("--top-k", type=int, default=16,
                             help="PPR top-k per request")
    bench_serve.add_argument("--workers", type=int, default=0,
                             help="compare against a pool of this many worker "
                                  "processes (0: in-process coalescing)")
    bench_serve.add_argument("--max-batch", type=int, default=64,
                             help="coalescing window: max requests per batch-kernel call")
    bench_serve.add_argument("--max-delay-ms", type=float, default=2.0,
                             help="coalescing window: max ms a request waits to batch")
    bench_serve.add_argument("--mmap-dir", default=None,
                             help="pool workers memory-map this saved artifact store "
                                  "(see build-artifacts) instead of receiving a "
                                  "pickled graph; requires --workers")
    bench_serve.add_argument("--checkpoint", action="append", default=[], metavar="PATH",
                             help="benchmark /predict instead of extraction: drive "
                                  "a closed-loop inference load over these model "
                                  "checkpoints; repeatable")
    bench_serve.add_argument("--candidates", type=int, default=0,
                             help="/predict link-prediction candidate-pool cap "
                                  "(0: score the full tail-type pool)")
    bench_serve.add_argument("--paths", action="store_true",
                             help="benchmark the /paths op instead of extraction: "
                                  "closed-loop path enumeration over random "
                                  "(src, dst) target pairs vs the scalar-DFS "
                                  "serial baseline")
    bench_serve.add_argument("--max-hops", type=int, default=3,
                             help="/paths bound: maximum path length in hops")
    bench_serve.add_argument("--max-paths", type=int, default=64,
                             help="/paths bound: global cap on enumerated "
                                  "paths per pair")
    bench_serve.add_argument("--out", default=None,
                             help="write the comparison + metrics dump as JSON")
    bench_serve.set_defaults(func=_cmd_bench_serve)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point (``python -m repro ...``)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
