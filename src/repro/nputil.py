"""Flat-array helpers shared by the vectorized kernels.

Small primitives used by the batch PPR kernel and the SPARQL executor's
vectorized joins; kept dependency-free so any layer may import them.
"""

from __future__ import annotations

import numpy as np


def expand_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``[arange(s, s + c) for s, c in zip(starts, counts)]``.

    The multi-range gather primitive: turns per-row CSR offsets (or per-key
    run starts) plus lengths into one flat index array, without a Python
    loop.
    """
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    cumulative = np.cumsum(counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(cumulative - counts, counts)
    return np.repeat(starts, counts) + offsets


def splitmix64(values: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer over a ``uint64`` array (vectorized, wrapping).

    A counter-based pseudo-random mixer: statistically uniform output for
    structured input, so kernels can derive per-element randomness from
    *content* (ids, hops, salts) instead of consuming a sequential generator
    stream — which is what makes batched and scalar implementations agree
    bit-for-bit regardless of evaluation order.
    """
    z = np.asarray(values, dtype=np.uint64) + np.uint64(0x9E3779B97F4A7C15)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


def rank_within_sorted_groups(groups: np.ndarray) -> np.ndarray:
    """Per-element rank inside runs of equal values of a sorted array.

    ``[3, 3, 5, 5, 5, 9] -> [0, 1, 0, 1, 2, 0]``.
    """
    if groups.size == 0:
        return np.empty(0, dtype=np.int64)
    first = np.zeros(groups.size, dtype=np.int64)
    boundaries = np.flatnonzero(groups[1:] != groups[:-1]) + 1
    first[boundaries] = boundaries
    np.maximum.accumulate(first, out=first)
    return np.arange(groups.size, dtype=np.int64) - first
