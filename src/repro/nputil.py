"""Flat-array helpers shared by the vectorized kernels.

Small primitives used by the batch PPR kernel and the SPARQL executor's
vectorized joins; kept dependency-free so any layer may import them.
"""

from __future__ import annotations

import numpy as np


def expand_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``[arange(s, s + c) for s, c in zip(starts, counts)]``.

    The multi-range gather primitive: turns per-row CSR offsets (or per-key
    run starts) plus lengths into one flat index array, without a Python
    loop.
    """
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    cumulative = np.cumsum(counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(cumulative - counts, counts)
    return np.repeat(starts, counts) + offsets


def rank_within_sorted_groups(groups: np.ndarray) -> np.ndarray:
    """Per-element rank inside runs of equal values of a sorted array.

    ``[3, 3, 5, 5, 5, 9] -> [0, 1, 0, 1, 2, 0]``.
    """
    if groups.size == 0:
        return np.empty(0, dtype=np.int64)
    first = np.zeros(groups.size, dtype=np.int64)
    boundaries = np.flatnonzero(groups[1:] != groups[:-1]) + 1
    first[boundaries] = boundaries
    np.maximum.accumulate(first, out=first)
    return np.arange(groups.size, dtype=np.int64) - first
