"""Versioned, CRC-checked model checkpoints (the serving parameter artifact).

The artifact store (``repro/kg/store.py``) made the *graph* a first-class
on-disk artifact; this module does the same for *trained parameters* so the
serving layer can run GNN inference without retraining.  A checkpoint is
one self-contained file holding

* the model's ``state_dict`` (every parameter as a flat little-endian
  section, each with its own CRC-32),
* the task definition it was trained for (target nodes / labels / edges /
  split — enough to rebuild the exact task object on any process that has
  the graph), and
* the identity metadata the model registry routes on: architecture name,
  graph name, :class:`~repro.models.base.ModelConfig` hyper-parameters,
  construction kwargs, and the recorded training metrics.

Because every model derives its non-parameter state (embedding init,
SeHGNN metapath features, ShaDowSAINT ego scopes and sampling salt)
deterministically from ``config.rng()``, rebuilding the model from
``(graph, task, config)`` and loading the saved parameters reproduces the
trained model's predictions **bit for bit** — the property the serving
oracle tests assert.

File format (version 1), mirroring the graph store's layout::

    bytes 0..7    magic  b"TOSGCKP1"
    bytes 8..11   format version   (<u4)
    bytes 12..15  header length    (<u4, bytes of JSON that follow)
    bytes 16..19  header CRC-32    (<u4, over the JSON bytes)
    bytes 20..    JSON header      {"architecture", "graph", "config",
                                    "model_kwargs", "metrics", "task",
                                    "sections"}
    ...           zero padding to a 64-byte boundary
    ...           sections, each starting on a 64-byte boundary

Every structural failure mode — missing file, wrong magic, unsupported
version, corrupted header, truncated or bit-flipped parameter sections —
raises the structured :class:`CheckpointError`; a skewed-but-readable
state dict additionally fails loudly inside
:meth:`~repro.nn.layers.Module.load_state_dict`
(:class:`~repro.nn.layers.StateDictMismatch`), never as silent NaNs.
"""

from __future__ import annotations

import dataclasses
import json
import os
import zlib
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

_MAGIC = b"TOSGCKP1"
_FORMAT_VERSION = 1
_ALIGNMENT = 64
_PREAMBLE = len(_MAGIC) + 4 + 4 + 4  # magic + version + header length + CRC

#: Constructor kwargs worth persisting per architecture (everything else is
#: in ``ModelConfig``).  A checkpoint saved with non-default kwargs outside
#: this table still fails loudly at load time via ``StateDictMismatch``.
_SAVED_KWARGS = {
    "ShaDowSAINT": ("depth", "fanout"),
    "SeHGNN": ("feature_dim",),
    "PathScore": ("max_hops", "max_paths"),
}


class CheckpointError(RuntimeError):
    """A structured checkpoint failure (missing/corrupt/incompatible file)."""


def _align(offset: int) -> int:
    return (offset + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT


def _little_endian(array: np.ndarray) -> np.ndarray:
    array = np.ascontiguousarray(array)
    if array.dtype.byteorder == ">":  # pragma: no cover - big-endian hosts only
        array = array.astype(array.dtype.newbyteorder("<"))
    return array


def _task_header(task) -> Dict[str, object]:
    """The task's scalar fields (its arrays become sections)."""
    common = {
        "type": task.task_type,
        "name": task.name,
        "metric": task.metric,
        "kg_name": task.kg_name,
        "split_schema": task.split.schema,
    }
    if task.task_type == "NC":
        common.update(
            target_class=int(task.target_class), num_labels=int(task.num_labels)
        )
    elif task.task_type == "LP":
        common.update(
            predicate=int(task.predicate),
            head_class=int(task.head_class),
            tail_class=int(task.tail_class),
        )
    else:
        raise CheckpointError(
            f"cannot checkpoint a model for task type {task.task_type!r}; "
            "only NC and LP tasks serve through /predict"
        )
    return common


def _task_arrays(task) -> Dict[str, np.ndarray]:
    arrays = {
        "task/split/train": task.split.train,
        "task/split/valid": task.split.valid,
        "task/split/test": task.split.test,
    }
    if task.task_type == "NC":
        arrays["task/target_nodes"] = task.target_nodes
        arrays["task/labels"] = task.labels
    else:
        arrays["task/edges"] = task.edges
    return arrays


def _rebuild_task(header: Dict[str, object], arrays: Dict[str, np.ndarray]):
    from repro.core.tasks import (
        LinkPredictionTask,
        NodeClassificationTask,
        Split,
    )

    spec = header["task"]
    split = Split(
        train=np.asarray(arrays["task/split/train"], dtype=np.int64),
        valid=np.asarray(arrays["task/split/valid"], dtype=np.int64),
        test=np.asarray(arrays["task/split/test"], dtype=np.int64),
        schema=spec["split_schema"],
    )
    if spec["type"] == "NC":
        return NodeClassificationTask(
            name=spec["name"],
            target_class=int(spec["target_class"]),
            target_nodes=arrays["task/target_nodes"],
            labels=arrays["task/labels"],
            num_labels=int(spec["num_labels"]),
            split=split,
            metric=spec["metric"],
            kg_name=spec["kg_name"],
        )
    return LinkPredictionTask(
        name=spec["name"],
        predicate=int(spec["predicate"]),
        head_class=int(spec["head_class"]),
        tail_class=int(spec["tail_class"]),
        edges=arrays["task/edges"].reshape(-1, 2),
        split=split,
        metric=spec["metric"],
        kg_name=spec["kg_name"],
    )


@dataclass
class Checkpoint:
    """One loaded checkpoint: identity metadata + task + parameter arrays."""

    path: str
    architecture: str
    graph_name: str
    config: "object"  # ModelConfig (kept untyped to avoid an import cycle)
    model_kwargs: Dict[str, object]
    metrics: Dict[str, object]
    task: "object"  # NodeClassificationTask | LinkPredictionTask
    state: Dict[str, np.ndarray]

    @property
    def task_type(self) -> str:
        return self.task.task_type

    @property
    def key(self) -> tuple:
        """Registry identity: (task name, architecture)."""
        return (self.task.name, self.architecture)

    def build_model(self, kg):
        """Reconstruct the trained model over ``kg``, bit-identically.

        The architecture is rebuilt from ``(kg, task, config)`` — which
        regenerates all derived non-parameter state from ``config.rng()``
        exactly as training did — then the saved parameters replace the
        fresh ones.  Any skew raises
        :class:`~repro.nn.layers.StateDictMismatch`.
        """
        if kg.name != self.graph_name:
            raise CheckpointError(
                f"{self.path}: checkpoint was trained on graph "
                f"{self.graph_name!r} but is being loaded over {kg.name!r}"
            )
        model_cls = _architecture_class(self.task_type, self.architecture)
        model = model_cls(kg, self.task, self.config, **self.model_kwargs)
        model.load_state_dict(self.state)
        model.eval()
        return model


def _architecture_class(task_type: str, architecture: str):
    from repro.models import (
        GraphSAINTClassifier,
        LHGNNPredictor,
        MorsEPredictor,
        PathScorePredictor,
        RGCNLinkPredictor,
        RGCNNodeClassifier,
        SeHGNNClassifier,
        ShaDowSAINTClassifier,
    )

    classes = {
        ("NC", "RGCN"): RGCNNodeClassifier,
        ("NC", "GraphSAINT"): GraphSAINTClassifier,
        ("NC", "ShaDowSAINT"): ShaDowSAINTClassifier,
        ("NC", "SeHGNN"): SeHGNNClassifier,
        ("LP", "RGCN"): RGCNLinkPredictor,
        ("LP", "MorsE"): MorsEPredictor,
        ("LP", "LHGNN"): LHGNNPredictor,
        ("LP", "PathScore"): PathScorePredictor,
    }
    model_cls = classes.get((task_type, architecture))
    if model_cls is None:
        known = sorted({arch for _, arch in classes})
        raise CheckpointError(
            f"unknown architecture {architecture!r} for task type {task_type!r}; "
            f"this build knows {known}"
        )
    return model_cls


def save_checkpoint(
    model,
    path: str,
    architecture: Optional[str] = None,
    model_kwargs: Optional[Dict[str, object]] = None,
    metrics: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Write ``model``'s trained state as one checkpoint file, atomically.

    ``model`` must carry the repo-wide model attributes (``kg``, ``task``,
    ``config``, class-level ``name``); construction kwargs the architecture
    needs to rebuild (ShaDowSAINT depth/fanout, SeHGNN feature_dim) are
    captured automatically unless overridden via ``model_kwargs``.
    Returns a small manifest dict (``path`` / ``nbytes`` / ``parameters``).
    """
    architecture = architecture or getattr(model, "name", type(model).__name__)
    kwargs = dict(model_kwargs or {})
    for attribute in _SAVED_KWARGS.get(architecture, ()):
        if attribute not in kwargs and hasattr(model, attribute):
            kwargs[attribute] = getattr(model, attribute)

    arrays: Dict[str, np.ndarray] = {}
    for name, array in _task_arrays(model.task).items():
        arrays[name] = _little_endian(np.asarray(array))
    state = model.state_dict()
    for name, array in state.items():
        arrays[f"param/{name}"] = _little_endian(np.asarray(array))

    sections: Dict[str, Dict[str, object]] = {}
    offset = 0
    for name, array in arrays.items():
        offset = _align(offset)
        sections[name] = {
            "dtype": array.dtype.str,
            "shape": list(array.shape),
            "offset": offset,
            "nbytes": int(array.nbytes),
            "crc32": zlib.crc32(array.tobytes()),
        }
        offset += array.nbytes

    header = {
        "architecture": architecture,
        "graph": model.kg.name,
        "config": dataclasses.asdict(model.config),
        "model_kwargs": kwargs,
        "metrics": dict(metrics or {}),
        "task": _task_header(model.task),
        "sections": sections,
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")

    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    temp_path = path + ".tmp"
    with open(temp_path, "wb") as handle:
        handle.write(_MAGIC)
        preamble_words = [_FORMAT_VERSION, len(header_bytes), zlib.crc32(header_bytes)]
        handle.write(np.asarray(preamble_words, dtype="<u4").tobytes())
        handle.write(header_bytes)
        position = _PREAMBLE + len(header_bytes)
        data_start = _align(position)
        handle.write(b"\x00" * (data_start - position))
        position = 0  # now relative to data_start
        for name, array in arrays.items():
            target = sections[name]["offset"]
            handle.write(b"\x00" * (target - position))
            handle.write(array.tobytes())
            position = target + array.nbytes
    os.replace(temp_path, path)
    return {
        "path": path,
        "nbytes": os.path.getsize(path),
        "parameters": int(sum(a.size for a in state.values())),
    }


def _parse_header(raw: bytes, path: str) -> tuple:
    """Validate preamble + header; returns ``(header, data_start)``."""
    if len(raw) < _PREAMBLE:
        raise CheckpointError(
            f"{path}: file is {len(raw)} bytes, shorter than the "
            f"{_PREAMBLE}-byte preamble (truncated?)"
        )
    if raw[: len(_MAGIC)] != _MAGIC:
        raise CheckpointError(
            f"{path}: bad magic {raw[: len(_MAGIC)]!r}; not a TOSG checkpoint file"
        )
    version, header_length, header_crc = np.frombuffer(
        raw, dtype="<u4", count=3, offset=len(_MAGIC)
    )
    if int(version) != _FORMAT_VERSION:
        raise CheckpointError(
            f"{path}: checkpoint format version {int(version)} is not supported "
            f"(this build reads version {_FORMAT_VERSION}); re-save with "
            "`repro train --save-checkpoint`"
        )
    if _PREAMBLE + int(header_length) > len(raw):
        raise CheckpointError(
            f"{path}: header overruns the file ({int(header_length)} header bytes "
            f"in a {len(raw)}-byte file); truncated checkpoint"
        )
    header_bytes = raw[_PREAMBLE : _PREAMBLE + int(header_length)]
    if zlib.crc32(header_bytes) != int(header_crc):
        raise CheckpointError(f"{path}: header checksum mismatch; corrupted checkpoint")
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"{path}: unreadable checkpoint header: {exc}") from exc
    return header, _align(_PREAMBLE + int(header_length))


def _read_file(path: str) -> bytes:
    if not os.path.exists(path):
        raise CheckpointError(
            f"no checkpoint at {path}; create one with `repro train --save-checkpoint`"
        )
    with open(path, "rb") as handle:
        return handle.read()


def read_checkpoint_meta(path: str) -> Dict[str, object]:
    """Identity metadata only, O(header) — no parameter bytes are read.

    The model registry and the pool parent route on this (architecture,
    task, recorded metric, parameter count) without paying a full load.
    """
    raw = _read_file(path)
    header, _ = _parse_header(raw, path)
    parameters = sum(
        int(np.prod(spec["shape"], dtype=np.int64)) if spec["shape"] else 1
        for name, spec in header["sections"].items()
        if name.startswith("param/")
    )
    return {
        "path": path,
        "architecture": header["architecture"],
        "graph": header["graph"],
        "task_name": header["task"]["name"],
        "task_type": header["task"]["type"],
        "metrics": header.get("metrics", {}),
        "num_parameters": int(parameters),
        "nbytes": len(raw),
    }


def load_checkpoint(path: str) -> Checkpoint:
    """Read, verify and decode a checkpoint file.

    Every section is bounds-checked against the file and verified against
    its recorded CRC-32, so a truncated or bit-flipped parameter block is a
    :class:`CheckpointError` naming the section — never a silently wrong
    prediction.
    """
    from repro.models.base import ModelConfig

    raw = _read_file(path)
    header, data_start = _parse_header(raw, path)

    arrays: Dict[str, np.ndarray] = {}
    for name, spec in header["sections"].items():
        dtype = np.dtype(spec["dtype"])
        count = int(np.prod(spec["shape"], dtype=np.int64)) if spec["shape"] else 1
        expected = count * dtype.itemsize
        if expected != int(spec["nbytes"]):
            raise CheckpointError(
                f"{path}: section {name!r} is internally inconsistent "
                f"({spec['nbytes']} bytes for shape {spec['shape']} {dtype})"
            )
        start = data_start + int(spec["offset"])
        end = start + expected
        if end > len(raw):
            raise CheckpointError(
                f"{path}: section {name!r} ends at byte {end} but the file has "
                f"only {len(raw)}; truncated checkpoint"
            )
        payload = raw[start:end]
        if zlib.crc32(payload) != int(spec["crc32"]):
            raise CheckpointError(
                f"{path}: section {name!r} checksum mismatch; corrupted checkpoint"
            )
        arrays[name] = np.frombuffer(payload, dtype=dtype).reshape(spec["shape"])

    try:
        config = ModelConfig(**header["config"])
        task = _rebuild_task(header, arrays)
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(f"{path}: inconsistent checkpoint contents: {exc}") from exc
    state = {
        name[len("param/") :]: array
        for name, array in arrays.items()
        if name.startswith("param/")
    }
    return Checkpoint(
        path=path,
        architecture=header["architecture"],
        graph_name=header["graph"],
        config=config,
        model_kwargs=dict(header.get("model_kwargs", {})),
        metrics=dict(header.get("metrics", {})),
        task=task,
        state=state,
    )
