"""Loss functions and evaluation helpers.

Cross-entropy for single-label node classification (Definition 2.2),
margin-ranking and binary-cross-entropy losses for the link-prediction
scorers (TransE / DistMult style), and plain accuracy.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor


def nll_loss(log_probs: Tensor, labels: np.ndarray) -> Tensor:
    """Mean negative log likelihood of ``labels`` under ``log_probs``."""
    labels = np.asarray(labels, dtype=np.int64)
    n = log_probs.shape[0]
    if n == 0:
        return Tensor(0.0)
    picked = log_probs[np.arange(n), labels]
    return -picked.mean()


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Softmax cross-entropy (numerically stable via log-softmax)."""
    return nll_loss(logits.log_softmax(axis=-1), labels)


def bce_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Binary cross-entropy over raw scores.

    Uses the stable formulation ``max(x, 0) - x*y + log(1 + exp(-|x|))``
    composed from autograd primitives.
    """
    targets_t = Tensor(np.asarray(targets, dtype=np.float64))
    zeros = Tensor(np.zeros_like(logits.data))
    # max(x, 0) == relu(x); log(1+exp(-|x|)) via softplus of -|x|.
    positive_part = logits.relu()
    softplus = ((-logits.abs()).exp() + 1.0).log()
    loss = positive_part - logits * targets_t + softplus
    return loss.mean()


def margin_ranking_loss(
    positive_scores: Tensor, negative_scores: Tensor, margin: float = 1.0
) -> Tensor:
    """Mean ``max(0, margin - positive + negative)``.

    Scores follow the "higher is better" convention; distance-based models
    (TransE) should pass negated distances.
    """
    gap = negative_scores - positive_scores + margin
    return gap.relu().mean()


def accuracy(logits_or_labels: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of correct predictions.

    Accepts either a 2-D logit matrix (argmax is taken) or a 1-D array of
    predicted labels.
    """
    predictions = np.asarray(logits_or_labels)
    labels = np.asarray(labels)
    if predictions.ndim == 2:
        predictions = predictions.argmax(axis=1)
    if len(labels) == 0:
        return 0.0
    return float((predictions == labels).mean())
