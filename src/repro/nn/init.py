"""Weight initialisation.

The paper initialises node embeddings "randomly using Xavier weight"
(Section V-A3); layers use the matching Glorot fan-in/fan-out bounds.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) < 1:
        return 1, 1
    if len(shape) == 1:
        return shape[0], shape[0]
    return shape[0], shape[1]


def xavier_uniform(
    shape: Tuple[int, ...], rng: np.random.Generator, gain: float = 1.0
) -> np.ndarray:
    """Glorot/Xavier uniform: ``U(-a, a)`` with ``a = gain * sqrt(6/(fan_in+fan_out))``."""
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float64)


def xavier_normal(
    shape: Tuple[int, ...], rng: np.random.Generator, gain: float = 1.0
) -> np.ndarray:
    """Glorot/Xavier normal: ``N(0, gain^2 * 2/(fan_in+fan_out))``."""
    fan_in, fan_out = _fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape).astype(np.float64)
