"""Numpy neural-network substrate.

The paper's HGNN methods are built on PyTorch/PyG; this package supplies
the equivalent pieces from scratch: a reverse-mode autograd
(:mod:`repro.nn.tensor`), sparse message-passing and loss functionals
(:mod:`repro.nn.functional`), module/layer abstractions
(:mod:`repro.nn.layers`), optimizers (:mod:`repro.nn.optim`) and Xavier
initialisation (:mod:`repro.nn.init`).
"""

from repro.nn.tensor import Tensor, no_grad, is_grad_enabled
from repro.nn.functional import (
    cross_entropy,
    nll_loss,
    bce_with_logits,
    margin_ranking_loss,
    accuracy,
)
from repro.nn.layers import (
    Module,
    Linear,
    Embedding,
    Dropout,
    ModuleList,
    Parameter,
    StateDictMismatch,
)
from repro.nn.optim import SGD, Adam
from repro.nn.init import xavier_uniform, xavier_normal

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "cross_entropy",
    "nll_loss",
    "bce_with_logits",
    "margin_ranking_loss",
    "accuracy",
    "Module",
    "Linear",
    "Embedding",
    "Dropout",
    "ModuleList",
    "Parameter",
    "StateDictMismatch",
    "SGD",
    "Adam",
    "xavier_uniform",
    "xavier_normal",
]
