"""Reverse-mode automatic differentiation over numpy arrays.

A deliberately small tape-based autograd in the micrograd style, extended
with the operations heterogeneous GNNs need: sparse-matrix × dense-matrix
products (message passing), row gathers (embedding lookup / node selection),
index-add scatters (readout pooling), log-softmax, and the usual
elementwise/broadcast arithmetic.

Only :class:`Tensor` leaves created with ``requires_grad=True`` accumulate
gradients; scipy sparse matrices are always treated as constants (graph
structure is not learned).
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

# Grad mode is per-thread (as in torch): the serving layer runs inference
# (predict_logits under no_grad) on asyncio.to_thread workers concurrently
# with training elsewhere, and a process-global flag would let one
# thread's no_grad exit clobber another's mode.
_GRAD_STATE = threading.local()


def is_grad_enabled() -> bool:
    """Whether new operations are recorded on the tape (this thread)."""
    return getattr(_GRAD_STATE, "enabled", True)


@contextlib.contextmanager
def no_grad():
    """Context manager disabling tape recording (inference mode)."""
    previous = is_grad_enabled()
    _GRAD_STATE.enabled = False
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum out prepended axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


ArrayLike = Union["Tensor", np.ndarray, float, int]


class Tensor:
    """A numpy array with an optional gradient tape entry."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        name: Optional[str] = None,
    ):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = requires_grad and is_grad_enabled()
        self._backward = _backward
        self._parents = _parents if self.requires_grad or _parents else ()
        self.name = name

    # -- basics --

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = ", grad" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag}, name={self.name})"

    def numpy(self) -> np.ndarray:
        """The underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def zero_grad(self) -> None:
        self.grad = None

    # -- graph construction helper --

    @staticmethod
    def _lift(value: ArrayLike) -> "Tensor":
        if isinstance(value, Tensor):
            return value
        return Tensor(value)

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        if not requires:
            return Tensor(data)
        return Tensor(data, requires_grad=True, _parents=tuple(parents), _backward=backward)

    # -- backward pass --

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded tape."""
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        topo: List[Tensor] = []
        visited: set[int] = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))
        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # -- arithmetic --

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = Tensor._lift(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.data.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-Tensor._lift(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor._lift(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = Tensor._lift(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.data.shape))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = Tensor._lift(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.data.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data**2), other.data.shape)
                )

        return Tensor._make(out_data, (self, other), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = Tensor._lift(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad @ other.data.T)
            if other.requires_grad:
                other._accumulate(self.data.T @ grad)

        return Tensor._make(out_data, (self, other), backward)

    # -- shape ops --

    def reshape(self, *shape: int) -> "Tensor":
        out_data = self.data.reshape(*shape)
        original = self.data.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return Tensor._make(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        out_data = self.data.T

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.T)

        return Tensor._make(out_data, (self,), backward)

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, key, grad)
                self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    # -- reductions --

    def sum(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            expanded = grad
            if axis is not None and not keepdims:
                expanded = np.expand_dims(grad, axis)
            self._accumulate(np.broadcast_to(expanded, self.data.shape).copy())

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # -- elementwise nonlinearities --

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = np.where(mask, self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -50.0, 50.0)))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward)

    def exp(self) -> "Tensor":
        out_data = np.exp(np.clip(self.data, -700.0, 700.0))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * sign)

        return Tensor._make(out_data, (self,), backward)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out_data = shifted - log_sum

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                softmax = np.exp(out_data)
                self._accumulate(grad - softmax * grad.sum(axis=axis, keepdims=True))

        return Tensor._make(out_data, (self,), backward)

    def softmax(self, axis: int = -1) -> "Tensor":
        return self.log_softmax(axis=axis).exp()

    # -- structured ops for GNNs --

    def gather_rows(self, index: np.ndarray) -> "Tensor":
        """Select rows ``self[index]`` with scatter-add backward."""
        index = np.asarray(index, dtype=np.int64)
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    def index_add(self, index: np.ndarray, num_segments: int) -> "Tensor":
        """Scatter-sum rows into ``num_segments`` buckets: ``out[index[i]] += self[i]``."""
        index = np.asarray(index, dtype=np.int64)
        out_shape = (num_segments,) + self.data.shape[1:]
        out_data = np.zeros(out_shape, dtype=self.data.dtype)
        np.add.at(out_data, index, self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad[index])

        return Tensor._make(out_data, (self,), backward)

    def dropout(self, rate: float, rng: np.random.Generator, training: bool = True) -> "Tensor":
        """Inverted dropout; identity when not training or rate == 0."""
        if not training or rate <= 0.0:
            return self
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        mask = (rng.random(self.data.shape) >= rate) / (1.0 - rate)
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)


def spmm(matrix: sp.spmatrix, dense: Tensor) -> Tensor:
    """Sparse @ dense message passing; the sparse matrix is a constant.

    Forward: ``A @ X``; backward: ``dX = Aᵀ @ dY``.
    """
    matrix = matrix.tocsr()
    out_data = matrix @ dense.data

    def backward(grad: np.ndarray) -> None:
        if dense.requires_grad:
            dense._accumulate(matrix.T @ grad)

    return Tensor._make(np.asarray(out_data), (dense,), backward)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate along ``axis``, splitting gradients on the way back."""
    tensors = [Tensor._lift(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(lo, hi)
                tensor._accumulate(grad[tuple(slicer)])

    return Tensor._make(out_data, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack along a new ``axis`` (gradients un-stack)."""
    tensors = [Tensor._lift(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        moved = np.moveaxis(grad, axis, 0)
        for i, tensor in enumerate(tensors):
            if tensor.requires_grad:
                tensor._accumulate(moved[i])

    return Tensor._make(out_data, tuple(tensors), backward)
