"""Optimizers: SGD (with momentum) and Adam.

Adam follows Kingma & Ba with bias correction — the default optimizer of
every GNN method in the paper's evaluation.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.nn.layers import Parameter


class Optimizer:
    """Base: holds the parameter list and clears gradients."""

    def __init__(self, parameters: List[Parameter]):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer needs at least one parameter")

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: List[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for parameter in self.parameters:
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            if self.momentum:
                velocity = self._velocity.get(id(parameter))
                if velocity is None:
                    velocity = np.zeros_like(parameter.data)
                velocity = self.momentum * velocity + grad
                self._velocity[id(parameter)] = velocity
                grad = velocity
            parameter.data = parameter.data - self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias-corrected moment estimates."""

    def __init__(
        self,
        parameters: List[Parameter],
        lr: float = 0.01,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        self._step += 1
        bias1 = 1.0 - self.beta1**self._step
        bias2 = 1.0 - self.beta2**self._step
        for parameter in self.parameters:
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            key = id(parameter)
            m = self._m.get(key)
            v = self._v.get(key)
            if m is None:
                m = np.zeros_like(parameter.data)
                v = np.zeros_like(parameter.data)
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad**2
            self._m[key] = m
            self._v[key] = v
            m_hat = m / bias1
            v_hat = v / bias2
            parameter.data = parameter.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
