"""Module / layer abstractions.

A minimal ``nn.Module`` equivalent: parameter registration by attribute
assignment, recursive ``parameters()``, train/eval mode propagation, and
the handful of layers the HGNN models need (Linear, Embedding, Dropout,
ModuleList).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.nn.init import xavier_uniform
from repro.nn.tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor (always requires grad)."""

    def __init__(self, data, name: Optional[str] = None):
        super().__init__(data, requires_grad=True, name=name)
        # Parameters must stay trainable even when constructed inside a
        # no_grad() block (e.g. lazy layer building during evaluation).
        self.requires_grad = True


class StateDictMismatch(KeyError, ValueError):
    """A checkpoint's state dict does not fit the model it is loaded into.

    Raised by :meth:`Module.load_state_dict` *before any parameter is
    touched*, so a skewed checkpoint can never half-apply.  The offending
    keys are carried structurally (``missing`` / ``unexpected`` names,
    ``mismatched`` ``(name, expected_shape, got_shape)`` triples, all
    sorted) and spelled out in the message.  Subclasses both ``KeyError``
    (key skew) and ``ValueError`` (shape skew) so existing handlers keep
    working.
    """

    def __init__(
        self,
        message: str,
        missing: Sequence[str] = (),
        unexpected: Sequence[str] = (),
        mismatched: Sequence[tuple] = (),
    ):
        super().__init__(message)
        self.missing = tuple(missing)
        self.unexpected = tuple(unexpected)
        self.mismatched = tuple(mismatched)

    def __str__(self) -> str:  # KeyError.__str__ would repr-quote the message
        return self.args[0]


class Module:
    """Base class with attribute-based parameter/submodule registration."""

    def __init__(self):
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # -- parameter access --

    def parameters(self) -> List[Parameter]:
        """All parameters of this module and its submodules (depth-first)."""
        found: List[Parameter] = list(self._parameters.values())
        for module in self._modules.values():
            found.extend(module.parameters())
        return found

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, parameter in self._parameters.items():
            yield f"{prefix}{name}", parameter
        for module_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{module_name}.")

    def num_parameters(self) -> int:
        """Total scalar parameter count (the paper's model-size metric)."""
        return int(sum(p.data.size for p in self.parameters()))

    def parameter_nbytes(self) -> int:
        """Bytes held by parameters (for modeled-memory accounting)."""
        return int(sum(p.data.nbytes for p in self.parameters()))

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    # -- train / eval mode --

    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # -- state dict (save/load for tests and checkpoints) --

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: parameter.data.copy() for name, parameter in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Copy ``state`` into the model's parameters, all-or-nothing.

        Every key and every shape is validated *before* the first
        assignment; any skew raises :class:`StateDictMismatch` naming the
        offending keys, so a stale or foreign checkpoint fails loudly
        instead of half-applying and predicting garbage.
        """
        own = dict(self.named_parameters())
        missing = sorted(set(own) - set(state))
        unexpected = sorted(set(state) - set(own))
        mismatched = []
        for name in sorted(set(own) & set(state)):
            expected = tuple(own[name].data.shape)
            got = tuple(np.asarray(state[name]).shape)
            if expected != got:
                mismatched.append((name, expected, got))
        if missing or unexpected or mismatched:
            parts = []
            if missing:
                parts.append(f"missing keys: {', '.join(missing)}")
            if unexpected:
                parts.append(f"unexpected keys: {', '.join(unexpected)}")
            if mismatched:
                shapes = ", ".join(
                    f"{name} expects {expected}, got {got}"
                    for name, expected, got in mismatched
                )
                parts.append(f"shape mismatches: {shapes}")
            raise StateDictMismatch(
                "state dict mismatch — " + "; ".join(parts),
                missing=missing,
                unexpected=unexpected,
                mismatched=mismatched,
            )
        for name, parameter in own.items():
            parameter.data = np.asarray(state[name]).copy()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


class Linear(Module):
    """Affine map ``y = x W + b`` with Xavier-uniform weights."""

    def __init__(
        self, in_features: int, out_features: int, rng: np.random.Generator, bias: bool = True
    ):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(xavier_uniform((in_features, out_features), rng), name="weight")
        self.bias = Parameter(np.zeros(out_features), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """A learnable lookup table with Xavier-uniform rows."""

    def __init__(self, num_embeddings: int, dim: int, rng: np.random.Generator):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(xavier_uniform((num_embeddings, dim), rng), name="embedding")

    def forward(self, index: np.ndarray) -> Tensor:
        return self.weight.gather_rows(np.asarray(index, dtype=np.int64))

    def all(self) -> Tensor:
        """The whole table as a tensor (full-batch models)."""
        return self.weight


class Dropout(Module):
    """Inverted dropout driven by the module's train/eval mode."""

    def __init__(self, rate: float, rng: np.random.Generator):
        super().__init__()
        self.rate = rate
        self.rng = rng

    def forward(self, x: Tensor) -> Tensor:
        return x.dropout(self.rate, self.rng, training=self.training)


class ModuleList(Module):
    """An indexable container whose items register as submodules."""

    def __init__(self, modules: Optional[Sequence[Module]] = None):
        super().__init__()
        self._items: List[Module] = []
        if modules:
            for module in modules:
                self.append(module)

    def append(self, module: Module) -> None:
        index = len(self._items)
        self._items.append(module)
        self._modules[str(index)] = module

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def forward(self, *args, **kwargs):  # pragma: no cover - container only
        raise RuntimeError("ModuleList is a container; call its items instead")
