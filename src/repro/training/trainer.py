"""Training loops with convergence tracing.

Models plug in through two small duck-typed protocols:

* **NC models** implement ``train_epoch(rng) -> float`` and
  ``predict_logits() -> np.ndarray`` (logits for every task target
  position);
* **LP models** implement ``train_epoch(rng) -> float``,
  ``score_pairs(heads, tails) -> np.ndarray`` (higher = better) and
  ``candidate_pool() -> np.ndarray`` (tail-candidate node ids).

The trainer produces the quantities the paper reports: the metric, wall
training time, a per-epoch (time, metric) convergence trace (Figure 9),
inference time and model size (Table IV), and the peak modeled memory of
the attached :class:`~repro.training.resources.ResourceMeter`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.tasks import LinkPredictionTask, NodeClassificationTask
from repro.nn.functional import accuracy
from repro.nn.tensor import no_grad
from repro.training.metrics import hits_at_k, rank_of_true
from repro.training.resources import ResourceMeter


@dataclass
class TrainConfig:
    """Hyper-parameters shared by all trainer runs."""

    epochs: int = 30
    eval_every: int = 1
    patience: Optional[int] = None  # epochs without valid improvement
    seed: int = 0
    hits_k: int = 10
    num_eval_negatives: int = 50
    max_eval_examples: Optional[int] = None  # subsample heavy LP evals


@dataclass
class TracePoint:
    """One convergence-trace sample (Figure 9 plots metric vs. seconds)."""

    epoch: int
    seconds: float
    train_loss: float
    valid_metric: float


@dataclass
class TrainResult:
    """Everything measured about one training run."""

    test_metric: float
    valid_metric: float
    train_seconds: float
    inference_seconds: float
    epochs_run: int
    num_parameters: int
    peak_memory_bytes: int
    trace: List[TracePoint] = field(default_factory=list)
    metric_name: str = "accuracy"

    def summary(self) -> str:
        return (
            f"{self.metric_name}={self.test_metric:.3f} "
            f"time={self.train_seconds:.1f}s mem={self.peak_memory_bytes / 1e6:.1f}MB "
            f"params={self.num_parameters} epochs={self.epochs_run}"
        )


def _evaluate_nc(model, task: NodeClassificationTask, positions: np.ndarray) -> float:
    if len(positions) == 0:
        return 0.0
    with no_grad():
        logits = model.predict_logits()
    return accuracy(logits[positions], task.labels[positions])


def train_node_classifier(
    model,
    task: NodeClassificationTask,
    config: TrainConfig,
    meter: Optional[ResourceMeter] = None,
) -> TrainResult:
    """Train an NC model and measure the paper's reported quantities."""
    rng = np.random.default_rng(config.seed)
    trace: List[TracePoint] = []
    best_valid = -np.inf
    stale = 0
    start = time.perf_counter()
    epochs_run = 0
    for epoch in range(1, config.epochs + 1):
        loss = model.train_epoch(rng)
        epochs_run = epoch
        if epoch % config.eval_every == 0:
            valid = _evaluate_nc(model, task, task.split.valid)
            trace.append(
                TracePoint(epoch, time.perf_counter() - start, float(loss), valid)
            )
            if valid > best_valid + 1e-9:
                best_valid = valid
                stale = 0
            else:
                stale += 1
            if config.patience is not None and stale > config.patience:
                break
    train_seconds = time.perf_counter() - start

    infer_start = time.perf_counter()
    test_metric = _evaluate_nc(model, task, task.split.test)
    inference_seconds = time.perf_counter() - infer_start

    return TrainResult(
        test_metric=test_metric,
        valid_metric=max(best_valid, 0.0),
        train_seconds=train_seconds,
        inference_seconds=inference_seconds,
        epochs_run=epochs_run,
        num_parameters=model.num_parameters(),
        peak_memory_bytes=meter.peak_bytes if meter is not None else 0,
        trace=trace,
        metric_name="accuracy",
    )


def _sample_eval_pairs(
    edges: np.ndarray, pool: np.ndarray, config: TrainConfig, rng: np.random.Generator
):
    """Draw per-edge negative tails; returns flat (heads, tails, counts).

    The negatives for edge ``i`` occupy one contiguous segment of the flat
    arrays, with the true tail first.  One ``rng.integers`` call draws the
    whole ``(edges, negatives)`` index block; PCG64 fills it in C order, so
    row ``i`` holds exactly the words the scalar evaluator's ``i``-th
    ``rng.choice(pool, size=m)`` call would have drawn — same candidate
    sets, same generator state afterwards (asserted against
    :func:`_sample_eval_pairs_scalar` in the regression suite).
    """
    num_draws = min(config.num_eval_negatives, len(pool))
    true_tails = np.asarray(edges[:, 1], dtype=np.int64)
    draws = pool[rng.integers(0, len(pool), size=(len(edges), num_draws))]
    keep = draws != true_tails[:, None]
    counts = keep.sum(axis=1) + 1  # +1 for the true tail leading each segment
    starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
    heads = np.repeat(np.asarray(edges[:, 0], dtype=np.int64), counts)
    tails = np.empty(int(counts.sum()), dtype=np.int64)
    tails[starts] = true_tails
    # A kept draw lands right after the draws kept before it in its row:
    # its running keep-count doubles as the 1-based offset past the true
    # tail, preserving draw order inside every segment.
    tails[(starts[:, None] + np.cumsum(keep, axis=1))[keep]] = draws[keep]
    return heads, tails, counts


def _sample_eval_pairs_scalar(
    edges: np.ndarray, pool: np.ndarray, config: TrainConfig, rng: np.random.Generator
):
    """Reference per-edge sampler (oracle for :func:`_sample_eval_pairs`).

    Kept verbatim so the regression suite can assert the one-shot block
    draw reproduces it bit-for-bit from the same generator state.
    """
    heads_parts = []
    tails_parts = []
    counts = np.empty(len(edges), dtype=np.int64)
    for i, (head, true_tail) in enumerate(edges):
        negatives = rng.choice(pool, size=min(config.num_eval_negatives, len(pool)))
        negatives = negatives[negatives != true_tail]
        heads_parts.append(np.full(len(negatives) + 1, head, dtype=np.int64))
        tails_parts.append(np.concatenate([[true_tail], negatives]).astype(np.int64))
        counts[i] = len(negatives) + 1
    return np.concatenate(heads_parts), np.concatenate(tails_parts), counts


def _evaluate_lp(
    model,
    task: LinkPredictionTask,
    positions: np.ndarray,
    config: TrainConfig,
    rng: np.random.Generator,
) -> float:
    """Hits@k of the true tail among sampled negative tails.

    One batched ``score_pairs`` call covers every (edge, candidate) pair;
    per-edge pessimistic ranks then come from a segmented ``>=`` reduction.
    Bit-identical to :func:`_evaluate_lp_scalar` (kept below as the
    regression oracle): scoring is per-pair so batching cannot change the
    values, and comparisons happen in float64 exactly as
    :func:`~repro.training.metrics.rank_of_true` does.
    """
    if len(positions) == 0:
        return 0.0
    if config.max_eval_examples is not None and len(positions) > config.max_eval_examples:
        positions = rng.choice(positions, size=config.max_eval_examples, replace=False)
    pool = model.candidate_pool()
    if len(pool) <= 1:
        return 0.0
    edges = task.edges[positions]
    heads, tails, counts = _sample_eval_pairs(edges, pool, config, rng)
    with no_grad():
        scores = np.asarray(model.score_pairs(heads, tails), dtype=np.float64)
    starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
    true_scores = scores[starts]
    # Pessimistic rank = 1 + #{negatives scoring >= true}.  Comparing every
    # segment member against its segment's true score also compares the true
    # tail with itself (>= is True), which supplies exactly that +1.
    ranks = np.add.reduceat(scores >= np.repeat(true_scores, counts), starts)
    return hits_at_k(ranks.astype(np.int64), config.hits_k)


def _evaluate_lp_scalar(
    model,
    task: LinkPredictionTask,
    positions: np.ndarray,
    config: TrainConfig,
    rng: np.random.Generator,
) -> float:
    """Reference one-edge-at-a-time evaluator (oracle for :func:`_evaluate_lp`).

    Kept verbatim so the regression suite can assert the vectorized path
    reproduces it bit-for-bit from the same generator state.
    """
    if len(positions) == 0:
        return 0.0
    if config.max_eval_examples is not None and len(positions) > config.max_eval_examples:
        positions = rng.choice(positions, size=config.max_eval_examples, replace=False)
    pool = model.candidate_pool()
    if len(pool) <= 1:
        return 0.0
    edges = task.edges[positions]
    ranks = np.empty(len(edges), dtype=np.int64)
    with no_grad():
        for i, (head, true_tail) in enumerate(edges):
            negatives = rng.choice(pool, size=min(config.num_eval_negatives, len(pool)))
            negatives = negatives[negatives != true_tail]
            heads = np.full(len(negatives) + 1, head, dtype=np.int64)
            tails = np.concatenate([[true_tail], negatives]).astype(np.int64)
            scores = model.score_pairs(heads, tails)
            ranks[i] = rank_of_true(float(scores[0]), scores[1:])
    return hits_at_k(ranks, config.hits_k)


def train_link_predictor(
    model,
    task: LinkPredictionTask,
    config: TrainConfig,
    meter: Optional[ResourceMeter] = None,
) -> TrainResult:
    """Train an LP model; metric is Hits@k against sampled negatives."""
    rng = np.random.default_rng(config.seed)
    eval_rng = np.random.default_rng(config.seed + 1)
    trace: List[TracePoint] = []
    best_valid = -np.inf
    stale = 0
    start = time.perf_counter()
    epochs_run = 0
    for epoch in range(1, config.epochs + 1):
        loss = model.train_epoch(rng)
        epochs_run = epoch
        if epoch % config.eval_every == 0:
            valid = _evaluate_lp(model, task, task.split.valid, config, eval_rng)
            trace.append(
                TracePoint(epoch, time.perf_counter() - start, float(loss), valid)
            )
            if valid > best_valid + 1e-9:
                best_valid = valid
                stale = 0
            else:
                stale += 1
            if config.patience is not None and stale > config.patience:
                break
    train_seconds = time.perf_counter() - start

    infer_start = time.perf_counter()
    test_metric = _evaluate_lp(model, task, task.split.test, config, eval_rng)
    inference_seconds = time.perf_counter() - infer_start

    return TrainResult(
        test_metric=test_metric,
        valid_metric=max(best_valid, 0.0),
        train_seconds=train_seconds,
        inference_seconds=inference_seconds,
        epochs_run=epochs_run,
        num_parameters=model.num_parameters(),
        peak_memory_bytes=meter.peak_bytes if meter is not None else 0,
        trace=trace,
        metric_name=f"hits@{config.hits_k}",
    )
