"""Ranking metrics for link prediction.

The paper evaluates LP tasks with Hits@10 "following SOTA methods".  Ranks
are computed against sampled negative candidates (the standard protocol
when full-entity ranking is infeasible); ties are resolved pessimistically
(true entity ranked after equal-scoring negatives) so reported numbers
never benefit from degenerate constant scorers.
"""

from __future__ import annotations

import numpy as np


def rank_of_true(true_score: float, negative_scores: np.ndarray) -> int:
    """1-based pessimistic rank of the true candidate among negatives."""
    negative_scores = np.asarray(negative_scores, dtype=np.float64)
    better = int((negative_scores >= true_score).sum())
    return better + 1


def hits_at_k(ranks: np.ndarray, k: int = 10) -> float:
    """Fraction of ranks ≤ k."""
    ranks = np.asarray(ranks)
    if len(ranks) == 0:
        return 0.0
    return float((ranks <= k).mean())


def mean_reciprocal_rank(ranks: np.ndarray) -> float:
    """Mean of 1/rank."""
    ranks = np.asarray(ranks, dtype=np.float64)
    if len(ranks) == 0:
        return 0.0
    return float((1.0 / ranks).mean())
