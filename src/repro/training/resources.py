"""Modeled-memory accounting.

The paper reports "Training-Memory" per method and a 3 TB OOM event for
full-batch RGCN on DBLP-15M (Figure 7).  Python's allocator cannot
reproduce those absolute numbers on synthetic-scale graphs, so the harness
uses a **modeled memory meter**: every component a training run resides in
memory (graph CSR buffers, feature matrices, parameters, optimizer state,
and the peak activation working set of the chosen architecture) registers
its byte size.  A configurable budget turns over-registration into
:class:`OutOfModeledMemory` — reproducing the paper's OOM semantics
deterministically.

The activation model follows the un-fused reference implementations the
paper benchmarked: an RGCN layer materialises one message matrix per
relation before summation, so full-batch peak activations scale with
``num_nodes × hidden × num_relations`` — the term that makes full-KG
training blow up and that TOSG extraction shrinks on both factors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


class OutOfModeledMemory(RuntimeError):
    """Raised when registered bytes exceed the configured budget."""

    def __init__(self, requested: int, budget: int, components: Dict[str, int]):
        self.requested = requested
        self.budget = budget
        self.components = dict(components)
        super().__init__(
            f"modeled memory {requested / 1e6:.1f} MB exceeds budget {budget / 1e6:.1f} MB"
        )


def activation_bytes(
    num_nodes: int,
    hidden_dim: int,
    num_layers: int,
    num_relations: int = 1,
    bytes_per_value: int = 8,
    relation_materialized: bool = True,
) -> int:
    """Peak activation working set of an (R)GCN stack.

    ``relation_materialized=True`` models the per-relation message matrices
    of reference RGCN implementations; sampling-based methods evaluate on a
    subgraph so callers pass the subgraph's node count.
    """
    hidden_states = num_nodes * hidden_dim * (num_layers + 1)
    messages = num_nodes * hidden_dim * num_relations if relation_materialized else 0
    return int((hidden_states + messages) * bytes_per_value)


@dataclass
class ResourceMeter:
    """Tracks named byte components and their running peak.

    Components are upserted: re-registering a name replaces its size (e.g.
    per-epoch subgraph working sets).  ``budget_bytes=None`` disables OOM.
    """

    budget_bytes: Optional[int] = None
    components: Dict[str, int] = field(default_factory=dict)
    peak_bytes: int = 0

    def register(self, name: str, nbytes: int) -> None:
        """Insert/replace component ``name``; may raise OOM."""
        self.components[name] = int(nbytes)
        total = self.total_bytes
        if total > self.peak_bytes:
            self.peak_bytes = total
        if self.budget_bytes is not None and total > self.budget_bytes:
            raise OutOfModeledMemory(total, self.budget_bytes, self.components)

    def release(self, name: str) -> None:
        """Drop a transient component (peak is retained)."""
        self.components.pop(name, None)

    @property
    def total_bytes(self) -> int:
        return sum(self.components.values())

    def peak_gb(self) -> float:
        return self.peak_bytes / 1e9

    def breakdown(self) -> Dict[str, float]:
        """Current components in MB, for reports."""
        return {name: nbytes / 1e6 for name, nbytes in self.components.items()}
