"""Training substrate: resource accounting, metrics, splits, trainers.

The paper's evaluation reports, per method × graph: accuracy / Hits@10,
training time, training memory (with OOM events at the 3 TB budget),
convergence traces (Figure 9), model size and inference time (Table IV).
This package produces all of those measurements.
"""

from repro.training.resources import (
    OutOfModeledMemory,
    ResourceMeter,
    activation_bytes,
)
from repro.training.metrics import hits_at_k, mean_reciprocal_rank, rank_of_true
from repro.training.splits import time_split, stratified_random_split
from repro.training.trainer import (
    TrainConfig,
    TrainResult,
    TracePoint,
    train_node_classifier,
    train_link_predictor,
)

__all__ = [
    "OutOfModeledMemory",
    "ResourceMeter",
    "activation_bytes",
    "hits_at_k",
    "mean_reciprocal_rank",
    "rank_of_true",
    "time_split",
    "stratified_random_split",
    "TrainConfig",
    "TrainResult",
    "TracePoint",
    "train_node_classifier",
    "train_link_predictor",
]
