"""Train/valid/test split construction (Table II).

Two schemas appear in the paper's benchmark: **time** splits (a logical
predicate — e.g. publication year — orders examples and the most recent
fall into valid/test) and **stratified random** splits (per-label
proportional sampling, the 80/10/10 default).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.tasks import Split


def _normalise_ratios(ratios: Tuple[float, float, float]) -> Tuple[float, float, float]:
    total = sum(ratios)
    if total <= 0:
        raise ValueError("split ratios must sum to a positive value")
    return tuple(r / total for r in ratios)  # type: ignore[return-value]


def time_split(
    timestamps: np.ndarray,
    ratios: Tuple[float, float, float] = (0.8, 0.1, 0.1),
) -> Split:
    """Order examples by ``timestamps``; oldest → train, newest → test.

    Ties are broken by example position so the split is deterministic.
    """
    timestamps = np.asarray(timestamps)
    train_ratio, valid_ratio, _ = _normalise_ratios(ratios)
    order = np.argsort(timestamps, kind="stable")
    n = len(order)
    train_end = int(round(n * train_ratio))
    valid_end = train_end + int(round(n * valid_ratio))
    return Split(
        train=np.sort(order[:train_end]),
        valid=np.sort(order[train_end:valid_end]),
        test=np.sort(order[valid_end:]),
        schema="time",
    )


def stratified_random_split(
    labels: np.ndarray,
    ratios: Tuple[float, float, float] = (0.8, 0.1, 0.1),
    rng: Optional[np.random.Generator] = None,
) -> Split:
    """Per-label proportional random split (the paper's 80/10/10 schema)."""
    labels = np.asarray(labels)
    rng = rng if rng is not None else np.random.default_rng(0)
    train_ratio, valid_ratio, _ = _normalise_ratios(ratios)
    train_parts, valid_parts, test_parts = [], [], []
    for label in np.unique(labels):
        members = np.flatnonzero(labels == label)
        members = rng.permutation(members)
        n = len(members)
        train_end = int(round(n * train_ratio))
        valid_end = train_end + int(round(n * valid_ratio))
        # Guarantee at least one training example per label when possible.
        if train_end == 0 and n > 0:
            train_end = 1
            valid_end = max(valid_end, train_end)
        train_parts.append(members[:train_end])
        valid_parts.append(members[train_end:valid_end])
        test_parts.append(members[valid_end:])
    return Split(
        train=np.sort(np.concatenate(train_parts)) if train_parts else np.empty(0, dtype=np.int64),
        valid=np.sort(np.concatenate(valid_parts)) if valid_parts else np.empty(0, dtype=np.int64),
        test=np.sort(np.concatenate(test_parts)) if test_parts else np.empty(0, dtype=np.int64),
        schema="random",
    )
