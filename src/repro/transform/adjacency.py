"""Triple → sparse-adjacency transformation (Figure 4's ``Data Transformation``).

Two projections are produced:

* a homogeneous CSR adjacency (:func:`build_csr`) used by random walks,
  PPR influence scores and BFS distance computations, and
* a per-relation stack of row-normalised CSR matrices
  (:func:`build_hetero_adjacency`) consumed by the RGCN-style models —
  one matrix per relation plus, optionally, one per reverse relation
  (message passing needs both directions even on a directed KG).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Literal, Optional

import numpy as np
import scipy.sparse as sp

from repro.kg.graph import KnowledgeGraph

Direction = Literal["out", "in", "both"]


def build_csr(kg: KnowledgeGraph, direction: Direction = "both") -> sp.csr_matrix:
    """Homogeneous 0/1 adjacency of ``kg`` as ``scipy.sparse.csr_matrix``.

    ``direction='both'`` symmetrises (the projection used by URW/BRW walks
    and PPR); ``'out'``/``'in'`` keep only one orientation.
    """
    n = kg.num_nodes
    s, o = kg.triples.s, kg.triples.o
    if direction == "out":
        rows, cols = s, o
    elif direction == "in":
        rows, cols = o, s
    elif direction == "both":
        rows = np.concatenate([s, o])
        cols = np.concatenate([o, s])
    else:  # pragma: no cover - guarded by Literal
        raise ValueError(f"unknown direction {direction!r}")
    data = np.ones(len(rows), dtype=np.float64)
    matrix = sp.csr_matrix((data, (rows, cols)), shape=(n, n))
    # Collapse multi-edges to 0/1 so walk probabilities are per-neighbour.
    matrix.data[:] = 1.0
    matrix.sum_duplicates()
    matrix.data[:] = 1.0
    return matrix


@dataclass
class HeteroAdjacency:
    """Per-relation adjacency stack for heterogeneous message passing.

    Attributes
    ----------
    matrices:
        One row-normalised CSR matrix per relation; when ``add_reverse`` the
        second half are the transposed relations (ids ``r + num_relations``).
    relation_names:
        Human-readable name per matrix (reverse relations get ``~rev``).
    num_nodes / num_relations:
        ``num_relations`` counts *matrices*, i.e. includes reverses.
    """

    matrices: List[sp.csr_matrix]
    relation_names: List[str]
    num_nodes: int
    transform_seconds: float = 0.0
    node_types: Optional[np.ndarray] = None

    @property
    def num_relations(self) -> int:
        return len(self.matrices)

    def nbytes(self) -> int:
        """Modeled bytes of all CSR buffers (Figure 4 AdjM footprint)."""
        total = 0
        for matrix in self.matrices:
            total += matrix.data.nbytes + matrix.indices.nbytes + matrix.indptr.nbytes
        return int(total)


def _row_normalize(matrix: sp.csr_matrix) -> sp.csr_matrix:
    """Scale each row to sum 1 (the 1/c_{i,r} constant of RGCN, Eq. 1)."""
    row_sums = np.asarray(matrix.sum(axis=1)).ravel()
    scale = np.divide(1.0, row_sums, out=np.zeros_like(row_sums), where=row_sums > 0)
    diagonal = sp.diags(scale)
    return (diagonal @ matrix).tocsr()


def build_hetero_adjacency(
    kg: KnowledgeGraph,
    add_reverse: bool = True,
    normalize: bool = True,
) -> HeteroAdjacency:
    """Build one (optionally normalised) CSR matrix per relation.

    Reverse relations double the stack; RGCN-style models treat them as
    extra edge types, matching PyG's ``to_undirected``-style preprocessing
    of heterogeneous KGs.
    """
    start = time.perf_counter()
    n = kg.num_nodes
    matrices: List[sp.csr_matrix] = []
    names: List[str] = []
    s, p, o = kg.triples.s, kg.triples.p, kg.triples.o
    order = np.argsort(p, kind="stable")
    s_sorted, p_sorted, o_sorted = s[order], p[order], o[order]
    boundaries = np.searchsorted(p_sorted, np.arange(kg.num_edge_types + 1))
    for relation in range(kg.num_edge_types):
        lo, hi = boundaries[relation], boundaries[relation + 1]
        rows, cols = s_sorted[lo:hi], o_sorted[lo:hi]
        data = np.ones(hi - lo, dtype=np.float64)
        matrix = sp.csr_matrix((data, (rows, cols)), shape=(n, n))
        matrices.append(_row_normalize(matrix) if normalize else matrix)
        names.append(kg.relation_vocab.term(relation))
    if add_reverse:
        reverse_matrices = []
        for relation in range(kg.num_edge_types):
            lo, hi = boundaries[relation], boundaries[relation + 1]
            rows, cols = o_sorted[lo:hi], s_sorted[lo:hi]
            data = np.ones(hi - lo, dtype=np.float64)
            matrix = sp.csr_matrix((data, (rows, cols)), shape=(n, n))
            reverse_matrices.append(_row_normalize(matrix) if normalize else matrix)
        matrices.extend(reverse_matrices)
        names.extend(f"{name}~rev" for name in names[: kg.num_edge_types])
    elapsed = time.perf_counter() - start
    return HeteroAdjacency(
        matrices=matrices,
        relation_names=names,
        num_nodes=n,
        transform_seconds=elapsed,
        node_types=kg.node_types.copy(),
    )


def transform_kg(
    kg: KnowledgeGraph,
    add_reverse: bool = True,
    normalize: bool = True,
) -> HeteroAdjacency:
    """Alias of :func:`build_hetero_adjacency` named after the Fig. 4 step."""
    return build_hetero_adjacency(kg, add_reverse=add_reverse, normalize=normalize)
