"""Data transformation: RDF triples → adjacency matrices + features.

This is the mandatory middle step of the paper's Figure 4 workflow
(``KG' → CSV → AdjM``): GNN methods consume per-relation sparse adjacency
matrices and dense feature matrices, not triples.  The module also provides
the homogeneous-graph projections used by the random-walk and PPR samplers.
"""

from repro.transform.adjacency import (
    HeteroAdjacency,
    build_csr,
    build_hetero_adjacency,
    transform_kg,
)
from repro.transform.features import xavier_features, one_hot_type_features

__all__ = [
    "HeteroAdjacency",
    "build_csr",
    "build_hetero_adjacency",
    "transform_kg",
    "xavier_features",
    "one_hot_type_features",
]
