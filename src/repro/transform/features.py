"""Initial node features.

The paper initialises node embeddings "randomly using Xavier weight"
(Section V-A3); :func:`xavier_features` reproduces that.  A structural
alternative (:func:`one_hot_type_features`) is provided for ablations where
features should carry type information only.
"""

from __future__ import annotations

import numpy as np

from repro.kg.graph import KnowledgeGraph


def xavier_features(num_nodes: int, dim: int, rng: np.random.Generator) -> np.ndarray:
    """Xavier/Glorot-uniform random features of shape ``(num_nodes, dim)``."""
    # Glorot bound for an embedding table uses the embedding dim as fan.
    bound = np.sqrt(6.0 / dim) if dim > 0 else 0.0
    return rng.uniform(-bound, bound, size=(num_nodes, dim)).astype(np.float64)


def one_hot_type_features(kg: KnowledgeGraph) -> np.ndarray:
    """One-hot encoding of each node's class — shape ``(|V|, |C|)``."""
    features = np.zeros((kg.num_nodes, kg.num_node_types), dtype=np.float64)
    features[np.arange(kg.num_nodes), kg.node_types] = 1.0
    return features
