"""Uniform random-walk (URW) subgraph sampling — GraphSAINT's default.

Section II-B: "GraphSAINT subgraph sampler uses a uniform random-walk
sampler (URW) by default to randomly select a set of initial root nodes and
performs a random walk of length h from each root node to its neighbours".
Roots are drawn uniformly over **all** nodes without regard to node/edge
types — exactly the behaviour whose pathologies Figure 2 illustrates
(few target vertices, disconnected noise).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kg.cache import artifacts_for
from repro.kg.graph import KnowledgeGraph, SubgraphMapping
from repro.sampling.walks import RandomWalkEngine


@dataclass
class SampledSubgraph:
    """A sampler's output: the subgraph, its id mapping, and provenance."""

    subgraph: KnowledgeGraph
    mapping: SubgraphMapping
    root_nodes: np.ndarray
    sampler: str

    @property
    def num_nodes(self) -> int:
        return self.subgraph.num_nodes

    @property
    def num_edges(self) -> int:
        return self.subgraph.num_edges


class UniformRandomWalkSampler:
    """GraphSAINT's URW sampler on the undirected projection of a KG.

    Parameters
    ----------
    kg:
        Graph to sample from.
    walk_length:
        Number of hops ``h`` per walk.
    num_roots:
        Size of the uniformly-drawn initial root set.
    """

    name = "URW"

    def __init__(self, kg: KnowledgeGraph, walk_length: int = 2, num_roots: int = 20):
        if walk_length < 1:
            raise ValueError("walk_length must be >= 1")
        if num_roots < 1:
            raise ValueError("num_roots must be >= 1")
        self.kg = kg
        self.walk_length = walk_length
        self.num_roots = num_roots

    @property
    def engine(self) -> RandomWalkEngine:
        return artifacts_for(self.kg).walk_engine("both")

    def sample(self, rng: np.random.Generator) -> SampledSubgraph:
        """Draw one subgraph: uniform roots → walks → induced subgraph."""
        num_roots = min(self.num_roots, self.kg.num_nodes)
        roots = rng.choice(self.kg.num_nodes, size=num_roots, replace=False)
        visited = self.engine.walk(roots, self.walk_length, rng)
        subgraph, mapping = self.kg.induced_subgraph(visited, name=f"{self.kg.name}-urw")
        return SampledSubgraph(
            subgraph=subgraph, mapping=mapping, root_nodes=np.asarray(roots), sampler=self.name
        )
