"""Bounded k-hop path enumeration between entity pairs (the KagNet regime).

Path-based reasoning (KagNet, Lin et al. 2019) connects a question/answer
entity pair by the relational paths between them and scores each path as a
relation sequence.  The enumeration side reuses exactly the task-oriented
machinery the paper builds for PPR and ego extraction: the cached per-graph
artifacts from :func:`repro.kg.cache.artifacts_for` — here the hexastore's
``spo`` ordering, whose subject runs play the role of a relation-carrying
CSR row — answer every frontier expansion with one batched lookup.

Two implementations coexist, mirroring ``repro/sampling/ppr.py``:

* :func:`enumerate_paths_scalar` — the reference oracle: per-pair
  iterative-deepening DFS in pure Python.  Paths come out *hop-major*
  (all 1-hop paths, then all 2-hop paths, ...) and lexicographically by
  ``(relation, node)`` edge sequence within a hop, truncated globally at
  ``max_paths``.
* :func:`enumerate_paths_batch` — the vectorized kernel: every pair
  advances one hop per numpy super-step.  Partial paths live in a dense
  ``(frontier, 2*hop + 1)`` interleaved matrix, neighbour gathering is one
  :meth:`~repro.kg.hexastore.Hexastore.batch_ranges` call over all tails,
  and simple-path / destination / budget filtering are whole-frontier mask
  operations.  Because the frontier is kept in (pair, lexicographic)
  order and subject runs are ``(relation, object)``-sorted, completions
  fall out in exactly the oracle's order — the kernel is **bit-identical**
  to the scalar DFS per pair, truncation included.

Paths are *simple* (no repeated node; the destination terminates a path)
and directed (subject → object).  A self-loop on the source is reachable
only when ``src == dst`` — destination matching is checked before the
on-path filter, so ``(v, r, v)`` yields the 1-hop path ``[v, r, v]`` for
the pair ``(v, v)`` and is otherwise skipped.  Each path is the plain
Python list ``[src, rel_1, node_1, ..., rel_k, dst]`` — interleaved node
and relation ids, JSON-stable end to end, which is what lets the serving
tier promise bit-identical answers across every transport.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.kg.cache import artifacts_for
from repro.kg.graph import KnowledgeGraph
from repro.nputil import expand_ranges, rank_within_sorted_groups

#: One enumerated path: ``[src, rel, node, rel, node, ..., rel, dst]``.
Path = List[int]


def _validate(max_hops: int, max_paths: int) -> None:
    if max_hops < 1:
        raise ValueError(f"max_hops must be >= 1, got {max_hops}")
    if max_paths < 1:
        raise ValueError(f"max_paths must be >= 1, got {max_paths}")


def enumerate_paths_scalar(
    kg: KnowledgeGraph,
    src: int,
    dst: int,
    max_hops: int = 3,
    max_paths: int = 64,
) -> List[Path]:
    """All simple directed paths ``src -> dst`` of up to ``max_hops`` hops.

    The scalar reference oracle: iterative-deepening DFS over the
    hexastore's ``spo`` runs, one target length at a time, so paths are
    produced hop-major and lexicographically by ``(relation, node)``
    sequence within each length.  Enumeration stops globally once
    ``max_paths`` paths are collected.  :func:`enumerate_paths_batch`
    must reproduce this list bit-for-bit per pair.
    """
    _validate(max_hops, max_paths)
    hexastore = artifacts_for(kg).hexastore
    store = kg.triples
    src, dst = int(src), int(dst)
    results: List[Path] = []

    def descend(node: int, remaining: int, path: Path, on_path: set) -> bool:
        """Extend ``path`` by exactly ``remaining`` hops; True when full."""
        for position in hexastore.match(subject=node):
            relation = int(store.p[position])
            neighbor = int(store.o[position])
            if remaining == 1:
                if neighbor == dst:
                    results.append(path + [relation, neighbor])
                    if len(results) >= max_paths:
                        return True
            elif neighbor != dst and neighbor not in on_path:
                on_path.add(neighbor)
                full = descend(
                    neighbor, remaining - 1, path + [relation, neighbor], on_path
                )
                on_path.remove(neighbor)
                if full:
                    return True
        return False

    for length in range(1, max_hops + 1):
        if descend(src, length, [src], {src}):
            break
    return results


def enumerate_paths_batch(
    kg: KnowledgeGraph,
    pairs: np.ndarray,
    max_hops: int = 3,
    max_paths: int = 64,
) -> List[List[Path]]:
    """Vectorized :func:`enumerate_paths_scalar` for many pairs at once.

    ``pairs`` is ``(batch, 2)`` int ``(src, dst)`` rows; returns one path
    list per row, bit-identical to the scalar oracle run per pair (order
    and ``max_paths`` truncation included).  All pairs advance one hop per
    numpy super-step: one batched hexastore lookup expands every frontier
    tail, and destination matches / on-path filtering / per-pair budget
    accounting are whole-frontier array operations.
    """
    paths, _ = _enumerate_batch(kg, pairs, max_hops, max_paths, want_support=False)
    return paths


def enumerate_paths_batch_with_support(
    kg: KnowledgeGraph,
    pairs: np.ndarray,
    max_hops: int = 3,
    max_paths: int = 64,
) -> List[Tuple[List[Path], np.ndarray]]:
    """:func:`enumerate_paths_batch` plus, per pair, the enumeration's *support*.

    The support set is every node the enumeration expanded or walked
    through: the source, the destination, and every node appended to a
    partial path.  Any new edge that could introduce, remove or reorder a
    path of up to ``max_hops`` hops must start at one of these nodes (its
    source is reachable from ``src`` by an enumerated prefix), so a triple
    ingest whose endpoints all fall outside the support cannot change the
    retained answer — the invalidation rule
    :class:`repro.kg.epoch.LiveGraph` applies, mirroring
    :func:`repro.sampling.ppr.batch_ppr_top_k_with_support`.  Path lists
    are byte-identical to :func:`enumerate_paths_batch`.
    """
    paths, supports = _enumerate_batch(kg, pairs, max_hops, max_paths, want_support=True)
    return list(zip(paths, supports))


def _enumerate_batch(
    kg: KnowledgeGraph,
    pairs: np.ndarray,
    max_hops: int,
    max_paths: int,
    want_support: bool,
) -> Tuple[List[List[Path]], List[np.ndarray]]:
    _validate(max_hops, max_paths)
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.size == 0:
        pairs = pairs.reshape(0, 2)
    if pairs.ndim != 2 or (pairs.size and pairs.shape[1] != 2):
        raise ValueError(f"pairs must be (batch, 2) (src, dst) rows, got {pairs.shape}")
    batch = len(pairs)
    sources = pairs[:, 0] if batch else np.empty(0, dtype=np.int64)
    dests = pairs[:, 1] if batch else np.empty(0, dtype=np.int64)
    hexastore = artifacts_for(kg).hexastore
    store = kg.triples

    collected: List[List[Path]] = [[] for _ in range(batch)]
    completed_count = np.zeros(batch, dtype=np.int64)
    # Support accumulators: (pair, node) of every node placed on a path.
    support_pairs: List[np.ndarray] = [np.arange(batch, dtype=np.int64)] * 2
    support_nodes: List[np.ndarray] = [sources, dests]

    # Frontier invariant: `frontier` is (P, 2*hop + 1) interleaved partial
    # paths, grouped by `pair_of` (non-decreasing) and lexicographic by
    # (relation, node) sequence within a pair — exactly the oracle's DFS
    # visit order for the current target length.
    pair_of = np.arange(batch, dtype=np.int64)
    frontier = sources[:, None].copy()
    for hop in range(max_hops):
        if len(pair_of) == 0:
            break
        tails = frontier[:, -1]
        los, his, perm = hexastore.batch_ranges({}, "s", tails)
        counts = his - los
        positions = perm[expand_ranges(los, counts)]
        rows = np.repeat(np.arange(len(pair_of), dtype=np.int64), counts)
        relations = store.p[positions].astype(np.int64)
        objects = store.o[positions].astype(np.int64)
        edge_pairs = pair_of[rows]
        completed = objects == dests[edge_pairs]

        # Record this hop's completions, truncating each pair to its
        # remaining budget: rows are grouped by pair, so the within-group
        # rank is exactly the oracle's arrival order.
        comp_rows = rows[completed]
        if comp_rows.size:
            comp_pairs = edge_pairs[completed]
            rank = rank_within_sorted_groups(comp_pairs)
            keep = rank < (max_paths - completed_count[comp_pairs])
            comp_matrix = np.concatenate(
                [
                    frontier[comp_rows[keep]],
                    relations[completed][keep][:, None],
                    objects[completed][keep][:, None],
                ],
                axis=1,
            )
            kept_pairs = comp_pairs[keep]
            completed_count += np.bincount(kept_pairs, minlength=batch)
            for pair, row in zip(kept_pairs, comp_matrix.tolist()):
                collected[pair].append(row)

        if hop + 1 == max_hops:
            break
        # Extend through fresh, non-destination nodes of still-hungry
        # pairs (a full pair's frontier is dropped, like the oracle's
        # global stop).
        on_path = (frontier[rows][:, 0::2] == objects[:, None]).any(axis=1)
        extend = ~completed & ~on_path
        extend &= completed_count[edge_pairs] < max_paths
        ext_rows = rows[extend]
        frontier = np.concatenate(
            [
                frontier[ext_rows],
                relations[extend][:, None],
                objects[extend][:, None],
            ],
            axis=1,
        )
        pair_of = pair_of[ext_rows]
        if want_support and len(pair_of):
            support_pairs.append(pair_of.copy())
            support_nodes.append(frontier[:, -1].copy())

    supports: List[np.ndarray] = []
    if want_support:
        all_pairs = np.concatenate(support_pairs) if batch else np.empty(0, np.int64)
        all_nodes = np.concatenate(support_nodes) if batch else np.empty(0, np.int64)
        order = np.lexsort((all_nodes, all_pairs))
        all_pairs, all_nodes = all_pairs[order], all_nodes[order]
        fresh = np.ones(len(all_pairs), dtype=bool)
        fresh[1:] = (all_pairs[1:] != all_pairs[:-1]) | (all_nodes[1:] != all_nodes[:-1])
        all_pairs, all_nodes = all_pairs[fresh], all_nodes[fresh]
        node_counts = np.bincount(all_pairs, minlength=batch)
        starts = np.concatenate([[0], np.cumsum(node_counts)])
        supports = [
            all_nodes[starts[row] : starts[row + 1]].copy() for row in range(batch)
        ]
    return collected, supports
