"""Graph sampling substrate.

The homogeneous-graph sampling machinery that HGNN methods adapted
(Section II-B of the paper): a vectorised random-walk engine, the uniform
random-walk (URW) subgraph sampler that GraphSAINT uses by default, and a
push-style approximate Personalized PageRank (Andersen, Chung, Lang —
FOCS 2006) that the paper's influence-based sampling builds on.
"""

from repro.sampling.walks import RandomWalkEngine
from repro.sampling.urw import UniformRandomWalkSampler, SampledSubgraph
from repro.sampling.node_edge import NodeSampler, EdgeSampler
from repro.sampling.ppr import approximate_ppr, ppr_top_k
from repro.sampling.paths import (
    enumerate_paths_batch,
    enumerate_paths_batch_with_support,
    enumerate_paths_scalar,
)

__all__ = [
    "RandomWalkEngine",
    "UniformRandomWalkSampler",
    "SampledSubgraph",
    "NodeSampler",
    "EdgeSampler",
    "approximate_ppr",
    "ppr_top_k",
    "enumerate_paths_scalar",
    "enumerate_paths_batch",
    "enumerate_paths_batch_with_support",
]
