"""GraphSAINT's node and edge samplers.

GraphSAINT (Zeng et al., ICLR 2020) ships three subgraph samplers: random
walk (the default, :mod:`repro.sampling.urw`), **node** sampling (nodes
drawn with probability proportional to degree) and **edge** sampling
(edges drawn inversely proportional to endpoint degrees, endpoints kept).
The paper's Section II-B discusses this family as the "subgraph-based
sampling" class; these two complete it for ablation use.
"""

from __future__ import annotations


import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.sampling.urw import SampledSubgraph


class NodeSampler:
    """Degree-proportional node sampling (GraphSAINT-Node).

    Draws ``num_nodes`` nodes with probability ∝ degree + 1 (the +1 keeps
    isolated nodes reachable, as in the reference implementation's
    smoothed distribution), then induces the subgraph.
    """

    name = "NodeSampler"

    def __init__(self, kg: KnowledgeGraph, num_nodes: int = 512):
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        self.kg = kg
        self.num_nodes = min(num_nodes, kg.num_nodes)
        degrees = kg.degree().astype(np.float64) + 1.0
        self._probabilities = degrees / degrees.sum()

    def sample(self, rng: np.random.Generator) -> SampledSubgraph:
        nodes = rng.choice(
            self.kg.num_nodes, size=self.num_nodes, replace=False, p=self._probabilities
        )
        subgraph, mapping = self.kg.induced_subgraph(nodes, name=f"{self.kg.name}-node")
        return SampledSubgraph(
            subgraph=subgraph, mapping=mapping,
            root_nodes=np.asarray(nodes, dtype=np.int64), sampler=self.name,
        )


class EdgeSampler:
    """Inverse-degree edge sampling (GraphSAINT-Edge).

    Each edge (u, v) is drawn with probability ∝ 1/deg(u) + 1/deg(v)
    (GraphSAINT's variance-minimising weights); sampled endpoints induce
    the subgraph.
    """

    name = "EdgeSampler"

    def __init__(self, kg: KnowledgeGraph, num_edges: int = 1024):
        if num_edges < 1:
            raise ValueError("num_edges must be >= 1")
        if kg.num_edges == 0:
            raise ValueError("cannot edge-sample an edgeless graph")
        self.kg = kg
        self.num_edges = min(num_edges, kg.num_edges)
        degrees = kg.degree().astype(np.float64)
        safe = np.maximum(degrees, 1.0)
        weights = 1.0 / safe[kg.triples.s] + 1.0 / safe[kg.triples.o]
        self._probabilities = weights / weights.sum()

    def sample(self, rng: np.random.Generator) -> SampledSubgraph:
        chosen = rng.choice(
            self.kg.num_edges, size=self.num_edges, replace=False, p=self._probabilities
        )
        nodes = np.unique(
            np.concatenate([self.kg.triples.s[chosen], self.kg.triples.o[chosen]])
        )
        subgraph, mapping = self.kg.induced_subgraph(nodes, name=f"{self.kg.name}-edge")
        return SampledSubgraph(
            subgraph=subgraph, mapping=mapping, root_nodes=nodes, sampler=self.name,
        )
