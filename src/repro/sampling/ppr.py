"""Approximate Personalized PageRank by local push.

Implements the Andersen–Chung–Lang (FOCS 2006) push algorithm the paper
cites for its influence-based sampling (Section IV-B): residual mass is
pushed from a queue of high-residual nodes until every residual drops below
``eps * degree``.  Complexity is ``O(1 / (eps * alpha))`` pushes —
independent of graph size — which is exactly the "local scope" property the
paper's influence score relies on.

Two implementations coexist:

* :func:`approximate_ppr` / :func:`ppr_top_k` — the scalar dict/deque push.
  Kept as the *reference oracle*: one target, pure-Python, easy to audit.
* :func:`batch_ppr_top_k` / :func:`batch_approximate_ppr` — the vectorized
  batch kernel behind IBS.  All targets advance in lock-step over flat
  numpy state (an ``(n_targets, n_nodes)``-stride residual/score matrix plus
  a per-target FIFO ring buffer); each super-step pops one queue head per
  live target and performs the neighbour scatter for the whole batch with a
  handful of array operations.  Because every target replays *exactly* the
  scalar algorithm's FIFO push schedule (same floating-point operations in
  the same order), the batch kernel is bit-for-bit equivalent to the oracle
  while being an order of magnitude faster on realistic batches.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.nputil import expand_ranges, rank_within_sorted_groups


def approximate_ppr(
    adjacency: sp.csr_matrix,
    seeds: Iterable[int],
    alpha: float = 0.25,
    eps: float = 2e-4,
) -> Dict[int, float]:
    """Push-style approximate PPR from a seed set.

    Parameters
    ----------
    adjacency:
        CSR adjacency (treated as unweighted; symmetrise beforehand for the
        undirected influence semantics the paper uses).
    seeds:
        Nodes whose personalised distribution is computed; seed mass is
        split uniformly.
    alpha:
        Teleport probability (paper uses 0.25 for IBS training).
    eps:
        Residual tolerance (paper uses 2e-4).

    Returns
    -------
    Sparse score map ``node -> ppr`` containing only touched nodes.
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    if eps <= 0.0:
        raise ValueError(f"eps must be positive, got {eps}")
    seeds = list(seeds)
    if not seeds:
        return {}
    indptr, indices = adjacency.indptr, adjacency.indices
    degrees = np.diff(indptr)

    scores: Dict[int, float] = {}
    residual: Dict[int, float] = {}
    seed_mass = 1.0 / len(seeds)
    queue: deque[int] = deque()
    queued: set[int] = set()

    def maybe_enqueue(node: int) -> None:
        threshold = eps * max(int(degrees[node]), 1)
        if residual.get(node, 0.0) >= threshold and node not in queued:
            queue.append(node)
            queued.add(node)

    for seed in seeds:
        residual[seed] = residual.get(seed, 0.0) + seed_mass
    for seed in set(seeds):
        maybe_enqueue(seed)

    while queue:
        node = queue.popleft()
        queued.discard(node)
        mass = residual.get(node, 0.0)
        degree = int(degrees[node])
        threshold = eps * max(degree, 1)
        if mass < threshold:
            continue
        scores[node] = scores.get(node, 0.0) + alpha * mass
        residual[node] = 0.0
        if degree == 0:
            # Dangling node: teleport the rest of the mass back to itself.
            scores[node] += (1.0 - alpha) * mass
            continue
        push = (1.0 - alpha) * mass / degree
        for neighbor in indices[indptr[node] : indptr[node + 1]]:
            neighbor = int(neighbor)
            residual[neighbor] = residual.get(neighbor, 0.0) + push
            maybe_enqueue(neighbor)
    return scores


def ppr_top_k(
    adjacency: sp.csr_matrix,
    target: int,
    k: int,
    alpha: float = 0.25,
    eps: float = 2e-4,
) -> List[Tuple[int, float]]:
    """Top-``k`` most influential neighbours of one target node.

    Runs :func:`approximate_ppr` seeded at ``target`` and returns the ``k``
    highest-scoring *other* nodes as ``(node, score)`` pairs, ties broken by
    node id for determinism.
    """
    scores = approximate_ppr(adjacency, [target], alpha=alpha, eps=eps)
    scores.pop(int(target), None)
    ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
    return [(int(node), float(score)) for node, score in ranked[:k]]


# ---------------------------------------------------------------------------
# Vectorized batch kernel (the IBS hot path)
# ---------------------------------------------------------------------------


def _batch_push(
    indptr: np.ndarray,
    indices: np.ndarray,
    degrees: np.ndarray,
    thresholds: np.ndarray,
    targets: np.ndarray,
    alpha: float,
) -> np.ndarray:
    """Lock-step FIFO push for one chunk of targets.

    Returns the dense ``(len(targets), n_nodes)`` score matrix.  Each row
    replays the scalar :func:`approximate_ppr` push schedule for its target:
    a per-target FIFO ring buffer pops one node per super-step, and the
    neighbour residual updates + enqueue checks for the whole batch are done
    with flat gathers and scatters.  Within a push the ``(row, neighbour)``
    pairs are unique (rows differ across targets; the CSR has no duplicate
    columns), so plain fancy-indexed ``+=`` is exact.
    """
    chunk = len(targets)
    n = len(degrees)
    scores = np.zeros((chunk, n), dtype=np.float64)
    if n == 0 or chunk == 0:
        return scores
    # All (row, node) state is addressed through raveled views with
    # precomputed flat indices (row * n + node): one index computation feeds
    # every gather/scatter of a super-step.
    scores_flat = scores.reshape(-1)
    residual_flat = np.zeros(chunk * n, dtype=np.float64)
    queued_flat = np.zeros(chunk * n, dtype=bool)
    # Ring buffer: the `queued` mask caps each queue at n entries.
    ring = np.zeros((chunk, n), dtype=np.int64)
    head = np.zeros(chunk, dtype=np.int64)
    tail = np.zeros(chunk, dtype=np.int64)

    row_base = np.arange(chunk, dtype=np.int64) * n
    residual_flat[row_base + targets] = 1.0
    seeded = np.flatnonzero(1.0 >= thresholds[targets])
    ring[seeded, 0] = targets[seeded]
    tail[seeded] = 1
    queued_flat[row_base[seeded] + targets[seeded]] = True
    one_minus_alpha = 1.0 - alpha

    while True:
        active = np.flatnonzero(tail > head)
        if active.size == 0:
            break
        nodes = ring[active, head[active] % n]
        head[active] += 1
        popped = row_base[active] + nodes
        queued_flat[popped] = False
        # Residuals only grow while enqueued, so mass >= threshold here —
        # the scalar oracle's stale-entry guard can never fire either.
        mass = residual_flat[popped]
        scores_flat[popped] += alpha * mass
        residual_flat[popped] = 0.0

        node_degrees = degrees[nodes]
        dangling = node_degrees == 0
        if dangling.any():
            # Dangling node: teleport the rest of the mass back to itself.
            scores_flat[popped[dangling]] += one_minus_alpha * mass[dangling]
        pushing = np.flatnonzero(~dangling)
        if pushing.size == 0:
            continue
        sources = nodes[pushing]
        push = one_minus_alpha * mass[pushing] / node_degrees[pushing]
        counts = node_degrees[pushing]
        neighbor = indices[expand_ranges(indptr[sources], counts)]
        flat = np.repeat(row_base[active[pushing]], counts) + neighbor
        residual_flat[flat] += np.repeat(push, counts)

        crossed = (residual_flat[flat] >= thresholds[neighbor]) & ~queued_flat[flat]
        if not crossed.any():
            continue
        enqueue_flat = flat[crossed]
        queued_flat[enqueue_flat] = True
        enqueue_rows = enqueue_flat // n
        slots = tail[enqueue_rows] + rank_within_sorted_groups(enqueue_rows)
        ring[enqueue_rows, slots % n] = enqueue_flat - enqueue_rows * n
        np.add.at(tail, enqueue_rows, 1)
    return scores


def _default_chunk_size(num_nodes: int) -> int:
    # Bound the dense (chunk, n) float64 state to ~64 MB per matrix.
    return max(int(8e6 // max(num_nodes, 1)), 1)


# Above this node count the dense (chunk, n) state loses the push
# algorithm's graph-size-independent locality (O(n) zeroing + scanning per
# target dwarfs the O(1/(eps*alpha)) pushes), so the batch entry points fall
# back to the scalar push per target — still exact, just not vectorized.
# A sparse-frontier batch kernel for this regime is a ROADMAP item.
DENSE_NODE_LIMIT = 2_000_000


def batch_approximate_ppr(
    adjacency: sp.csr_matrix,
    targets: Iterable[int],
    alpha: float = 0.25,
    eps: float = 2e-4,
    chunk_size: Optional[int] = None,
) -> Dict[int, Dict[int, float]]:
    """Single-seed :func:`approximate_ppr` for many targets at once.

    Returns ``target -> {node: ppr}`` sparse score maps, bit-identical to
    running the scalar oracle per target.  ``chunk_size`` bounds the dense
    working set (default: ~64 MB per dense matrix; the kernel keeps a few —
    scores, residuals, queue state — alive at once).

    ``adjacency`` must be a canonical CSR without duplicate column entries
    per row (what :func:`repro.transform.adjacency.build_csr` produces);
    with duplicates the kernel's fancy-indexed scatter collapses them while
    the scalar oracle pushes per occurrence, and the results diverge.

    Graphs beyond :data:`DENSE_NODE_LIMIT` nodes use the scalar push per
    target instead (identical results; the dense state would cost more than
    it saves there).
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    if eps <= 0.0:
        raise ValueError(f"eps must be positive, got {eps}")
    targets = np.asarray(list(targets), dtype=np.int64)
    indptr, indices = adjacency.indptr, adjacency.indices
    degrees = np.diff(indptr).astype(np.int64)
    if len(degrees) > DENSE_NODE_LIMIT:
        return {
            int(target): approximate_ppr(adjacency, [int(target)], alpha=alpha, eps=eps)
            for target in targets
        }
    thresholds = eps * np.maximum(degrees, 1)
    if chunk_size is None:
        chunk_size = _default_chunk_size(len(degrees))

    results: Dict[int, Dict[int, float]] = {}
    for start in range(0, len(targets), chunk_size):
        chunk_targets = targets[start : start + chunk_size]
        scores = _batch_push(indptr, indices, degrees, thresholds, chunk_targets, alpha)
        for row, target in enumerate(chunk_targets):
            touched = np.flatnonzero(scores[row])
            results[int(target)] = {
                int(node): float(scores[row, node]) for node in touched
            }
    return results


def batch_ppr_top_k(
    adjacency: sp.csr_matrix,
    targets: Iterable[int],
    k: int,
    alpha: float = 0.25,
    eps: float = 2e-4,
    chunk_size: Optional[int] = None,
) -> Dict[int, List[Tuple[int, float]]]:
    """Top-``k`` influence lists for *all* targets in one batched run.

    The vectorized equivalent of calling :func:`ppr_top_k` per target:
    returns ``target -> [(node, score), ...]`` with the target itself
    excluded, sorted by descending score with ties broken by node id.
    Selections and scores match the scalar oracle exactly (the kernel
    replays the same push schedule per target).  ``adjacency`` must be a
    canonical CSR without duplicate column entries per row, and graphs
    beyond :data:`DENSE_NODE_LIMIT` nodes take the scalar path — see
    :func:`batch_approximate_ppr`.
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    if eps <= 0.0:
        raise ValueError(f"eps must be positive, got {eps}")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    targets = np.asarray(list(targets), dtype=np.int64)
    indptr, indices = adjacency.indptr, adjacency.indices
    degrees = np.diff(indptr).astype(np.int64)
    if len(degrees) > DENSE_NODE_LIMIT:
        return {
            int(target): ppr_top_k(adjacency, int(target), k, alpha=alpha, eps=eps)
            for target in targets
        }
    thresholds = eps * np.maximum(degrees, 1)
    if chunk_size is None:
        chunk_size = _default_chunk_size(len(degrees))

    results: Dict[int, List[Tuple[int, float]]] = {}
    for start in range(0, len(targets), chunk_size):
        chunk_targets = targets[start : start + chunk_size]
        scores = _batch_push(indptr, indices, degrees, thresholds, chunk_targets, alpha)
        for row, target in enumerate(chunk_targets):
            touched = np.flatnonzero(scores[row])
            touched = touched[touched != target]
            values = scores[row, touched]
            order = np.lexsort((touched, -values))[:k]
            results[int(target)] = [
                (int(node), float(score))
                for node, score in zip(touched[order], values[order])
            ]
    return results
