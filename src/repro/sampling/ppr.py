"""Approximate Personalized PageRank by local push.

Implements the Andersen–Chung–Lang (FOCS 2006) push algorithm the paper
cites for its influence-based sampling (Section IV-B): residual mass is
pushed from a queue of high-residual nodes until every residual drops below
``eps * degree``.  Complexity is ``O(1 / (eps * alpha))`` pushes —
independent of graph size — which is exactly the "local scope" property the
paper's influence score relies on.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Tuple

import numpy as np
import scipy.sparse as sp


def approximate_ppr(
    adjacency: sp.csr_matrix,
    seeds: Iterable[int],
    alpha: float = 0.25,
    eps: float = 2e-4,
) -> Dict[int, float]:
    """Push-style approximate PPR from a seed set.

    Parameters
    ----------
    adjacency:
        CSR adjacency (treated as unweighted; symmetrise beforehand for the
        undirected influence semantics the paper uses).
    seeds:
        Nodes whose personalised distribution is computed; seed mass is
        split uniformly.
    alpha:
        Teleport probability (paper uses 0.25 for IBS training).
    eps:
        Residual tolerance (paper uses 2e-4).

    Returns
    -------
    Sparse score map ``node -> ppr`` containing only touched nodes.
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    if eps <= 0.0:
        raise ValueError(f"eps must be positive, got {eps}")
    seeds = list(seeds)
    if not seeds:
        return {}
    indptr, indices = adjacency.indptr, adjacency.indices
    degrees = np.diff(indptr)

    scores: Dict[int, float] = {}
    residual: Dict[int, float] = {}
    seed_mass = 1.0 / len(seeds)
    queue: deque[int] = deque()
    queued: set[int] = set()

    def maybe_enqueue(node: int) -> None:
        threshold = eps * max(int(degrees[node]), 1)
        if residual.get(node, 0.0) >= threshold and node not in queued:
            queue.append(node)
            queued.add(node)

    for seed in seeds:
        residual[seed] = residual.get(seed, 0.0) + seed_mass
    for seed in set(seeds):
        maybe_enqueue(seed)

    while queue:
        node = queue.popleft()
        queued.discard(node)
        mass = residual.get(node, 0.0)
        degree = int(degrees[node])
        threshold = eps * max(degree, 1)
        if mass < threshold:
            continue
        scores[node] = scores.get(node, 0.0) + alpha * mass
        residual[node] = 0.0
        if degree == 0:
            # Dangling node: teleport the rest of the mass back to itself.
            scores[node] += (1.0 - alpha) * mass
            continue
        push = (1.0 - alpha) * mass / degree
        for neighbor in indices[indptr[node] : indptr[node + 1]]:
            neighbor = int(neighbor)
            residual[neighbor] = residual.get(neighbor, 0.0) + push
            maybe_enqueue(neighbor)
    return scores


def ppr_top_k(
    adjacency: sp.csr_matrix,
    target: int,
    k: int,
    alpha: float = 0.25,
    eps: float = 2e-4,
) -> List[Tuple[int, float]]:
    """Top-``k`` most influential neighbours of one target node.

    Runs :func:`approximate_ppr` seeded at ``target`` and returns the ``k``
    highest-scoring *other* nodes as ``(node, score)`` pairs, ties broken by
    node id for determinism.
    """
    scores = approximate_ppr(adjacency, [target], alpha=alpha, eps=eps)
    scores.pop(int(target), None)
    ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
    return [(int(node), float(score)) for node, score in ranked[:k]]
