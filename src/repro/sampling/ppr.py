"""Approximate Personalized PageRank by local push.

Implements the Andersen–Chung–Lang (FOCS 2006) push algorithm the paper
cites for its influence-based sampling (Section IV-B): residual mass is
pushed from a queue of high-residual nodes until every residual drops below
``eps * degree``.  Complexity is ``O(1 / (eps * alpha))`` pushes —
independent of graph size — which is exactly the "local scope" property the
paper's influence score relies on.

Three implementations coexist:

* :func:`approximate_ppr` / :func:`ppr_top_k` — the scalar dict/deque push.
  Kept as the *reference oracle*: one target, pure-Python, easy to audit.
* The **dense** batch kernel (:func:`_batch_push`) behind
  :func:`batch_ppr_top_k` / :func:`batch_approximate_ppr`.  All targets
  advance in lock-step over flat numpy state (an ``(n_targets, n_nodes)``-
  stride residual/score matrix plus a per-target FIFO ring buffer); each
  super-step pops one queue head per live target and performs the neighbour
  scatter for the whole batch with a handful of array operations.
* The **sparse-frontier** batch kernel (:func:`_batch_push_sparse`) for
  graphs past :data:`DENSE_NODE_LIMIT`.  Same lock-step super-steps, but
  ``(target, node)`` state lives in dynamically allocated *slots* addressed
  through a vectorized open-addressing hash map, so per-target cost stays
  ``O(1/(eps * alpha))`` — the push algorithm's graph-size independence —
  instead of paying ``O(n_nodes)`` zeroing/scanning per target.

Because every target replays *exactly* the scalar algorithm's FIFO push
schedule (same floating-point operations in the same order), both batch
kernels are bit-for-bit equivalent to the oracle while being an order of
magnitude faster on realistic batches.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.nputil import expand_ranges, rank_within_sorted_groups, splitmix64


def approximate_ppr(
    adjacency: sp.csr_matrix,
    seeds: Iterable[int],
    alpha: float = 0.25,
    eps: float = 2e-4,
) -> Dict[int, float]:
    """Push-style approximate PPR from a seed set.

    Parameters
    ----------
    adjacency:
        CSR adjacency (treated as unweighted; symmetrise beforehand for the
        undirected influence semantics the paper uses).
    seeds:
        Nodes whose personalised distribution is computed; seed mass is
        split uniformly.
    alpha:
        Teleport probability (paper uses 0.25 for IBS training).
    eps:
        Residual tolerance (paper uses 2e-4).

    Returns
    -------
    Sparse score map ``node -> ppr`` containing only touched nodes.
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    if eps <= 0.0:
        raise ValueError(f"eps must be positive, got {eps}")
    seeds = list(seeds)
    if not seeds:
        return {}
    indptr, indices = adjacency.indptr, adjacency.indices
    degrees = np.diff(indptr)

    scores: Dict[int, float] = {}
    residual: Dict[int, float] = {}
    seed_mass = 1.0 / len(seeds)
    queue: deque[int] = deque()
    queued: set[int] = set()

    def maybe_enqueue(node: int) -> None:
        threshold = eps * max(int(degrees[node]), 1)
        if residual.get(node, 0.0) >= threshold and node not in queued:
            queue.append(node)
            queued.add(node)

    for seed in seeds:
        residual[seed] = residual.get(seed, 0.0) + seed_mass
    for seed in set(seeds):
        maybe_enqueue(seed)

    while queue:
        node = queue.popleft()
        queued.discard(node)
        mass = residual.get(node, 0.0)
        degree = int(degrees[node])
        threshold = eps * max(degree, 1)
        if mass < threshold:
            continue
        scores[node] = scores.get(node, 0.0) + alpha * mass
        residual[node] = 0.0
        if degree == 0:
            # Dangling node: teleport the rest of the mass back to itself.
            scores[node] += (1.0 - alpha) * mass
            continue
        push = (1.0 - alpha) * mass / degree
        for neighbor in indices[indptr[node] : indptr[node + 1]]:
            neighbor = int(neighbor)
            residual[neighbor] = residual.get(neighbor, 0.0) + push
            maybe_enqueue(neighbor)
    return scores


def ppr_top_k(
    adjacency: sp.csr_matrix,
    target: int,
    k: int,
    alpha: float = 0.25,
    eps: float = 2e-4,
) -> List[Tuple[int, float]]:
    """Top-``k`` most influential neighbours of one target node.

    Runs :func:`approximate_ppr` seeded at ``target`` and returns the ``k``
    highest-scoring *other* nodes as ``(node, score)`` pairs, ties broken by
    node id for determinism.
    """
    scores = approximate_ppr(adjacency, [target], alpha=alpha, eps=eps)
    scores.pop(int(target), None)
    ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
    return [(int(node), float(score)) for node, score in ranked[:k]]


# ---------------------------------------------------------------------------
# Vectorized batch kernel (the IBS hot path)
# ---------------------------------------------------------------------------


def _batch_push(
    indptr: np.ndarray,
    indices: np.ndarray,
    degrees: np.ndarray,
    thresholds: np.ndarray,
    targets: np.ndarray,
    alpha: float,
) -> np.ndarray:
    """Lock-step FIFO push for one chunk of targets.

    Returns the dense ``(len(targets), n_nodes)`` score matrix.  Each row
    replays the scalar :func:`approximate_ppr` push schedule for its target:
    a per-target FIFO ring buffer pops one node per super-step, and the
    neighbour residual updates + enqueue checks for the whole batch are done
    with flat gathers and scatters.  Within a push the ``(row, neighbour)``
    pairs are unique (rows differ across targets; the CSR has no duplicate
    columns), so plain fancy-indexed ``+=`` is exact.
    """
    chunk = len(targets)
    n = len(degrees)
    scores = np.zeros((chunk, n), dtype=np.float64)
    if n == 0 or chunk == 0:
        return scores
    # All (row, node) state is addressed through raveled views with
    # precomputed flat indices (row * n + node): one index computation feeds
    # every gather/scatter of a super-step.
    scores_flat = scores.reshape(-1)
    residual_flat = np.zeros(chunk * n, dtype=np.float64)
    queued_flat = np.zeros(chunk * n, dtype=bool)
    # Ring buffer: the `queued` mask caps each queue at n entries.
    ring = np.zeros((chunk, n), dtype=np.int64)
    head = np.zeros(chunk, dtype=np.int64)
    tail = np.zeros(chunk, dtype=np.int64)

    row_base = np.arange(chunk, dtype=np.int64) * n
    residual_flat[row_base + targets] = 1.0
    seeded = np.flatnonzero(1.0 >= thresholds[targets])
    ring[seeded, 0] = targets[seeded]
    tail[seeded] = 1
    queued_flat[row_base[seeded] + targets[seeded]] = True
    one_minus_alpha = 1.0 - alpha

    while True:
        active = np.flatnonzero(tail > head)
        if active.size == 0:
            break
        nodes = ring[active, head[active] % n]
        head[active] += 1
        popped = row_base[active] + nodes
        queued_flat[popped] = False
        # Residuals only grow while enqueued, so mass >= threshold here —
        # the scalar oracle's stale-entry guard can never fire either.
        mass = residual_flat[popped]
        scores_flat[popped] += alpha * mass
        residual_flat[popped] = 0.0

        node_degrees = degrees[nodes]
        dangling = node_degrees == 0
        if dangling.any():
            # Dangling node: teleport the rest of the mass back to itself.
            scores_flat[popped[dangling]] += one_minus_alpha * mass[dangling]
        pushing = np.flatnonzero(~dangling)
        if pushing.size == 0:
            continue
        sources = nodes[pushing]
        push = one_minus_alpha * mass[pushing] / node_degrees[pushing]
        counts = node_degrees[pushing]
        neighbor = indices[expand_ranges(indptr[sources], counts)]
        flat = np.repeat(row_base[active[pushing]], counts) + neighbor
        residual_flat[flat] += np.repeat(push, counts)

        crossed = (residual_flat[flat] >= thresholds[neighbor]) & ~queued_flat[flat]
        if not crossed.any():
            continue
        enqueue_flat = flat[crossed]
        queued_flat[enqueue_flat] = True
        enqueue_rows = enqueue_flat // n
        slots = tail[enqueue_rows] + rank_within_sorted_groups(enqueue_rows)
        ring[enqueue_rows, slots % n] = enqueue_flat - enqueue_rows * n
        np.add.at(tail, enqueue_rows, 1)
    return scores


def _default_chunk_size(num_nodes: int) -> int:
    # Bound the dense (chunk, n) float64 state to ~64 MB per matrix.
    return max(int(8e6 // max(num_nodes, 1)), 1)


# Above this node count the dense (chunk, n) state loses the push
# algorithm's graph-size-independent locality (O(n) zeroing + scanning per
# target dwarfs the O(1/(eps*alpha)) pushes), so the batch entry points
# switch to the sparse-frontier kernel: same lock-step schedule, but state
# lives in hash-addressed slots whose count tracks *touched* nodes only.
DENSE_NODE_LIMIT = 2_000_000

# Sparse-kernel chunking bounds slot state by touched nodes, not n, so the
# chunk can be much larger than the dense default; worst-case touched count
# is O(1/(eps*alpha)) per target (~20k at the paper's 0.25/2e-4 settings).
SPARSE_CHUNK_SIZE = 512


class _SlotMap:
    """Vectorized open-addressing map from int64 keys to dense slot ids.

    Keys are ``row * n_nodes + node`` composites; slots are handed out
    densely in first-insertion order, which lets the sparse kernel keep all
    per-(target, node) state (residual, score, queue membership) in flat
    slot-indexed arrays.  ``get_or_insert`` resolves a whole batch of keys
    (unique within the batch) with a handful of gathers per probe round;
    linear probing plus a power-of-two table keeps rounds short.
    """

    __slots__ = ("_table", "_mask", "keys", "size")

    def __init__(self, capacity: int = 1 << 14):
        self._table = np.full(capacity, -1, dtype=np.int64)
        self._mask = np.uint64(capacity - 1)
        self.keys = np.empty(capacity, dtype=np.int64)  # key of each slot
        self.size = 0

    def get_or_insert(self, batch: np.ndarray) -> np.ndarray:
        """Slot ids for ``batch`` (unique int64 keys), inserting new ones.

        New keys get slots ``size..size+n_new-1`` in first-probe-resolution
        order; callers detect them as ``slots >= previous_size``.
        """
        # Load factor <= 1/4: linear probing clusters quickly above that,
        # and probe rounds — not table memory — dominate the kernel cost.
        if (self.size + len(batch)) * 4 > len(self._table):
            capacity = len(self._table)
            while (self.size + len(batch)) * 4 > capacity:
                capacity *= 2
            self._rehash(capacity)
        if self.size + len(batch) > len(self.keys):
            grown = np.empty(max(len(self.keys) * 2, self.size + len(batch)), np.int64)
            grown[: self.size] = self.keys[: self.size]
            self.keys = grown
        out = np.empty(len(batch), dtype=np.int64)
        pending = np.arange(len(batch), dtype=np.int64)
        h = splitmix64(batch.astype(np.uint64))
        while pending.size:
            pos = (h & self._mask).astype(np.int64)
            slot = self._table[pos]
            occupied = slot >= 0
            match = np.zeros(pending.size, dtype=bool)
            match[occupied] = self.keys[slot[occupied]] == batch[pending[occupied]]
            out[pending[match]] = slot[match]
            resolved = match
            if not occupied.all():
                # Claim empty cells; several batch keys may probe the same
                # cell this round.  The reversed fancy write leaves the
                # *first* candidate in each cell (later writes land first),
                # so first occurrence wins without a sort; losers re-probe.
                cand = np.flatnonzero(~occupied)
                cells = pos[cand]
                self._table[cells[::-1]] = cand[::-1]
                winners = cand[self._table[cells] == cand]
                new_slots = self.size + np.arange(len(winners), dtype=np.int64)
                self._table[pos[winners]] = new_slots
                self.keys[new_slots] = batch[pending[winners]]
                out[pending[winners]] = new_slots
                self.size += len(winners)
                resolved = match.copy()
                resolved[winners] = True
            pending = pending[~resolved]
            h = h[~resolved] + np.uint64(1)
        return out

    def _rehash(self, capacity: int) -> None:
        self._table = np.full(capacity, -1, dtype=np.int64)
        self._mask = np.uint64(capacity - 1)
        slots = np.arange(self.size, dtype=np.int64)
        h = splitmix64(self.keys[: self.size].astype(np.uint64))
        while slots.size:
            pos = (h & self._mask).astype(np.int64)
            empty = self._table[pos] == -1
            placed = np.zeros(slots.size, dtype=bool)
            if empty.any():
                cand = np.flatnonzero(empty)
                cells = pos[cand]
                # Reversed write: the first candidate's slot id survives in
                # each contested cell and is already the final value.
                self._table[cells[::-1]] = slots[cand[::-1]]
                placed[cand[self._table[cells] == slots[cand]]] = True
            slots = slots[~placed]
            h = h[~placed] + np.uint64(1)


def _grown(array: np.ndarray, capacity: int) -> np.ndarray:
    """Zero-extended copy of ``array`` at ``capacity`` (slot-array growth)."""
    out = np.zeros(capacity, dtype=array.dtype)
    out[: len(array)] = array
    return out


def _batch_push_sparse(
    indptr: np.ndarray,
    indices: np.ndarray,
    degrees: np.ndarray,
    targets: np.ndarray,
    alpha: float,
    eps: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sparse-frontier lock-step FIFO push for one chunk of targets.

    Replays the same super-step schedule as :func:`_batch_push` — one queue
    pop per live target per step, whole-batch neighbour scatter — but all
    ``(row, node)`` state lives in hash-allocated slots, so cost and memory
    track the number of *touched* pairs instead of ``chunk * n_nodes``.
    Returns ``(rows, nodes, scores)`` of every touched pair with a positive
    score, grouped by row (slot-allocation order within a row).
    """
    chunk = len(targets)
    n = np.int64(len(degrees))
    one_minus_alpha = 1.0 - alpha

    slot_map = _SlotMap()
    cap = len(slot_map.keys)
    residual = np.zeros(cap, dtype=np.float64)
    scores = np.zeros(cap, dtype=np.float64)
    queued = np.zeros(cap, dtype=bool)
    slot_row = np.zeros(cap, dtype=np.int64)
    slot_node = np.zeros(cap, dtype=np.int64)

    rows0 = np.arange(chunk, dtype=np.int64)
    if chunk == 0:
        return rows0, rows0.copy(), np.zeros(0, dtype=np.float64)
    seed_slots = slot_map.get_or_insert(rows0 * n + targets)
    if len(slot_map.keys) > cap:
        cap = len(slot_map.keys)
        residual, scores, queued, slot_row, slot_node = (
            _grown(residual, cap),
            _grown(scores, cap),
            _grown(queued, cap),
            _grown(slot_row, cap),
            _grown(slot_node, cap),
        )
    residual[seed_slots] = 1.0
    slot_row[seed_slots] = rows0
    slot_node[seed_slots] = targets

    # Per-row FIFO ring buffers over slot ids; capacity doubles on demand
    # (unwrapping live entries), so queue state also tracks touched counts.
    ring_cap = 64
    ring = np.zeros((chunk, ring_cap), dtype=np.int64)
    head = np.zeros(chunk, dtype=np.int64)
    tail = np.zeros(chunk, dtype=np.int64)
    seeded = np.flatnonzero(1.0 >= eps * np.maximum(degrees[targets], 1))
    ring[seeded, 0] = seed_slots[seeded]
    tail[seeded] = 1
    queued[seed_slots[seeded]] = True

    while True:
        active = np.flatnonzero(tail > head)
        if active.size == 0:
            break
        popped = ring[active, head[active] % ring_cap]
        head[active] += 1
        queued[popped] = False
        # Residuals only grow while enqueued, so mass >= threshold here —
        # the scalar oracle's stale-entry guard can never fire either.
        mass = residual[popped]
        scores[popped] += alpha * mass
        residual[popped] = 0.0

        nodes = slot_node[popped]
        node_degrees = degrees[nodes]
        dangling = node_degrees == 0
        if dangling.any():
            # Dangling node: teleport the rest of the mass back to itself.
            scores[popped[dangling]] += one_minus_alpha * mass[dangling]
        pushing = np.flatnonzero(~dangling)
        if pushing.size == 0:
            continue
        sources = nodes[pushing]
        push = one_minus_alpha * mass[pushing] / node_degrees[pushing]
        counts = node_degrees[pushing]
        neighbor = indices[expand_ranges(indptr[sources], counts)]
        # active is sorted and each active row pops exactly one slot, so the
        # repeated rows — and every per-row grouping below — stay sorted.
        rows_rep = np.repeat(active[pushing], counts)
        previous_size = slot_map.size
        slots = slot_map.get_or_insert(rows_rep * n + neighbor)
        if len(slot_map.keys) > cap:
            cap = len(slot_map.keys)
            residual, scores, queued, slot_row, slot_node = (
                _grown(residual, cap),
                _grown(scores, cap),
                _grown(queued, cap),
                _grown(slot_row, cap),
                _grown(slot_node, cap),
            )
        fresh = slots >= previous_size
        if fresh.any():
            slot_row[slots[fresh]] = rows_rep[fresh]
            slot_node[slots[fresh]] = neighbor[fresh]
        residual[slots] += np.repeat(push, counts)

        thresholds = eps * np.maximum(degrees[neighbor], 1)
        crossed = (residual[slots] >= thresholds) & ~queued[slots]
        if not crossed.any():
            continue
        enqueue_slots = slots[crossed]
        enqueue_rows = rows_rep[crossed]
        queued[enqueue_slots] = True
        new_counts = np.bincount(enqueue_rows, minlength=chunk)
        live = tail - head
        needed = int((live + new_counts).max())
        if needed > ring_cap:
            new_cap = ring_cap
            while new_cap < needed:
                new_cap *= 2
            new_ring = np.zeros((chunk, new_cap), dtype=np.int64)
            live_rows = np.repeat(rows0, live)
            live_pos = expand_ranges(head, live)
            new_ring[live_rows, live_pos - np.repeat(head, live)] = ring[
                live_rows, live_pos % ring_cap
            ]
            ring, ring_cap = new_ring, new_cap
            tail = live.copy()
            head[:] = 0
        slot_positions = tail[enqueue_rows] + rank_within_sorted_groups(enqueue_rows)
        ring[enqueue_rows, slot_positions % ring_cap] = enqueue_slots
        tail += new_counts

    touched = np.flatnonzero(scores[: slot_map.size] > 0.0)
    order = np.argsort(slot_row[touched], kind="stable")
    touched = touched[order]
    return slot_row[touched], slot_node[touched], scores[touched]


def _resolve_kernel(kernel: Optional[str], num_nodes: int) -> str:
    if kernel is None:
        return "dense" if num_nodes <= DENSE_NODE_LIMIT else "sparse"
    if kernel not in ("dense", "sparse"):
        raise ValueError(f"kernel must be 'dense', 'sparse' or None, got {kernel!r}")
    return kernel


def _batch_results(
    adjacency: sp.csr_matrix,
    targets: np.ndarray,
    alpha: float,
    eps: float,
    chunk_size: Optional[int],
    kernel: Optional[str],
) -> Iterator[Tuple[int, np.ndarray, np.ndarray]]:
    """Run the selected kernel chunk-wise, yielding ``(target, nodes, scores)``.

    ``nodes``/``scores`` cover every touched node with a positive score;
    both kernels produce identical values, so consumers are agnostic.
    """
    indptr, indices = adjacency.indptr, adjacency.indices
    degrees = np.diff(indptr).astype(np.int64)
    mode = _resolve_kernel(kernel, len(degrees))
    if chunk_size is None:
        chunk_size = (
            _default_chunk_size(len(degrees)) if mode == "dense" else SPARSE_CHUNK_SIZE
        )
    thresholds = eps * np.maximum(degrees, 1) if mode == "dense" else None
    for start in range(0, len(targets), chunk_size):
        chunk_targets = targets[start : start + chunk_size]
        if mode == "dense":
            scores = _batch_push(
                indptr, indices, degrees, thresholds, chunk_targets, alpha
            )
            for row, target in enumerate(chunk_targets):
                touched = np.flatnonzero(scores[row])
                yield int(target), touched, scores[row, touched]
        else:
            rows, nodes, values = _batch_push_sparse(
                indptr, indices, degrees, chunk_targets, alpha, eps
            )
            counts = np.bincount(rows, minlength=len(chunk_targets))
            starts = np.concatenate([[0], np.cumsum(counts)])
            for row, target in enumerate(chunk_targets):
                lo, hi = starts[row], starts[row + 1]
                yield int(target), nodes[lo:hi], values[lo:hi]


def batch_approximate_ppr(
    adjacency: sp.csr_matrix,
    targets: Iterable[int],
    alpha: float = 0.25,
    eps: float = 2e-4,
    chunk_size: Optional[int] = None,
    kernel: Optional[str] = None,
) -> Dict[int, Dict[int, float]]:
    """Single-seed :func:`approximate_ppr` for many targets at once.

    Returns ``target -> {node: ppr}`` sparse score maps, bit-identical to
    running the scalar oracle per target.  ``chunk_size`` bounds the
    per-chunk working set (dense kernel: ~64 MB per dense matrix, a few of
    which — scores, residuals, queue state — live at once; sparse kernel:
    slot state proportional to touched nodes).

    ``adjacency`` must be a canonical CSR without duplicate column entries
    per row (what :func:`repro.transform.adjacency.build_csr` produces);
    with duplicates the kernels' fancy-indexed scatter collapses them while
    the scalar oracle pushes per occurrence, and the results diverge.

    ``kernel`` selects ``'dense'`` or ``'sparse'`` explicitly; ``None``
    (default) picks dense up to :data:`DENSE_NODE_LIMIT` nodes and the
    sparse-frontier kernel beyond it.  Both are exact.
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    if eps <= 0.0:
        raise ValueError(f"eps must be positive, got {eps}")
    targets = np.asarray(list(targets), dtype=np.int64)
    results: Dict[int, Dict[int, float]] = {}
    for target, nodes, values in _batch_results(
        adjacency, targets, alpha, eps, chunk_size, kernel
    ):
        results[target] = {
            int(node): float(score) for node, score in zip(nodes, values)
        }
    return results


def batch_ppr_top_k(
    adjacency: sp.csr_matrix,
    targets: Iterable[int],
    k: int,
    alpha: float = 0.25,
    eps: float = 2e-4,
    chunk_size: Optional[int] = None,
    kernel: Optional[str] = None,
) -> Dict[int, List[Tuple[int, float]]]:
    """Top-``k`` influence lists for *all* targets in one batched run.

    The vectorized equivalent of calling :func:`ppr_top_k` per target:
    returns ``target -> [(node, score), ...]`` with the target itself
    excluded, sorted by descending score with ties broken by node id.
    Selections and scores match the scalar oracle exactly (both kernels
    replay the same push schedule per target).  ``adjacency`` must be a
    canonical CSR without duplicate column entries per row; ``kernel``
    picks the dense or sparse-frontier kernel as in
    :func:`batch_approximate_ppr`.
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    if eps <= 0.0:
        raise ValueError(f"eps must be positive, got {eps}")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    targets = np.asarray(list(targets), dtype=np.int64)
    results: Dict[int, List[Tuple[int, float]]] = {}
    for target, nodes, values in _batch_results(
        adjacency, targets, alpha, eps, chunk_size, kernel
    ):
        keep = nodes != target
        nodes, values = nodes[keep], values[keep]
        order = np.lexsort((nodes, -values))[:k]
        results[target] = [
            (int(node), float(score))
            for node, score in zip(nodes[order], values[order])
        ]
    return results


def batch_ppr_top_k_with_support(
    adjacency: sp.csr_matrix,
    targets: Iterable[int],
    k: int,
    alpha: float = 0.25,
    eps: float = 2e-4,
    chunk_size: Optional[int] = None,
    kernel: Optional[str] = None,
) -> Dict[int, Tuple[List[Tuple[int, float]], np.ndarray]]:
    """:func:`batch_ppr_top_k` plus, per target, the push schedule's *support*.

    The support set is every node whose state the push schedule read: the
    pushed nodes (exactly the nodes with a positive score — a node's score
    only changes when it is itself popped) union their out-neighbours in
    ``adjacency`` (their rows are scattered to and their degrees compared
    against the ``eps``-threshold) union the target (whose degree gates
    even a never-popped run).  Consequently a graph edit whose endpoints
    all fall *outside* the support cannot change any value the schedule
    observed, and the retained result replays bit-identically on the new
    graph — the invalidation rule :class:`repro.kg.epoch.LiveGraph`
    applies.  Top-k pairs are byte-identical to :func:`batch_ppr_top_k`
    (the kernels and the post-processing are shared).
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    if eps <= 0.0:
        raise ValueError(f"eps must be positive, got {eps}")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    indptr, indices = adjacency.indptr, adjacency.indices
    targets = np.asarray(list(targets), dtype=np.int64)
    results: Dict[int, Tuple[List[Tuple[int, float]], np.ndarray]] = {}
    for target, nodes, values in _batch_results(
        adjacency, targets, alpha, eps, chunk_size, kernel
    ):
        if len(nodes):
            starts = indptr[nodes].astype(np.int64)
            counts = (indptr[nodes + 1] - indptr[nodes]).astype(np.int64)
            neighbours = indices[expand_ranges(starts, counts)]
            support = np.unique(
                np.concatenate(
                    [nodes, neighbours, np.asarray([target], dtype=np.int64)]
                )
            )
        else:
            support = np.asarray([target], dtype=np.int64)
        keep = nodes != target
        nodes, values = nodes[keep], values[keep]
        order = np.lexsort((nodes, -values))[:k]
        pairs = [
            (int(node), float(score))
            for node, score in zip(nodes[order], values[order])
        ]
        results[target] = (pairs, support.astype(np.int64))
    return results
