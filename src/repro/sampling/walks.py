"""Vectorised random walks over a CSR adjacency.

All walkers advance in lock-step: one numpy draw per step for the whole
frontier.  Dead-end walkers (zero out-degree in the walk projection) halt in
place, matching the behaviour of GraphSAINT's reference sampler.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.kg.graph import KnowledgeGraph
from repro.transform.adjacency import Direction


class RandomWalkEngine:
    """Runs uniform random walks on (a projection of) a knowledge graph.

    Parameters
    ----------
    kg:
        Source graph.
    direction:
        Which edge orientation the walk may traverse; GraphSAINT's URW walks
        the undirected projection (``'both'``).
    adjacency:
        Optional prebuilt CSR projection.  When omitted the engine pulls the
        shared one from :func:`repro.kg.cache.artifacts_for`, so every
        engine over the same graph/direction reuses one matrix.
    """

    def __init__(
        self,
        kg: KnowledgeGraph,
        direction: Direction = "both",
        adjacency: Optional[sp.csr_matrix] = None,
    ):
        self.kg = kg
        if adjacency is None:
            from repro.kg.cache import artifacts_for

            adjacency = artifacts_for(kg).csr(direction)
        self.adjacency: sp.csr_matrix = adjacency
        self.indptr = self.adjacency.indptr
        self.indices = self.adjacency.indices
        self.degrees = np.diff(self.indptr)

    def walk(
        self,
        roots: np.ndarray,
        length: int,
        rng: np.random.Generator,
        return_paths: bool = False,
    ) -> np.ndarray:
        """Walk ``length`` steps from each root.

        Returns the unique set of visited nodes (roots included), or the
        full ``(num_roots, length + 1)`` path matrix when ``return_paths``.
        """
        roots = np.asarray(roots, dtype=np.int64)
        if roots.ndim != 1:
            raise ValueError("roots must be a 1-D array of node ids")
        paths = np.empty((len(roots), length + 1), dtype=np.int64)
        paths[:, 0] = roots
        current = roots.copy()
        for step in range(1, length + 1):
            degree = self.degrees[current]
            movable = degree > 0
            if np.any(movable):
                offsets = (
                    rng.random(int(np.count_nonzero(movable))) * degree[movable]
                ).astype(np.int64)
                next_nodes = self.indices[self.indptr[current[movable]] + offsets]
                current = current.copy()
                current[movable] = next_nodes
            paths[:, step] = current
        if return_paths:
            return paths
        return np.unique(paths)

    def neighbors(self, node: int) -> np.ndarray:
        """Walk-projection neighbours of ``node``."""
        return self.indices[self.indptr[node] : self.indptr[node + 1]]
