"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``.  This file exists
so the package remains installable in offline environments where the
``wheel`` package (required for PEP 660 editable installs) is unavailable:

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
