"""Loss functions."""

import numpy as np
import pytest

from repro.nn.functional import (
    accuracy,
    bce_with_logits,
    cross_entropy,
    margin_ranking_loss,
    nll_loss,
)
from repro.nn.tensor import Tensor


def test_cross_entropy_matches_manual():
    logits = np.asarray([[2.0, 1.0, 0.1], [0.5, 2.5, 0.2]])
    labels = np.asarray([0, 1])
    loss = cross_entropy(Tensor(logits), labels).item()
    probs = np.exp(logits) / np.exp(logits).sum(axis=1, keepdims=True)
    manual = -np.log(probs[np.arange(2), labels]).mean()
    assert loss == pytest.approx(manual)


def test_cross_entropy_gradient_direction():
    logits = Tensor(np.zeros((1, 3)), requires_grad=True)
    loss = cross_entropy(logits, np.asarray([1]))
    loss.backward()
    # Gradient should push label-1 logit up (negative grad) and others down.
    assert logits.grad[0, 1] < 0
    assert logits.grad[0, 0] > 0 and logits.grad[0, 2] > 0


def test_nll_empty_batch():
    assert nll_loss(Tensor(np.zeros((0, 3))), np.asarray([], dtype=int)).item() == 0.0


def test_bce_with_logits_matches_manual():
    logits = np.asarray([1.5, -2.0, 0.0])
    targets = np.asarray([1.0, 0.0, 1.0])
    loss = bce_with_logits(Tensor(logits), targets).item()
    probs = 1 / (1 + np.exp(-logits))
    manual = -(targets * np.log(probs) + (1 - targets) * np.log(1 - probs)).mean()
    assert loss == pytest.approx(manual, rel=1e-6)


def test_margin_ranking_loss():
    positive = Tensor(np.asarray([3.0, 0.5]))
    negative = Tensor(np.asarray([1.0, 1.0]))
    # max(0, 1 - 3 + 1) = 0; max(0, 1 - 0.5 + 1) = 1.5 → mean 0.75.
    loss = margin_ranking_loss(positive, negative, margin=1.0)
    assert loss.item() == pytest.approx(0.75)


def test_margin_loss_zero_when_separated():
    positive = Tensor(np.asarray([10.0]))
    negative = Tensor(np.asarray([0.0]))
    assert margin_ranking_loss(positive, negative, margin=1.0).item() == 0.0


def test_accuracy_from_logits_and_labels():
    logits = np.asarray([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
    labels = np.asarray([0, 1, 1])
    assert accuracy(logits, labels) == pytest.approx(2 / 3)
    assert accuracy(np.asarray([0, 1, 1]), labels) == 1.0
    assert accuracy(np.empty((0, 2)), np.asarray([], dtype=int)) == 0.0
