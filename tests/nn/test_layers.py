"""Module system: registration, state dict, modes."""

import numpy as np
import pytest

from repro.nn.layers import Dropout, Embedding, Linear, Module, ModuleList, Parameter
from repro.nn.tensor import Tensor, no_grad


def test_linear_forward_shape():
    rng = np.random.default_rng(0)
    layer = Linear(4, 3, rng)
    out = layer(Tensor(rng.normal(size=(5, 4))))
    assert out.shape == (5, 3)


def test_linear_without_bias():
    rng = np.random.default_rng(0)
    layer = Linear(4, 3, rng, bias=False)
    assert layer.bias is None
    assert len(layer.parameters()) == 1


def test_parameter_registration_recursive():
    rng = np.random.default_rng(0)

    class Net(Module):
        def __init__(self):
            super().__init__()
            self.first = Linear(4, 8, rng)
            self.second = Linear(8, 2, rng)

        def forward(self, x):
            return self.second(self.first(x).relu())

    net = Net()
    assert len(net.parameters()) == 4  # two weights + two biases
    assert net.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2
    assert net.parameter_nbytes() == net.num_parameters() * 8


def test_named_parameters_paths():
    rng = np.random.default_rng(0)

    class Net(Module):
        def __init__(self):
            super().__init__()
            self.inner = Linear(2, 2, rng)

        def forward(self, x):
            return self.inner(x)

    names = dict(Net().named_parameters())
    assert "inner.weight" in names and "inner.bias" in names


def test_embedding_lookup_and_all():
    rng = np.random.default_rng(0)
    table = Embedding(10, 4, rng)
    rows = table(np.asarray([1, 1, 3]))
    assert rows.shape == (3, 4)
    assert np.allclose(rows.data[0], rows.data[1])
    assert table.all().shape == (10, 4)


def test_parameter_survives_no_grad():
    rng = np.random.default_rng(0)
    with no_grad():
        parameter = Parameter(rng.normal(size=(2, 2)))
    assert parameter.requires_grad


def test_dropout_layer_respects_mode():
    rng = np.random.default_rng(0)
    layer = Dropout(0.5, np.random.default_rng(1))
    x = Tensor(np.ones((50, 10)))
    layer.train()
    assert (layer(x).data == 0).any()
    layer.eval()
    assert (layer(x).data == 1).all()


def test_train_eval_propagates():
    rng = np.random.default_rng(0)

    class Net(Module):
        def __init__(self):
            super().__init__()
            self.drop = Dropout(0.5, rng)

        def forward(self, x):
            return self.drop(x)

    net = Net()
    net.eval()
    assert not net.drop.training
    net.train()
    assert net.drop.training


def test_module_list():
    rng = np.random.default_rng(0)
    layers = ModuleList([Linear(2, 2, rng), Linear(2, 2, rng)])
    assert len(layers) == 2
    assert len(layers.parameters()) == 4
    layers.append(Linear(2, 2, rng))
    assert len(layers) == 3
    assert layers[2].out_features == 2
    with pytest.raises(RuntimeError):
        layers(Tensor(np.ones((1, 2))))


def test_state_dict_roundtrip():
    rng = np.random.default_rng(0)
    source = Linear(3, 3, rng)
    target = Linear(3, 3, np.random.default_rng(99))
    target.load_state_dict(source.state_dict())
    assert np.allclose(source.weight.data, target.weight.data)


def test_state_dict_mismatch_raises():
    rng = np.random.default_rng(0)
    layer = Linear(3, 3, rng)
    with pytest.raises(KeyError):
        layer.load_state_dict({"weight": np.zeros((3, 3))})  # bias missing
    state = layer.state_dict()
    state["weight"] = np.zeros((2, 2))
    with pytest.raises(ValueError):
        layer.load_state_dict(state)


def test_zero_grad():
    rng = np.random.default_rng(0)
    layer = Linear(2, 2, rng)
    loss = (layer(Tensor(np.ones((1, 2)))) ** 2).sum()
    loss.backward()
    assert layer.weight.grad is not None
    layer.zero_grad()
    assert layer.weight.grad is None
