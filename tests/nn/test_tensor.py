"""Autograd: every op is checked against finite differences."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.nn.tensor import Tensor, concat, is_grad_enabled, no_grad, spmm, stack

RNG = np.random.default_rng(42)


def numeric_gradient(func, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    grad = np.zeros_like(x)
    flat_x, flat_g = x.ravel(), grad.ravel()
    for i in range(x.size):
        original = flat_x[i]
        flat_x[i] = original + eps
        hi = func()
        flat_x[i] = original - eps
        lo = func()
        flat_x[i] = original
        flat_g[i] = (hi - lo) / (2 * eps)
    return grad


def check_gradient(build_loss, x: Tensor, tol: float = 1e-6):
    loss = build_loss(x)
    loss.backward()
    expected = numeric_gradient(lambda: build_loss(Tensor(x.data)).item(), x.data)
    assert np.abs(x.grad - expected).max() < tol


@pytest.mark.parametrize(
    "op",
    [
        lambda t: (t + 2.0).sum(),
        lambda t: (2.0 - t).sum(),
        lambda t: (t * 3.0 + t).sum(),
        lambda t: (t * t).sum(),
        lambda t: (t / 2.0).sum(),
        lambda t: (t ** 3).sum(),
        lambda t: (-t).sum(),
        lambda t: t.relu().sum(),
        lambda t: t.sigmoid().sum(),
        lambda t: t.tanh().sum(),
        lambda t: t.exp().sum(),
        lambda t: t.abs().sum(),
        lambda t: t.log_softmax(axis=-1).sum(),
        lambda t: t.softmax(axis=-1).sum(axis=0).sum(),
        lambda t: t.mean(),
        lambda t: t.mean(axis=1).sum(),
        lambda t: t.sum(axis=0, keepdims=True).sum(),
        lambda t: t.reshape(6, 2).sum(axis=1).sum(),
        lambda t: t.T.sum(axis=0).sum(),
        lambda t: t[1:3].sum(),
    ],
)
def test_elementwise_ops_gradcheck(op):
    x = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
    check_gradient(op, x, tol=1e-5)


def test_log_gradcheck():
    x = Tensor(RNG.random((3, 3)) + 0.5, requires_grad=True)
    check_gradient(lambda t: t.log().sum(), x)


def test_matmul_gradcheck_both_sides():
    a = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
    b = Tensor(RNG.normal(size=(4, 2)), requires_grad=True)
    loss = (a @ b).sum()
    loss.backward()
    na = numeric_gradient(lambda: float((a.data @ b.data).sum()), a.data)
    nb = numeric_gradient(lambda: float((a.data @ b.data).sum()), b.data)
    assert np.abs(a.grad - na).max() < 1e-6
    assert np.abs(b.grad - nb).max() < 1e-6


def test_broadcast_add_unbroadcasts_grad():
    x = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
    bias = Tensor(RNG.normal(size=(4,)), requires_grad=True)
    loss = (x + bias).sum()
    loss.backward()
    assert bias.grad.shape == (4,)
    assert np.allclose(bias.grad, 3.0)


def test_broadcast_mul_scalar_tensor():
    x = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
    scale = Tensor(np.asarray(2.0), requires_grad=True)
    loss = (x * scale).sum()
    loss.backward()
    assert np.allclose(scale.grad, x.data.sum())


def test_gather_rows_gradcheck():
    x = Tensor(RNG.normal(size=(5, 3)), requires_grad=True)
    idx = np.asarray([0, 2, 2, 4])
    check_gradient(lambda t: (t.gather_rows(idx) ** 2).sum(), x)


def test_index_add_gradcheck():
    x = Tensor(RNG.normal(size=(5, 3)), requires_grad=True)
    seg = np.asarray([0, 1, 0, 2, 1])

    def loss(t):
        return (t.index_add(seg, 3) ** 2).sum()

    check_gradient(loss, x, tol=1e-5)


def test_spmm_gradcheck():
    matrix = sp.random(6, 5, density=0.5, random_state=0, format="csr")
    x = Tensor(RNG.normal(size=(5, 3)), requires_grad=True)

    def loss(t):
        return (spmm(matrix, t) ** 2).sum()

    check_gradient(loss, x, tol=1e-5)


def test_concat_and_stack_gradcheck():
    a = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
    b = Tensor(RNG.normal(size=(4, 3)), requires_grad=True)
    loss = (concat([a, b], axis=0) ** 2).sum()
    loss.backward()
    assert np.allclose(a.grad, 2 * a.data)
    assert np.allclose(b.grad, 2 * b.data)

    c = Tensor(RNG.normal(size=(3,)), requires_grad=True)
    d = Tensor(RNG.normal(size=(3,)), requires_grad=True)
    loss = (stack([c, d], axis=0) * np.asarray([[1.0], [2.0]])).sum()
    loss.backward()
    assert np.allclose(c.grad, 1.0)
    assert np.allclose(d.grad, 2.0)


def test_dropout_train_and_eval():
    x = Tensor(np.ones((100, 10)), requires_grad=True)
    rng = np.random.default_rng(0)
    dropped = x.dropout(0.5, rng, training=True)
    kept = dropped.data != 0
    # Inverted dropout scales surviving entries by 1/(1-rate).
    assert np.allclose(dropped.data[kept], 2.0)
    identical = x.dropout(0.5, rng, training=False)
    assert identical is x
    with pytest.raises(ValueError):
        x.dropout(1.5, rng)


def test_backward_requires_grad():
    x = Tensor(np.ones(3))
    with pytest.raises(RuntimeError):
        x.backward()


def test_backward_needs_scalar_or_explicit_grad():
    x = Tensor(np.ones(3), requires_grad=True)
    y = x * 2.0
    with pytest.raises(RuntimeError):
        y.backward()
    y.backward(np.ones(3))
    assert np.allclose(x.grad, 2.0)


def test_grad_accumulates_across_uses():
    x = Tensor(np.ones((2, 2)), requires_grad=True)
    loss = (x + x).sum()
    loss.backward()
    assert np.allclose(x.grad, 2.0)


def test_no_grad_suppresses_tape():
    x = Tensor(np.ones(3), requires_grad=True)
    with no_grad():
        assert not is_grad_enabled()
        y = x * 2.0
        assert not y.requires_grad
    assert is_grad_enabled()


def test_diamond_graph_gradient():
    x = Tensor(np.asarray([2.0]), requires_grad=True)
    a = x * 3.0
    b = x * 4.0
    loss = (a * b).sum()  # 12 x^2 -> d/dx = 24x = 48
    loss.backward()
    assert np.allclose(x.grad, 48.0)


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 4), st.integers(1, 4), st.integers(0, 1000))
def test_matmul_shapes_property(n, m, seed):
    rng = np.random.default_rng(seed)
    a = Tensor(rng.normal(size=(n, m)), requires_grad=True)
    b = Tensor(rng.normal(size=(m, 2)), requires_grad=True)
    out = (a @ b).sum()
    out.backward()
    assert a.grad.shape == a.data.shape
    assert b.grad.shape == b.data.shape
