"""Checkpoint artifact round-trips and structured corruption errors.

Mirrors ``tests/kg/test_store.py``: the happy path must be bit-exact
(save → load → rebuild → identical predictions), and every corrupted
byte pattern must surface as a :class:`CheckpointError` naming the
problem — never as silently wrong parameters.
"""

import json
import zlib

import numpy as np
import pytest

from repro.models import (
    ModelConfig,
    RGCNLinkPredictor,
    RGCNNodeClassifier,
    SeHGNNClassifier,
    ShaDowSAINTClassifier,
)
from repro.nn.checkpoint import (
    CheckpointError,
    load_checkpoint,
    read_checkpoint_meta,
    save_checkpoint,
)
from repro.nn.layers import StateDictMismatch

CONFIG = ModelConfig(hidden_dim=16, num_layers=2, dropout=0.0, lr=0.05, batch_size=16, seed=3)

NC_MODELS = [
    RGCNNodeClassifier,
    SeHGNNClassifier,
    ShaDowSAINTClassifier,
]


def _train_briefly(model, epochs=3):
    rng = np.random.default_rng(0)
    for _ in range(epochs):
        model.train_epoch(rng)
    return model


# -- round trips ----------------------------------------------------------


@pytest.mark.parametrize("model_cls", NC_MODELS)
def test_nc_round_trip_bit_identical(toy_kg, toy_task, model_cls, tmp_path):
    model = _train_briefly(model_cls(toy_kg, toy_task, CONFIG))
    expected = model.predict_logits()
    path = str(tmp_path / "model.ckpt")
    manifest = save_checkpoint(model, path, metrics={"test_metric": 0.5})
    assert manifest["parameters"] == model.num_parameters()

    rebuilt = load_checkpoint(path).build_model(toy_kg)
    assert rebuilt is not model
    np.testing.assert_array_equal(rebuilt.predict_logits(), expected)


def test_lp_round_trip_bit_identical(toy_kg, tmp_path):
    from repro.core.tasks import LinkPredictionTask, Split

    papers = np.asarray([toy_kg.node_vocab.id(f"p{i}") for i in range(6)])
    authors = np.asarray([toy_kg.node_vocab.id(f"a{i}") for i in range(3)])
    task = LinkPredictionTask(
        name="HA",
        predicate=toy_kg.relation_vocab.id("hasAuthor"),
        head_class=toy_kg.class_vocab.id("Paper"),
        tail_class=toy_kg.class_vocab.id("Author"),
        edges=np.stack([papers, np.repeat(authors, 2)], axis=1),
        split=Split(np.arange(4), np.asarray([4]), np.asarray([5])),
    )
    model = _train_briefly(RGCNLinkPredictor(toy_kg, task, CONFIG))
    pool = model.candidate_pool()
    heads = np.repeat(papers[:2], len(pool))
    tails = np.tile(pool, 2)
    expected = model.score_pairs(heads, tails)

    path = str(tmp_path / "lp.ckpt")
    save_checkpoint(model, path)
    rebuilt = load_checkpoint(path).build_model(toy_kg)
    np.testing.assert_array_equal(rebuilt.score_pairs(heads, tails), expected)
    np.testing.assert_array_equal(rebuilt.candidate_pool(), pool)
    np.testing.assert_array_equal(rebuilt.task.edges, task.edges)


def test_round_trip_preserves_task_and_metadata(toy_kg, toy_task, tmp_path):
    model = ShaDowSAINTClassifier(toy_kg, toy_task, CONFIG, depth=1, fanout=2)
    path = str(tmp_path / "shadow.ckpt")
    save_checkpoint(model, path, metrics={"test_metric": 0.75, "metric": "accuracy"})

    checkpoint = load_checkpoint(path)
    assert checkpoint.architecture == "ShaDowSAINT"
    assert checkpoint.graph_name == "toy"
    assert checkpoint.model_kwargs == {"depth": 1, "fanout": 2}
    assert checkpoint.metrics["test_metric"] == 0.75
    assert checkpoint.config == CONFIG
    task = checkpoint.task
    assert task.task_type == "NC"
    assert task.name == toy_task.name
    np.testing.assert_array_equal(task.target_nodes, toy_task.target_nodes)
    np.testing.assert_array_equal(task.labels, toy_task.labels)
    np.testing.assert_array_equal(task.split.train, toy_task.split.train)

    rebuilt = checkpoint.build_model(toy_kg)
    assert rebuilt.depth == 1 and rebuilt.fanout == 2
    assert not rebuilt.training  # served models come back in eval mode


def test_read_checkpoint_meta_is_header_only(toy_kg, toy_task, tmp_path):
    model = RGCNNodeClassifier(toy_kg, toy_task, CONFIG)
    path = str(tmp_path / "meta.ckpt")
    save_checkpoint(model, path, metrics={"test_metric": 0.9})
    meta = read_checkpoint_meta(path)
    assert meta["architecture"] == "RGCN"
    assert meta["graph"] == "toy"
    assert meta["task_name"] == "PV"
    assert meta["task_type"] == "NC"
    assert meta["num_parameters"] == model.num_parameters()
    assert meta["metrics"]["test_metric"] == 0.9
    assert meta["nbytes"] > 0


def test_build_model_rejects_wrong_graph(toy_kg, toy_task, tmp_path):
    from repro.kg.graph import KnowledgeGraph

    model = RGCNNodeClassifier(toy_kg, toy_task, CONFIG)
    path = str(tmp_path / "g.ckpt")
    save_checkpoint(model, path)
    other = KnowledgeGraph.build(
        [(f"p{i}", "Paper") for i in range(6)]
        + [(f"a{i}", "Author") for i in range(3)]
        + [("v0", "Venue"), ("v1", "Venue")]
        + [(f"m{i}", "Movie") for i in range(4)],
        [("p0", "hasAuthor", "a0")],
        name="other",
    )
    with pytest.raises(CheckpointError, match="trained on graph 'toy'"):
        load_checkpoint(path).build_model(other)


def test_skewed_checkpoint_fails_loudly_not_nan(toy_kg, toy_task, tmp_path):
    """A checkpoint from a differently-sized model must raise, not half-load."""
    small = RGCNNodeClassifier(toy_kg, toy_task, CONFIG)
    path = str(tmp_path / "skew.ckpt")
    save_checkpoint(small, path)
    checkpoint = load_checkpoint(path)
    wide = RGCNNodeClassifier(
        toy_kg, toy_task, ModelConfig(hidden_dim=32, num_layers=2, dropout=0.0)
    )
    with pytest.raises(StateDictMismatch, match="shape mismatch"):
        wide.load_state_dict(checkpoint.state)


# -- corruption: every structural failure is a CheckpointError ------------


@pytest.fixture
def saved(toy_kg, toy_task, tmp_path):
    model = RGCNNodeClassifier(toy_kg, toy_task, CONFIG)
    path = str(tmp_path / "victim.ckpt")
    save_checkpoint(model, path)
    return path


def _corrupt(path, offset, value):
    with open(path, "r+b") as handle:
        handle.seek(offset)
        handle.write(value)


def _rewrite_header(path, mutate):
    """Parse, mutate and re-stamp the JSON header (valid CRC, skewed body)."""
    with open(path, "rb") as handle:
        raw = handle.read()
    length = int(np.frombuffer(raw, dtype="<u4", count=1, offset=12)[0])
    header = json.loads(raw[20 : 20 + length].decode("utf-8"))
    mutate(header)
    body = raw[(20 + length + 63) // 64 * 64 :]
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    with open(path, "wb") as handle:
        handle.write(raw[:8])
        handle.write(
            np.asarray([1, len(header_bytes), zlib.crc32(header_bytes)], dtype="<u4").tobytes()
        )
        handle.write(header_bytes)
        position = 20 + len(header_bytes)
        handle.write(b"\x00" * ((position + 63) // 64 * 64 - position))
        handle.write(body)


def test_missing_file_mentions_save_checkpoint(tmp_path):
    with pytest.raises(CheckpointError, match="repro train --save-checkpoint"):
        load_checkpoint(str(tmp_path / "nowhere.ckpt"))


def test_short_file_mentions_preamble(tmp_path):
    path = tmp_path / "stub.ckpt"
    path.write_bytes(b"TOSG")
    with pytest.raises(CheckpointError, match="preamble"):
        load_checkpoint(str(path))


def test_bad_magic(saved):
    _corrupt(saved, 0, b"NOTACKPT")
    with pytest.raises(CheckpointError, match="magic"):
        load_checkpoint(saved)


def test_unsupported_version(saved):
    _corrupt(saved, 8, np.asarray([99], dtype="<u4").tobytes())
    with pytest.raises(CheckpointError, match="version 99"):
        load_checkpoint(saved)
    with pytest.raises(CheckpointError, match="version 99"):
        read_checkpoint_meta(saved)


def test_header_overrun(saved):
    _corrupt(saved, 12, np.asarray([2**30], dtype="<u4").tobytes())
    with pytest.raises(CheckpointError, match="truncated"):
        load_checkpoint(saved)


def test_header_crc_mismatch(saved):
    _corrupt(saved, 24, b"X")
    with pytest.raises(CheckpointError, match="checksum"):
        load_checkpoint(saved)


def test_truncated_sections(saved):
    with open(saved, "rb") as handle:
        raw = handle.read()
    with open(saved, "wb") as handle:
        handle.write(raw[: len(raw) // 2])
    with pytest.raises(CheckpointError, match="truncated"):
        load_checkpoint(saved)


def test_flipped_parameter_bit_is_checksum_error(saved):
    with open(saved, "rb") as handle:
        raw = handle.read()
    _corrupt(saved, len(raw) - 8, b"\xff")  # inside the last parameter section
    with pytest.raises(CheckpointError, match="checksum mismatch"):
        load_checkpoint(saved)


def test_inconsistent_section_spec(saved):
    def mutate(header):
        name = next(k for k in header["sections"] if k.startswith("param/"))
        header["sections"][name]["nbytes"] = 1

    _rewrite_header(saved, mutate)
    with pytest.raises(CheckpointError, match="internally inconsistent"):
        load_checkpoint(saved)


def test_unknown_architecture_rejected(saved, toy_kg):
    def mutate(header):
        header["architecture"] = "TransformerXL"

    _rewrite_header(saved, mutate)
    with pytest.raises(CheckpointError, match="unknown architecture 'TransformerXL'"):
        load_checkpoint(saved).build_model(toy_kg)


def test_save_is_atomic(toy_kg, toy_task, tmp_path, saved):
    """Re-saving over an existing checkpoint never leaves a torn file."""
    model = RGCNNodeClassifier(toy_kg, toy_task, CONFIG)
    save_checkpoint(model, saved)
    checkpoint = load_checkpoint(saved)  # parses cleanly end to end
    assert checkpoint.architecture == "RGCN"
    assert not (tmp_path / "victim.ckpt.tmp").exists()
