"""Optimizers must actually optimize."""

import numpy as np
import pytest

from repro.nn.layers import Parameter
from repro.nn.optim import SGD, Adam


def _quadratic(parameter):
    # f(w) = ||w - 3||^2, minimised at w = 3.
    diff = parameter + (-3.0)
    return (diff * diff).sum()


@pytest.mark.parametrize(
    "make",
    [
        lambda p: SGD([p], lr=0.1),
        lambda p: SGD([p], lr=0.05, momentum=0.9),
        lambda p: Adam([p], lr=0.2),
    ],
)
def test_converges_on_quadratic(make):
    parameter = Parameter(np.zeros(4))
    optimizer = make(parameter)
    for _ in range(200):
        optimizer.zero_grad()
        loss = _quadratic(parameter)
        loss.backward()
        optimizer.step()
    assert np.allclose(parameter.data, 3.0, atol=1e-2)


def test_weight_decay_shrinks_parameters():
    parameter = Parameter(np.full(3, 10.0))
    optimizer = SGD([parameter], lr=0.1, weight_decay=1.0)
    # Zero task gradient: decay alone should shrink weights.
    parameter.grad = np.zeros(3)
    optimizer.step()
    assert (np.abs(parameter.data) < 10.0).all()


def test_skip_parameters_without_grad():
    parameter = Parameter(np.ones(2))
    optimizer = Adam([parameter], lr=0.5)
    optimizer.step()  # no grad -> no movement
    assert np.allclose(parameter.data, 1.0)


def test_empty_parameter_list_rejected():
    with pytest.raises(ValueError):
        Adam([], lr=0.1)
    with pytest.raises(ValueError):
        SGD([], lr=0.1)


def test_invalid_lr_rejected():
    parameter = Parameter(np.ones(2))
    with pytest.raises(ValueError):
        Adam([parameter], lr=0.0)
    with pytest.raises(ValueError):
        SGD([parameter], lr=-1.0)


def test_adam_bias_correction_first_step():
    parameter = Parameter(np.zeros(1))
    optimizer = Adam([parameter], lr=0.1)
    parameter.grad = np.asarray([1.0])
    optimizer.step()
    # With bias correction the first step is ≈ -lr regardless of betas.
    assert parameter.data[0] == pytest.approx(-0.1, rel=1e-6)
