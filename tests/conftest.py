"""Shared fixtures: small hand-built KGs and generated bundles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.tasks import NodeClassificationTask, Split
from repro.kg.graph import KnowledgeGraph


@pytest.fixture
def toy_kg() -> KnowledgeGraph:
    """A 15-node academic toy graph with a disconnected noise domain."""
    nodes = (
        [(f"p{i}", "Paper") for i in range(6)]
        + [(f"a{i}", "Author") for i in range(3)]
        + [("v0", "Venue"), ("v1", "Venue")]
        + [(f"m{i}", "Movie") for i in range(4)]
    )
    triples = [
        ("p0", "hasAuthor", "a0"), ("p1", "hasAuthor", "a0"),
        ("p2", "hasAuthor", "a1"), ("p3", "hasAuthor", "a1"),
        ("p4", "hasAuthor", "a2"), ("p5", "hasAuthor", "a2"),
        ("p0", "publishedIn", "v0"), ("p1", "publishedIn", "v0"),
        ("p2", "publishedIn", "v1"),
        ("p0", "cites", "p2"), ("p3", "cites", "p1"),
        # Disconnected noise domain.
        ("m0", "sequelOf", "m1"), ("m2", "sequelOf", "m3"),
    ]
    return KnowledgeGraph.build(nodes, triples, name="toy")


@pytest.fixture
def toy_task(toy_kg: KnowledgeGraph) -> NodeClassificationTask:
    """PV-style NC task over the toy graph's papers."""
    papers = np.asarray([toy_kg.node_vocab.id(f"p{i}") for i in range(6)])
    labels = np.asarray([0, 0, 1, 1, 0, 1])
    return NodeClassificationTask(
        name="PV",
        target_class=toy_kg.class_vocab.id("Paper"),
        target_nodes=papers,
        labels=labels,
        num_labels=2,
        split=Split(
            train=np.asarray([0, 1, 2, 3]),
            valid=np.asarray([4]),
            test=np.asarray([5]),
        ),
    )


@pytest.fixture(scope="session")
def mag_tiny():
    from repro.datasets import mag

    return mag("tiny", seed=7)


@pytest.fixture(scope="session")
def dblp_tiny():
    from repro.datasets import dblp

    return dblp("tiny", seed=13)


@pytest.fixture(scope="session")
def yago_tiny():
    from repro.datasets import yago4

    return yago4("tiny", seed=17)


@pytest.fixture(scope="session")
def yago3_tiny():
    from repro.datasets import yago3_10

    return yago3_10("tiny", seed=19)


@pytest.fixture(scope="session")
def wikikg_tiny():
    from repro.datasets import wikikg2

    return wikikg2("tiny", seed=23)
