"""Bench harness: runners, OOM conversion, rendering."""

import numpy as np

from repro.bench.harness import (
    RUN_HEADERS,
    MethodRun,
    render_series,
    render_table,
    run_lp_method,
    run_nc_method,
)
from repro.models import ModelConfig
from repro.training import TrainConfig

CONFIG = ModelConfig(hidden_dim=8, num_layers=1, dropout=0.0, lr=0.05, batch_size=8)
TRAIN = TrainConfig(epochs=2, eval_every=1)


def test_run_nc_method_happy_path(toy_kg, toy_task):
    run = run_nc_method("RGCN", toy_kg, toy_task, CONFIG, TRAIN, graph_label="FG")
    assert run.method == "RGCN"
    assert not run.oom
    assert run.memory_mb > 0
    assert run.train_seconds > 0
    assert 0.0 <= run.metric <= 1.0
    assert run.total_seconds >= run.train_seconds


def test_run_nc_method_oom(toy_kg, toy_task):
    run = run_nc_method(
        "RGCN", toy_kg, toy_task, CONFIG, TRAIN, graph_label="FG", budget_bytes=10
    )
    assert run.oom
    assert run.metric == 0.0
    cells = run.cells()
    assert cells[2] == "OOM"


def test_run_lp_method(toy_kg):
    import numpy as np

    from repro.core.tasks import LinkPredictionTask, Split

    papers = [toy_kg.node_vocab.id(f"p{i}") for i in range(4)]
    authors = [toy_kg.node_vocab.id(f"a{i}") for i in range(2)]
    task = LinkPredictionTask(
        name="HA", predicate=toy_kg.relation_vocab.id("hasAuthor"),
        head_class=toy_kg.class_vocab.id("Paper"),
        tail_class=toy_kg.class_vocab.id("Author"),
        edges=np.asarray([[papers[0], authors[0]], [papers[1], authors[0]],
                          [papers[2], authors[1]], [papers[3], authors[1]]]),
        split=Split(np.asarray([0, 1]), np.asarray([2]), np.asarray([3])),
    )
    run = run_lp_method("MorsE", toy_kg, task, CONFIG, TRAIN, graph_label="FG")
    assert run.metric_name.startswith("hits@")
    assert not run.oom


def test_render_table_alignment():
    table = render_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
    lines = table.splitlines()
    assert lines[0] == "T"
    widths = {len(line) for line in lines[1:]}
    assert len(widths) == 1  # all rows equal width


def test_render_table_headers():
    table = render_table(RUN_HEADERS, [])
    assert "method" in table and "mem(MB)" in table


def test_render_series():
    text = render_series({"FG": [(1.0, 0.5), (2.0, 0.7)]}, title="convergence")
    assert "FG" in text and "(1.0s, 0.500)" in text


def test_method_run_cells_regular():
    run = MethodRun(
        method="RGCN", graph_label="FG", task_name="PV", metric=0.9,
        train_seconds=1.0, preprocess_seconds=0.5, inference_seconds=0.01,
        memory_mb=12.0, num_parameters=100,
    )
    cells = run.cells()
    assert cells[0] == "RGCN"
    assert cells[3] == "1.5s"
