"""End-to-end pipeline: extract → transform → train → evaluate.

These are the paper's headline claims at miniature scale: the TOSG is much
smaller than the full graph, training on it is faster and lighter, and the
model stays useful.
"""

import numpy as np
import pytest

from repro.core import extract_tosg
from repro.core.quality import evaluate_quality
from repro.core.tasks import remap_task
from repro.models import GraphSAINTClassifier, ModelConfig, RGCNNodeClassifier
from repro.sampling.urw import UniformRandomWalkSampler
from repro.training import ResourceMeter, TrainConfig, train_node_classifier

CONFIG = ModelConfig(hidden_dim=16, num_layers=2, dropout=0.1, lr=0.03, batch_size=128)
TRAIN = TrainConfig(epochs=8, eval_every=2)


@pytest.fixture(scope="module")
def mag_setup():
    from repro.datasets import mag

    bundle = mag("tiny", seed=7)
    task = bundle.task("PV")
    tosa = extract_tosg(bundle.kg, task, method="sparql", direction=1, hops=1)
    return bundle, task, tosa


def test_tosg_is_much_smaller(mag_setup):
    bundle, _task, tosa = mag_setup
    assert tosa.subgraph.num_nodes < bundle.kg.num_nodes
    assert tosa.subgraph.num_edges < bundle.kg.num_edges
    assert tosa.subgraph.num_node_types < bundle.kg.num_node_types
    assert tosa.subgraph.num_edge_types < bundle.kg.num_edge_types


def test_tosg_keeps_all_targets(mag_setup):
    _bundle, task, tosa = mag_setup
    assert tosa.task.num_targets == task.num_targets


def test_training_on_tosg_reduces_memory_and_model(mag_setup):
    bundle, task, tosa = mag_setup
    fg_meter, tosg_meter = ResourceMeter(), ResourceMeter()
    fg_model = RGCNNodeClassifier(bundle.kg, task, CONFIG, meter=fg_meter)
    tosg_model = RGCNNodeClassifier(tosa.subgraph, tosa.task, CONFIG, meter=tosg_meter)
    assert tosg_meter.peak_bytes < fg_meter.peak_bytes
    assert tosg_model.num_parameters() < fg_model.num_parameters()


def test_model_beats_majority_baseline_on_tosg(mag_setup):
    _bundle, _task, tosa = mag_setup
    meter = ResourceMeter()
    model = GraphSAINTClassifier(tosa.subgraph, tosa.task, CONFIG, meter=meter)
    result = train_node_classifier(model, tosa.task, TRAIN, meter)
    labels = tosa.task.labels[tosa.task.split.test]
    majority = np.bincount(tosa.task.labels[tosa.task.split.train]).max() / max(
        len(tosa.task.split.train), 1
    )
    assert result.test_metric > max(majority, 1.0 / tosa.task.num_labels)


def test_brw_sample_quality_beats_urw():
    """Figure 2 vs Figure 5: BRW lifts target ratio and kills disconnection."""
    from repro.datasets import yago4

    bundle = yago4("tiny", seed=17)
    task = bundle.task("CG")
    urw = UniformRandomWalkSampler(bundle.kg, walk_length=2, num_roots=20)
    sampled = urw.sample(np.random.default_rng(0))
    urw_report = evaluate_quality(
        sampled.subgraph, remap_task(task, sampled.subgraph, sampled.mapping), "URW"
    )
    brw = extract_tosg(
        bundle.kg, task, method="brw", rng=np.random.default_rng(0),
        walk_length=2, batch_size=20,
    )
    brw_report = evaluate_quality(brw.subgraph, brw.task, "BRW")
    assert brw_report.target_ratio_pct > urw_report.target_ratio_pct
    assert brw_report.disconnected_pct == 0.0


def test_sparql_extraction_faster_than_ibs():
    """The paper's core efficiency claim about Algorithm 3."""
    from repro.datasets import mag

    bundle = mag("tiny", seed=7)
    task = bundle.task("PV")
    sparql = extract_tosg(bundle.kg, task, method="sparql", direction=1, hops=1)
    ibs = extract_tosg(
        bundle.kg, task, method="ibs", rng=np.random.default_rng(0), top_k=8, eps=2e-3
    )
    assert sparql.extraction_seconds < ibs.extraction_seconds


def test_lp_end_to_end():
    from repro.datasets import yago3_10
    from repro.models import MorsEPredictor
    from repro.training import train_link_predictor

    bundle = yago3_10("tiny", seed=19)
    task = bundle.task("CA")
    tosa = extract_tosg(bundle.kg, task, method="sparql", direction=2, hops=1)
    config = ModelConfig(hidden_dim=16, num_layers=1, lr=0.05, batch_size=128, margin=2.0)
    meter = ResourceMeter()
    model = MorsEPredictor(tosa.subgraph, tosa.task, config, meter=meter)
    result = train_link_predictor(
        model, tosa.task, TrainConfig(epochs=20, eval_every=5, num_eval_negatives=30), meter
    )
    # Better than random ranking among ~30 negatives (≈ 10/31).
    assert result.test_metric > 10 / 31


def test_experiment_tables_smoke():
    from repro.bench import experiments

    t1 = experiments.table1_benchmark_stats("tiny")
    assert len(t1.tables["table1"]) == 5
    t2 = experiments.table2_task_summary("tiny")
    assert len(t2.tables["table2"]) == 9  # six NC + three LP tasks
