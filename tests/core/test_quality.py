"""Quality indicators (Table III): BFS distances, entropy, target stats."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.quality import (
    evaluate_quality,
    multi_source_bfs_distances,
    neighbor_type_entropy,
)
from repro.kg.graph import KnowledgeGraph
from repro.kg.cache import artifacts_for


def test_bfs_distances_chain(toy_kg):
    adjacency = artifacts_for(toy_kg).csr("both")
    p0 = toy_kg.node_vocab.id("p0")
    distances = multi_source_bfs_distances(adjacency, np.asarray([p0]))
    assert distances[p0] == 0
    assert distances[toy_kg.node_vocab.id("a0")] == 1
    assert distances[toy_kg.node_vocab.id("p1")] == 2  # via a0 or v0
    assert np.isinf(distances[toy_kg.node_vocab.id("m0")])


def test_bfs_matches_networkx(toy_kg):
    adjacency = artifacts_for(toy_kg).csr("both")
    sources = np.asarray([toy_kg.node_vocab.id("p0"), toy_kg.node_vocab.id("p5")])
    distances = multi_source_bfs_distances(adjacency, sources)
    graph = nx.Graph()
    graph.add_nodes_from(range(toy_kg.num_nodes))
    for s, _p, o in toy_kg.triples:
        graph.add_edge(s, o)
    expected = nx.multi_source_dijkstra_path_length(graph, set(sources.tolist()))
    for node in range(toy_kg.num_nodes):
        if node in expected:
            assert distances[node] == expected[node]
        else:
            assert np.isinf(distances[node])


def test_bfs_empty_sources(toy_kg):
    adjacency = artifacts_for(toy_kg).csr("both")
    distances = multi_source_bfs_distances(adjacency, np.empty(0, dtype=np.int64))
    assert np.isinf(distances).all()


def test_entropy_zero_for_uniform_counts():
    # A star graph where every node sees exactly one neighbour type.
    kg = KnowledgeGraph.build(
        [("c", "Hub")] + [(f"l{i}", "Leaf") for i in range(4)],
        [(f"l{i}", "r", "c") for i in range(4)],
    )
    # Every leaf sees {Hub}; hub sees {Leaf}: all counts == 1 → entropy 0.
    assert neighbor_type_entropy(kg) == pytest.approx(0.0)


def test_entropy_positive_for_mixed_counts(toy_kg):
    assert neighbor_type_entropy(toy_kg) > 0.0


def test_entropy_empty_graph():
    kg = KnowledgeGraph.build([("a", "T")], [])
    assert neighbor_type_entropy(kg) == 0.0


def test_entropy_bounded_by_log_distinct_counts(toy_kg):
    # H over k distinct count values is at most log2(k) <= log2(n).
    entropy = neighbor_type_entropy(toy_kg)
    assert entropy <= np.log2(toy_kg.num_nodes)


def test_quality_report_full_graph(toy_kg, toy_task):
    report = evaluate_quality(toy_kg, toy_task, sampler="FG")
    assert report.num_targets == 6
    assert report.target_ratio_pct == pytest.approx(6 / 15 * 100)
    # Movies are disconnected from papers: 4 of 9 non-target nodes.
    assert report.disconnected_pct == pytest.approx(4 / 9 * 100)
    assert report.avg_distance_to_target > 0
    assert report.num_node_types == 4


def test_quality_report_on_clean_subgraph(toy_kg, toy_task):
    from repro.core.api import extract_tosg

    result = extract_tosg(toy_kg, toy_task, method="sparql", direction=2, hops=1)
    report = evaluate_quality(result.subgraph, result.task, sampler="d2h1")
    assert report.disconnected_pct == 0.0
    assert report.num_node_types < toy_kg.num_node_types


def test_quality_report_rows():
    from repro.core.quality import QualityReport

    report = QualityReport(
        sampler="URW", task_name="PV", num_nodes=10, num_edges=20, num_targets=3,
        target_ratio_pct=30.0, num_node_types=4, num_edge_types=5,
        disconnected_pct=10.0, avg_distance_to_target=2.5, entropy=1.2,
    )
    row = report.as_row()
    assert row[0] == "URW"
    assert len(row) == 9


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=2, max_value=10), st.integers(min_value=0, max_value=100))
def test_bfs_triangle_inequality_property(n, seed):
    """Multi-source distance <= any single-source distance."""
    rng = np.random.default_rng(seed)
    dense = (rng.random((n, n)) < 0.35).astype(float)
    np.fill_diagonal(dense, 0)
    import scipy.sparse as sp

    adjacency = sp.csr_matrix(dense + dense.T)
    single = multi_source_bfs_distances(adjacency, np.asarray([0]))
    multi = multi_source_bfs_distances(adjacency, np.asarray([0, n - 1]))
    assert (multi <= single + 1e-9).all()
