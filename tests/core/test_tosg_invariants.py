"""Property-based TOSG invariants (Definition 3.1).

For random KGs and any target class, the extracted TOSG must satisfy:
every non-target vertex is reachable from a target within the pattern's
hop bound, all extracted triples exist in the source KG, and all target
vertices survive.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.api import extract_tosg
from repro.core.quality import multi_source_bfs_distances
from repro.core.tasks import NodeClassificationTask, Split
from repro.kg.graph import KnowledgeGraph
from repro.kg.triples import TripleStore
from repro.kg.vocabulary import Vocabulary
from repro.kg.cache import artifacts_for

_NUM_NODES = 12
_NUM_CLASSES = 4
_NUM_RELATIONS = 3

node_types_st = st.lists(
    st.integers(0, _NUM_CLASSES - 1), min_size=_NUM_NODES, max_size=_NUM_NODES
)
triples_st = st.lists(
    st.tuples(
        st.integers(0, _NUM_NODES - 1),
        st.integers(0, _NUM_RELATIONS - 1),
        st.integers(0, _NUM_NODES - 1),
    ),
    min_size=1,
    max_size=40,
)


def _make_setup(node_types, triples, target_class):
    kg = KnowledgeGraph(
        node_vocab=Vocabulary([f"n{i}" for i in range(_NUM_NODES)]),
        class_vocab=Vocabulary([f"C{i}" for i in range(_NUM_CLASSES)]),
        relation_vocab=Vocabulary([f"r{i}" for i in range(_NUM_RELATIONS)]),
        node_types=np.asarray(node_types, dtype=np.int64),
        triples=TripleStore.from_triples(triples).deduplicated(),
    )
    targets = kg.nodes_of_type(target_class)
    if len(targets) == 0:
        return None
    n = len(targets)
    task = NodeClassificationTask(
        name="T", target_class=target_class, target_nodes=targets,
        labels=np.zeros(n, dtype=np.int64), num_labels=2,
        split=Split(np.arange(n), np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)),
    )
    return kg, task


@settings(max_examples=60, deadline=None)
@given(
    node_types_st,
    triples_st,
    st.integers(0, _NUM_CLASSES - 1),
    st.integers(1, 2),
    st.integers(1, 2),
)
def test_sparql_tosg_invariants(node_types, triples, target_class, direction, hops):
    setup = _make_setup(node_types, triples, target_class)
    if setup is None:
        return
    kg, task = setup
    result = extract_tosg(kg, task, method="sparql", direction=direction, hops=hops)
    subgraph = result.subgraph

    # 1. All targets survive (isolated ones included via extra_nodes).
    assert result.task.num_targets == task.num_targets

    # 2. Every extracted triple exists in the source KG (term-level check).
    source_triples = {
        (kg.node_vocab.term(s), kg.relation_vocab.term(p), kg.node_vocab.term(o))
        for s, p, o in kg.triples
    }
    for s, p, o in subgraph.triples:
        term = (
            subgraph.node_vocab.term(s),
            subgraph.relation_vocab.term(p),
            subgraph.node_vocab.term(o),
        )
        assert term in source_triples

    # 3. Reachability: every non-target vertex lies within `hops` hops of a
    # target (undirected view of the extracted subgraph — Definition 3.1's
    # "every non-target vertex is reachable to a vertex in V_T").
    if subgraph.num_edges == 0:
        return
    adjacency = artifacts_for(subgraph).csr("both")
    distances = multi_source_bfs_distances(adjacency, result.task.target_nodes)
    non_target = np.ones(subgraph.num_nodes, dtype=bool)
    non_target[result.task.target_nodes] = False
    assert (distances[non_target] <= hops).all()


@settings(max_examples=30, deadline=None)
@given(node_types_st, triples_st, st.integers(0, _NUM_CLASSES - 1), st.integers(0, 10))
def test_brw_tosg_reachability(node_types, triples, target_class, seed):
    setup = _make_setup(node_types, triples, target_class)
    if setup is None:
        return
    kg, task = setup
    result = extract_tosg(
        kg, task, method="brw", rng=np.random.default_rng(seed), walk_length=2
    )
    # BRW visits only nodes on walks from targets: everything in the
    # subgraph is within walk_length undirected hops of some target.
    if result.subgraph.num_edges == 0:
        return
    adjacency = artifacts_for(result.subgraph).csr("both")
    distances = multi_source_bfs_distances(adjacency, result.task.target_nodes)
    assert np.isfinite(distances).all()
