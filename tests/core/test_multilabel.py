"""Multi-label NC: task type, micro-F1, remapping, and the RGCN head."""

import numpy as np
import pytest

from repro.core.multilabel import (
    MultiLabelNodeClassificationTask,
    micro_f1,
    remap_multilabel_task,
)
from repro.core.tasks import Split
from repro.models import ModelConfig, RGCNMultiLabelClassifier


@pytest.fixture
def ml_task(toy_kg):
    papers = np.asarray([toy_kg.node_vocab.id(f"p{i}") for i in range(6)])
    labels = np.asarray(
        [[1, 0, 1], [1, 0, 0], [0, 1, 1], [0, 1, 0], [1, 0, 1], [0, 1, 1]]
    )
    return MultiLabelNodeClassificationTask(
        name="PK", target_class=toy_kg.class_vocab.id("Paper"),
        target_nodes=papers, labels=labels,
        split=Split(np.arange(4), np.asarray([4]), np.asarray([5])),
    )


def test_task_shape_validation(toy_kg):
    with pytest.raises(ValueError):
        MultiLabelNodeClassificationTask(
            name="bad", target_class=0, target_nodes=np.asarray([0]),
            labels=np.asarray([1, 0]),  # 1-D
            split=Split(np.asarray([0]), np.asarray([]), np.asarray([])),
        )
    with pytest.raises(ValueError):
        MultiLabelNodeClassificationTask(
            name="bad", target_class=0, target_nodes=np.asarray([0]),
            labels=np.asarray([[2, 0]]),  # non-binary
            split=Split(np.asarray([0]), np.asarray([]), np.asarray([])),
        )


def test_task_properties(ml_task):
    assert ml_task.num_targets == 6
    assert ml_task.num_labels == 3
    assert ml_task.task_type == "NC-ML"
    assert ml_task.metric == "micro-f1"


def test_micro_f1_perfect_and_empty():
    labels = np.asarray([[1, 0], [0, 1]])
    assert micro_f1(labels, labels) == 1.0
    assert micro_f1(np.zeros_like(labels), np.zeros_like(labels)) == 0.0


def test_micro_f1_partial():
    labels = np.asarray([[1, 1, 0, 0]])
    predictions = np.asarray([[1, 0, 1, 0]])
    # tp=1, fp=1, fn=1 -> f1 = 2/(2+1+1) = 0.5
    assert micro_f1(predictions, labels) == pytest.approx(0.5)


def test_micro_f1_shape_mismatch():
    with pytest.raises(ValueError):
        micro_f1(np.zeros((2, 2)), np.zeros((3, 2)))


def test_remap_multilabel(toy_kg, ml_task):
    keep = np.asarray([toy_kg.node_vocab.id(n) for n in ("p0", "p1", "a0")])
    sub, mapping = toy_kg.induced_subgraph(keep)
    remapped = remap_multilabel_task(ml_task, sub, mapping)
    assert remapped.num_targets == 2
    assert remapped.labels.shape == (2, 3)
    assert (remapped.labels == ml_task.labels[:2]).all()


def test_rgcn_multilabel_learns(toy_kg, ml_task):
    config = ModelConfig(hidden_dim=16, num_layers=2, dropout=0.0, lr=0.05)
    model = RGCNMultiLabelClassifier(toy_kg, ml_task, config)
    rng = np.random.default_rng(0)
    first = model.train_epoch(rng)
    for _ in range(60):
        last = model.train_epoch(rng)
    assert last < first
    predictions = model.predict_labels()
    train = ml_task.split.train
    assert micro_f1(predictions[train], ml_task.labels[train]) > 0.7


def test_pk_task_in_catalog(mag_tiny):
    task = mag_tiny.task("PK")
    assert task.task_type == "NC-ML"
    assert task.labels.shape == (task.num_targets, 10)
    # Every paper has at least one keyword.
    assert (task.labels.sum(axis=1) >= 1).all()


def test_pk_task_trains_on_tosg(mag_tiny):
    from repro.core import extract_tosg
    from repro.core.multilabel import remap_multilabel_task

    pv = mag_tiny.task("PV")
    tosa = extract_tosg(mag_tiny.kg, pv, method="sparql", direction=1, hops=1)
    pk = remap_multilabel_task(mag_tiny.task("PK"), tosa.subgraph, tosa.mapping)
    assert pk.num_targets == mag_tiny.task("PK").num_targets
    config = ModelConfig(hidden_dim=8, num_layers=1, lr=0.05)
    model = RGCNMultiLabelClassifier(tosa.subgraph, pk, config)
    assert np.isfinite(model.train_epoch(np.random.default_rng(0)))
