"""Task definitions, splits and remapping."""

import numpy as np
import pytest

from repro.core.tasks import (
    LinkPredictionTask,
    NodeClassificationTask,
    Split,
    remap_lp_task,
    remap_nc_task,
    remap_task,
)


def test_split_ratios():
    split = Split(np.arange(8), np.arange(8, 9), np.arange(9, 10))
    train, valid, test = split.ratios()
    assert (train, valid, test) == (0.8, 0.1, 0.1)


def test_split_select_reindexes():
    split = Split(np.asarray([0, 1, 2]), np.asarray([3]), np.asarray([4]))
    # Examples 1 and 3 are dropped.
    restricted = split.select(np.asarray([0, 2, 4]))
    assert restricted.train.tolist() == [0, 1]  # old 0 -> 0, old 2 -> 1
    assert restricted.valid.tolist() == []
    assert restricted.test.tolist() == [2]  # old 4 -> 2


def test_nc_task_validation():
    with pytest.raises(ValueError):
        NodeClassificationTask(
            name="bad", target_class=0,
            target_nodes=np.asarray([1, 2]), labels=np.asarray([0]),
            num_labels=2, split=Split(np.asarray([0]), np.asarray([]), np.asarray([])),
        )
    with pytest.raises(ValueError):
        NodeClassificationTask(
            name="bad", target_class=0,
            target_nodes=np.asarray([1]), labels=np.asarray([0]),
            num_labels=0, split=Split(np.asarray([0]), np.asarray([]), np.asarray([])),
        )


def test_nc_task_describe(toy_task):
    text = toy_task.describe()
    assert "PV" in text and "6 targets" in text


def test_lp_task_properties():
    edges = np.asarray([[0, 5], [1, 6], [0, 6]])
    task = LinkPredictionTask(
        name="LP", predicate=2, head_class=0, tail_class=1, edges=edges,
        split=Split(np.asarray([0, 1]), np.asarray([]), np.asarray([2])),
    )
    assert task.num_edges == 3
    assert task.target_nodes.tolist() == [0, 1, 5, 6]
    assert task.target_classes() == [0, 1]
    assert "LP" in task.describe()


def test_lp_edges_shape_validated():
    with pytest.raises(ValueError):
        LinkPredictionTask(
            name="bad", predicate=0, head_class=0, tail_class=0,
            edges=np.asarray([1, 2, 3]),
            split=Split(np.asarray([]), np.asarray([]), np.asarray([])),
        )


def test_remap_nc_task(toy_kg, toy_task):
    # Subgraph containing only half the papers.
    keep = np.asarray([toy_kg.node_vocab.id(n) for n in ("p0", "p1", "p2", "a0")])
    sub, mapping = toy_kg.induced_subgraph(keep)
    remapped = remap_nc_task(toy_task, sub, mapping)
    assert remapped.num_targets == 3
    assert remapped.labels.tolist() == [0, 0, 1]
    # Train positions 0,1,2 survive and are renumbered densely.
    assert remapped.split.train.tolist() == [0, 1, 2]
    assert remapped.split.valid.tolist() == []
    # Target nodes point at papers in the subgraph's id space.
    for node in remapped.target_nodes:
        assert sub.class_vocab.term(int(sub.node_types[node])) == "Paper"


def test_remap_lp_task(toy_kg):
    papers = [toy_kg.node_vocab.id(f"p{i}") for i in range(3)]
    authors = [toy_kg.node_vocab.id(f"a{i}") for i in range(2)]
    edges = np.asarray([[papers[0], authors[0]], [papers[1], authors[0]], [papers[2], authors[1]]])
    task = LinkPredictionTask(
        name="HA", predicate=toy_kg.relation_vocab.id("hasAuthor"),
        head_class=toy_kg.class_vocab.id("Paper"),
        tail_class=toy_kg.class_vocab.id("Author"),
        edges=edges,
        split=Split(np.asarray([0, 1]), np.asarray([]), np.asarray([2])),
    )
    keep = np.asarray(papers[:2] + authors[:1])
    sub, mapping = toy_kg.induced_subgraph(keep)
    remapped = remap_lp_task(task, sub, mapping)
    assert remapped.num_edges == 2  # third edge lost its author
    assert remapped.split.test.tolist() == []
    assert remapped.predicate == mapping.relation_old_to_new[task.predicate]


def test_remap_task_dispatch(toy_kg, toy_task):
    keep = np.arange(toy_kg.num_nodes)
    sub, mapping = toy_kg.induced_subgraph(keep)
    assert remap_task(toy_task, sub, mapping).task_type == "NC"
