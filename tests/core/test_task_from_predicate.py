"""lp_task_from_predicate: deriving LP tasks for KG-completion workloads."""

import numpy as np
import pytest

from repro.core.tasks import lp_task_from_predicate


def test_derives_edges_and_classes(toy_kg):
    predicate = toy_kg.relation_vocab.id("hasAuthor")
    task = lp_task_from_predicate(toy_kg, predicate, rng=np.random.default_rng(0))
    assert task.num_edges == 6
    assert task.head_class == toy_kg.class_vocab.id("Paper")
    assert task.tail_class == toy_kg.class_vocab.id("Author")
    assert task.predicate == predicate
    assert task.name == "LP-hasAuthor"


def test_split_partitions_edges(toy_kg):
    predicate = toy_kg.relation_vocab.id("hasAuthor")
    task = lp_task_from_predicate(
        toy_kg, predicate, ratios=(0.5, 0.25, 0.25), rng=np.random.default_rng(1)
    )
    combined = np.sort(
        np.concatenate([task.split.train, task.split.valid, task.split.test])
    )
    assert combined.tolist() == list(range(task.num_edges))


def test_unused_predicate_rejected(toy_kg):
    # Build a relation id that exists but has no edges by filtering.
    with pytest.raises(ValueError):
        # publishedIn exists; use an out-of-vocabulary id instead.
        lp_task_from_predicate(toy_kg, 999)


def test_dominant_class_filtering(toy_kg):
    """Edges whose endpoints deviate from the dominant classes are dropped."""
    predicate = toy_kg.relation_vocab.id("cites")
    task = lp_task_from_predicate(toy_kg, predicate, rng=np.random.default_rng(0))
    paper = toy_kg.class_vocab.id("Paper")
    assert task.head_class == paper and task.tail_class == paper
    assert (toy_kg.node_types[task.edges] == paper).all()
